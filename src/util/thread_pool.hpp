#pragma once

/// \file thread_pool.hpp
/// A plain fixed-size thread pool with future-returning submission.
/// Used for genuinely parallel work (GP Monte-Carlo prediction, model
/// replicate evaluation); the simulated fabric does NOT run on this pool.

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/channel.hpp"

namespace osprey::util {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (at least 1).
  explicit ThreadPool(std::size_t n_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_.size(); }

  /// Submit a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    bool ok = queue_.push([task] { (*task)(); });
    if (!ok) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    return fut;
  }

  /// Run one queued task on the calling thread if one is immediately
  /// available. Returns false when the queue is momentarily empty or
  /// the pool is shutting down (distinguished via the channel's status
  /// API). Lets blocked submitters help drain the queue.
  bool try_run_one();

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// The calling thread participates as an extra worker while it waits,
  /// so a parallel_for issued from inside a pool task cannot deadlock
  /// even when every pool thread is busy.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  Channel<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
};

/// Parse an OSPREY_THREADS-style override. `env` is the raw variable
/// value (nullptr/empty = unset -> `fallback`). A strictly positive
/// integer (optionally whitespace-padded) is honored as-is; anything
/// else — "0", negatives, non-numeric, trailing garbage, overflow — is
/// clamped to 1 with a logged warning rather than silently misparsed.
std::size_t parse_thread_count(const char* env, std::size_t fallback);

/// Process-wide shared pool sized by the hardware concurrency (minimum
/// 1; override with the OSPREY_THREADS environment variable, validated
/// by parse_thread_count). Lives for the life of the process; intended
/// for deterministic data-parallel kernels (GP batch prediction, MLE
/// multistarts, per-plant MCMC fan-out) where spinning up a private
/// pool per call would dominate.
ThreadPool& global_pool();

}  // namespace osprey::util
