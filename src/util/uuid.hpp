#pragma once

/// \file uuid.hpp
/// Deterministic UUID generation. AERO identifies every data object and
/// flow by UUID; we generate RFC-4122-shaped version-4 identifiers from a
/// seeded 64-bit mix so that whole-platform runs are reproducible.

#include <cstdint>
#include <string>

namespace osprey::util {

/// Produces a reproducible sequence of v4-format UUID strings.
/// Not cryptographically random — determinism is the point here.
class UuidFactory {
 public:
  explicit UuidFactory(std::uint64_t seed = 0x05919e5);

  /// Next UUID in canonical 8-4-4-4-12 hex form, e.g.
  /// "3f2a9c1e-7b4d-4e8a-9c3f-1a2b3c4d5e6f".
  std::string next();

  /// The generator state. Persisted in durable snapshots (AERO metadata
  /// checkpoints) so a restored factory continues the exact sequence the
  /// original would have produced — identifiers never collide or diverge
  /// across a crash/recovery boundary.
  std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

 private:
  std::uint64_t state_;
  std::uint64_t next_u64();
};

/// True when `s` has canonical UUID shape (lengths, dashes, hex digits).
bool looks_like_uuid(const std::string& s);

}  // namespace osprey::util
