#pragma once

/// \file sim_time.hpp
/// Virtual time used by the discrete-event fabric. Time is integral
/// milliseconds since the simulation epoch so event ordering is exact.

#include <cstdint>
#include <string>

namespace osprey::util {

/// Milliseconds since the simulation epoch (day 0, 00:00).
using SimTime = std::int64_t;

constexpr SimTime kMillisecond = 1;
constexpr SimTime kSecond = 1000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;

/// Whole days elapsed (floor).
inline std::int64_t sim_day(SimTime t) { return t / kDay; }

/// Human-readable "d003 07:30:00.250" rendering for traces.
std::string format_sim_time(SimTime t);

/// Compact duration rendering, e.g. "45s", "2.5m", "3h", "1.2d".
std::string format_duration(SimTime dt);

}  // namespace osprey::util
