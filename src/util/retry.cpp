#include "util/retry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace osprey::util {

namespace {

/// splitmix64 finalizer: counter-based, stateless, replayable. Kept
/// local so util/ stays independent of num/'s RNG streams.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

SimTime RetryPolicy::cap() const {
  if (max_backoff > 0) return max_backoff;
  // Saturate the 8x default: an initial_backoff within 8x of the
  // SimTime ceiling must cap at the ceiling, not wrap negative.
  constexpr SimTime kMax = std::numeric_limits<SimTime>::max();
  if (initial_backoff > kMax / 8) return kMax;
  return initial_backoff * 8;
}

SimTime RetryPolicy::backoff(int attempt) const {
  OSPREY_REQUIRE(initial_backoff >= 1, "initial backoff must be positive");
  OSPREY_REQUIRE(multiplier >= 1.0, "backoff multiplier must be >= 1");
  // Harden against scheduler bookkeeping bugs: attempts are 1-based,
  // and anything below that gets the initial backoff.
  if (attempt < 1) attempt = 1;
  // Compute in double to survive large exponents, then saturate at the
  // cap *before* converting back: initial * multiplier^(attempt-1) can
  // exceed both SimTime and the exactly-representable double range for
  // large attempt counts, and llround on such a value is undefined.
  const SimTime capped_to = cap();
  double raw = static_cast<double>(initial_backoff) *
               std::pow(multiplier, static_cast<double>(attempt - 1));
  if (!(raw < static_cast<double>(capped_to))) return capped_to;
  return std::max<SimTime>(1, static_cast<SimTime>(std::llround(raw)));
}

SimTime RetryPolicy::jittered(int attempt, std::uint64_t key) const {
  OSPREY_REQUIRE(jitter >= 0.0 && jitter < 1.0, "jitter fraction in [0,1)");
  if (attempt < 1) attempt = 1;
  SimTime base = backoff(attempt);
  if (jitter <= 0.0) return base;
  std::uint64_t bits =
      mix64(seed ^ mix64(key ^ mix64(static_cast<std::uint64_t>(attempt))));
  // Factor in [1 - jitter, 1 + jitter]. Saturate like backoff(): a base
  // at the SimTime ceiling times an upward jitter must not overflow.
  double factor = 1.0 + jitter * (2.0 * uniform01(bits) - 1.0);
  double scaled = static_cast<double>(base) * factor;
  constexpr SimTime kMax = std::numeric_limits<SimTime>::max();
  if (!(scaled < static_cast<double>(kMax))) return kMax;
  return std::max<SimTime>(1, static_cast<SimTime>(std::llround(scaled)));
}

std::uint64_t stable_key(const char* s) {
  // FNV-1a: stable across runs and platforms, unlike std::hash.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

const char* breaker_state_name(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {
  OSPREY_REQUIRE(config_.failure_threshold >= 0,
                 "breaker threshold must be non-negative");
  OSPREY_REQUIRE(config_.open_timeout >= 1, "breaker open timeout too small");
  OSPREY_REQUIRE(config_.half_open_successes >= 1,
                 "breaker needs at least one probe success to close");
}

bool CircuitBreaker::allow(SimTime now) {
  if (!config_.enabled()) return true;
  if (state_ == BreakerState::kOpen &&
      now >= opened_at_ + config_.open_timeout) {
    state_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
  }
  return state_ != BreakerState::kOpen;
}

void CircuitBreaker::trip(SimTime now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  half_open_successes_ = 0;
  ++times_opened_;
}

void CircuitBreaker::on_success(SimTime) {
  if (!config_.enabled()) return;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    if (++half_open_successes_ >= config_.half_open_successes) {
      state_ = BreakerState::kClosed;
    }
  } else if (state_ == BreakerState::kClosed) {
    // Nothing else: successes keep a closed breaker closed.
  }
}

void CircuitBreaker::on_failure(SimTime now) {
  if (!config_.enabled()) return;
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    trip(now);  // a failed probe re-opens immediately
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    trip(now);
  }
}

}  // namespace osprey::util
