#pragma once

/// \file annotations.hpp
/// Clang thread-safety-analysis attribute macros. Under Clang the
/// OSPREY_THREAD_SAFETY CMake option builds with
/// `-Wthread-safety -Werror=thread-safety`, turning the annotations in
/// util::Mutex / util::Channel / emews::TaskDb / emews::WorkerPool into
/// compile-time lock-discipline checks. Under other compilers every
/// macro expands to nothing, so the annotated code stays portable.
///
/// The macro set mirrors the capability vocabulary of the Clang
/// analysis (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html);
/// only the subset the repository actually uses is defined here.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OSPREY_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef OSPREY_THREAD_ANNOTATION
#define OSPREY_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a class as a capability (e.g. a mutex type). The string names
/// the capability kind in diagnostics.
#define OSPREY_CAPABILITY(x) OSPREY_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define OSPREY_SCOPED_CAPABILITY OSPREY_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define OSPREY_GUARDED_BY(x) OSPREY_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the *pointee* may only be accessed while holding `x`.
#define OSPREY_PT_GUARDED_BY(x) OSPREY_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// they remain held on exit).
#define OSPREY_REQUIRES(...) \
  OSPREY_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (not held on entry, held
/// on exit).
#define OSPREY_ACQUIRE(...) \
  OSPREY_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define OSPREY_RELEASE(...) \
  OSPREY_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the first argument is
/// the return value that signals success.
#define OSPREY_TRY_ACQUIRE(...) \
  OSPREY_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention;
/// also documents that the function locks internally).
#define OSPREY_EXCLUDES(...) \
  OSPREY_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define OSPREY_RETURN_CAPABILITY(x) \
  OSPREY_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only where
/// the locking pattern is correct but inexpressible.
#define OSPREY_NO_THREAD_SAFETY_ANALYSIS \
  OSPREY_THREAD_ANNOTATION(no_thread_safety_analysis)
