#include "util/value.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace osprey::util {

Value Value::from_doubles(const std::vector<double>& xs) {
  ValueArray arr;
  arr.reserve(xs.size());
  for (double x : xs) arr.emplace_back(x);
  return Value(std::move(arr));
}

std::vector<double> Value::to_doubles() const {
  const ValueArray& arr = as_array();
  std::vector<double> out;
  out.reserve(arr.size());
  for (const Value& v : arr) out.push_back(v.as_double());
  return out;
}

bool Value::as_bool() const {
  OSPREY_REQUIRE(is_bool(), "value is not a bool");
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(data_);
  if (is_double()) {
    double d = std::get<double>(data_);
    OSPREY_REQUIRE(d == std::floor(d), "double is not integral");
    return static_cast<std::int64_t>(d);
  }
  throw InvalidArgument("value is not an integer");
}

double Value::as_double() const {
  if (is_double()) return std::get<double>(data_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  throw InvalidArgument("value is not a number");
}

const std::string& Value::as_string() const {
  OSPREY_REQUIRE(is_string(), "value is not a string");
  return std::get<std::string>(data_);
}

const ValueArray& Value::as_array() const {
  OSPREY_REQUIRE(is_array(), "value is not an array");
  return std::get<ValueArray>(data_);
}

ValueArray& Value::as_array() {
  OSPREY_REQUIRE(is_array(), "value is not an array");
  return std::get<ValueArray>(data_);
}

const ValueObject& Value::as_object() const {
  OSPREY_REQUIRE(is_object(), "value is not an object");
  return std::get<ValueObject>(data_);
}

ValueObject& Value::as_object() {
  OSPREY_REQUIRE(is_object(), "value is not an object");
  return std::get<ValueObject>(data_);
}

const Value& Value::at(const std::string& key) const {
  const ValueObject& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw NotFound("missing key: " + key);
  return it->second;
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = ValueObject{};
  return as_object()[key];
}

bool Value::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

const Value& Value::at(std::size_t index) const {
  const ValueArray& arr = as_array();
  OSPREY_REQUIRE(index < arr.size(), "array index out of range");
  return arr[index];
}

std::size_t Value::size() const {
  if (is_array()) return std::get<ValueArray>(data_).size();
  if (is_object()) return std::get<ValueObject>(data_).size();
  throw InvalidArgument("size() on non-container value");
}

double Value::get_or(const std::string& key, double fallback) const {
  return contains(key) ? at(key).as_double() : fallback;
}

std::int64_t Value::get_or(const std::string& key,
                           std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

std::string Value::get_or(const std::string& key,
                          const std::string& fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

namespace {

void escape_string(const std::string& s, std::ostringstream& out) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_json(const Value& v, std::ostringstream& out) {
  if (v.is_null()) {
    out << "null";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "true" : "false");
  } else if (v.is_int()) {
    out << v.as_int();
  } else if (v.is_double()) {
    double d = v.as_double();
    if (std::isnan(d)) {
      out << "null";  // JSON has no NaN; match common serializers
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out << buf;
      // Keep a trailing ".0" marker so doubles round-trip as doubles.
      std::string s(buf);
      if (s.find_first_of(".eE") == std::string::npos) out << ".0";
    }
  } else if (v.is_string()) {
    escape_string(v.as_string(), out);
  } else if (v.is_array()) {
    out << '[';
    bool first = true;
    for (const Value& e : v.as_array()) {
      if (!first) out << ',';
      first = false;
      write_json(e, out);
    }
    out << ']';
  } else {
    out << '{';
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out << ',';
      first = false;
      escape_string(k, out);
      out << ':';
      write_json(e, out);
    }
    out << '}';
  }
}

/// Recursive-descent JSON parser over a string view with an index cursor.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    OSPREY_REQUIRE(pos_ == text_.size(), "trailing characters after JSON");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    OSPREY_REQUIRE(pos_ < text_.size(), "unexpected end of JSON");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    OSPREY_REQUIRE(next() == c, std::string("expected '") + c + "'");
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      OSPREY_REQUIRE(pos_ < text_.size(), "unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        OSPREY_REQUIRE(pos_ < text_.size(), "unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            OSPREY_REQUIRE(pos_ + 4 <= text_.size(), "bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else throw InvalidArgument("bad hex digit in \\u escape");
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            throw InvalidArgument("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c == '.' || c == 'e' || c == 'E') is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    OSPREY_REQUIRE(pos_ > start, "expected a number");
    std::string tok = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      if (is_double) {
        double d = std::stod(tok, &used);
        OSPREY_REQUIRE(used == tok.size(), "malformed number: " + tok);
        return Value(d);
      }
      std::int64_t i = std::stoll(tok, &used);
      OSPREY_REQUIRE(used == tok.size(), "malformed number: " + tok);
      return Value(i);
    } catch (const InvalidArgument&) {
      throw;
    } catch (const std::exception&) {
      throw InvalidArgument("malformed number: " + tok);
    }
  }

  Value parse_array() {
    expect('[');
    ValueArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      OSPREY_REQUIRE(c == ',', "expected ',' or ']' in array");
    }
    return Value(std::move(arr));
  }

  Value parse_object() {
    expect('{');
    ValueObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      OSPREY_REQUIRE(c == ',', "expected ',' or '}' in object");
    }
    return Value(std::move(obj));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::to_json() const {
  std::ostringstream out;
  write_json(*this, out);
  return out.str();
}

Value Value::parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace osprey::util
