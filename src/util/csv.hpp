#pragma once

/// \file csv.hpp
/// In-memory CSV reading/writing. Wastewater surveillance payloads and
/// tabular model outputs travel between simulated endpoints as CSV blobs,
/// mirroring the tabular files exchanged in the paper's workflow.

#include <string>
#include <vector>

namespace osprey::util {

/// A parsed CSV document: one header row plus data rows of equal width.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }

  /// Index of a named column; throws NotFound when absent.
  std::size_t column_index(const std::string& name) const;
  bool has_column(const std::string& name) const;

  void add_row(std::vector<std::string> row);
  const std::vector<std::string>& row(std::size_t i) const;

  /// Field accessors by (row, column-name).
  const std::string& cell(std::size_t row, const std::string& column) const;
  double cell_double(std::size_t row, const std::string& column) const;

  /// Whole column as doubles.
  std::vector<double> column_doubles(const std::string& name) const;
  std::vector<std::string> column_strings(const std::string& name) const;

  /// Serialize with RFC-4180-style quoting when needed.
  std::string to_string() const;
  /// Parse; throws InvalidArgument on ragged rows or bad quoting.
  static CsvTable parse(const std::string& text);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace osprey::util
