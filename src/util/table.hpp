#pragma once

/// \file table.hpp
/// Fixed-width text table printer used by the benchmark harnesses to emit
/// the rows/series the paper's tables and figures report.

#include <string>
#include <vector>

namespace osprey::util {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 4);

  /// Render with a rule under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner (used to delimit figure/table reproductions).
std::string banner(const std::string& title);

}  // namespace osprey::util
