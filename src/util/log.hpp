#pragma once

/// \file log.hpp
/// Minimal thread-safe leveled logger. Components tag their lines so the
/// interleaved output of the simulated platform remains readable.

#include <functional>
#include <sstream>
#include <string>

namespace osprey::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line (thread-safe). Prefer the OSPREY_LOG_* macros below.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

const char* level_name(LogLevel level);

/// Pluggable destination for log_line. Sinks are invoked under the
/// logger's internal mutex (lines stay whole, ordering is total), so a
/// sink must not call log_line or install/remove sinks itself.
using LogSink =
    std::function<void(LogLevel, const std::string& component,
                       const std::string& message)>;

/// Install `sink` as the log destination, replacing the default stderr
/// writer; passing nullptr restores the default. Returns the previously
/// installed sink (nullptr if the default was active) so callers can
/// swap temporarily and restore. Thread-safe.
LogSink set_log_sink(LogSink sink);

}  // namespace osprey::util

#define OSPREY_LOG_IMPL(lvl, component, expr)                           \
  do {                                                                  \
    if (static_cast<int>(lvl) >=                                        \
        static_cast<int>(::osprey::util::log_level())) {                \
      std::ostringstream osprey_log_oss;                                \
      osprey_log_oss << expr;                                           \
      ::osprey::util::log_line(lvl, component, osprey_log_oss.str());   \
    }                                                                   \
  } while (0)

#define OSPREY_LOG_DEBUG(component, expr) \
  OSPREY_LOG_IMPL(::osprey::util::LogLevel::kDebug, component, expr)
#define OSPREY_LOG_INFO(component, expr) \
  OSPREY_LOG_IMPL(::osprey::util::LogLevel::kInfo, component, expr)
#define OSPREY_LOG_WARN(component, expr) \
  OSPREY_LOG_IMPL(::osprey::util::LogLevel::kWarn, component, expr)
#define OSPREY_LOG_ERROR(component, expr) \
  OSPREY_LOG_IMPL(::osprey::util::LogLevel::kError, component, expr)
