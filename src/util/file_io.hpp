#pragma once

/// \file file_io.hpp
/// Minimal file helpers for the benchmark harnesses: each figure bench
/// writes the series it prints as CSV artifacts under results/ so the
/// plots can be regenerated outside this repository.

#include <optional>
#include <string>

namespace osprey::util {

/// Write `content` to `path`, creating parent directories. Throws Error
/// on IO failure.
void write_text_file(const std::string& path, const std::string& content);

/// Read a whole file; nullopt when it does not exist.
std::optional<std::string> read_text_file(const std::string& path);

}  // namespace osprey::util
