#pragma once

/// \file mutex.hpp
/// Annotated mutual-exclusion primitives. std::mutex / std::lock_guard
/// carry no thread-safety-analysis attributes in libstdc++, so the
/// analysis cannot see their acquisitions; these thin wrappers add the
/// capability annotations while delegating all behaviour to the
/// standard library. Condition waits use std::condition_variable_any,
/// which accepts any BasicLockable — including the annotated MutexLock.

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace osprey::util {

/// An annotated std::mutex. Use MutexLock for scoped acquisition; the
/// raw lock()/unlock() exist for the rare manual pattern.
class OSPREY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() OSPREY_ACQUIRE() { m_.lock(); }
  void unlock() OSPREY_RELEASE() { m_.unlock(); }
  bool try_lock() OSPREY_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock over Mutex, annotated as a scoped capability. Also a
/// BasicLockable (lock()/unlock()), so std::condition_variable_any can
/// atomically release and reacquire it inside wait()/wait_for() — the
/// analysis sees the capability as held across the wait, which matches
/// the caller-visible contract.
class OSPREY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) OSPREY_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() OSPREY_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For condition_variable_any only; do not call directly.
  void lock() OSPREY_ACQUIRE() { mutex_.lock(); }
  void unlock() OSPREY_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Condition variable usable with MutexLock. wait()/wait_for() release
/// and reacquire through the annotated lock, so guarded state must be
/// re-checked after every return (use explicit while-loops rather than
/// predicate overloads: lambdas are analyzed as separate functions and
/// would trip guarded_by checks).
using CondVar = std::condition_variable_any;

}  // namespace osprey::util
