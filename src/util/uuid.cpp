#include "util/uuid.hpp"

#include <cstdio>

namespace osprey::util {

UuidFactory::UuidFactory(std::uint64_t seed) : state_(seed) {}

std::uint64_t UuidFactory::next_u64() {
  // splitmix64: tiny, fast, and statistically fine for identifiers.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string UuidFactory::next() {
  std::uint64_t hi = next_u64();
  std::uint64_t lo = next_u64();
  // Stamp the version (4) and variant (10xx) bits per RFC 4122.
  hi = (hi & 0xffffffffffff0fffULL) | 0x0000000000004000ULL;
  lo = (lo & 0x3fffffffffffffffULL) | 0x8000000000000000ULL;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32),
                static_cast<unsigned>((hi >> 16) & 0xffff),
                static_cast<unsigned>(hi & 0xffff),
                static_cast<unsigned>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xffffffffffffULL));
  return buf;
}

bool looks_like_uuid(const std::string& s) {
  if (s.size() != 36) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (s[i] != '-') return false;
    } else {
      char c = s[i];
      bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                 (c >= 'A' && c <= 'F');
      if (!hex) return false;
    }
  }
  return true;
}

}  // namespace osprey::util
