#pragma once

/// \file channel.hpp
/// A bounded/unbounded MPMC blocking queue. The EMEWS task database and
/// worker pools are built on top of this primitive.
///
/// Lock discipline is machine-checked: members are OSPREY_GUARDED_BY
/// the channel mutex and the OSPREY_THREAD_SAFETY build rejects any
/// unguarded access. Condition waits use explicit while-loops (not
/// predicate lambdas) so the analysis sees the guarded reads under the
/// held capability.

#include <deque>
#include <optional>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace osprey::util {

/// Outcome of a non-blocking pop. Distinguishes "nothing right now"
/// from "never anything again": pollers must keep waiting on kEmpty but
/// can exit on kClosed.
enum class ChannelStatus { kItem, kEmpty, kClosed };

/// Multi-producer multi-consumer blocking channel.
/// close() wakes all waiters; pop() then drains remaining items and
/// finally returns std::nullopt.
template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking push; returns false if the channel is closed.
  bool push(T item) OSPREY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && capacity_ != 0 && items_.size() >= capacity_) {
      not_full_.wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt once closed and drained.
  std::optional<T> pop() OSPREY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) {
      not_empty_.wait(lock);
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop. NOTE: collapses "empty but open" and "closed and
  /// drained" into nullopt; pollers that must tell shutdown apart from
  /// momentary emptiness should use try_pop_status() instead.
  std::optional<T> try_pop() OSPREY_EXCLUDES(mutex_) {
    T item;
    if (try_pop_status(item) == ChannelStatus::kItem) return item;
    return std::nullopt;
  }

  /// Non-blocking pop with distinguishable outcomes: kItem moves an
  /// item into `out`; kEmpty means the channel is open but momentarily
  /// drained (retry later); kClosed means closed AND drained (no item
  /// will ever arrive — stop polling).
  ChannelStatus try_pop_status(T& out) OSPREY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (!items_.empty()) {
      out = std::move(items_.front());
      items_.pop_front();
      not_full_.notify_one();
      return ChannelStatus::kItem;
    }
    return closed_ ? ChannelStatus::kClosed : ChannelStatus::kEmpty;
  }

  void close() OSPREY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const OSPREY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const OSPREY_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ OSPREY_GUARDED_BY(mutex_);
  bool closed_ OSPREY_GUARDED_BY(mutex_) = false;
};

}  // namespace osprey::util
