#pragma once

/// \file channel.hpp
/// A bounded/unbounded MPMC blocking queue. The EMEWS task database and
/// worker pools are built on top of this primitive.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace osprey::util {

/// Outcome of a non-blocking pop. Distinguishes "nothing right now"
/// from "never anything again": pollers must keep waiting on kEmpty but
/// can exit on kClosed.
enum class ChannelStatus { kItem, kEmpty, kClosed };

/// Multi-producer multi-consumer blocking channel.
/// close() wakes all waiters; pop() then drains remaining items and
/// finally returns std::nullopt.
template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking push; returns false if the channel is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop. NOTE: collapses "empty but open" and "closed and
  /// drained" into nullopt; pollers that must tell shutdown apart from
  /// momentary emptiness should use try_pop_status() instead.
  std::optional<T> try_pop() {
    T item;
    if (try_pop_status(item) == ChannelStatus::kItem) return item;
    return std::nullopt;
  }

  /// Non-blocking pop with distinguishable outcomes: kItem moves an
  /// item into `out`; kEmpty means the channel is open but momentarily
  /// drained (retry later); kClosed means closed AND drained (no item
  /// will ever arrive — stop polling).
  ChannelStatus try_pop_status(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!items_.empty()) {
      out = std::move(items_.front());
      items_.pop_front();
      not_full_.notify_one();
      return ChannelStatus::kItem;
    }
    return closed_ ? ChannelStatus::kClosed : ChannelStatus::kEmpty;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace osprey::util
