#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/mutex.hpp"

namespace osprey::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Serializes writes to stderr so interleaved component lines stay whole.
Mutex g_mutex;
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  MutexLock lock(g_mutex);
  std::fprintf(stderr, "[%-5s] %-12s %s\n", level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace osprey::util
