#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "util/mutex.hpp"

namespace osprey::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Serializes sink invocations (stderr by default) so interleaved
// component lines stay whole and sink swaps are race-free.
Mutex g_mutex;
LogSink g_sink OSPREY_GUARDED_BY(g_mutex);  // empty: default stderr writer
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

LogSink set_log_sink(LogSink sink) {
  MutexLock lock(g_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  MutexLock lock(g_mutex);
  if (g_sink) {
    g_sink(level, component, message);
    return;
  }
  std::fprintf(stderr, "[%-5s] %-12s %s\n", level_name(level),
               component.c_str(), message.c_str());
}

}  // namespace osprey::util
