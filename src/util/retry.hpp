#pragma once

/// \file retry.hpp
/// Shared recovery primitives for the orchestration layers: an
/// exponential-backoff RetryPolicy (with deterministic jitter and an
/// upper cap) and a CircuitBreaker with half-open probes. Both are pure
/// state machines over explicit SimTime arguments — they never read a
/// wall clock — so recovery behaviour driven by the SimClock/EventLoop
/// is exactly replayable.

#include <cstdint>
#include <optional>

#include "util/sim_time.hpp"

namespace osprey::util {

/// Exponential backoff with a cap and deterministic jitter.
///
/// `backoff(attempt)` for attempt = 1, 2, ... is
///   min(initial_backoff * multiplier^(attempt-1), max_backoff)
/// and is monotone non-decreasing. `jittered(attempt, key)` scales that
/// by a factor in [1 - jitter, 1 + jitter] drawn from a counter-based
/// hash of (seed, attempt, key), so two runs with the same seed produce
/// identical schedules.
struct RetryPolicy {
  /// Retries after the initial try; 0 disables retrying.
  int max_attempts = 0;
  SimTime initial_backoff = 5 * kMinute;
  double multiplier = 2.0;
  /// Upper bound on any single backoff. <= 0 means "8x initial".
  SimTime max_backoff = 0;
  /// Relative jitter amplitude in [0, 1). 0 = deterministic schedule
  /// with no spread.
  double jitter = 0.0;
  /// Seed for the jitter hash (counter-based; no global RNG state).
  std::uint64_t seed = 0x0517ULL;

  bool enabled() const { return max_attempts > 0; }

  /// Effective cap (resolves the <=0 default). Saturates instead of
  /// overflowing when `initial_backoff` is within 8x of the SimTime
  /// ceiling.
  SimTime cap() const;

  /// Un-jittered backoff before retry `attempt` (1-based). Monotone
  /// non-decreasing in `attempt`, clamped to [1, cap()]. The growth is
  /// computed in floating point and explicitly saturated at cap(), so
  /// huge attempt counts (or extreme multipliers) can never overflow
  /// SimTime. Non-positive `attempt` values are clamped to 1: a retry
  /// scheduler with a bookkeeping bug gets the initial backoff, not a
  /// crash in the recovery path.
  SimTime backoff(int attempt) const;

  /// Backoff with deterministic jitter; `key` distinguishes independent
  /// consumers (hash of a flow name, task id, ...). Always within
  /// [backoff*(1-jitter), backoff*(1+jitter)] and at least 1 ms.
  /// `attempt` is clamped like backoff().
  SimTime jittered(int attempt, std::uint64_t key = 0) const;
};

/// Stable 64-bit hash for strings, for RetryPolicy::jittered keys.
std::uint64_t stable_key(const char* s);

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState s);

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker open. 0 disables the
  /// breaker entirely (allow() is always true).
  int failure_threshold = 0;
  /// How long the breaker stays open before admitting half-open probes.
  SimTime open_timeout = 30 * kMinute;
  /// Successful probes required in half-open before closing again.
  int half_open_successes = 1;

  bool enabled() const { return failure_threshold > 0; }
};

/// Classic three-state circuit breaker. All transitions happen inside
/// the three calls below, against the caller-provided virtual `now` —
/// deterministic under the SimClock by construction.
///
///   closed --[threshold consecutive failures]--> open
///   open   --[open_timeout elapsed, via allow()]--> half-open
///   half-open --[half_open_successes successes]--> closed
///   half-open --[any failure]--> open (timer restarts)
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  const CircuitBreakerConfig& config() const { return config_; }

  /// May the protected operation run at `now`? Transitions
  /// open -> half-open when the open timeout has elapsed.
  bool allow(SimTime now);

  void on_success(SimTime now);
  void on_failure(SimTime now);

  BreakerState state() const { return state_; }
  /// When an open breaker will next admit a probe. nullopt unless the
  /// breaker is currently open: a breaker that never tripped (or has
  /// since half-opened/closed) has no reopen time, and the old
  /// `opened_at_ + open_timeout` answer for those states was bogus.
  std::optional<SimTime> reopen_at() const {
    if (state_ != BreakerState::kOpen) return std::nullopt;
    return opened_at_ + config_.open_timeout;
  }

  int consecutive_failures() const { return consecutive_failures_; }
  std::uint64_t times_opened() const { return times_opened_; }

 private:
  void trip(SimTime now);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  SimTime opened_at_ = 0;
  std::uint64_t times_opened_ = 0;
};

}  // namespace osprey::util
