#include "util/csv.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace osprey::util {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OSPREY_REQUIRE(!header_.empty(), "CSV header must not be empty");
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw NotFound("CSV column not found: " + name);
}

bool CsvTable::has_column(const std::string& name) const {
  for (const std::string& h : header_) {
    if (h == name) return true;
  }
  return false;
}

void CsvTable::add_row(std::vector<std::string> row) {
  OSPREY_REQUIRE(row.size() == header_.size(),
                 "CSV row width does not match header");
  rows_.push_back(std::move(row));
}

const std::vector<std::string>& CsvTable::row(std::size_t i) const {
  OSPREY_REQUIRE(i < rows_.size(), "CSV row index out of range");
  return rows_[i];
}

const std::string& CsvTable::cell(std::size_t row,
                                  const std::string& column) const {
  return this->row(row)[column_index(column)];
}

double CsvTable::cell_double(std::size_t row,
                             const std::string& column) const {
  const std::string& s = cell(row, column);
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  OSPREY_REQUIRE(end != s.c_str() && *end == '\0',
                 "CSV cell is not numeric: " + s);
  return v;
}

std::vector<double> CsvTable::column_doubles(const std::string& name) const {
  std::size_t col = column_index(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const std::string& s = rows_[r][col];
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    OSPREY_REQUIRE(end != s.c_str() && *end == '\0',
                   "CSV cell is not numeric: " + s);
    out.push_back(v);
  }
  return out;
}

std::vector<std::string> CsvTable::column_strings(
    const std::string& name) const {
  std::size_t col = column_index(name);
  std::vector<std::string> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[col]);
  return out;
}

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void write_field(const std::string& field, std::ostringstream& out) {
  if (!needs_quoting(field)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

void write_row(const std::vector<std::string>& row, std::ostringstream& out) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ',';
    write_field(row[i], out);
  }
  out << '\n';
}

/// Parse one logical CSV record starting at `pos`; handles quoted fields
/// containing commas/newlines. Returns false at end of input.
bool parse_record(const std::string& text, std::size_t& pos,
                  std::vector<std::string>& fields) {
  fields.clear();
  if (pos >= text.size()) return false;
  std::string cur;
  bool in_quotes = false;
  bool saw_any = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == '"') {
        if (pos + 1 < text.size() && text[pos + 1] == '"') {
          cur += '"';
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        cur += c;
        ++pos;
      }
      continue;
    }
    if (c == '"') {
      OSPREY_REQUIRE(cur.empty(), "quote in the middle of a CSV field");
      in_quotes = true;
      saw_any = true;
      ++pos;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
      saw_any = true;
      ++pos;
    } else if (c == '\n' || c == '\r') {
      // Consume the line terminator (\n, \r, or \r\n).
      ++pos;
      if (c == '\r' && pos < text.size() && text[pos] == '\n') ++pos;
      break;
    } else {
      cur += c;
      saw_any = true;
      ++pos;
    }
  }
  OSPREY_REQUIRE(!in_quotes, "unterminated quoted CSV field");
  if (!saw_any && cur.empty() && fields.empty()) return false;
  fields.push_back(cur);
  return true;
}

}  // namespace

std::string CsvTable::to_string() const {
  std::ostringstream out;
  write_row(header_, out);
  for (const auto& r : rows_) write_row(r, out);
  return out.str();
}

CsvTable CsvTable::parse(const std::string& text) {
  std::size_t pos = 0;
  std::vector<std::string> fields;
  OSPREY_REQUIRE(parse_record(text, pos, fields), "empty CSV document");
  CsvTable table(fields);
  while (parse_record(text, pos, fields)) {
    table.add_row(fields);
  }
  return table;
}

}  // namespace osprey::util
