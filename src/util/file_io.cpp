#include "util/file_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace osprey::util {

void write_text_file(const std::string& path, const std::string& content) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      throw Error("cannot create directory " + p.parent_path().string() +
                  ": " + ec.message());
    }
  }
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  if (!out) throw Error("write failed: " + path);
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace osprey::util
