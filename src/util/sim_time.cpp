#include "util/sim_time.hpp"

#include <cstdio>

namespace osprey::util {

std::string format_sim_time(SimTime t) {
  std::int64_t day = t / kDay;
  std::int64_t rem = t % kDay;
  if (rem < 0) {  // render negative times sanely
    rem += kDay;
    day -= 1;
  }
  int h = static_cast<int>(rem / kHour);
  int m = static_cast<int>((rem % kHour) / kMinute);
  int s = static_cast<int>((rem % kMinute) / kSecond);
  int ms = static_cast<int>(rem % kSecond);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%03lld %02d:%02d:%02d.%03d",
                static_cast<long long>(day), h, m, s, ms);
  return buf;
}

std::string format_duration(SimTime dt) {
  char buf[32];
  double d = static_cast<double>(dt);
  if (dt < kSecond) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(dt));
  } else if (dt < kMinute) {
    std::snprintf(buf, sizeof(buf), "%.1fs", d / kSecond);
  } else if (dt < kHour) {
    std::snprintf(buf, sizeof(buf), "%.1fm", d / kMinute);
  } else if (dt < kDay) {
    std::snprintf(buf, sizeof(buf), "%.1fh", d / kHour);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fd", d / kDay);
  }
  return buf;
}

}  // namespace osprey::util
