#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "util/log.hpp"

namespace osprey::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  n_threads = std::max<std::size_t>(1, n_threads);
  threads_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    threads_.emplace_back([this] {
      while (auto task = queue_.pop()) {
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  if (queue_.try_pop_status(task) != ChannelStatus::kItem) return false;
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk by worker count; an atomic cursor balances uneven chunks.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  std::size_t n_workers = std::min(n, threads_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    futs.push_back(submit([cursor, n, &fn] {
      while (true) {
        std::size_t i = cursor->fetch_add(1);
        if (i >= n) break;
        fn(i);
      }
    }));
  }
  // The caller works the same cursor instead of blocking straight away.
  while (true) {
    std::size_t i = cursor->fetch_add(1);
    if (i >= n) break;
    fn(i);
  }
  // While chunk tasks are still running on workers, keep draining the
  // queue (they may be queued behind unrelated submissions).
  for (auto& f : futs) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!try_run_one()) {
        f.wait();
        break;
      }
    }
    f.get();
  }
}

std::size_t parse_thread_count(const char* env, std::size_t fallback) {
  if (env == nullptr) return fallback;
  const char* p = env;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0') return fallback;  // unset/blank: no override intended
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(p, &end, 10);
  bool overflow = errno == ERANGE;
  while (end != nullptr && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  bool fully_consumed = end != nullptr && *end == '\0' && end != p;
  if (fully_consumed && !overflow && v > 0) {
    return static_cast<std::size_t>(v);
  }
  OSPREY_LOG_WARN("util", "OSPREY_THREADS='" << env
                          << "' is not a positive integer; using 1 thread");
  return 1;
}

ThreadPool& global_pool() {
  static ThreadPool pool(parse_thread_count(
      std::getenv("OSPREY_THREADS"),
      static_cast<std::size_t>(
          std::max(1u, std::thread::hardware_concurrency()))));
  return pool;
}

}  // namespace osprey::util
