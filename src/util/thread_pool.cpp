#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace osprey::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  n_threads = std::max<std::size_t>(1, n_threads);
  threads_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    threads_.emplace_back([this] {
      while (auto task = queue_.pop()) {
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  queue_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk by worker count; an atomic cursor balances uneven chunks.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  std::size_t n_workers = std::min(n, threads_.size());
  std::vector<std::future<void>> futs;
  futs.reserve(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    futs.push_back(submit([cursor, n, &fn] {
      while (true) {
        std::size_t i = cursor->fetch_add(1);
        if (i >= n) break;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

}  // namespace osprey::util
