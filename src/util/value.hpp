#pragma once

/// \file value.hpp
/// A small JSON-like dynamic value. Used as the lingua franca for task
/// payloads (EMEWS), compute-function arguments/results (fabric) and
/// metadata records (AERO) — the role JSON plays in the real systems.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace osprey::util {

class Value;

using ValueArray = std::vector<Value>;
/// Objects keep keys ordered (std::map) so serialization is deterministic.
using ValueObject = std::map<std::string, Value>;

/// Dynamic JSON-like value: null, bool, int64, double, string, array, object.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) : data_(i) {}
  Value(std::size_t i) : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(ValueArray a) : data_(std::move(a)) {}
  Value(ValueObject o) : data_(std::move(o)) {}

  /// Convenience: build an array from a vector of doubles.
  static Value from_doubles(const std::vector<double>& xs);
  /// Convenience: extract a vector of doubles from an array of numbers.
  std::vector<double> to_doubles() const;

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  /// True for either int or double.
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<ValueArray>(data_); }
  bool is_object() const { return std::holds_alternative<ValueObject>(data_); }

  bool as_bool() const;
  std::int64_t as_int() const;
  /// Numeric coercion: returns the value of an int or double node.
  double as_double() const;
  const std::string& as_string() const;
  const ValueArray& as_array() const;
  ValueArray& as_array();
  const ValueObject& as_object() const;
  ValueObject& as_object();

  /// Object member access; throws NotFound for a missing key on const access.
  const Value& at(const std::string& key) const;
  /// Object member access; inserts null for a missing key (like std::map).
  Value& operator[](const std::string& key);
  bool contains(const std::string& key) const;

  /// Array element access with bounds checking.
  const Value& at(std::size_t index) const;
  std::size_t size() const;

  /// Member with a default when the key is absent.
  double get_or(const std::string& key, double fallback) const;
  std::int64_t get_or(const std::string& key, std::int64_t fallback) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;

  /// Compact JSON serialization (deterministic key order).
  std::string to_json() const;
  /// Parse JSON text; throws InvalidArgument on malformed input.
  static Value parse_json(const std::string& text);

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               ValueArray, ValueObject>
      data_;
};

}  // namespace osprey::util
