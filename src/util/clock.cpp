#include "util/clock.hpp"

#include <chrono>

namespace osprey::util {

namespace {

/// Real steady-clock implementation behind the Clock interface.
class RealClock final : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

const Clock& real_clock() {
  static const RealClock clock;
  return clock;
}

}  // namespace osprey::util
