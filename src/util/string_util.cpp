#include "util/string_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace osprey::util {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 const std::string& delim) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += delim;
    out += pieces[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\n' ||
          s[begin] == '\r')) {
    ++begin;
  }
  while (end > begin &&
         (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\n' ||
          s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace osprey::util
