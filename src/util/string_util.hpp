#pragma once

/// \file string_util.hpp
/// Small string helpers shared across modules.

#include <string>
#include <vector>

namespace osprey::util {

/// Split `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(const std::string& s, char delim);

/// Join pieces with `delim`.
std::string join(const std::vector<std::string>& pieces,
                 const std::string& delim);

/// Strip leading/trailing ASCII whitespace.
std::string trim(const std::string& s);

/// True when `s` begins with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace osprey::util
