#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace osprey::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OSPREY_REQUIRE(!header_.empty(), "table header must not be empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  OSPREY_REQUIRE(row.size() == header_.size(),
                 "table row width does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string banner(const std::string& title) {
  std::string line(title.size() + 8, '=');
  return line + "\n==  " + title + "  ==\n" + line + "\n";
}

}  // namespace osprey::util
