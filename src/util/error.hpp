#pragma once

/// \file error.hpp
/// Error types and check macros used across all OSPREY modules.

#include <stdexcept>
#include <string>

namespace osprey::util {

/// Base class for all errors raised by the OSPREY libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated an API precondition (bad argument, wrong state).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A referenced entity (file, data object, task, endpoint, ...) is missing.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// An authorization check failed (missing/invalid token or scope).
class AuthError : public Error {
 public:
  explicit AuthError(const std::string& what) : Error(what) {}
};

/// Data failed an integrity check (checksum mismatch, malformed payload).
class IntegrityError : public Error {
 public:
  explicit IntegrityError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or met a singular system.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

}  // namespace osprey::util

/// Precondition check: throws InvalidArgument when `cond` is false.
#define OSPREY_REQUIRE(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::osprey::util::InvalidArgument(std::string(__func__) +  \
                                            ": " + (msg));           \
    }                                                                 \
  } while (0)

/// Internal invariant check: throws Error when `cond` is false.
#define OSPREY_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      throw ::osprey::util::Error(std::string(__func__) + ": " +     \
                                  (msg));                             \
    }                                                                 \
  } while (0)
