#pragma once

/// \file clock.hpp
/// Injectable wall-clock abstraction. The EMEWS layer stamps task
/// lifecycle events (submitted/started/completed) and worker busy time;
/// for replayable simulated runs those stamps must come from a
/// controllable clock, not the machine's. Components therefore take a
/// `const Clock*` (defaulting to the process-wide real clock) and never
/// name std::chrono clocks directly — the osprey_lint `wall-clock` rule
/// enforces this for the fabric/EMEWS/AERO layers.

#include <atomic>
#include <cstdint>

#include "util/sim_time.hpp"

namespace osprey::util {

/// Monotonic nanosecond clock interface. Implementations must be
/// thread-safe: now_ns() is called concurrently without external
/// locking.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Nanoseconds since an arbitrary fixed epoch; never decreases.
  virtual std::uint64_t now_ns() const = 0;
};

/// The process-wide real (steady) clock. This is the ONLY place the
/// repository reads machine time for the orchestration layers.
const Clock& real_clock();

/// Manually-advanced clock for simulated and deterministic test runs.
/// Starts at 0; advance explicitly (or mirror the discrete-event
/// fabric's virtual time via set_sim_time). Thread-safe.
class SimClock final : public Clock {
 public:
  std::uint64_t now_ns() const override {
    return ns_.load(std::memory_order_acquire);
  }

  void set_ns(std::uint64_t ns) { ns_.store(ns, std::memory_order_release); }

  void advance_ns(std::uint64_t dt) {
    ns_.fetch_add(dt, std::memory_order_acq_rel);
  }

  /// Mirror the fabric's virtual time (SimTime is integral milliseconds).
  void set_sim_time(SimTime t) {
    set_ns(static_cast<std::uint64_t>(t) * 1'000'000ull);
  }

 private:
  std::atomic<std::uint64_t> ns_{0};
};

}  // namespace osprey::util
