#include "util/durable_fs.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"
#include "util/file_io.hpp"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace osprey::util {

// --- MemFs -----------------------------------------------------------

void MemFs::write(const std::string& path, const std::string& bytes) {
  files_[path] = bytes;
}

void MemFs::append(const std::string& path, const std::string& bytes) {
  files_[path] += bytes;
}

std::optional<std::string> MemFs::read(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> MemFs::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, bytes] : files_) {
    (void)bytes;
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;  // std::map keys are already sorted
}

void MemFs::remove(const std::string& path) { files_.erase(path); }

void MemFs::truncate_tail(const std::string& path, std::size_t n) {
  auto it = files_.find(path);
  if (it == files_.end()) return;
  std::string& bytes = it->second;
  bytes.resize(bytes.size() >= n ? bytes.size() - n : 0);
}

void MemFs::flip_byte(const std::string& path, std::size_t offset,
                      unsigned char mask) {
  auto it = files_.find(path);
  if (it == files_.end() || offset >= it->second.size()) return;
  it->second[offset] = static_cast<char>(
      static_cast<unsigned char>(it->second[offset]) ^ mask);
}

// --- RealFs ----------------------------------------------------------

RealFs::RealFs(std::string root) : root_(std::move(root)) {
  OSPREY_REQUIRE(!root_.empty(), "RealFs needs a root directory");
  std::error_code ec;
  std::filesystem::create_directories(root_, ec);
  if (ec) {
    throw Error("cannot create RealFs root " + root_ + ": " + ec.message());
  }
}

std::string RealFs::full(const std::string& path) const {
  return root_ + "/" + path;
}

void RealFs::write(const std::string& path, const std::string& bytes) {
  // Write to a sibling temp file, then rename over the target: POSIX
  // rename is atomic, so a crash leaves old content or new, never half.
  const std::string target = full(path);
  const std::string tmp = target + ".tmp";
  write_text_file(tmp, bytes);
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) throw Error("atomic replace failed for " + target + ": " + ec.message());
  dirty_.push_back(target);
}

void RealFs::append(const std::string& path, const std::string& bytes) {
  std::filesystem::path p(full(path));
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      throw Error("cannot create directory " + p.parent_path().string() +
                  ": " + ec.message());
    }
  }
  std::ofstream out(p, std::ios::binary | std::ios::app);
  if (!out) throw Error("cannot open for append: " + p.string());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("append failed: " + p.string());
  dirty_.push_back(p.string());
}

std::optional<std::string> RealFs::read(const std::string& path) const {
  return read_text_file(full(path));
}

std::vector<std::string> RealFs::list(const std::string& prefix) const {
  // The prefix's directory part selects the directory to scan; the
  // remainder filters file names. Good enough for the WAL's flat
  // "<dir>/<kind>-<lsn>" layout.
  std::string dir = root_;
  std::string name_prefix = prefix;
  std::size_t slash = prefix.rfind('/');
  if (slash != std::string::npos) {
    dir = root_ + "/" + prefix.substr(0, slash);
    name_prefix = prefix.substr(slash + 1);
  }
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return out;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.compare(0, name_prefix.size(), name_prefix) != 0) continue;
    out.push_back(slash == std::string::npos
                      ? name
                      : prefix.substr(0, slash + 1) + name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RealFs::remove(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(full(path), ec);
}

void RealFs::sync() {
  ++syncs_;
#ifdef __unix__
  std::sort(dirty_.begin(), dirty_.end());
  dirty_.erase(std::unique(dirty_.begin(), dirty_.end()), dirty_.end());
  for (const std::string& path : dirty_) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
  }
  int fd = ::open(root_.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#endif
  dirty_.clear();
}

}  // namespace osprey::util
