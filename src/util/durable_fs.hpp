#pragma once

/// \file durable_fs.hpp
/// The durable-storage boundary for crash recovery. Anything that must
/// survive a process crash (the AERO metadata WAL and its checkpoints)
/// is written through this interface instead of straight to disk, so
/// tests can crash a "process" by destroying every volatile object
/// while the MemFs — playing the role of the disk — survives untouched.
///
/// Semantics every implementation provides:
///   write   atomic whole-file replace (a reader never observes a
///           half-written file; a crash leaves either the old or the
///           new content)
///   append  ordered append to the end of a file, creating it when
///           missing (a crash may leave a torn tail — recovery is
///           expected to discard it)
///   sync    durability barrier: everything written/appended before the
///           call has reached stable storage when it returns
///
/// Paths are forward-slash relative names ("aero-wal/wal-000000000000");
/// list() returns them sorted so directory iteration order can never
/// leak platform nondeterminism into recovery.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace osprey::util {

class DurableFs {
 public:
  virtual ~DurableFs() = default;

  virtual void write(const std::string& path, const std::string& bytes) = 0;
  virtual void append(const std::string& path, const std::string& bytes) = 0;
  /// Whole-file content; nullopt when the file does not exist.
  virtual std::optional<std::string> read(const std::string& path) const = 0;
  /// All paths starting with `prefix`, sorted ascending.
  virtual std::vector<std::string> list(const std::string& prefix) const = 0;
  /// Delete a file (no-op when absent).
  virtual void remove(const std::string& path) = 0;
  virtual void sync() = 0;

  std::uint64_t sync_count() const { return syncs_; }

 protected:
  std::uint64_t syncs_ = 0;
};

/// In-memory implementation: the "disk" of the crash-replay harness.
/// Outlives the platform being crashed; also exposes raw mutation
/// helpers so fuzz tests can tear and bit-flip recorded logs.
class MemFs : public DurableFs {
 public:
  void write(const std::string& path, const std::string& bytes) override;
  void append(const std::string& path, const std::string& bytes) override;
  std::optional<std::string> read(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& path) override;
  void sync() override { ++syncs_; }

  // --- fault-injection helpers (tests only) --------------------------
  /// Drop the last `n` bytes of `path` — a torn tail, as a crash
  /// mid-append would leave. No-op when the file is absent.
  void truncate_tail(const std::string& path, std::size_t n);
  /// XOR one byte of `path` with `mask` (corruption in place).
  void flip_byte(const std::string& path, std::size_t offset,
                 unsigned char mask = 0x01);

  std::size_t file_count() const { return files_.size(); }

 private:
  std::map<std::string, std::string> files_;
};

/// On-disk implementation rooted at a directory; used by the benches so
/// WAL overhead includes real file IO. write() goes through a rename so
/// replacement is atomic on POSIX; sync() fsyncs every file written or
/// appended since the last barrier, then the root directory.
class RealFs : public DurableFs {
 public:
  explicit RealFs(std::string root);

  void write(const std::string& path, const std::string& bytes) override;
  void append(const std::string& path, const std::string& bytes) override;
  std::optional<std::string> read(const std::string& path) const override;
  std::vector<std::string> list(const std::string& prefix) const override;
  void remove(const std::string& path) override;
  void sync() override;

  const std::string& root() const { return root_; }

 private:
  std::string full(const std::string& path) const;
  std::string root_;
  std::vector<std::string> dirty_;  // full paths pending an fsync
};

}  // namespace osprey::util
