#include "epi/abm.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::epi {

using osprey::num::RngStream;

namespace {

enum class State : std::uint8_t {
  kS, kV, kE, kIa, kIp, kIs, kH, kR, kD
};

inline double hazard_to_prob(double rate) {
  return rate <= 0.0 ? 0.0 : 1.0 - std::exp(-rate);
}

}  // namespace

AgentBasedModel::AgentBasedModel(AbmConfig config)
    : config_(std::move(config)) {
  OSPREY_REQUIRE(config_.n_agents > 0, "need at least one agent");
  OSPREY_REQUIRE(config_.initial_infections >= 0 &&
                     config_.initial_infections <= config_.n_agents,
                 "initial infections out of range");
  OSPREY_REQUIRE(config_.days >= 0, "negative horizon");
  OSPREY_REQUIRE(config_.contacts_per_day > 0, "contacts must be positive");
  OSPREY_REQUIRE(config_.vax_rate_per_day >= 0, "negative vaccination rate");
}

MetaRvmTrajectory AgentBasedModel::run(const MetaRvmParams& params,
                                       RngStream& rng) const {
  params.validate();
  const std::int64_t n = config_.n_agents;
  const int days = config_.days;

  std::vector<State> state(static_cast<std::size_t>(n), State::kS);
  for (std::int64_t i = 0; i < config_.initial_infections; ++i) {
    state[static_cast<std::size_t>(i)] = State::kIp;  // seeds, as in MetaRVM
  }

  // Per-contact transmission probability: matches the metapopulation
  // force of infection ts * I_eff / N in the mean field.
  const double beta_contact = params.ts / config_.contacts_per_day;
  const double vax_protection =
      params.ts > 0.0
          ? (params.tv * (1.0 - params.ve)) / params.ts
          : 0.0;  // per-contact multiplier for vaccinated targets

  const double p_leave_e = hazard_to_prob(1.0 / params.de);
  const double p_leave_ia = hazard_to_prob(1.0 / params.da);
  const double p_leave_ip = hazard_to_prob(1.0 / params.dp);
  const double p_leave_is = hazard_to_prob(1.0 / params.ds);
  const double p_leave_h = hazard_to_prob(1.0 / params.dh);
  const double p_wane_v = hazard_to_prob(1.0 / params.dv);
  const double p_wane_r =
      params.dr > 0.0 ? hazard_to_prob(1.0 / params.dr) : 0.0;
  const double p_vax = hazard_to_prob(config_.vax_rate_per_day);

  MetaRvmTrajectory traj;
  traj.days = days;
  traj.groups.resize(1);
  GroupTrajectory& gt = traj.groups[0];
  gt.name = "abm";
  gt.new_infections.assign(static_cast<std::size_t>(days), 0);
  gt.new_hospitalizations.assign(static_cast<std::size_t>(days), 0);
  gt.new_deaths.assign(static_cast<std::size_t>(days), 0);

  auto census = [&] {
    Compartments c;
    for (State s : state) {
      switch (s) {
        case State::kS: ++c.s; break;
        case State::kV: ++c.v; break;
        case State::kE: ++c.e; break;
        case State::kIa: ++c.ia; break;
        case State::kIp: ++c.ip; break;
        case State::kIs: ++c.is; break;
        case State::kH: ++c.h; break;
        case State::kR: ++c.r; break;
        case State::kD: ++c.d; break;
      }
    }
    return c;
  };
  gt.daily.reserve(static_cast<std::size_t>(days) + 1);
  gt.daily.push_back(census());

  std::vector<std::size_t> infectious;
  std::vector<std::uint8_t> newly_exposed(static_cast<std::size_t>(n), 0);

  for (int day = 0; day < days; ++day) {
    // --- transmission: each infectious agent meets random others ------
    infectious.clear();
    for (std::size_t i = 0; i < state.size(); ++i) {
      State s = state[i];
      if (s == State::kIa || s == State::kIp || s == State::kIs) {
        infectious.push_back(i);
      }
    }
    std::fill(newly_exposed.begin(), newly_exposed.end(), 0);
    std::int64_t infections_today = 0;
    for (std::size_t src : infectious) {
      double weight = 1.0;
      if (state[src] == State::kIa) weight = params.rel_inf_asymp;
      if (state[src] == State::kIp) weight = params.rel_inf_presymp;
      std::int64_t contacts = rng.poisson(config_.contacts_per_day);
      for (std::int64_t c = 0; c < contacts; ++c) {
        std::size_t dst = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::uint64_t>(n)));
        if (dst == src || newly_exposed[dst]) continue;
        double p = 0.0;
        if (state[dst] == State::kS) {
          p = beta_contact * weight;
        } else if (state[dst] == State::kV) {
          p = beta_contact * weight * vax_protection;
        } else {
          continue;
        }
        if (rng.uniform() < p) {
          newly_exposed[dst] = 1;
          ++infections_today;
        }
      }
    }

    // --- per-agent state progression (memoryless sojourns) -----------
    std::int64_t hospitalizations_today = 0;
    std::int64_t deaths_today = 0;
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (newly_exposed[i]) continue;  // applied after progression below
      switch (state[i]) {
        case State::kS:
          if (p_vax > 0.0 && rng.uniform() < p_vax) state[i] = State::kV;
          break;
        case State::kV:
          if (p_wane_v > 0.0 && rng.uniform() < p_wane_v) {
            state[i] = State::kS;
          }
          break;
        case State::kE:
          if (rng.uniform() < p_leave_e) {
            state[i] = rng.uniform() < params.pea ? State::kIa : State::kIp;
          }
          break;
        case State::kIa:
          if (rng.uniform() < p_leave_ia) state[i] = State::kR;
          break;
        case State::kIp:
          if (rng.uniform() < p_leave_ip) state[i] = State::kIs;
          break;
        case State::kIs:
          if (rng.uniform() < p_leave_is) {
            if (rng.uniform() < params.psh) {
              state[i] = State::kH;
              ++hospitalizations_today;
            } else {
              state[i] = State::kR;
            }
          }
          break;
        case State::kH:
          if (rng.uniform() < p_leave_h) {
            if (rng.uniform() < params.phd) {
              state[i] = State::kD;
              ++deaths_today;
            } else {
              state[i] = State::kR;
            }
          }
          break;
        case State::kR:
          if (p_wane_r > 0.0 && rng.uniform() < p_wane_r) {
            state[i] = State::kS;
          }
          break;
        case State::kD:
          break;
      }
    }
    // Exposures land after progression (an agent infected today starts
    // its latent period tomorrow), matching the chain-binomial ordering.
    for (std::size_t i = 0; i < state.size(); ++i) {
      if (newly_exposed[i]) state[i] = State::kE;
    }

    gt.new_infections[static_cast<std::size_t>(day)] = infections_today;
    gt.new_hospitalizations[static_cast<std::size_t>(day)] =
        hospitalizations_today;
    gt.new_deaths[static_cast<std::size_t>(day)] = deaths_today;
    gt.daily.push_back(census());
    OSPREY_CHECK(gt.daily.back().total() == n,
                 "agent count not conserved");
  }
  return traj;
}

double AgentBasedModel::hospitalization_qoi(const MetaRvmParams& params,
                                            std::uint64_t seed,
                                            std::uint64_t replicate) const {
  RngStream root(seed);
  RngStream stream = root.substream(replicate);
  MetaRvmTrajectory traj = run(params, stream);
  return static_cast<double>(traj.total_hospitalizations());
}

}  // namespace osprey::epi
