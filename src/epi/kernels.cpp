#include "epi/kernels.hpp"

#include <cmath>

#include "num/special.hpp"
#include "util/error.hpp"

namespace osprey::epi {

std::vector<double> discretized_gamma(double mean, double sd, int max_days) {
  OSPREY_REQUIRE(mean > 0 && sd > 0, "gamma mean/sd must be positive");
  OSPREY_REQUIRE(max_days >= 1, "max_days must be >= 1");
  double shape = (mean / sd) * (mean / sd);
  double scale = sd * sd / mean;
  std::vector<double> w(static_cast<std::size_t>(max_days));
  double prev_cdf = 0.0;
  for (int s = 1; s <= max_days; ++s) {
    double cdf = osprey::num::gamma_p(shape, static_cast<double>(s) / scale);
    w[static_cast<std::size_t>(s - 1)] = cdf - prev_cdf;
    prev_cdf = cdf;
  }
  double total = 0.0;
  for (double x : w) total += x;
  OSPREY_CHECK(total > 0.0, "degenerate discretized gamma");
  for (double& x : w) x /= total;
  return w;
}

std::vector<double> default_generation_interval() {
  return discretized_gamma(5.2, 1.9, 14);
}

std::vector<double> default_shedding_kernel() {
  // Peak shedding ~5 days post infection, long right tail out to 3 weeks.
  return discretized_gamma(6.7, 4.0, 21);
}

double renewal_pressure(const std::vector<double>& incidence, std::size_t t,
                        const std::vector<double>& w) {
  double sum = 0.0;
  for (std::size_t s = 1; s <= w.size(); ++s) {
    if (s > t) break;
    sum += w[s - 1] * incidence[t - s];
  }
  return sum;
}

}  // namespace osprey::epi
