#include "epi/seir.hpp"

#include "util/error.hpp"

namespace osprey::epi {

namespace {

struct Derivative {
  double ds, de_, di, dr;
};

Derivative rhs(const SeirParams& p, const SeirState& y) {
  double n = y.n();
  double foi = n > 0.0 ? p.beta * y.i / n : 0.0;
  Derivative d;
  d.ds = -foi * y.s;
  d.de_ = foi * y.s - y.e / p.de;
  d.di = y.e / p.de - y.i / p.di;
  d.dr = y.i / p.di;
  return d;
}

SeirState add_scaled(const SeirState& y, const Derivative& d, double h) {
  SeirState out;
  out.s = y.s + h * d.ds;
  out.e = y.e + h * d.de_;
  out.i = y.i + h * d.di;
  out.r = y.r + h * d.dr;
  return out;
}

}  // namespace

SeirTrajectory run_seir(const SeirParams& params, const SeirState& initial,
                        int days, int steps_per_day) {
  OSPREY_REQUIRE(days >= 0, "negative horizon");
  OSPREY_REQUIRE(steps_per_day >= 1, "steps_per_day must be >= 1");
  OSPREY_REQUIRE(params.de > 0 && params.di > 0, "durations must be positive");

  SeirTrajectory traj;
  traj.states.reserve(static_cast<std::size_t>(days) + 1);
  traj.incidence.reserve(static_cast<std::size_t>(days));
  traj.states.push_back(initial);

  SeirState y = initial;
  double h = 1.0 / steps_per_day;
  for (int day = 0; day < days; ++day) {
    double s_begin = y.s;
    for (int k = 0; k < steps_per_day; ++k) {
      Derivative k1 = rhs(params, y);
      Derivative k2 = rhs(params, add_scaled(y, k1, h / 2.0));
      Derivative k3 = rhs(params, add_scaled(y, k2, h / 2.0));
      Derivative k4 = rhs(params, add_scaled(y, k3, h));
      y.s += h / 6.0 * (k1.ds + 2.0 * k2.ds + 2.0 * k3.ds + k4.ds);
      y.e += h / 6.0 * (k1.de_ + 2.0 * k2.de_ + 2.0 * k3.de_ + k4.de_);
      y.i += h / 6.0 * (k1.di + 2.0 * k2.di + 2.0 * k3.di + k4.di);
      y.r += h / 6.0 * (k1.dr + 2.0 * k2.dr + 2.0 * k3.dr + k4.dr);
    }
    traj.states.push_back(y);
    traj.incidence.push_back(s_begin - y.s);  // susceptible depletion
  }
  return traj;
}

}  // namespace osprey::epi
