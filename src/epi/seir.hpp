#pragma once

/// \file seir.hpp
/// Deterministic SEIR reference model — the "widely used compartmental
/// framework" MetaRVM extends (§3.1.1). Used as a sanity baseline in
/// tests (the stochastic model's mean should track it) and in the
/// quickstart example.

#include <vector>

namespace osprey::epi {

struct SeirParams {
  double beta = 0.35;   // transmission rate (per day)
  double de = 3.0;      // mean latent duration (days); sigma = 1/de
  double di = 5.0;      // mean infectious duration (days); gamma = 1/di

  double r0() const { return beta * di; }
};

struct SeirState {
  double s = 0.0, e = 0.0, i = 0.0, r = 0.0;
  double n() const { return s + e + i + r; }
};

struct SeirTrajectory {
  std::vector<SeirState> states;    // one per day, index 0 = initial
  std::vector<double> incidence;    // new infections per day
};

/// Integrate the SEIR ODEs with RK4 at `steps_per_day` sub-steps.
SeirTrajectory run_seir(const SeirParams& params, const SeirState& initial,
                        int days, int steps_per_day = 4);

}  // namespace osprey::epi
