#include "epi/wastewater.hpp"

#include <cmath>
#include <sstream>

#include "epi/kernels.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace osprey::epi {

std::vector<Plant> chicago_plants() {
  // Approximate public service-population figures; these set the
  // population weights of the ensemble aggregation (Figure 2, bottom).
  return {
      Plant{"O'Brien", 1'300'000, 230.0},
      Plant{"Calumet", 1'100'000, 280.0},
      Plant{"Stickney South", 1'150'000, 350.0},
      Plant{"Stickney North", 1'200'000, 350.0},
  };
}

std::vector<RtTruthParams> chicago_truths() {
  std::vector<RtTruthParams> out(4);
  out[0] = RtTruthParams{0.06, 0.32, 0.0, 140.0, -0.0020};
  out[1] = RtTruthParams{0.02, 0.38, 18.0, 140.0, -0.0015};
  out[2] = RtTruthParams{0.08, 0.30, 35.0, 140.0, -0.0025};
  out[3] = RtTruthParams{0.04, 0.34, 52.0, 140.0, -0.0018};
  return out;
}

WastewaterGenerator::WastewaterGenerator(Plant plant, RtTruthParams truth,
                                         WastewaterConfig config,
                                         std::uint64_t seed)
    : plant_(std::move(plant)), truth_(truth), config_(std::move(config)) {
  OSPREY_REQUIRE(config_.days > 0, "horizon must be positive");
  OSPREY_REQUIRE(config_.noise_sigma >= 0, "negative noise");
  OSPREY_REQUIRE(config_.publish_period_days >= 1, "bad publish period");
  generate(seed);
}

void WastewaterGenerator::generate(std::uint64_t seed) {
  osprey::num::RngStream rng(seed);
  const int days = config_.days;
  const std::vector<double> w = default_generation_interval();
  const std::vector<double> shed = default_shedding_kernel();

  true_rt_.resize(static_cast<std::size_t>(days));
  for (int t = 0; t < days; ++t) {
    double log_rt = truth_.level +
                    truth_.amp * std::sin(2.0 * M_PI *
                                          (static_cast<double>(t) +
                                           truth_.phase_days) /
                                          truth_.period_days) +
                    truth_.trend_per_day * static_cast<double>(t);
    true_rt_[static_cast<std::size_t>(t)] = std::exp(log_rt);
  }

  // Renewal process with a burn-in ramp of seed infections. Incidence
  // history longer than the generation interval is kept so day 0 already
  // has infection pressure behind it.
  const int burnin = static_cast<int>(w.size());
  std::vector<double> inc(static_cast<std::size_t>(burnin + days), 0.0);
  for (int t = 0; t < burnin; ++t) {
    inc[static_cast<std::size_t>(t)] =
        std::max(1.0, static_cast<double>(
                          rng.poisson(config_.initial_incidence)));
  }
  for (int t = 0; t < days; ++t) {
    std::size_t idx = static_cast<std::size_t>(burnin + t);
    double pressure = renewal_pressure(inc, idx, w);
    double mean = true_rt_[static_cast<std::size_t>(t)] * pressure;
    inc[idx] = static_cast<double>(rng.poisson(std::max(mean, 0.0)));
  }
  incidence_.assign(inc.begin() + burnin, inc.end());

  // Reported cases: binomial thinning of incidence (for the Cori
  // baseline comparison).
  cases_.resize(static_cast<std::size_t>(days));
  for (int t = 0; t < days; ++t) {
    std::size_t i = static_cast<std::size_t>(t);
    cases_[i] = static_cast<double>(
        rng.binomial(static_cast<std::int64_t>(incidence_[i]),
                     config_.reporting_fraction));
  }

  // Latent concentration: shedding convolution over incidence (with the
  // burn-in history contributing) normalized by plant flow.
  latent_conc_.resize(static_cast<std::size_t>(days));
  for (int t = 0; t < days; ++t) {
    double load = 0.0;
    for (std::size_t s = 0; s < shed.size(); ++s) {
      int src = burnin + t - static_cast<int>(s);
      if (src < 0) break;
      load += shed[s] * inc[static_cast<std::size_t>(src)];
    }
    latent_conc_[static_cast<std::size_t>(t)] =
        config_.shedding_scale * load /
        (plant_.avg_flow_mgd * 3.785e6);  // MGD -> liters/day
  }

  // Sampling schedule: configured weekdays, lognormal noise.
  for (int t = 0; t < days; ++t) {
    int weekday = t % 7;
    bool sampled = false;
    for (int d : config_.sample_weekdays) {
      if (weekday == d) {
        sampled = true;
        break;
      }
    }
    if (!sampled) continue;
    double noise = rng.lognormal(-0.5 * config_.noise_sigma *
                                     config_.noise_sigma,
                                 config_.noise_sigma);  // mean-1 noise
    samples_.push_back(WwSample{
        t, latent_conc_[static_cast<std::size_t>(t)] * noise});
  }
}

std::vector<WwSample> WastewaterGenerator::samples_through(int day) const {
  std::vector<WwSample> out;
  for (const WwSample& s : samples_) {
    if (s.day <= day) out.push_back(s);
  }
  return out;
}

int WastewaterGenerator::last_publication_day(int day) const {
  if (day < 0) return -1;
  return (day / config_.publish_period_days) * config_.publish_period_days;
}

std::string WastewaterGenerator::published_csv(int day) const {
  int pub_day = last_publication_day(day);
  osprey::util::CsvTable table({"day", "plant", "concentration_gc_per_l"});
  if (pub_day >= 0) {
    for (const WwSample& s : samples_) {
      if (s.day > pub_day) break;
      table.add_row({std::to_string(s.day), plant_.name,
                     osprey::util::format("%.6g", s.concentration)});
    }
  }
  return table.to_string();
}

}  // namespace osprey::epi
