#pragma once

/// \file kernels.hpp
/// Discretized epidemiological kernels: the generation-interval
/// distribution of the renewal equation and the per-infection fecal
/// shedding-load curve that links incidence to wastewater pathogen
/// concentration. Shared by the synthetic data generator and the
/// Goldstein-style R(t) estimator.

#include <vector>

namespace osprey::epi {

/// Discretize a Gamma(mean, sd) density onto days 1..max_days and
/// normalize to sum 1. Day s holds the probability mass of [s-1, s).
std::vector<double> discretized_gamma(double mean, double sd, int max_days);

/// COVID-like generation interval: Gamma(mean 5.2 d, sd 1.9 d), 14 days.
std::vector<double> default_generation_interval();

/// Per-infection shedding-load curve over ~3 weeks: gamma-shaped rise
/// and decay (peak around day 5 post-infection), normalized to sum 1.
std::vector<double> default_shedding_kernel();

/// Renewal-equation convolution term: sum_s w[s-1] * incidence[t-s]
/// (the infection pressure Lambda(t)). `t` indexes incidence days.
double renewal_pressure(const std::vector<double>& incidence, std::size_t t,
                        const std::vector<double>& w);

}  // namespace osprey::epi
