#pragma once

/// \file metarvm.hpp
/// MetaRVM: the stochastic metapopulation compartmental model of
/// Fadikar et al. used in the paper's SDE use case (§3.1.1, Figure 3).
///
/// Compartments (per demographic group):
///   S  susceptible          V  vaccinated
///   E  exposed (latent)     Ia asymptomatic infectious
///   Ip presymptomatic       Is symptomatic infectious
///   H  hospitalized         R  recovered
///   D  dead
///
/// Transitions follow the paper's description: S/V are exposed at rates
/// driven by ts/tv; vaccine immunity (ve) reduces the vaccinated force
/// of infection and wanes at 1/dv; E splits pea : (1-pea) into Ia : Ip
/// after de days; Ia recovers after da; Ip becomes Is after dp; Is
/// recovers or is hospitalized (probability psh = 1 - psr) after ds; H
/// resolves after dh with death probability phd; R returns to S after
/// dr when reinfection is enabled. Heterogeneous mixing across groups
/// uses a contact matrix.
///
/// Dynamics are a chain-binomial: each day, each outflow is a binomial
/// draw with probability 1 - exp(-rate). All randomness comes from the
/// caller's RngStream, so "each replicate generated using a unique
/// random stream seed value" is a substream choice.

#include <cstdint>
#include <string>
#include <vector>

#include "num/rng.hpp"
#include "num/vecmat.hpp"

namespace osprey::epi {

/// Model parameters (Figure 3 of the paper). Durations are in days,
/// proportions in [0, 1].
struct MetaRvmParams {
  double ts = 0.30;    // transmission rate, susceptible
  double tv = 0.10;    // transmission rate, vaccinated
  double ve = 0.50;    // vaccine efficacy (extra FOI reduction for V)
  double dv = 180.0;   // mean days of vaccine-conferred immunity
  double de = 3.0;     // mean latent days
  double pea = 0.60;   // proportion of exposed becoming asymptomatic
  double da = 5.0;     // mean asymptomatic infectious days
  double dp = 2.0;     // mean presymptomatic days
  double ds = 5.0;     // mean symptomatic days
  double psh = 0.20;   // proportion of symptomatic hospitalized (1 - psr)
  double dh = 7.0;     // mean hospitalized days
  double phd = 0.10;   // probability of death in hospital
  double dr = 0.0;     // mean immune days before reinfection; 0 = permanent
  double rel_inf_asymp = 0.6;    // relative infectiousness of Ia
  double rel_inf_presymp = 1.0;  // relative infectiousness of Ip

  /// Nominal values used when a parameter is not swept (GSA setup §3.1.2
  /// fixes "the remaining parameters at nominal values").
  static MetaRvmParams nominal() { return MetaRvmParams{}; }

  /// Throws InvalidArgument when a value is outside its domain.
  void validate() const;
};

/// One demographic subgroup of the metapopulation.
struct Group {
  std::string name;
  std::int64_t population = 0;
  std::int64_t initial_infections = 0;
  double vax_rate_per_day = 0.0;  // S -> V hazard per day
};

/// Full model configuration.
struct MetaRvmConfig {
  std::vector<Group> groups;
  /// contact(i, j): relative rate at which group i contacts group j.
  /// Empty = homogeneous mixing (all ones).
  osprey::num::Matrix contact;
  int days = 90;

  /// Single well-mixed population convenience.
  static MetaRvmConfig single_group(std::int64_t population,
                                    std::int64_t initial_infections,
                                    int days = 90);
  /// A stratified demo population (children/adults/seniors) with an
  /// assortative contact matrix and age-dependent vaccination.
  static MetaRvmConfig stratified_demo(std::int64_t total_population,
                                       int days = 90);
};

/// Integer compartment occupancy of one group.
struct Compartments {
  std::int64_t s = 0, v = 0, e = 0, ia = 0, ip = 0, is = 0, h = 0, r = 0,
               d = 0;
  std::int64_t total() const { return s + v + e + ia + ip + is + h + r + d; }
};

/// Per-group daily series.
struct GroupTrajectory {
  std::string name;
  std::vector<Compartments> daily;          // index 0 = initial state
  std::vector<std::int64_t> new_infections; // per day
  std::vector<std::int64_t> new_hospitalizations;
  std::vector<std::int64_t> new_deaths;
};

/// Output of a run.
struct MetaRvmTrajectory {
  std::vector<GroupTrajectory> groups;
  int days = 0;

  /// Sum across groups of new hospital admissions per day.
  std::vector<std::int64_t> total_new_hospitalizations() const;
  /// The paper's GSA quantity of interest: "the total number of
  /// hospitalizations at the end of the simulation period".
  std::int64_t total_hospitalizations() const;
  std::int64_t total_deaths() const;
  std::int64_t total_infections() const;
};

/// The simulator. Stateless between runs; thread-safe for concurrent
/// run() calls (each call uses only its arguments).
class MetaRvm {
 public:
  explicit MetaRvm(MetaRvmConfig config);

  const MetaRvmConfig& config() const { return config_; }

  /// Simulate one replicate. All stochasticity is drawn from `rng`.
  MetaRvmTrajectory run(const MetaRvmParams& params,
                        osprey::num::RngStream& rng) const;

  /// Convenience: run replicate `replicate` of seed `seed` and return
  /// the GSA QoI (total hospitalizations at day `config.days`).
  double hospitalization_qoi(const MetaRvmParams& params, std::uint64_t seed,
                             std::uint64_t replicate) const;

 private:
  MetaRvmConfig config_;
};

}  // namespace osprey::epi
