#include "epi/metarvm.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::epi {

using osprey::num::Matrix;
using osprey::num::RngStream;

void MetaRvmParams::validate() const {
  auto in01 = [](double x) { return x >= 0.0 && x <= 1.0; };
  OSPREY_REQUIRE(ts >= 0.0 && tv >= 0.0, "transmission rates must be >= 0");
  OSPREY_REQUIRE(in01(ve), "ve must be in [0,1]");
  OSPREY_REQUIRE(in01(pea), "pea must be in [0,1]");
  OSPREY_REQUIRE(in01(psh), "psh must be in [0,1]");
  OSPREY_REQUIRE(in01(phd), "phd must be in [0,1]");
  OSPREY_REQUIRE(de > 0 && da > 0 && dp > 0 && ds > 0 && dh > 0 && dv > 0,
                 "durations must be positive");
  OSPREY_REQUIRE(dr >= 0, "dr must be >= 0 (0 disables reinfection)");
  OSPREY_REQUIRE(rel_inf_asymp >= 0 && rel_inf_presymp >= 0,
                 "relative infectiousness must be >= 0");
}

MetaRvmConfig MetaRvmConfig::single_group(std::int64_t population,
                                          std::int64_t initial_infections,
                                          int days) {
  MetaRvmConfig cfg;
  cfg.groups.push_back(Group{"all", population, initial_infections, 0.0});
  cfg.contact = Matrix(1, 1, 1.0);
  cfg.days = days;
  return cfg;
}

MetaRvmConfig MetaRvmConfig::stratified_demo(std::int64_t total_population,
                                             int days) {
  MetaRvmConfig cfg;
  std::int64_t children = total_population * 22 / 100;
  std::int64_t seniors = total_population * 17 / 100;
  std::int64_t adults = total_population - children - seniors;
  cfg.groups.push_back(Group{"children", children, children / 20000 + 1, 0.001});
  cfg.groups.push_back(Group{"adults", adults, adults / 20000 + 1, 0.004});
  cfg.groups.push_back(Group{"seniors", seniors, seniors / 20000 + 1, 0.008});
  // Assortative mixing: strong within-group contact, weaker across.
  cfg.contact = Matrix(3, 3, 0.0);
  const double m[3][3] = {{1.4, 0.5, 0.2}, {0.5, 1.0, 0.4}, {0.2, 0.4, 0.8}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) cfg.contact(i, j) = m[i][j];
  }
  cfg.days = days;
  return cfg;
}

std::vector<std::int64_t> MetaRvmTrajectory::total_new_hospitalizations()
    const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(days), 0);
  for (const GroupTrajectory& g : groups) {
    for (std::size_t t = 0; t < out.size(); ++t) {
      out[t] += g.new_hospitalizations[t];
    }
  }
  return out;
}

std::int64_t MetaRvmTrajectory::total_hospitalizations() const {
  std::int64_t n = 0;
  for (const GroupTrajectory& g : groups) {
    for (std::int64_t x : g.new_hospitalizations) n += x;
  }
  return n;
}

std::int64_t MetaRvmTrajectory::total_deaths() const {
  std::int64_t n = 0;
  for (const GroupTrajectory& g : groups) {
    for (std::int64_t x : g.new_deaths) n += x;
  }
  return n;
}

std::int64_t MetaRvmTrajectory::total_infections() const {
  std::int64_t n = 0;
  for (const GroupTrajectory& g : groups) {
    for (std::int64_t x : g.new_infections) n += x;
  }
  return n;
}

MetaRvm::MetaRvm(MetaRvmConfig config) : config_(std::move(config)) {
  OSPREY_REQUIRE(!config_.groups.empty(), "MetaRVM needs at least one group");
  OSPREY_REQUIRE(config_.days >= 0, "negative horizon");
  std::size_t n = config_.groups.size();
  if (config_.contact.rows() == 0) {
    config_.contact = Matrix(n, n, 1.0);
  }
  OSPREY_REQUIRE(config_.contact.rows() == n && config_.contact.cols() == n,
                 "contact matrix must be (groups x groups)");
  for (const Group& g : config_.groups) {
    OSPREY_REQUIRE(g.population >= 0, "negative population");
    OSPREY_REQUIRE(g.initial_infections >= 0 &&
                       g.initial_infections <= g.population,
                   "initial infections out of range");
    OSPREY_REQUIRE(g.vax_rate_per_day >= 0, "negative vaccination rate");
  }
}

namespace {

/// Daily transition probability for an exponential hazard.
inline double hazard_to_prob(double rate) {
  return rate <= 0.0 ? 0.0 : 1.0 - std::exp(-rate);
}

}  // namespace

MetaRvmTrajectory MetaRvm::run(const MetaRvmParams& params,
                               RngStream& rng) const {
  params.validate();
  const std::size_t n_groups = config_.groups.size();
  const int days = config_.days;

  std::vector<Compartments> state(n_groups);
  MetaRvmTrajectory traj;
  traj.days = days;
  traj.groups.resize(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    const Group& grp = config_.groups[g];
    state[g].s = grp.population - grp.initial_infections;
    // Seed infections start presymptomatic (they will progress).
    state[g].ip = grp.initial_infections;
    traj.groups[g].name = grp.name;
    traj.groups[g].daily.reserve(static_cast<std::size_t>(days) + 1);
    traj.groups[g].daily.push_back(state[g]);
    traj.groups[g].new_infections.assign(static_cast<std::size_t>(days), 0);
    traj.groups[g].new_hospitalizations.assign(static_cast<std::size_t>(days),
                                               0);
    traj.groups[g].new_deaths.assign(static_cast<std::size_t>(days), 0);
  }

  const double p_leave_e = hazard_to_prob(1.0 / params.de);
  const double p_leave_ia = hazard_to_prob(1.0 / params.da);
  const double p_leave_ip = hazard_to_prob(1.0 / params.dp);
  const double p_leave_is = hazard_to_prob(1.0 / params.ds);
  const double p_leave_h = hazard_to_prob(1.0 / params.dh);
  const double p_wane_v = hazard_to_prob(1.0 / params.dv);
  const double p_wane_r =
      params.dr > 0.0 ? hazard_to_prob(1.0 / params.dr) : 0.0;

  for (int day = 0; day < days; ++day) {
    // Force of infection per group from the current state.
    std::vector<double> foi(n_groups, 0.0);
    for (std::size_t g = 0; g < n_groups; ++g) {
      double sum = 0.0;
      for (std::size_t h = 0; h < n_groups; ++h) {
        const Compartments& ch = state[h];
        double n_h = static_cast<double>(config_.groups[h].population);
        if (n_h <= 0.0) continue;
        double infectious =
            params.rel_inf_asymp * static_cast<double>(ch.ia) +
            params.rel_inf_presymp * static_cast<double>(ch.ip) +
            static_cast<double>(ch.is);
        sum += config_.contact(g, h) * infectious / n_h;
      }
      foi[g] = sum;
    }

    for (std::size_t g = 0; g < n_groups; ++g) {
      Compartments& c = state[g];
      GroupTrajectory& gt = traj.groups[g];
      const Group& grp = config_.groups[g];

      // --- draws from the current state (order documented: infection
      // first, then vaccination of the remaining susceptibles) ---
      double p_inf_s = hazard_to_prob(params.ts * foi[g]);
      std::int64_t s_to_e = rng.binomial(c.s, p_inf_s);
      double p_vax = hazard_to_prob(grp.vax_rate_per_day);
      std::int64_t s_to_v = rng.binomial(c.s - s_to_e, p_vax);

      // Vaccinated face a tv-driven FOI further reduced by efficacy ve.
      double p_inf_v = hazard_to_prob(params.tv * (1.0 - params.ve) * foi[g]);
      std::int64_t v_to_e = rng.binomial(c.v, p_inf_v);
      std::int64_t v_to_s = rng.binomial(c.v - v_to_e, p_wane_v);

      std::int64_t e_out = rng.binomial(c.e, p_leave_e);
      std::int64_t e_to_ia = rng.binomial(e_out, params.pea);
      std::int64_t e_to_ip = e_out - e_to_ia;

      std::int64_t ia_to_r = rng.binomial(c.ia, p_leave_ia);
      std::int64_t ip_to_is = rng.binomial(c.ip, p_leave_ip);

      std::int64_t is_out = rng.binomial(c.is, p_leave_is);
      std::int64_t is_to_h = rng.binomial(is_out, params.psh);
      std::int64_t is_to_r = is_out - is_to_h;

      std::int64_t h_out = rng.binomial(c.h, p_leave_h);
      std::int64_t h_to_d = rng.binomial(h_out, params.phd);
      std::int64_t h_to_r = h_out - h_to_d;

      std::int64_t r_to_s = rng.binomial(c.r, p_wane_r);

      // --- apply ---
      c.s += -s_to_e - s_to_v + v_to_s + r_to_s;
      c.v += s_to_v - v_to_e - v_to_s;
      c.e += s_to_e + v_to_e - e_out;
      c.ia += e_to_ia - ia_to_r;
      c.ip += e_to_ip - ip_to_is;
      c.is += ip_to_is - is_out;
      c.h += is_to_h - h_out;
      c.r += ia_to_r + is_to_r + h_to_r - r_to_s;
      c.d += h_to_d;

      gt.new_infections[static_cast<std::size_t>(day)] = s_to_e + v_to_e;
      gt.new_hospitalizations[static_cast<std::size_t>(day)] = is_to_h;
      gt.new_deaths[static_cast<std::size_t>(day)] = h_to_d;
      gt.daily.push_back(c);

      OSPREY_CHECK(c.total() == grp.population,
                   "population not conserved in group " + grp.name);
    }
  }
  return traj;
}

double MetaRvm::hospitalization_qoi(const MetaRvmParams& params,
                                    std::uint64_t seed,
                                    std::uint64_t replicate) const {
  RngStream root(seed);
  RngStream stream = root.substream(replicate);
  MetaRvmTrajectory traj = run(params, stream);
  return static_cast<double>(traj.total_hospitalizations());
}

}  // namespace osprey::epi
