#pragma once

/// \file wastewater.hpp
/// Synthetic wastewater surveillance for the paper's §2 use case.
///
/// The real system ingests SARS-CoV-2 concentrations from the Illinois
/// Wastewater Surveillance System for four Chicago-area water
/// reclamation plants (O'Brien, Calumet, Stickney South, Stickney
/// North). That feed is not available offline, so this module generates
/// a statistically faithful substitute with a KNOWN ground-truth R(t):
///
///   truth R(t)  --renewal equation-->  daily incidence I(t)
///   I(t) --shedding kernel, flow normalization, lognormal noise-->
///   sampled concentrations (3 samples/week), published weekly as CSV.
///
/// Because the truth is known, the reproduction can score estimator
/// accuracy — something the paper itself cannot do on real data.

#include <cstdint>
#include <string>
#include <vector>

#include "num/rng.hpp"

namespace osprey::epi {

/// A water reclamation plant and the population it serves.
struct Plant {
  std::string name;
  std::int64_t population_served = 0;
  double avg_flow_mgd = 300.0;  // million gallons/day, normalizes loads
};

/// The four Chicago-area plants of the paper (population figures are
/// public approximations; they drive the ensemble weights).
std::vector<Plant> chicago_plants();

/// Shape of the ground-truth R(t) trajectory for one plant: a smooth
/// wave R(t) = exp(level + amp1*sin(2*pi*(t+phase)/period) + trend*t).
struct RtTruthParams {
  double level = 0.05;
  double amp = 0.35;
  double phase_days = 0.0;
  double period_days = 140.0;
  double trend_per_day = -0.002;
};

/// Per-plant generator configuration.
struct WastewaterConfig {
  int days = 120;
  double initial_incidence = 200.0;   // seed infections/day before day 0
  double noise_sigma = 0.35;          // lognormal measurement noise (log sd)
  double shedding_scale = 1.0e9;      // genome copies shed per infection
  double reporting_fraction = 0.25;   // for the parallel case-count series
  /// Sampling weekdays (0 = Monday); IWSS-like Mon/Wed/Fri cadence.
  std::vector<int> sample_weekdays = {0, 2, 4};
  /// The upstream dataset is (re)published every `publish_period_days`.
  int publish_period_days = 7;
};

/// One measured wastewater sample.
struct WwSample {
  int day = 0;
  double concentration = 0.0;  // genome copies per liter (arbitrary units)
};

/// Generates and serves the synthetic feed for one plant.
class WastewaterGenerator {
 public:
  WastewaterGenerator(Plant plant, RtTruthParams truth,
                      WastewaterConfig config, std::uint64_t seed);

  const Plant& plant() const { return plant_; }
  const WastewaterConfig& config() const { return config_; }

  /// Ground-truth R(t), one value per day.
  const std::vector<double>& true_rt() const { return true_rt_; }
  /// Realized daily incidence (stochastic renewal process).
  const std::vector<double>& incidence() const { return incidence_; }
  /// Noiseless daily concentration (for diagnostics).
  const std::vector<double>& latent_concentration() const {
    return latent_conc_;
  }
  /// All measured samples over the horizon.
  const std::vector<WwSample>& samples() const { return samples_; }
  /// Reported daily case counts (under-reported incidence, for the Cori
  /// baseline).
  const std::vector<double>& reported_cases() const { return cases_; }

  /// Samples with day <= `day`.
  std::vector<WwSample> samples_through(int day) const;

  /// The upstream feed as published at virtual day `day`: a CSV with all
  /// samples up to the last publication date at-or-before `day`
  /// (columns: day, plant, concentration_gc_per_l). Weekly cadence means
  /// the content — and its checksum — only changes on publication days.
  std::string published_csv(int day) const;

  /// Day of the last publication at-or-before `day` (-1 before first).
  int last_publication_day(int day) const;

 private:
  void generate(std::uint64_t seed);

  Plant plant_;
  RtTruthParams truth_;
  WastewaterConfig config_;
  std::vector<double> true_rt_;
  std::vector<double> incidence_;
  std::vector<double> latent_conc_;
  std::vector<double> cases_;
  std::vector<WwSample> samples_;
};

/// Truth parameter sets giving the four plants distinct but related
/// epidemic waves (same period, different phases/levels).
std::vector<RtTruthParams> chicago_truths();

}  // namespace osprey::epi
