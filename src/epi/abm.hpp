#pragma once

/// \file abm.hpp
/// An individual-based (agent-based) counterpart of MetaRVM — the class
/// of model the paper invokes when arguing for MUSIC's sample
/// efficiency: "the potential for faster time-to-solution would greatly
/// benefit more expensive agent-based epidemiological models" (§3.3).
///
/// Each agent carries one of the MetaRVM disease states; infectious
/// agents draw Poisson(contacts_per_day) random contacts per day and
/// transmit per-contact with probability ts/contacts_per_day (scaled by
/// the source's relative infectiousness and the target's vaccination
/// protection), so the model's mean field coincides with the
/// chain-binomial MetaRVM — at 1–2 orders of magnitude more compute per
/// run. State sojourns use the same daily hazards.
///
/// Parameters are shared with MetaRVM (epi::MetaRvmParams) and the
/// output is an epi::MetaRvmTrajectory (single group "abm"), so every
/// QoI extractor, GSA driver and bench works on both models unchanged.

#include <cstdint>

#include "epi/metarvm.hpp"

namespace osprey::epi {

struct AbmConfig {
  std::int64_t n_agents = 20'000;
  std::int64_t initial_infections = 20;
  int days = 90;
  /// Mean random contacts per agent per day (mixing intensity).
  double contacts_per_day = 8.0;
  /// Daily S -> V vaccination hazard.
  double vax_rate_per_day = 0.0;
};

/// The simulator. run() is const and thread-compatible (all state lives
/// in its locals); the cost is O(infectious × contacts + agents) per day.
class AgentBasedModel {
 public:
  explicit AgentBasedModel(AbmConfig config);

  const AbmConfig& config() const { return config_; }

  MetaRvmTrajectory run(const MetaRvmParams& params,
                        osprey::num::RngStream& rng) const;

  /// Replicate-substream QoI evaluation, mirroring
  /// MetaRvm::hospitalization_qoi.
  double hospitalization_qoi(const MetaRvmParams& params, std::uint64_t seed,
                             std::uint64_t replicate) const;

 private:
  AbmConfig config_;
};

}  // namespace osprey::epi
