#pragma once

/// \file legendre.hpp
/// Orthonormal Legendre polynomials on [0, 1] and total-degree
/// multi-index sets — the basis of the polynomial-chaos-expansion (PCE)
/// GSA baseline.

#include <cstddef>
#include <vector>

#include "num/vecmat.hpp"

namespace osprey::num {

/// P~_k(u): Legendre polynomial shifted to [0,1] and normalized so that
/// ∫_0^1 P~_j P~_k du = δ_jk (orthonormal w.r.t. the uniform measure).
double legendre01(unsigned degree, double u);

/// All multi-indices alpha in N^d with |alpha| <= total_degree, in
/// graded lexicographic order; the first entry is the zero index.
std::vector<std::vector<unsigned>> total_degree_multi_indices(
    std::size_t d, unsigned total_degree);

/// Evaluate the tensor-product basis Psi_alpha(u) = prod_j P~_{alpha_j}(u_j)
/// for every alpha, at a point u in [0,1]^d.
Vector evaluate_pce_basis(const std::vector<std::vector<unsigned>>& indices,
                          const Vector& u);

}  // namespace osprey::num
