#include "num/simd.hpp"

#include <algorithm>
#include <cmath>

namespace osprey::num::simd {

void interp_log_knots_exp(const double* log_knots, int n_knots, int spacing,
                          int days, int from_day, double* rt) {
  // Whether the nominal final knot day (n_knots-1)*spacing overshoots
  // the horizon; if so the final knot is pinned to day days-1 and the
  // last segment interpolates over its true length.
  const bool partial = (n_knots - 1) * spacing > days - 1;
  const int last_seg_start = (n_knots - 2) * spacing;
  const int last_denom = partial ? (days - 1 - last_seg_start) : spacing;
  for (int t = from_day; t < days; ++t) {
    int k = t / spacing;
    int k1 = std::min(k + 1, n_knots - 1);
    int denom = (partial && k == n_knots - 2) ? last_denom : spacing;
    double frac = static_cast<double>(t - k * spacing) / denom;
    double log_rt = log_knots[static_cast<std::size_t>(k)] * (1.0 - frac) +
                    log_knots[static_cast<std::size_t>(k1)] * frac;
    rt[t] = std::exp(log_rt);
  }
}

void renewal_incidence(const double* rt, const double* w, int wlen,
                       int burnin, int from_day, int days, double* inc) {
  for (int t = from_day; t < days; ++t) {
    const int idx = burnin + t;
    // Identical op order to epi::renewal_pressure: s ascending, one
    // multiply-add per generation-interval day.
    double sum = 0.0;
    for (int s = 1; s <= wlen; ++s) {
      if (s > idx) break;
      sum += w[s - 1] * inc[idx - s];
    }
    inc[idx] = rt[t] * sum;
  }
}

void shedding_convolve(const double* inc, const double* shed, int slen,
                       int burnin, double scale, double flow, int from_day,
                       int days, double* mu) {
  // Scalar head: days whose convolution window is truncated at the
  // start of the incidence array (burnin + t - s < 0 for some s).
  const int head_end =
      std::min(days, std::max(from_day, slen - burnin));
  int t = from_day;
  for (; t < head_end; ++t) {
    double load = 0.0;
    for (int s = 0; s < slen; ++s) {
      int src = burnin + t - s;
      if (src < 0) break;
      load += shed[s] * inc[src];
    }
    mu[t] = scale * load / flow;
  }
  // 4-day blocks: each lane accumulates its own day's shedding sum in
  // the same s-ascending order as the scalar loop, so per-day results
  // are bitwise identical; only independent days run side by side.
  for (; t + kLanes <= days; t += kLanes) {
#if OSPREY_SIMD_VEC_EXT
    Vec4d load = {0.0, 0.0, 0.0, 0.0};
    for (int s = 0; s < slen; ++s) {
      const int base = burnin + t - s;
      Vec4d x = {inc[base], inc[base + 1], inc[base + 2], inc[base + 3]};
      load += shed[s] * x;
    }
    for (int l = 0; l < kLanes; ++l) {
      mu[t + l] = scale * load[l] / flow;
    }
#else
    double load[kLanes] = {0.0, 0.0, 0.0, 0.0};
    for (int s = 0; s < slen; ++s) {
      const int base = burnin + t - s;
      for (int l = 0; l < kLanes; ++l) {
        load[l] += shed[s] * inc[base + l];
      }
    }
    for (int l = 0; l < kLanes; ++l) {
      mu[t + l] = scale * load[l] / flow;
    }
#endif
  }
  for (; t < days; ++t) {
    double load = 0.0;
    for (int s = 0; s < slen; ++s) {
      int src = burnin + t - s;
      if (src < 0) break;
      load += shed[s] * inc[src];
    }
    mu[t] = scale * load / flow;
  }
}

bool lognormal_terms(const double* mu, const int* day, const double* log_c,
                     const unsigned char* positive_c, std::size_t from,
                     std::size_t n, double sigma, double log_sigma,
                     double* log_mu, double* contrib) {
  for (std::size_t i = from; i < n; ++i) {
    const double m = mu[day[i]];
    if (!(m > 0.0) || positive_c[i] == 0) return false;
    const double lm = std::log(m);
    const double z = (log_c[i] - lm) / sigma;
    log_mu[i] = lm;
    contrib[i] = 0.5 * z * z + log_sigma;
  }
  return true;
}

void axpy(double w, const double* x, double* out, std::size_t n) {
  std::size_t t = 0;
#if OSPREY_SIMD_VEC_EXT
  for (; t + kLanes <= n; t += kLanes) {
    Vec4d xv = {x[t], x[t + 1], x[t + 2], x[t + 3]};
    Vec4d ov = {out[t], out[t + 1], out[t + 2], out[t + 3]};
    ov += w * xv;
    out[t] = ov[0];
    out[t + 1] = ov[1];
    out[t + 2] = ov[2];
    out[t + 3] = ov[3];
  }
#endif
  for (; t < n; ++t) out[t] += w * x[t];
}

void scale(double s, double* out, std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) out[t] *= s;
}

void sub_square(const double* a, const double* b, double* out, std::size_t n) {
  std::size_t t = 0;
#if OSPREY_SIMD_VEC_EXT
  for (; t + kLanes <= n; t += kLanes) {
    Vec4d av = {a[t], a[t + 1], a[t + 2], a[t + 3]};
    Vec4d bv = {b[t], b[t + 1], b[t + 2], b[t + 3]};
    Vec4d d = av - bv;
    d *= d;
    out[t] = d[0];
    out[t + 1] = d[1];
    out[t + 2] = d[2];
    out[t + 3] = d[3];
  }
#endif
  for (; t < n; ++t) {
    const double d = a[t] - b[t];
    out[t] = d * d;
  }
}

}  // namespace osprey::num::simd
