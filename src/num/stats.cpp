#include "num/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

double mean(const std::vector<double>& xs) {
  OSPREY_REQUIRE(!xs.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double weighted_mean(const std::vector<double>& xs,
                     const std::vector<double>& ws) {
  OSPREY_REQUIRE(xs.size() == ws.size(), "weighted_mean size mismatch");
  OSPREY_REQUIRE(!xs.empty(), "weighted_mean of empty vector");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += ws[i] * xs[i];
    den += ws[i];
  }
  OSPREY_REQUIRE(den > 0.0, "weights sum to zero");
  return num / den;
}

double quantile(std::vector<double> xs, double q) {
  OSPREY_REQUIRE(!xs.empty(), "quantile of empty vector");
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

double quantile_sorted(const std::vector<double>& sorted_xs, double q) {
  OSPREY_REQUIRE(!sorted_xs.empty(), "quantile of empty vector");
  OSPREY_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  double h = (static_cast<double>(sorted_xs.size()) - 1.0) * q;
  std::size_t lo = static_cast<std::size_t>(std::floor(h));
  std::size_t hi = std::min(lo + 1, sorted_xs.size() - 1);
  double frac = h - static_cast<double>(lo);
  return sorted_xs[lo] + frac * (sorted_xs[hi] - sorted_xs[lo]);
}

double median(const std::vector<double>& xs) { return quantile(xs, 0.5); }

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  OSPREY_REQUIRE(a.size() == b.size() && !a.empty(), "rmse size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double mae(const std::vector<double>& a, const std::vector<double>& b) {
  OSPREY_REQUIRE(a.size() == b.size() && !a.empty(), "mae size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

double correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  OSPREY_REQUIRE(a.size() == b.size() && !a.empty(),
                 "correlation size mismatch");
  double ma = mean(a);
  double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

Summary summarize(const std::vector<double>& xs) {
  OSPREY_REQUIRE(!xs.empty(), "summarize of empty vector");
  Summary s;
  s.n = xs.size();
  s.mean = mean(xs);
  s.sd = stddev(xs);
  // One sort serves min/max and all three quantiles.
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.q025 = quantile_sorted(sorted, 0.025);
  s.median = quantile_sorted(sorted, 0.5);
  s.q975 = quantile_sorted(sorted, 0.975);
  return s;
}

void RunningStat::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace osprey::num
