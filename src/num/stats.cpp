#include "num/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

double mean(const std::vector<double>& xs) {
  OSPREY_REQUIRE(!xs.empty(), "mean of empty vector");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double weighted_mean(const std::vector<double>& xs,
                     const std::vector<double>& ws) {
  OSPREY_REQUIRE(xs.size() == ws.size(), "weighted_mean size mismatch");
  OSPREY_REQUIRE(!xs.empty(), "weighted_mean of empty vector");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += ws[i] * xs[i];
    den += ws[i];
  }
  OSPREY_REQUIRE(den > 0.0, "weights sum to zero");
  return num / den;
}

double quantile(std::vector<double> xs, double q) {
  OSPREY_REQUIRE(!xs.empty(), "quantile of empty vector");
  OSPREY_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  std::sort(xs.begin(), xs.end());
  double h = (static_cast<double>(xs.size()) - 1.0) * q;
  std::size_t lo = static_cast<std::size_t>(std::floor(h));
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = h - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double median(const std::vector<double>& xs) { return quantile(xs, 0.5); }

double rmse(const std::vector<double>& a, const std::vector<double>& b) {
  OSPREY_REQUIRE(a.size() == b.size() && !a.empty(), "rmse size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double mae(const std::vector<double>& a, const std::vector<double>& b) {
  OSPREY_REQUIRE(a.size() == b.size() && !a.empty(), "mae size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

double correlation(const std::vector<double>& a,
                   const std::vector<double>& b) {
  OSPREY_REQUIRE(a.size() == b.size() && !a.empty(),
                 "correlation size mismatch");
  double ma = mean(a);
  double mb = mean(b);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

Summary summarize(const std::vector<double>& xs) {
  OSPREY_REQUIRE(!xs.empty(), "summarize of empty vector");
  Summary s;
  s.n = xs.size();
  s.mean = mean(xs);
  s.sd = stddev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.q025 = quantile(xs, 0.025);
  s.median = quantile(xs, 0.5);
  s.q975 = quantile(xs, 0.975);
  return s;
}

void RunningStat::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace osprey::num
