#pragma once

/// \file cholesky.hpp
/// Cholesky factorization and triangular solves — the linear-algebra core
/// of the Gaussian-process surrogate and the PCE least-squares fit.

#include "num/vecmat.hpp"

namespace osprey::num {

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix, with solve and log-determinant support.
class Cholesky {
 public:
  /// Factor `a` (must be square SPD). Throws NumericalError when a pivot
  /// is non-positive.
  explicit Cholesky(const Matrix& a);

  const Matrix& lower() const { return l_; }

  /// Solve A x = b.
  Vector solve(const Vector& b) const;
  /// Solve A X = B column-wise.
  Matrix solve(const Matrix& b) const;
  /// Solve L y = b (forward substitution only).
  Vector solve_lower(const Vector& b) const;

  /// log|A| = 2 * sum log L_ii.
  double log_det() const;

 private:
  Matrix l_;
};

/// Factor `a + jitter*I`, growing jitter (×10) until factorization
/// succeeds or `max_tries` is exhausted. Returns the factor and the
/// jitter actually used. This is the standard GP numerical guard.
Cholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                              int max_tries, double* used_jitter = nullptr);

/// Solve the ridge-regularized least squares problem
/// min ||X b - y||^2 + lambda ||b||^2 via normal equations + Cholesky.
Vector ridge_solve(const Matrix& x, const Vector& y, double lambda);

}  // namespace osprey::num
