#pragma once

/// \file cholesky.hpp
/// Cholesky factorization and triangular solves — the linear-algebra core
/// of the Gaussian-process surrogate and the PCE least-squares fit.

#include "num/vecmat.hpp"

namespace osprey::num {

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix, with solve and log-determinant support.
class Cholesky {
 public:
  /// Factor `a` (must be square SPD). Throws NumericalError when a pivot
  /// is non-positive.
  explicit Cholesky(const Matrix& a);

  const Matrix& lower() const { return l_; }

  /// Solve A x = b.
  Vector solve(const Vector& b) const;
  /// Solve A X = B column-wise.
  Matrix solve(const Matrix& b) const;
  /// Solve L y = b (forward substitution only).
  Vector solve_lower(const Vector& b) const;

  /// Rank-1 extension: given the factor L of an n x n matrix A, update
  /// it in O(n^2) to the factor of the bordered matrix
  ///   [[A, b], [b^T, c]]
  /// (new row [w^T, sqrt(c - w^T w)] with L w = b). This is the
  /// active-learning hot path: appending one design point to a GP
  /// kernel matrix without the O(n^3) re-factorization. Throws
  /// NumericalError when the new pivot is non-positive (the bordered
  /// matrix is not SPD), leaving the factor unchanged.
  void extend(const Vector& b, double c);

  /// Diagonal of A^{-1} = L^{-T} L^{-1}, computed column-by-column from
  /// the factor without materializing the inverse:
  ///   (A^{-1})_ii = sum_k (L^{-1})_{k,i}^2,
  /// where column i of L^{-1} is the forward solve of e_i (nonzero only
  /// from row i on, so the total cost is ~n^3/6 flops and O(n) extra
  /// memory). Backs the closed-form leave-one-out GP diagnostics.
  Vector inverse_diagonal() const;

  /// log|A| = 2 * sum log L_ii.
  double log_det() const;

 private:
  Matrix l_;
};

/// Factor `a + jitter*I`, growing jitter (×10) until factorization
/// succeeds or `max_tries` is exhausted. Returns the factor and the
/// jitter actually used. This is the standard GP numerical guard.
Cholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                              int max_tries, double* used_jitter = nullptr);

/// Solve the ridge-regularized least squares problem
/// min ||X b - y||^2 + lambda ||b||^2 via normal equations + Cholesky.
Vector ridge_solve(const Matrix& x, const Vector& y, double lambda);

}  // namespace osprey::num
