#pragma once

/// \file optim.hpp
/// Derivative-free optimization (Nelder–Mead) used for GP
/// hyperparameter maximum-likelihood fits.

#include <functional>

#include "num/rng.hpp"
#include "num/vecmat.hpp"
#include "util/thread_pool.hpp"

namespace osprey::num {

using ObjectiveFn = std::function<double(const Vector&)>;

struct NelderMeadOptions {
  std::size_t max_iterations = 500;
  double f_tolerance = 1e-8;    // stop when the simplex f-spread is below
  double x_tolerance = 1e-8;    // ... or the simplex diameter is below
  double initial_step = 0.5;    // initial simplex edge length
};

struct OptimResult {
  Vector x;
  double f = 0.0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Minimize `fn` starting from `x0`. Standard Nelder–Mead with
/// reflection/expansion/contraction/shrink (1, 2, 0.5, 0.5).
OptimResult nelder_mead(const ObjectiveFn& fn, const Vector& x0,
                        const NelderMeadOptions& options = {});

/// Multi-start wrapper: runs Nelder–Mead from `x0` plus `n_restarts`
/// uniform perturbations within `radius`; returns the best result
/// (ties broken toward the earlier start). All start points are drawn
/// from `rng` up front, so passing `pool` fans the independent local
/// searches out across threads with a bit-identical final result —
/// `fn` must then be safe to call concurrently. The returned
/// `evaluations` counts objective calls across every start.
OptimResult multistart_minimize(const ObjectiveFn& fn, const Vector& x0,
                                std::size_t n_restarts, double radius,
                                RngStream& rng,
                                const NelderMeadOptions& options = {},
                                osprey::util::ThreadPool* pool = nullptr);

}  // namespace osprey::num
