#include "num/optim.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

OptimResult nelder_mead(const ObjectiveFn& fn, const Vector& x0,
                        const NelderMeadOptions& options) {
  const std::size_t d = x0.size();
  OSPREY_REQUIRE(d > 0, "nelder_mead needs at least one dimension");

  OptimResult result;

  // Build the initial simplex: x0 plus axis-aligned offsets.
  std::vector<Vector> simplex(d + 1, x0);
  for (std::size_t i = 0; i < d; ++i) {
    simplex[i + 1][i] += options.initial_step;
  }
  std::vector<double> f(d + 1);
  for (std::size_t i = 0; i <= d; ++i) {
    f[i] = fn(simplex[i]);
    ++result.evaluations;
  }

  auto order = [&] {
    std::vector<std::size_t> idx(d + 1);
    for (std::size_t i = 0; i <= d; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return f[a] < f[b]; });
    std::vector<Vector> s2(d + 1);
    std::vector<double> f2(d + 1);
    for (std::size_t i = 0; i <= d; ++i) {
      s2[i] = simplex[idx[i]];
      f2[i] = f[idx[i]];
    }
    simplex.swap(s2);
    f.swap(f2);
  };

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    order();
    ++result.iterations;

    // Convergence: f-spread and simplex diameter.
    double f_spread = std::fabs(f[d] - f[0]);
    double diameter = 0.0;
    for (std::size_t i = 1; i <= d; ++i) {
      double dist = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        double delta = simplex[i][j] - simplex[0][j];
        dist += delta * delta;
      }
      diameter = std::max(diameter, std::sqrt(dist));
    }
    if (f_spread < options.f_tolerance && diameter < options.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    Vector centroid(d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(d);

    auto blend = [&](double coef) {
      Vector x(d);
      for (std::size_t j = 0; j < d; ++j) {
        x[j] = centroid[j] + coef * (simplex[d][j] - centroid[j]);
      }
      return x;
    };

    Vector xr = blend(-1.0);  // reflection
    double fr = fn(xr);
    ++result.evaluations;

    if (fr < f[0]) {
      Vector xe = blend(-2.0);  // expansion
      double fe = fn(xe);
      ++result.evaluations;
      if (fe < fr) {
        simplex[d] = std::move(xe);
        f[d] = fe;
      } else {
        simplex[d] = std::move(xr);
        f[d] = fr;
      }
    } else if (fr < f[d - 1]) {
      simplex[d] = std::move(xr);
      f[d] = fr;
    } else {
      // Contraction (outside when the reflected point improved the worst).
      bool outside = fr < f[d];
      Vector xc = blend(outside ? -0.5 : 0.5);
      double fc = fn(xc);
      ++result.evaluations;
      if (fc < std::min(fr, f[d])) {
        simplex[d] = std::move(xc);
        f[d] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 1; i <= d; ++i) {
          for (std::size_t j = 0; j < d; ++j) {
            simplex[i][j] = simplex[0][j] + 0.5 * (simplex[i][j] - simplex[0][j]);
          }
          f[i] = fn(simplex[i]);
          ++result.evaluations;
        }
      }
    }
  }

  order();
  result.x = simplex[0];
  result.f = f[0];
  return result;
}

OptimResult multistart_minimize(const ObjectiveFn& fn, const Vector& x0,
                                std::size_t n_restarts, double radius,
                                RngStream& rng,
                                const NelderMeadOptions& options,
                                osprey::util::ThreadPool* pool) {
  // Draw every start up front so the RNG consumption order (and hence
  // the start set) is identical whether the local searches then run
  // serially or fanned out on the pool.
  std::vector<Vector> starts;
  starts.reserve(n_restarts + 1);
  starts.push_back(x0);
  for (std::size_t r = 0; r < n_restarts; ++r) {
    Vector xs = x0;
    for (double& x : xs) x += rng.uniform(-radius, radius);
    starts.push_back(std::move(xs));
  }

  std::vector<OptimResult> results(starts.size());
  auto run_one = [&](std::size_t i) {
    results[i] = nelder_mead(fn, starts[i], options);
  };
  if (pool != nullptr && starts.size() > 1) {
    pool->parallel_for(starts.size(), run_one);
  } else {
    for (std::size_t i = 0; i < starts.size(); ++i) run_one(i);
  }

  std::size_t best = 0;
  std::size_t total_evaluations = results[0].evaluations;
  for (std::size_t i = 1; i < results.size(); ++i) {
    total_evaluations += results[i].evaluations;
    if (results[i].f < results[best].f) best = i;
  }
  OptimResult out = results[best];
  out.evaluations = total_evaluations;
  return out;
}

}  // namespace osprey::num
