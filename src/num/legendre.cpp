#include "num/legendre.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

double legendre01(unsigned degree, double u) {
  // Map [0,1] -> [-1,1] and use the three-term recurrence; the
  // orthonormalization factor on [0,1] is sqrt(2k+1).
  double x = 2.0 * u - 1.0;
  double pkm1 = 1.0;  // P_0
  if (degree == 0) return 1.0;
  double pk = x;  // P_1
  for (unsigned k = 1; k < degree; ++k) {
    double pkp1 = ((2.0 * k + 1.0) * x * pk - k * pkm1) / (k + 1.0);
    pkm1 = pk;
    pk = pkp1;
  }
  return pk * std::sqrt(2.0 * degree + 1.0);
}

namespace {

void enumerate_indices(std::size_t d, unsigned remaining,
                       std::vector<unsigned>& current,
                       std::vector<std::vector<unsigned>>& out) {
  if (current.size() == d) {
    out.push_back(current);
    return;
  }
  for (unsigned k = 0; k <= remaining; ++k) {
    current.push_back(k);
    enumerate_indices(d, remaining - k, current, out);
    current.pop_back();
  }
}

}  // namespace

std::vector<std::vector<unsigned>> total_degree_multi_indices(
    std::size_t d, unsigned total_degree) {
  OSPREY_REQUIRE(d > 0, "multi-index dimension must be positive");
  std::vector<std::vector<unsigned>> out;
  // Enumerate grade by grade so output is graded-lexicographic.
  for (unsigned grade = 0; grade <= total_degree; ++grade) {
    std::vector<std::vector<unsigned>> grade_out;
    std::vector<unsigned> current;
    enumerate_indices(d, grade, current, grade_out);
    for (auto& idx : grade_out) {
      unsigned sum = 0;
      for (unsigned k : idx) sum += k;
      if (sum == grade) out.push_back(std::move(idx));
    }
  }
  return out;
}

Vector evaluate_pce_basis(const std::vector<std::vector<unsigned>>& indices,
                          const Vector& u) {
  Vector out(indices.size(), 1.0);
  for (std::size_t a = 0; a < indices.size(); ++a) {
    OSPREY_REQUIRE(indices[a].size() == u.size(),
                   "multi-index dimension mismatch");
    double prod = 1.0;
    for (std::size_t j = 0; j < u.size(); ++j) {
      if (indices[a][j] > 0) prod *= legendre01(indices[a][j], u[j]);
    }
    out[a] = prod;
  }
  return out;
}

}  // namespace osprey::num
