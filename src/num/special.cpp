#include "num/special.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

double gamma_p(double a, double x) {
  OSPREY_REQUIRE(a > 0.0, "gamma_p needs a > 0");
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series expansion around 0.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Lentz continued fraction for Q(a, x); P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-14) break;
  }
  double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

double gamma_quantile(double q, double shape, double scale) {
  OSPREY_REQUIRE(q > 0.0 && q < 1.0, "quantile q must be in (0,1)");
  OSPREY_REQUIRE(shape > 0.0 && scale > 0.0, "gamma parameters positive");
  // Bracket: start at the Wilson–Hilferty approximation and expand.
  double z = normal_quantile(q);
  double wh = shape * std::pow(1.0 - 1.0 / (9.0 * shape) +
                                   z / (3.0 * std::sqrt(shape)),
                               3.0);
  double hi = std::max(wh, 1e-8) * 2.0 + 1.0;
  double lo = 0.0;
  while (gamma_p(shape, hi) < q && hi < 1e12) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (gamma_p(shape, mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi) * scale;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double q) {
  OSPREY_REQUIRE(q > 0.0 && q < 1.0, "quantile q must be in (0,1)");
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (q < p_low) {
    double u = std::sqrt(-2.0 * std::log(q));
    x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (q <= 1.0 - p_low) {
    double u = q - 0.5;
    double r = u * u;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        u /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double u = std::sqrt(-2.0 * std::log(1.0 - q));
    x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
          c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  }
  return x;
}

}  // namespace osprey::num
