#pragma once

/// \file vecmat.hpp
/// Dense row-major matrix and vector helpers sized for surrogate-model
/// work (hundreds of rows). No BLAS dependency by design.

#include <cstddef>
#include <vector>

namespace osprey::num {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Raw storage (row-major).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Copy of row i as a Vector.
  Vector row(std::size_t i) const;
  void set_row(std::size_t i, const Vector& v);

  /// Identity matrix.
  static Matrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b.
Matrix matmul(const Matrix& a, const Matrix& b);
/// out = a^T.
Matrix transpose(const Matrix& a);
/// out = a * x.
Vector matvec(const Matrix& a, const Vector& x);
/// Dot product.
double dot(const Vector& a, const Vector& b);
/// Euclidean norm.
double norm2(const Vector& a);
/// a + s*b (element-wise).
Vector axpy(const Vector& a, double s, const Vector& b);

}  // namespace osprey::num
