#pragma once

/// \file stats.hpp
/// Descriptive statistics used by posterior summarization, convergence
/// tracking, and the benchmark tables.

#include <cstddef>
#include <vector>

namespace osprey::num {

double mean(const std::vector<double>& xs);
/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);

/// Weighted mean; weights need not be normalized.
double weighted_mean(const std::vector<double>& xs,
                     const std::vector<double>& ws);

/// Quantile with linear interpolation (R type-7). q in [0, 1].
double quantile(std::vector<double> xs, double q);
/// Same, for data already sorted ascending — no copy, no re-sort. Use
/// this when taking several quantiles of one sample (summaries,
/// posterior bands): sort once, query many.
double quantile_sorted(const std::vector<double>& sorted_xs, double q);
double median(const std::vector<double>& xs);

/// sqrt(mean((a-b)^2)).
double rmse(const std::vector<double>& a, const std::vector<double>& b);
/// mean(|a-b|).
double mae(const std::vector<double>& a, const std::vector<double>& b);

/// Pearson correlation; 0 when either side is constant.
double correlation(const std::vector<double>& a, const std::vector<double>& b);

/// Five-number-ish summary for tables.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double sd = 0.0;
  double min = 0.0;
  double q025 = 0.0;
  double median = 0.0;
  double q975 = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& xs);

/// Streaming mean/variance (Welford). Used by long-running monitors.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace osprey::num
