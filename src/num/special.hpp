#pragma once

/// \file special.hpp
/// Special functions needed by the Bayesian R(t) machinery: regularized
/// incomplete gamma and gamma/normal quantiles.

namespace osprey::num {

/// Regularized lower incomplete gamma P(a, x) (series + continued
/// fraction), accurate to ~1e-12.
double gamma_p(double a, double x);

/// Quantile of Gamma(shape, scale): smallest x with P(shape, x/scale) >= q.
/// Bisection on gamma_p; q in (0, 1).
double gamma_quantile(double q, double shape, double scale);

/// Standard normal CDF.
double normal_cdf(double x);

/// Standard normal quantile (Acklam's rational approximation, |err|<1e-9).
double normal_quantile(double q);

}  // namespace osprey::num
