#include "num/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

RngStream::RngStream(std::uint64_t seed, std::uint64_t stream)
    : seed_(seed), stream_(stream) {
  // Mix seed and stream id through splitmix64 to fill the state; a zero
  // state is impossible because splitmix64 output is never all-zero four
  // times in a row for distinct counters.
  std::uint64_t x = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  for (auto& si : s_) si = splitmix64(x);
}

RngStream RngStream::substream(std::uint64_t key) const {
  // Children are identified by hashing (seed, stream, key); draws made on
  // the parent do not affect the child.
  std::uint64_t x = seed_ ^ rotl(stream_ + 0x632be59bd9b4e019ULL, 17);
  std::uint64_t mixed = splitmix64(x) ^ rotl(key + 1, 31);
  return RngStream(mixed, key);
}

std::uint64_t RngStream::next_u64() {
  // xoshiro256**
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double RngStream::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double RngStream::uniform(double lo, double hi) {
  OSPREY_REQUIRE(hi >= lo, "uniform(lo, hi) requires hi >= lo");
  return lo + (hi - lo) * uniform();
}

std::uint64_t RngStream::uniform_int(std::uint64_t n) {
  OSPREY_REQUIRE(n > 0, "uniform_int(0)");
  // Rejection to remove modulo bias.
  std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double RngStream::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * m;
  has_spare_ = true;
  return u * m;
}

double RngStream::normal(double mean, double sd) { return mean + sd * normal(); }

double RngStream::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double RngStream::exponential(double rate) {
  OSPREY_REQUIRE(rate > 0, "exponential rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double RngStream::gamma(double shape, double scale) {
  OSPREY_REQUIRE(shape > 0 && scale > 0, "gamma parameters must be positive");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang trick).
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  double d = shape - 1.0 / 3.0;
  double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double RngStream::beta(double a, double b) {
  double x = gamma(a, 1.0);
  double y = gamma(b, 1.0);
  return x / (x + y);
}

std::int64_t RngStream::poisson(double mean) {
  OSPREY_REQUIRE(mean >= 0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth multiplication method.
    double limit = std::exp(-mean);
    double prod = uniform();
    std::int64_t k = 0;
    while (prod > limit) {
      prod *= uniform();
      ++k;
    }
    return k;
  }
  return poisson_ptrs(mean);
}

std::int64_t RngStream::poisson_ptrs(double mean) {
  // Hörmann's PTRS transformed-rejection sampler (exact for mean >= 10).
  double b = 0.931 + 2.53 * std::sqrt(mean);
  double a = -0.059 + 0.02483 * b;
  double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  double v_r = 0.9277 - 3.6224 / (b - 2.0);
  while (true) {
    double u = uniform() - 0.5;
    double v = uniform();
    double us = 0.5 - std::fabs(u);
    double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::int64_t>(k);
    if (k < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * std::log(mean) - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::int64_t>(k);
    }
  }
}

std::int64_t RngStream::binomial(std::int64_t n, double p) {
  OSPREY_REQUIRE(n >= 0, "binomial n must be non-negative");
  OSPREY_REQUIRE(p >= 0.0 && p <= 1.0, "binomial p must be in [0,1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - binomial(n, 1.0 - p);
  double np = static_cast<double>(n) * p;
  if (n <= 64) {
    std::int64_t k = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      if (uniform() < p) ++k;
    }
    return k;
  }
  if (np < 30.0) {
    // CDF inversion via the pmf recurrence (stable for small np).
    double q = 1.0 - p;
    double r = p / q;
    double pmf = std::exp(static_cast<double>(n) * std::log(q));
    double u = uniform();
    std::int64_t k = 0;
    double cdf = pmf;
    while (u > cdf && k < n) {
      ++k;
      pmf *= r * static_cast<double>(n - k + 1) / static_cast<double>(k);
      cdf += pmf;
    }
    return k;
  }
  return binomial_btrs(n, p);
}

std::int64_t RngStream::binomial_btrs(std::int64_t n, double p) {
  // Hörmann's BTRS transformed-rejection sampler; exact, O(1) expected.
  double nd = static_cast<double>(n);
  double q = 1.0 - p;
  double spq = std::sqrt(nd * p * q);
  double b = 1.15 + 2.53 * spq;
  double a = -0.0873 + 0.0248 * b + 0.01 * p;
  double c = nd * p + 0.5;
  double v_r = 0.92 - 4.2 / b;
  double alpha = (2.83 + 5.1 / b) * spq;
  double lpq = std::log(p / q);
  double m = std::floor((nd + 1.0) * p);
  double h = std::lgamma(m + 1.0) + std::lgamma(nd - m + 1.0);
  while (true) {
    double u = uniform() - 0.5;
    double v = uniform();
    double us = 0.5 - std::fabs(u);
    double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::int64_t>(kd);
    v = std::log(v * alpha / (a / (us * us) + b));
    if (v <= h - std::lgamma(kd + 1.0) - std::lgamma(nd - kd + 1.0) +
                 (kd - m) * lpq) {
      return static_cast<std::int64_t>(kd);
    }
  }
}

std::vector<std::size_t> RngStream::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(uniform_int(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace osprey::num
