#include "num/cholesky.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols(), 0.0) {
  OSPREY_REQUIRE(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      throw osprey::util::NumericalError(
          "Cholesky pivot non-positive at column " + std::to_string(j));
    }
    double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
  }
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = l_.rows();
  OSPREY_REQUIRE(b.size() == n, "solve dimension mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vector Cholesky::solve(const Vector& b) const {
  const std::size_t n = l_.rows();
  Vector y = solve_lower(b);
  // Back substitution with L^T.
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    std::size_t i = ii - 1;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  OSPREY_REQUIRE(b.rows() == l_.rows(), "solve dimension mismatch");
  Matrix out(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    Vector x = solve(col);
    for (std::size_t i = 0; i < b.rows(); ++i) out(i, j) = x[i];
  }
  return out;
}

void Cholesky::extend(const Vector& b, double c) {
  const std::size_t n = l_.rows();
  OSPREY_REQUIRE(b.size() == n, "extend dimension mismatch");
  Vector w = solve_lower(b);
  double diag = c;
  for (double wi : w) diag -= wi * wi;
  if (!(diag > 0.0) || !std::isfinite(diag)) {
    throw osprey::util::NumericalError(
        "Cholesky::extend: bordered matrix not SPD");
  }
  Matrix l2(n + 1, n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) l2(i, j) = l_(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) l2(n, j) = w[j];
  l2(n, n) = std::sqrt(diag);
  l_ = std::move(l2);
}

Vector Cholesky::inverse_diagonal() const {
  const std::size_t n = l_.rows();
  Vector out(n);
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Forward solve L v = e_i; v is zero above row i.
    v[i] = 1.0 / l_(i, i);
    for (std::size_t k = i + 1; k < n; ++k) {
      double s = 0.0;
      for (std::size_t j = i; j < k; ++j) s -= l_(k, j) * v[j];
      v[k] = s / l_(k, k);
    }
    double acc = 0.0;
    for (std::size_t k = i; k < n; ++k) acc += v[k] * v[k];
    out[i] = acc;
  }
  return out;
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Cholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                              int max_tries, double* used_jitter) {
  double jitter = initial_jitter;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    Matrix aj = a;
    if (jitter > 0.0) {
      for (std::size_t i = 0; i < aj.rows(); ++i) aj(i, i) += jitter;
    }
    try {
      Cholesky chol(aj);
      if (used_jitter != nullptr) *used_jitter = jitter;
      return chol;
    } catch (const osprey::util::NumericalError&) {
      jitter = (jitter == 0.0) ? 1e-10 : jitter * 10.0;
    }
  }
  throw osprey::util::NumericalError(
      "cholesky_with_jitter: matrix not SPD even with jitter");
}

Vector ridge_solve(const Matrix& x, const Vector& y, double lambda) {
  OSPREY_REQUIRE(x.rows() == y.size(), "ridge_solve dimension mismatch");
  const std::size_t p = x.cols();
  // Normal equations: (X^T X + lambda I) b = X^T y.
  Matrix xtx(p, p, 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      double xia = x(i, a);
      if (xia == 0.0) continue;
      for (std::size_t b = a; b < p; ++b) {
        xtx(a, b) += xia * x(i, b);
      }
    }
  }
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
    xtx(a, a) += lambda;
  }
  Vector xty(p, 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t a = 0; a < p; ++a) xty[a] += x(i, a) * y[i];
  }
  Cholesky chol = cholesky_with_jitter(xtx, 0.0, 8);
  return chol.solve(xty);
}

}  // namespace osprey::num
