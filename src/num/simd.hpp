#pragma once

/// \file simd.hpp
/// Structure-of-arrays micro-kernels for the hot likelihood loops of the
/// R(t) estimators (and any other per-day series math). Two design
/// rules make these safe to share between the bit-identical MCMC paths
/// and throughput-oriented fan-outs:
///
///  1. **Exact per-element order.** Every kernel performs, for each
///     output element, the same scalar operation sequence as the naive
///     loop it replaces. Vectorization happens ACROSS independent
///     output elements (4 lanes of `t`), never by reassociating a
///     single element's accumulation. A kernel result is therefore
///     bitwise equal to the reference loop, so the Metropolis accept
///     decisions built on top of it replay identically.
///  2. **No hidden state.** Kernels read and write caller-owned SoA
///     buffers with explicit [from, to) ranges, which is what lets the
///     incremental likelihood workspace recompute only a suffix.
///
/// The 4-wide type uses GCC/Clang vector extensions when available
/// (SSE2/AVX codegen, per-lane IEEE semantics) and falls back to a
/// plain array otherwise; either way lane arithmetic is ordinary double
/// arithmetic, so the bit-identity contract holds on every compiler.

#include <cstddef>

namespace osprey::num::simd {

/// Lanes processed per block in the batched kernels.
inline constexpr int kLanes = 4;

#if defined(__GNUC__) || defined(__clang__)
#define OSPREY_SIMD_VEC_EXT 1
/// 4 doubles, element-wise IEEE ops (compiled to SSE2/AVX pairs).
typedef double Vec4d __attribute__((vector_size(4 * sizeof(double))));
#else
#define OSPREY_SIMD_VEC_EXT 0
struct Vec4d {
  double lane[4];
};
#endif

/// Piecewise-linear interpolation of log-knots onto daily R values,
/// rt[t] = exp(lerp(log_knots, t)), for t in [from_day, days).
///
/// Knot j sits at day j*spacing, except that when spacing does not
/// divide days-1 the FINAL knot sits at day days-1, so the last partial
/// segment interpolates over its true (shorter) length and reaches the
/// final knot exactly at the horizon boundary. (The pre-fix behaviour
/// divided by the full spacing there, under-weighting the final knot.)
void interp_log_knots_exp(const double* log_knots, int n_knots, int spacing,
                          int days, int from_day, double* rt);

/// Renewal-equation incidence recursion:
///   inc[burnin + t] = rt[t] * sum_{s=1..wlen} w[s-1] * inc[burnin+t-s]
/// for t in [from_day, days). Entries of inc below burnin + from_day
/// must already hold valid values (the i0 burn-in prefix and any cached
/// prefix); they are read, never written. Inherently sequential (each
/// day feeds the next), so this kernel is scalar by construction.
void renewal_incidence(const double* rt, const double* w, int wlen,
                       int burnin, int from_day, int days, double* inc);

/// Shedding-load convolution normalized by plant flow:
///   mu[t] = scale * (sum_{s>=0} shed[s] * inc[burnin + t - s]) / flow
/// for t in [from_day, days), truncating the sum where burnin+t-s < 0.
/// Batched 4 days per block: the s-accumulation of each lane runs in
/// the same order as the scalar loop, so each mu[t] is bitwise equal to
/// the reference implementation.
void shedding_convolve(const double* inc, const double* shed, int slen,
                       int burnin, double scale, double flow, int from_day,
                       int days, double* mu);

/// Lognormal observation terms for samples [from, n):
///   log_mu[i]  = log(mu[day[i]])
///   contrib[i] = 0.5 * z*z + log_sigma,  z = (log_c[i] - log_mu[i]) / sigma
/// Returns false (stopping at the offending sample, matching the
/// reference early-return) when mu[day[i]] is not > 0; `log_c` holds
/// precomputed log-concentrations and `positive_c[i]` whether the raw
/// concentration was > 0.
bool lognormal_terms(const double* mu, const int* day, const double* log_c,
                     const unsigned char* positive_c, std::size_t from,
                     std::size_t n, double sigma, double log_sigma,
                     double* log_mu, double* contrib);

/// out[t] += w * x[t] for t in [0, n): the ensemble-aggregation inner
/// loop. Element-wise (no reassociation), so accumulating members in a
/// fixed order stays bit-identical to the scalar reference.
void axpy(double w, const double* x, double* out, std::size_t n);

/// out[t] *= s for t in [0, n).
void scale(double s, double* out, std::size_t n);

/// out[i] = (a[i] - b[i])^2 for i in [0, n): the squared-difference
/// terms of the Jansen Sobol' estimators. Element-wise — callers keep
/// their own accumulation order over out[], so batched GSA replicate
/// fan-outs stay bitwise identical to the scalar path.
void sub_square(const double* a, const double* b, double* out, std::size_t n);

}  // namespace osprey::num::simd
