#include "num/vecmat.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Vector Matrix::row(std::size_t i) const {
  OSPREY_REQUIRE(i < rows_, "row index out of range");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(i * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols_));
}

void Matrix::set_row(std::size_t i, const Vector& v) {
  OSPREY_REQUIRE(i < rows_, "row index out of range");
  OSPREY_REQUIRE(v.size() == cols_, "row width mismatch");
  for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) = v[j];
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  OSPREY_REQUIRE(a.cols() == b.rows(), "matmul dimension mismatch");
  Matrix out(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

Matrix transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out(j, i) = a(i, j);
    }
  }
  return out;
}

Vector matvec(const Matrix& a, const Vector& x) {
  OSPREY_REQUIRE(a.cols() == x.size(), "matvec dimension mismatch");
  Vector out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    out[i] = s;
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  OSPREY_REQUIRE(a.size() == b.size(), "dot dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

Vector axpy(const Vector& a, double s, const Vector& b) {
  OSPREY_REQUIRE(a.size() == b.size(), "axpy dimension mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

}  // namespace osprey::num
