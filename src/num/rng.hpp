#pragma once

/// \file rng.hpp
/// Deterministic, splittable random streams. Every stochastic component
/// in the repository draws from an RngStream; replicate k of an
/// experiment uses substream(k), reproducing the paper's "each replicate
/// generated using a unique random stream seed value".
///
/// The generator is xoshiro256**-style state initialized by splitmix64;
/// all distribution samplers are implemented here (no std::*_distribution)
/// so results are bit-identical across standard libraries.

#include <cstdint>
#include <vector>

namespace osprey::num {

class RngStream {
 public:
  /// stream 0 of the given seed.
  explicit RngStream(std::uint64_t seed = 1, std::uint64_t stream = 0);

  /// Derive an independent child stream; deterministic in (this stream's
  /// identity, key) and independent of how many draws were made.
  RngStream substream(std::uint64_t key) const;

  std::uint64_t next_u64();
  /// Uniform in [0, 1) with 53-bit resolution.
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal (polar Box–Muller, cached spare).
  double normal();
  double normal(double mean, double sd);
  double lognormal(double mu, double sigma);
  double exponential(double rate);
  /// Gamma(shape, scale) via Marsaglia–Tsang.
  double gamma(double shape, double scale);
  double beta(double a, double b);
  /// Exact Poisson (Knuth for small mean, PTRS rejection for large).
  std::int64_t poisson(double mean);
  /// Exact Binomial(n, p) (Bernoulli sum / inversion / BTRS rejection).
  std::int64_t binomial(std::int64_t n, double p);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
  std::uint64_t seed_;
  std::uint64_t stream_;

  std::int64_t binomial_btrs(std::int64_t n, double p);
  std::int64_t poisson_ptrs(double mean);
};

}  // namespace osprey::num
