#pragma once

/// \file sampling.hpp
/// Experimental-design sampling: Latin hypercube samples (the MUSIC
/// initial design), Sobol' low-discrepancy sequences (Saltelli reference
/// estimates), and range scaling between the unit cube and parameter
/// boxes (Table 1 ranges).

#include <cstdint>
#include <string>
#include <vector>

#include "num/rng.hpp"
#include "num/vecmat.hpp"

namespace osprey::num {

/// A named parameter interval [lo, hi].
struct ParamRange {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
};

/// Map u in [0,1]^d to the box defined by `ranges` (row-wise).
Vector scale_to_box(const Vector& u, const std::vector<ParamRange>& ranges);
/// Inverse of scale_to_box.
Vector scale_to_unit(const Vector& x, const std::vector<ParamRange>& ranges);

/// Latin hypercube sample: n points in [0,1]^d, one per stratum per
/// dimension, with uniform jitter inside strata.
Matrix latin_hypercube(std::size_t n, std::size_t d, RngStream& rng);

/// Gray-code Sobol' sequence generator for up to 10 dimensions
/// (Joe–Kuo direction numbers). Skips the all-zeros first point.
class SobolSequence {
 public:
  explicit SobolSequence(std::size_t dim);

  static constexpr std::size_t kMaxDim = 10;

  std::size_t dim() const { return dim_; }

  /// Next point in [0,1)^d.
  Vector next();

  /// Generate n points as an n×d matrix.
  Matrix generate(std::size_t n);

 private:
  std::size_t dim_;
  std::uint64_t index_ = 0;
  std::vector<std::vector<std::uint32_t>> v_;  // direction numbers per dim
  std::vector<std::uint32_t> x_;               // current integer state
};

/// Scale every row of a unit-cube design into the parameter box.
Matrix scale_design(const Matrix& unit, const std::vector<ParamRange>& ranges);

}  // namespace osprey::num
