#include "num/sampling.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::num {

Vector scale_to_box(const Vector& u, const std::vector<ParamRange>& ranges) {
  OSPREY_REQUIRE(u.size() == ranges.size(), "scale_to_box size mismatch");
  Vector x(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    x[i] = ranges[i].lo + (ranges[i].hi - ranges[i].lo) * u[i];
  }
  return x;
}

Vector scale_to_unit(const Vector& x, const std::vector<ParamRange>& ranges) {
  OSPREY_REQUIRE(x.size() == ranges.size(), "scale_to_unit size mismatch");
  Vector u(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    double width = ranges[i].hi - ranges[i].lo;
    OSPREY_REQUIRE(width > 0.0, "degenerate parameter range");
    u[i] = (x[i] - ranges[i].lo) / width;
  }
  return u;
}

Matrix latin_hypercube(std::size_t n, std::size_t d, RngStream& rng) {
  OSPREY_REQUIRE(n > 0 && d > 0, "latin_hypercube needs n, d > 0");
  Matrix out(n, d);
  for (std::size_t j = 0; j < d; ++j) {
    std::vector<std::size_t> perm = rng.permutation(n);
    for (std::size_t i = 0; i < n; ++i) {
      double stratum = static_cast<double>(perm[i]);
      out(i, j) = (stratum + rng.uniform()) / static_cast<double>(n);
    }
  }
  return out;
}

namespace {

/// Primitive polynomial degrees, coefficients and initial direction
/// numbers for Sobol' dimensions 2..10 (dimension 1 is van der Corput).
/// Values from the Joe–Kuo "new-joe-kuo-6" table.
struct SobolDim {
  unsigned s;                        // polynomial degree
  unsigned a;                        // polynomial coefficient bits
  std::vector<std::uint32_t> m;      // initial direction integers
};

const SobolDim kJoeKuo[] = {
    {1, 0, {1}},            // dim 2
    {2, 1, {1, 3}},         // dim 3
    {3, 1, {1, 3, 1}},      // dim 4
    {3, 2, {1, 1, 1}},      // dim 5
    {4, 1, {1, 1, 3, 3}},   // dim 6
    {4, 4, {1, 3, 5, 13}},  // dim 7
    {5, 2, {1, 1, 5, 5, 17}},   // dim 8
    {5, 4, {1, 1, 5, 5, 5}},    // dim 9
    {5, 7, {1, 1, 7, 11, 19}},  // dim 10
};

constexpr unsigned kBits = 32;

}  // namespace

SobolSequence::SobolSequence(std::size_t dim) : dim_(dim) {
  OSPREY_REQUIRE(dim >= 1 && dim <= kMaxDim,
                 "SobolSequence supports 1..10 dimensions");
  v_.resize(dim_);
  x_.assign(dim_, 0);
  // Dimension 1: van der Corput, v_k = 2^(31-k).
  v_[0].resize(kBits);
  for (unsigned k = 0; k < kBits; ++k) {
    v_[0][k] = 1u << (31 - k);
  }
  for (std::size_t j = 1; j < dim_; ++j) {
    const SobolDim& dj = kJoeKuo[j - 1];
    std::vector<std::uint32_t>& v = v_[j];
    v.resize(kBits);
    for (unsigned k = 0; k < dj.s && k < kBits; ++k) {
      v[k] = dj.m[k] << (31 - k);
    }
    for (unsigned k = dj.s; k < kBits; ++k) {
      std::uint32_t val = v[k - dj.s] ^ (v[k - dj.s] >> dj.s);
      for (unsigned i = 1; i < dj.s; ++i) {
        if ((dj.a >> (dj.s - 1 - i)) & 1u) {
          val ^= v[k - i];
        }
      }
      v[k] = val;
    }
  }
}

Vector SobolSequence::next() {
  // Gray-code update: flip the direction of the lowest zero bit of index.
  std::uint64_t i = index_++;
  unsigned c = 0;
  while (i & 1u) {
    i >>= 1;
    ++c;
  }
  OSPREY_CHECK(c < kBits, "Sobol sequence exhausted");
  Vector out(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    x_[j] ^= v_[j][c];
    out[j] = static_cast<double>(x_[j]) * 0x1.0p-32;
  }
  return out;
}

Matrix SobolSequence::generate(std::size_t n) {
  Matrix out(n, dim_);
  for (std::size_t i = 0; i < n; ++i) {
    Vector p = next();
    out.set_row(i, p);
  }
  return out;
}

Matrix scale_design(const Matrix& unit,
                    const std::vector<ParamRange>& ranges) {
  OSPREY_REQUIRE(unit.cols() == ranges.size(), "scale_design size mismatch");
  Matrix out(unit.rows(), unit.cols());
  for (std::size_t i = 0; i < unit.rows(); ++i) {
    for (std::size_t j = 0; j < unit.cols(); ++j) {
      out(i, j) = ranges[j].lo + (ranges[j].hi - ranges[j].lo) * unit(i, j);
    }
  }
  return out;
}

}  // namespace osprey::num
