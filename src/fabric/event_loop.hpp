#pragma once

/// \file event_loop.hpp
/// Deterministic discrete-event core of the simulated research fabric.
/// All Globus-like services (storage, transfer, compute, timers, the
/// batch scheduler) and the AERO server schedule their work here, so a
/// months-long "always-on" workflow executes in milliseconds of real
/// time and is exactly reproducible.

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sim_time.hpp"

namespace osprey::fabric {

using osprey::util::SimTime;

using EventId = std::uint64_t;

/// Single-threaded priority-queue event loop over virtual time.
/// Events at equal times fire in scheduling order (stable).
class EventLoop {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (>= now).
  EventId schedule_at(SimTime t, Callback cb);
  /// Schedule `cb` at now + dt.
  EventId schedule_after(SimTime dt, Callback cb);

  /// Cancel a pending event; returns false if it already fired or is
  /// unknown.
  bool cancel(EventId id);

  /// Process all events with time <= t, then advance the clock to t.
  /// Returns the number of events processed.
  std::size_t run_until(SimTime t);

  /// Process events until the queue is empty (events may schedule more
  /// events; a safety cap guards against runaway self-scheduling loops).
  std::size_t run_all(std::size_t max_events = 10'000'000);

  bool empty() const { return callbacks_.empty(); }
  std::size_t pending() const { return callbacks_.size(); }
  std::uint64_t events_processed() const { return processed_->value(); }

  /// Bind the processed-events counter to `metrics` (non-owning;
  /// nullptr reverts to the loop's private fallback counter).
  void set_metrics(obs::MetricsRegistry* metrics);

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // doubles as the EventId
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  // Always points at a live obs::Counter: the owned fallback until
  // set_metrics binds a registry, so events_processed() works unwired.
  obs::Counter own_processed_;
  obs::Counter* processed_ = &own_processed_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  // Live callbacks; cancellation erases the entry, leaving a tombstone in
  // the priority queue that fire_next() skips.
  std::map<EventId, Callback> callbacks_;

  /// Pop queue entries until one is live and run it; returns false when
  /// nothing is live.
  bool fire_next();
};

}  // namespace osprey::fabric
