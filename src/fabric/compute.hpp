#pragma once

/// \file compute.hpp
/// Simulated Globus Compute (funcX): a federated function-serving
/// endpoint. Users register functions and execute them remotely with
/// JSON-like arguments. Two endpoint kinds reproduce the paper's setup:
///
///  - kLoginNode: a shared login node with a small number of slots;
///    cheap tasks (the paper's data transformation and aggregation, each
///    "running in under a minute") execute here directly.
///  - kBatch: each execution submits a one-node job to the PBS-style
///    BatchScheduler (the paper's GlobusComputeEngine on Bebop), so
///    expensive tasks pay queue wait before running.
///
/// Functions execute real C++ inline; their *virtual* duration is the
/// registered cost (possibly input-dependent).

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "fabric/auth.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/fault.hpp"
#include "fabric/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/uuid.hpp"
#include "util/value.hpp"

namespace osprey::fabric {

using osprey::util::Value;

/// A registered remote function: Value in, Value out.
using ComputeFn = std::function<Value(const Value&)>;
/// Virtual cost model for a function, possibly input-dependent.
using CostFn = std::function<SimTime(const Value&)>;

using ComputeTaskId = std::uint64_t;

enum class ComputeTaskStatus { kPending, kRunning, kSucceeded, kFailed };

struct ComputeTaskRecord {
  ComputeTaskId id = 0;
  std::string function_name;
  std::string endpoint;
  SimTime submitted = 0;
  SimTime started = -1;
  SimTime completed = -1;
  ComputeTaskStatus status = ComputeTaskStatus::kPending;
  std::string error;
  obs::SpanId trace_span = obs::kNoSpan;
};

enum class EndpointKind { kLoginNode, kBatch };

/// A Globus-Compute-like endpoint bound to either login-node slots or a
/// batch scheduler.
class ComputeEndpoint {
 public:
  /// Login-node endpoint with `slots` concurrent execution slots.
  ComputeEndpoint(std::string name, EventLoop& loop, AuthService& auth,
                  int slots);
  /// Batch endpoint: executions become one-node jobs on `scheduler`.
  ComputeEndpoint(std::string name, EventLoop& loop, AuthService& auth,
                  BatchScheduler& scheduler);

  const std::string& name() const { return name_; }
  EndpointKind kind() const { return kind_; }

  /// Attach a chaos FaultPlan (non-owning; nullptr detaches). The plan
  /// can kill tasks mid-run (walltime-style) and declare outage windows
  /// during which submissions fail fast ("endpoint unreachable").
  void set_fault_plan(FaultPlan* plan) { plan_ = plan; }

  /// Attach a trace recorder (non-owning; nullptr detaches). Each task
  /// becomes a span from submission to completion (queue wait included),
  /// parented to the submitting thread's current span.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Bind task counters and the end-to-end latency histogram to
  /// `metrics` (non-owning; nullptr detaches).
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Walltime requested for each batch job (batch endpoints only).
  /// Tasks whose declared cost exceeds it are killed by the scheduler
  /// and reported failed ("walltime exceeded").
  void set_batch_walltime(SimTime walltime);
  SimTime batch_walltime() const { return batch_walltime_; }

  /// Register a function with a fixed virtual cost.
  std::string register_function(const std::string& name, ComputeFn fn,
                                SimTime cost);
  /// Register a function with an input-dependent virtual cost.
  std::string register_function(const std::string& name, ComputeFn fn,
                                CostFn cost);
  bool has_function(const std::string& function_id) const;

  using Callback =
      std::function<void(const Value& result, const ComputeTaskRecord&)>;

  /// Execute asynchronously; `on_done` fires in virtual time once the
  /// task has run (or failed — result is null and record.error set).
  ComputeTaskId execute(const std::string& function_id, Value args,
                        const std::string& token, Callback on_done);

  const ComputeTaskRecord& task(ComputeTaskId id) const;
  const std::vector<ComputeTaskRecord>& tasks() const { return records_; }
  std::size_t completed_count() const {
    return static_cast<std::size_t>(m_succeeded_->value() +
                                    m_failed_->value());
  }

 private:
  struct Registered {
    std::string name;
    ComputeFn fn;
    CostFn cost;
  };

  struct PendingTask {
    ComputeTaskId id;
    const Registered* fn;
    Value args;
    Callback on_done;
  };

  void run_on_login_node(PendingTask task);
  void run_via_scheduler(PendingTask task);
  void drain_login_queue();
  /// Executes the function body, fills the record, schedules the callback
  /// `duration` later. When `limit >= 0` and the declared cost exceeds
  /// it, the body is NOT run: the task fails at the limit (walltime
  /// kill). Returns the virtual duration the resources are occupied.
  SimTime execute_body(PendingTask& task, SimTime limit = -1);

  std::string name_;
  EventLoop& loop_;
  AuthService& auth_;
  EndpointKind kind_;
  int slots_ = 1;
  int busy_slots_ = 0;
  BatchScheduler* scheduler_ = nullptr;
  FaultPlan* plan_ = nullptr;
  SimTime batch_walltime_ = 4 * osprey::util::kHour;
  osprey::util::UuidFactory uuids_;
  std::map<std::string, Registered> functions_;  // id -> registration
  std::vector<ComputeTaskRecord> records_;
  std::deque<PendingTask> login_queue_;
  obs::TraceRecorder* tracer_ = nullptr;
  // Task counters always point at a live obs::Counter: the owned
  // fallbacks until set_metrics binds a registry, so completed_count()
  // works unwired. The histogram stays optional.
  obs::Counter own_succeeded_, own_failed_;
  obs::Counter* m_succeeded_ = &own_succeeded_;
  obs::Counter* m_failed_ = &own_failed_;
  obs::Histogram* m_latency_ = nullptr;

  /// Ends the span and bumps metrics when a task record completes.
  void finish_obs(const ComputeTaskRecord& rec);
};

}  // namespace osprey::fabric
