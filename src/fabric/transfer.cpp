#include "fabric/transfer.hpp"

#include <cmath>

#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace osprey::fabric {

TransferService::TransferService(EventLoop& loop, AuthService& auth,
                                 SimTime latency,
                                 double bandwidth_bytes_per_s)
    : loop_(loop),
      auth_(auth),
      latency_(latency),
      bandwidth_(bandwidth_bytes_per_s) {
  OSPREY_REQUIRE(bandwidth_ > 0.0, "bandwidth must be positive");
}

void TransferService::inject_failures(double rate, std::uint64_t seed) {
  OSPREY_REQUIRE(rate >= 0.0 && rate <= 1.0, "failure rate in [0,1]");
  failure_rate_ = rate;
  failure_state_ = seed | 1;
}

bool TransferService::should_fail_next() {
  if (failure_rate_ <= 0.0) return false;
  // splitmix64 step on the private counter.
  std::uint64_t z = (failure_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  if (u < failure_rate_) {
    ++injected_;
    return true;
  }
  return false;
}

SimTime TransferService::duration_for(std::uint64_t bytes) const {
  double seconds = static_cast<double>(bytes) / bandwidth_;
  return latency_ + static_cast<SimTime>(
                        std::llround(seconds * osprey::util::kSecond));
}

TransferId TransferService::transfer(
    StorageEndpoint& src, const std::string& src_collection,
    const std::string& src_path, StorageEndpoint& dst,
    const std::string& dst_collection, const std::string& dst_path,
    const std::string& token, Callback on_done) {
  auth_.validate(token, scopes::kTransfer);

  TransferId id = records_.size();
  TransferRecord rec;
  rec.id = id;
  rec.src_endpoint = src.name();
  rec.src_collection = src_collection;
  rec.src_path = src_path;
  rec.dst_endpoint = dst.name();
  rec.dst_collection = dst_collection;
  rec.dst_path = dst_path;
  rec.submitted = loop_.now();

  // Snapshot the source now; the copy materializes at completion time.
  std::string bytes;
  std::string checksum;
  std::string error;
  bool read_ok = true;
  try {
    const StoredObject& obj = src.get(src_collection, src_path, token);
    bytes = obj.bytes;
    checksum = obj.checksum;
  } catch (const osprey::util::Error& e) {
    read_ok = false;
    error = e.what();
  }

  rec.bytes = bytes.size();
  rec.checksum = checksum;
  records_.push_back(rec);

  if (!read_ok) {
    records_[id].status = TransferStatus::kFailed;
    records_[id].error = error;
    records_[id].completed = loop_.now();
    if (on_done) {
      loop_.schedule_after(0, [this, id, on_done] { on_done(records_[id]); });
    }
    return id;
  }

  if (should_fail_next()) {
    // Injected network failure: surfaces after the setup latency, like a
    // dropped connection.
    loop_.schedule_after(latency_, [this, id, on_done] {
      TransferRecord& r = records_[id];
      r.status = TransferStatus::kFailed;
      r.error = "injected network failure";
      r.completed = loop_.now();
      if (on_done) on_done(r);
    });
    return id;
  }

  SimTime duration = duration_for(rec.bytes);
  loop_.schedule_after(
      duration, [this, id, &dst, dst_collection, dst_path, token,
                 bytes = std::move(bytes), checksum, on_done] {
        TransferRecord& r = records_[id];
        try {
          std::string written = dst.put(dst_collection, dst_path, bytes, token);
          if (written != checksum) {
            // Unreachable by construction, but integrity is checked the
            // way real Globus transfers verify checksums.
            throw osprey::util::IntegrityError("checksum mismatch after copy");
          }
          r.status = TransferStatus::kSucceeded;
          ++completed_;
        } catch (const osprey::util::Error& e) {
          r.status = TransferStatus::kFailed;
          r.error = e.what();
        }
        r.completed = loop_.now();
        OSPREY_LOG_DEBUG("transfer",
                         r.src_endpoint << "/" << r.src_path << " -> "
                                        << r.dst_endpoint << "/" << r.dst_path
                                        << " (" << r.bytes << " B)");
        if (on_done) on_done(r);
      });
  return id;
}

const TransferRecord& TransferService::record(TransferId id) const {
  OSPREY_REQUIRE(id < records_.size(), "unknown transfer id");
  return records_[id];
}

}  // namespace osprey::fabric
