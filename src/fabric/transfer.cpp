#include "fabric/transfer.hpp"

#include <cmath>

#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace osprey::fabric {

TransferService::TransferService(EventLoop& loop, AuthService& auth,
                                 SimTime latency,
                                 double bandwidth_bytes_per_s)
    : loop_(loop),
      auth_(auth),
      latency_(latency),
      bandwidth_(bandwidth_bytes_per_s) {
  OSPREY_REQUIRE(bandwidth_ > 0.0, "bandwidth must be positive");
}

void TransferService::inject_failures(double rate, std::uint64_t seed) {
  OSPREY_REQUIRE(rate >= 0.0 && rate <= 1.0, "failure rate in [0,1]");
  failure_rate_ = rate;
  failure_state_ = seed | 1;
}

bool TransferService::should_fail_next() {
  if (failure_rate_ <= 0.0) return false;
  // splitmix64 step on the private counter.
  std::uint64_t z = (failure_state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  if (u < failure_rate_) {
    m_injected_->inc();
    return true;
  }
  return false;
}

void TransferService::set_default_timeout(SimTime timeout) {
  OSPREY_REQUIRE(timeout >= 0, "timeout must be non-negative");
  timeout_ = timeout;
}

void TransferService::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_completed_ = &own_completed_;
    m_failed_ = &own_failed_;
    m_injected_ = &own_injected_;
    m_bytes_ = nullptr;
    return;
  }
  m_completed_ = &metrics->counter("fabric_transfers_completed_total",
                                   "transfers whose destination write "
                                   "completed and verified");
  m_failed_ = &metrics->counter("fabric_transfers_failed_total",
                                "transfers that ended in a terminal failure");
  m_injected_ = &metrics->counter(
      "fabric_transfers_injected_failures_total",
      "transfer failures injected by inject_failures()");
  m_bytes_ = &metrics->histogram(
      "fabric_transfer_bytes", {1e3, 1e4, 1e5, 1e6, 1e7, 1e8},
      "payload size per completed transfer (bytes)");
}

void TransferService::finish_obs(const TransferRecord& rec) {
  const bool ok = rec.status == TransferStatus::kSucceeded;
  if (tracer_ != nullptr) {
    tracer_->end_span(rec.trace_span, obs::sim_ns(rec.completed), ok,
                      rec.error);
  }
  if (ok) {
    m_completed_->inc();
    if (m_bytes_ != nullptr) {
      m_bytes_->observe(static_cast<double>(rec.bytes));
    }
  } else {
    m_failed_->inc();
  }
}

void TransferService::fail_after(TransferId id, SimTime delay,
                                 std::string error, const Callback& on_done) {
  loop_.schedule_after(delay,
                       [this, id, error = std::move(error), on_done] {
                         TransferRecord& r = records_[id];
                         r.status = TransferStatus::kFailed;
                         r.error = error;
                         r.completed = loop_.now();
                         finish_obs(r);
                         if (on_done) on_done(r);
                       });
}

SimTime TransferService::duration_for(std::uint64_t bytes) const {
  double seconds = static_cast<double>(bytes) / bandwidth_;
  return latency_ + static_cast<SimTime>(
                        std::llround(seconds * osprey::util::kSecond));
}

TransferId TransferService::transfer(
    StorageEndpoint& src, const std::string& src_collection,
    const std::string& src_path, StorageEndpoint& dst,
    const std::string& dst_collection, const std::string& dst_path,
    const std::string& token, Callback on_done) {
  auth_.validate(token, scopes::kTransfer);

  TransferId id = records_.size();
  TransferRecord rec;
  rec.id = id;
  rec.src_endpoint = src.name();
  rec.src_collection = src_collection;
  rec.src_path = src_path;
  rec.dst_endpoint = dst.name();
  rec.dst_collection = dst_collection;
  rec.dst_path = dst_path;
  rec.submitted = loop_.now();

  // Snapshot the source now; the copy materializes at completion time.
  std::string bytes;
  std::string checksum;
  std::string error;
  bool read_ok = true;
  try {
    const StoredObject& obj = src.get(src_collection, src_path, token);
    bytes = obj.bytes;
    checksum = obj.checksum;
  } catch (const osprey::util::Error& e) {
    read_ok = false;
    error = e.what();
  }

  rec.bytes = bytes.size();
  rec.checksum = checksum;
  records_.push_back(rec);
  if (tracer_ != nullptr) {
    records_[id].trace_span = tracer_->begin_span(
        obs::Category::kTransfer,
        "transfer:" + rec.src_endpoint + "->" + rec.dst_endpoint,
        obs::sim_ns(rec.submitted), obs::kInheritParent,
        std::to_string(rec.bytes) + " B " + dst_collection + "/" + dst_path);
  }

  if (!read_ok) {
    records_[id].status = TransferStatus::kFailed;
    records_[id].error = error;
    records_[id].completed = loop_.now();
    finish_obs(records_[id]);
    if (on_done) {
      loop_.schedule_after(0, [this, id, on_done] { on_done(records_[id]); });
    }
    return id;
  }

  if (should_fail_next()) {
    // Injected network failure: surfaces after the setup latency, like a
    // dropped connection.
    fail_after(id, latency_, "injected network failure", on_done);
    return id;
  }

  SimTime now = loop_.now();
  if (plan_ != nullptr &&
      plan_->should_inject(FaultKind::kTransferDrop, "transfer", dst.name(),
                           now)) {
    fail_after(id, latency_, "injected network failure", on_done);
    return id;
  }

  SimTime stall = 0;
  if (plan_ != nullptr &&
      plan_->should_inject(FaultKind::kTransferStall, "transfer", dst.name(),
                           now)) {
    stall = plan_->stall_delay;
  }
  SimTime duration = duration_for(rec.bytes) + stall;
  if (timeout_ > 0 && duration > timeout_) {
    // The per-operation timeout converts a stalled transfer into a
    // recoverable failure instead of an indefinitely late completion.
    fail_after(id, timeout_,
               "transfer timed out after " +
                   osprey::util::format_duration(timeout_),
               on_done);
    return id;
  }

  if (plan_ != nullptr &&
      plan_->should_inject(FaultKind::kTransferCorrupt, "transfer",
                           dst.name(), now)) {
    // Flip a bit in flight; the digest check below must catch it.
    if (bytes.empty()) {
      bytes.push_back('\x01');
    } else {
      bytes[0] = static_cast<char>(bytes[0] ^ 0x01);
    }
  }

  loop_.schedule_after(
      duration, [this, id, &dst, dst_collection, dst_path, token,
                 bytes = std::move(bytes), checksum, on_done] {
        TransferRecord& r = records_[id];
        // Verify the digest of what actually arrived BEFORE the
        // destination write: a corrupted payload is rejected, never
        // accepted into storage (the caller re-transfers).
        std::string digest = osprey::crypto::Sha256::hash_hex(bytes);
        if (digest != checksum) {
          r.status = TransferStatus::kFailed;
          r.error = "checksum mismatch: payload corrupted in flight";
          if (plan_ != nullptr) {
            plan_->log().record(loop_.now(), IncidentCategory::kRecovery,
                                "corrupt-payload-rejected", "transfer",
                                r.dst_endpoint,
                                r.dst_collection + "/" + r.dst_path +
                                    " rejected before write");
          }
        } else {
          try {
            dst.put(dst_collection, dst_path, bytes, token);
            r.status = TransferStatus::kSucceeded;
          } catch (const osprey::util::Error& e) {
            r.status = TransferStatus::kFailed;
            r.error = e.what();
          }
        }
        r.completed = loop_.now();
        finish_obs(r);
        OSPREY_LOG_DEBUG("transfer",
                         r.src_endpoint << "/" << r.src_path << " -> "
                                        << r.dst_endpoint << "/" << r.dst_path
                                        << " (" << r.bytes << " B)");
        if (on_done) on_done(r);
      });
  return id;
}

const TransferRecord& TransferService::record(TransferId id) const {
  OSPREY_REQUIRE(id < records_.size(), "unknown transfer id");
  return records_[id];
}

}  // namespace osprey::fabric
