#pragma once

/// \file timer.hpp
/// Simulated Globus Timers: periodic actions on the research fabric.
/// AERO's ingestion flows poll their upstream data source "at a user
/// specifiable frequency, in this case daily" through this service.

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "fabric/auth.hpp"
#include "fabric/event_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace osprey::fabric {

using TimerId = std::uint64_t;

/// Periodic callback scheduling with cancellation.
class TimerService {
 public:
  TimerService(EventLoop& loop, AuthService& auth);

  /// Fire `fn` first at `first_at` (absolute) and then every `period`.
  TimerId every(SimTime period, SimTime first_at, std::function<void()> fn,
                const std::string& token, const std::string& name = "");

  /// Cancel; returns false for unknown/finished timers.
  bool cancel(TimerId id);

  /// Attach a trace recorder (non-owning; nullptr detaches). Every
  /// firing becomes an instant event ("timer:<name>").
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Bind the fires counter to `metrics` (non-owning; nullptr reverts
  /// to the service's private fallback counter).
  void set_metrics(obs::MetricsRegistry* metrics);

  std::size_t active_count() const { return timers_.size(); }
  std::uint64_t total_fires() const { return fires_->value(); }

 private:
  struct Timer {
    std::string name;
    SimTime period;
    std::function<void()> fn;
    EventId pending_event;
  };

  void arm(TimerId id, SimTime at);

  EventLoop& loop_;
  AuthService& auth_;
  std::map<TimerId, Timer> timers_;
  TimerId next_id_ = 0;
  // Always points at a live obs::Counter: the owned fallback until
  // set_metrics binds a registry, so total_fires() works unwired.
  obs::Counter own_fires_;
  obs::Counter* fires_ = &own_fires_;
  obs::TraceRecorder* tracer_ = nullptr;
};

}  // namespace osprey::fabric
