#pragma once

/// \file auth.hpp
/// Simulated Globus Auth: identities, bearer tokens, and scope checks.
/// Every fabric service validates the caller's token and required scope,
/// mirroring the paper's reliance on "the security and robustness of
/// Globus technologies such as Globus Auth".

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fabric/fault.hpp"
#include "util/uuid.hpp"

namespace osprey::fabric {

class EventLoop;

/// Well-known scopes used by the fabric services.
namespace scopes {
inline const char* kStorageRead = "storage:read";
inline const char* kStorageWrite = "storage:write";
inline const char* kTransfer = "transfer";
inline const char* kCompute = "compute";
inline const char* kFlows = "flows";
inline const char* kTimers = "timers";
/// Serving-tier reads (serve::FrontEnd admission).
inline const char* kServe = "serve";
}  // namespace scopes

struct TokenInfo {
  std::string identity;
  std::set<std::string> scopes;
  bool revoked = false;
};

/// Issues and validates bearer tokens.
class AuthService {
 public:
  explicit AuthService(std::uint64_t seed = 0xA117);

  /// Issue a token for `identity` carrying `scopes`.
  std::string issue_token(const std::string& identity,
                          const std::vector<std::string>& token_scopes);

  /// Issue a token carrying every well-known scope (convenience for
  /// platform bootstrap).
  std::string issue_full_token(const std::string& identity);

  void revoke(const std::string& token);

  /// Attach a chaos FaultPlan (non-owning; nullptr detaches both). The
  /// plan can make validate() fail transiently ("token expired"); the
  /// loop supplies virtual timestamps for the incident log.
  void set_fault_plan(FaultPlan* plan, const EventLoop* loop);

  /// Validate token + scope; throws AuthError on unknown/revoked tokens
  /// or missing scope. Returns the token's info on success.
  const TokenInfo& validate(const std::string& token,
                            const std::string& required_scope) const;

  /// Identity behind a token (throws AuthError if unknown/revoked).
  const std::string& identity_of(const std::string& token) const;

  std::size_t tokens_issued() const { return issued_; }
  std::size_t validations() const { return validations_; }

 private:
  osprey::util::UuidFactory uuids_;
  std::map<std::string, TokenInfo> tokens_;
  std::size_t issued_ = 0;
  mutable std::size_t validations_ = 0;
  FaultPlan* plan_ = nullptr;
  const EventLoop* loop_ = nullptr;
};

}  // namespace osprey::fabric
