#include "fabric/scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace osprey::fabric {

const char* job_state_name(JobState s) {
  switch (s) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kComplete: return "COMPLETE";
    case JobState::kTimeout: return "TIMEOUT";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "?";
}

BatchScheduler::BatchScheduler(EventLoop& loop, int total_nodes,
                               std::string name)
    : loop_(loop),
      total_nodes_(total_nodes),
      free_nodes_(total_nodes),
      name_(std::move(name)) {
  OSPREY_REQUIRE(total_nodes > 0, "scheduler needs at least one node");
}

void BatchScheduler::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_queue_wait_ = nullptr;
    return;
  }
  m_queue_wait_ = &metrics->histogram(
      "fabric_job_queue_wait_ms",
      {1e3, 60e3, 600e3, 3.6e6, 14.4e6, 86.4e6},
      "virtual queue wait per started batch job (ms)");
}

JobId BatchScheduler::submit(JobSpec spec) {
  OSPREY_REQUIRE(spec.nodes >= 1, "job needs at least one node");
  OSPREY_REQUIRE(spec.nodes <= total_nodes_,
                 "job requests more nodes than the machine has");
  OSPREY_REQUIRE(static_cast<bool>(spec.run), "job has no work");
  JobId id = records_.size();
  JobRecord rec;
  rec.id = id;
  rec.name = spec.name;
  rec.nodes = spec.nodes;
  rec.submitted = loop_.now();
  records_.push_back(rec);
  if (tracer_ != nullptr) {
    records_[id].trace_span = tracer_->begin_span(
        obs::Category::kCompute, "job:" + records_[id].name,
        obs::sim_ns(rec.submitted), obs::kInheritParent,
        name_ + ", " + std::to_string(rec.nodes) + " node(s)");
  }
  if (first_submit_ < 0) first_submit_ = loop_.now();
  queue_.push_back(QueuedJob{id, std::move(spec)});
  // Start eligible jobs on the next tick so submission order within one
  // event is respected.
  loop_.schedule_after(0, [this] { try_start_jobs(); });
  return id;
}

bool BatchScheduler::cancel(JobId id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      queue_.erase(it);
      records_[id].state = JobState::kCancelled;
      records_[id].ended = loop_.now();
      if (tracer_ != nullptr) {
        tracer_->end_span(records_[id].trace_span,
                          obs::sim_ns(records_[id].ended), false, "cancelled");
      }
      return true;
    }
  }
  return false;
}

void BatchScheduler::try_start_jobs() {
  if (plan_ != nullptr &&
      plan_->in_window(FaultKind::kEndpointOutage, "scheduler", name_,
                       loop_.now())) {
    // Machine outage: jobs stay queued; one re-check is armed for the
    // end of the (longest matching) window.
    if (!outage_recheck_pending_) {
      outage_recheck_pending_ = true;
      SimTime end = plan_->window_end(FaultKind::kEndpointOutage, name_,
                                      loop_.now());
      loop_.schedule_at(end, [this] {
        outage_recheck_pending_ = false;
        try_start_jobs();
      });
    }
    return;
  }
  // FIFO with first-fit backfill: walk the queue and start every job
  // that fits in the currently free nodes.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->spec.nodes > free_nodes_) {
      ++it;
      continue;
    }
    JobId id = it->id;
    JobSpec spec = std::move(it->spec);
    it = queue_.erase(it);

    free_nodes_ -= spec.nodes;
    JobRecord& rec = records_[id];
    rec.state = JobState::kRunning;
    rec.started = loop_.now();
    if (m_queue_wait_ != nullptr) {
      m_queue_wait_->observe(static_cast<double>(rec.queue_wait()));
    }
    OSPREY_LOG_DEBUG("pbs", "job " << id << " '" << rec.name << "' started on "
                                   << spec.nodes << " node(s)");

    // The work executes inline at start time and declares its duration;
    // the guard parents the compute task's span under the job's span.
    obs::CurrentSpanGuard span_guard(tracer_ != nullptr ? rec.trace_span
                                                        : obs::current_span());
    SimTime duration = spec.run();
    OSPREY_CHECK(duration >= 0, "job reported negative duration");
    bool timed_out = duration > spec.walltime;
    SimTime occupied = std::min(duration, spec.walltime);
    loop_.schedule_after(occupied, [this, id, timed_out] {
      finish_job(id, timed_out ? JobState::kTimeout : JobState::kComplete);
    });
  }
}

void BatchScheduler::finish_job(JobId id, JobState state) {
  JobRecord& rec = records_[id];
  rec.state = state;
  rec.ended = loop_.now();
  if (tracer_ != nullptr) {
    tracer_->end_span(rec.trace_span, obs::sim_ns(rec.ended),
                      state == JobState::kComplete,
                      state == JobState::kComplete ? std::string()
                                                   : job_state_name(state));
  }
  free_nodes_ += rec.nodes;
  busy_node_ms_ += static_cast<double>(rec.nodes) *
                   static_cast<double>(rec.ended - rec.started);
  last_end_ = std::max(last_end_, rec.ended);
  OSPREY_LOG_DEBUG("pbs", "job " << id << " " << job_state_name(state));
  try_start_jobs();
}

const JobRecord& BatchScheduler::job(JobId id) const {
  OSPREY_REQUIRE(id < records_.size(), "unknown job id");
  return records_[id];
}

double BatchScheduler::utilization() const {
  if (first_submit_ < 0 || last_end_ <= first_submit_) return 0.0;
  double span = static_cast<double>(last_end_ - first_submit_) *
                static_cast<double>(total_nodes_);
  return busy_node_ms_ / span;
}

}  // namespace osprey::fabric
