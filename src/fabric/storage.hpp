#pragma once

/// \file storage.hpp
/// Simulated Globus storage endpoint: named collections holding
/// checksummed objects with per-identity ACLs. Plays the role of the
/// ALCF "Eagle" Globus endpoint in the paper — the "bring your own
/// storage" half of AERO's design. Payloads live here, never in the
/// AERO metadata server.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fabric/auth.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/fault.hpp"

namespace osprey::fabric {

enum class Permission { kNone, kRead, kReadWrite };

/// One stored blob plus its integrity/version metadata.
struct StoredObject {
  std::string bytes;
  std::string checksum;       // SHA-256 hex of bytes
  SimTime modified = 0;       // virtual time of the last write
  std::uint64_t generation = 0;  // bumped on every overwrite
};

/// A storage endpoint with collections, objects and ACLs.
class StorageEndpoint {
 public:
  /// `owner` has implicit read-write on every collection it creates.
  StorageEndpoint(std::string name, EventLoop& loop, AuthService& auth);

  const std::string& name() const { return name_; }

  /// Attach a chaos FaultPlan (non-owning; nullptr detaches). The plan
  /// can inject transient ACL propagation races into put/get, which
  /// surface as AuthError and are retried by the orchestration layer.
  void set_fault_plan(FaultPlan* plan) { plan_ = plan; }

  /// Create a collection owned by the token's identity.
  void create_collection(const std::string& collection,
                         const std::string& token);
  bool has_collection(const std::string& collection) const;

  /// Grant `identity` access to `collection`; caller must be the owner.
  /// Mirrors "outputs are directly shareable with public health
  /// stakeholders through standard Globus Collection permissions".
  void grant(const std::string& collection, const std::string& identity,
             Permission permission, const std::string& token);

  Permission permission_of(const std::string& collection,
                           const std::string& identity) const;

  /// Write an object (creates or overwrites). Requires storage:write and
  /// read-write permission on the collection. Returns the new checksum.
  std::string put(const std::string& collection, const std::string& path,
                  std::string bytes, const std::string& token);

  /// Read an object. Requires storage:read and at least read permission.
  const StoredObject& get(const std::string& collection,
                          const std::string& path,
                          const std::string& token) const;

  bool exists(const std::string& collection, const std::string& path) const;

  /// Paths in a collection with the given prefix, sorted.
  std::vector<std::string> list(const std::string& collection,
                                const std::string& prefix,
                                const std::string& token) const;

  void remove(const std::string& collection, const std::string& path,
              const std::string& token);

  // --- introspection for the workflow trace tables ---
  std::size_t num_objects() const;
  std::uint64_t bytes_stored() const { return bytes_stored_; }
  std::size_t puts() const { return puts_; }
  std::size_t gets() const { return gets_; }

 private:
  struct Collection {
    std::string owner;
    std::map<std::string, Permission> acl;
    std::map<std::string, StoredObject> objects;
  };

  const Collection& collection_for(const std::string& name) const;
  Collection& collection_for(const std::string& name);
  void require_permission(const Collection& col, const std::string& token,
                          Permission needed, const std::string& scope) const;

  void maybe_inject_acl_race(const std::string& collection) const;

  std::string name_;
  EventLoop& loop_;
  AuthService& auth_;
  FaultPlan* plan_ = nullptr;
  std::map<std::string, Collection> collections_;
  std::uint64_t bytes_stored_ = 0;
  std::size_t puts_ = 0;
  mutable std::size_t gets_ = 0;
};

}  // namespace osprey::fabric
