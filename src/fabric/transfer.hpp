#pragma once

/// \file transfer.hpp
/// Simulated Globus Transfer: asynchronous endpoint-to-endpoint copies
/// with a latency + bandwidth cost model and checksum verification.
/// AERO stages inputs/outputs through this service; the AERO server
/// itself never touches payload bytes.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fabric/auth.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/fault.hpp"
#include "fabric/storage.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace osprey::fabric {

using TransferId = std::uint64_t;

enum class TransferStatus { kInFlight, kSucceeded, kFailed };

struct TransferRecord {
  TransferId id = 0;
  std::string src_endpoint, src_collection, src_path;
  std::string dst_endpoint, dst_collection, dst_path;
  std::uint64_t bytes = 0;
  std::string checksum;
  SimTime submitted = 0;
  SimTime completed = 0;
  TransferStatus status = TransferStatus::kInFlight;
  std::string error;
  obs::SpanId trace_span = obs::kNoSpan;
};

/// Cost model and async execution of copies between StorageEndpoints.
class TransferService {
 public:
  /// `latency` is a fixed per-transfer setup cost; `bandwidth` is in
  /// bytes per virtual second.
  TransferService(EventLoop& loop, AuthService& auth,
                  SimTime latency = 2 * osprey::util::kSecond,
                  double bandwidth_bytes_per_s = 100.0e6);

  /// Failure injection: each subsequent transfer independently fails
  /// with probability `rate` (after its latency). Deterministic per
  /// `seed`. Used to exercise the orchestration layer's retry paths.
  void inject_failures(double rate, std::uint64_t seed);
  std::size_t injected_failures() const {
    return static_cast<std::size_t>(m_injected_->value());
  }

  /// Attach a chaos FaultPlan (non-owning; nullptr detaches). The plan
  /// can drop, stall or corrupt transfers; corruption is caught by the
  /// digest verification before the destination write completes.
  void set_fault_plan(FaultPlan* plan) { plan_ = plan; }

  /// Attach a trace recorder (non-owning; nullptr detaches). Each
  /// transfer becomes a span from submission to completion, parented
  /// to the submitting thread's current span.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Bind completion counters and the payload-size histogram to
  /// `metrics` (non-owning; nullptr detaches).
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Per-operation timeout: a transfer whose (possibly stalled) virtual
  /// duration exceeds it fails at the deadline instead of hanging the
  /// workflow. 0 disables (the default).
  void set_default_timeout(SimTime timeout);
  SimTime default_timeout() const { return timeout_; }

  using Callback = std::function<void(const TransferRecord&)>;

  /// Start an async copy; `on_done` fires (in virtual time) when the
  /// write at the destination has completed and its checksum verified.
  /// The source is read at submission time (consistent snapshot).
  TransferId transfer(StorageEndpoint& src, const std::string& src_collection,
                      const std::string& src_path, StorageEndpoint& dst,
                      const std::string& dst_collection,
                      const std::string& dst_path, const std::string& token,
                      Callback on_done = nullptr);

  const TransferRecord& record(TransferId id) const;
  const std::vector<TransferRecord>& records() const { return records_; }

  /// Virtual duration a payload of `bytes` takes under the cost model.
  SimTime duration_for(std::uint64_t bytes) const;

  std::size_t completed_count() const {
    return static_cast<std::size_t>(m_completed_->value());
  }

 private:
  EventLoop& loop_;
  AuthService& auth_;
  SimTime latency_;
  double bandwidth_;
  std::vector<TransferRecord> records_;
  // Failure injection state (simple xorshift-free counter hash keeps the
  // fabric library independent of num/).
  double failure_rate_ = 0.0;
  std::uint64_t failure_state_ = 0;
  FaultPlan* plan_ = nullptr;
  SimTime timeout_ = 0;
  obs::TraceRecorder* tracer_ = nullptr;
  // Counters always point at a live obs::Counter: the owned fallbacks
  // until set_metrics binds a registry, so accessors work unwired. The
  // histogram stays optional (it has no default bucket layout).
  obs::Counter own_completed_, own_failed_, own_injected_;
  obs::Counter* m_completed_ = &own_completed_;
  obs::Counter* m_failed_ = &own_failed_;
  obs::Counter* m_injected_ = &own_injected_;
  obs::Histogram* m_bytes_ = nullptr;

  bool should_fail_next();
  void fail_after(TransferId id, SimTime delay, std::string error,
                  const Callback& on_done);
  /// Ends the span and bumps metrics once a record reaches a terminal
  /// status (every completion path funnels through this).
  void finish_obs(const TransferRecord& rec);
};

}  // namespace osprey::fabric
