#pragma once

/// \file scheduler.hpp
/// Simulated PBS-style batch scheduler. The paper's R(t) analysis
/// function is "run using a Globus Compute endpoint configured for a
/// compute node": Globus Compute queues a job on Bebop's PBS scheduler.
/// This class models that queueing: a fixed pool of nodes, a FIFO queue
/// with first-fit backfill, queue-wait accounting and walltime kills.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "fabric/event_loop.hpp"
#include "fabric/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace osprey::fabric {

using JobId = std::uint64_t;

enum class JobState { kQueued, kRunning, kComplete, kTimeout, kCancelled };

const char* job_state_name(JobState s);

struct JobSpec {
  std::string name;
  int nodes = 1;
  /// Kill the job if it runs longer than this.
  SimTime walltime = 4 * osprey::util::kHour;
  /// Executed (inline, at virtual start time) when the job starts.
  /// Returns the job's simulated duration; completion fires then.
  std::function<SimTime()> run;
};

struct JobRecord {
  JobId id = 0;
  std::string name;
  int nodes = 1;
  SimTime submitted = 0;
  SimTime started = -1;
  SimTime ended = -1;
  JobState state = JobState::kQueued;
  obs::SpanId trace_span = obs::kNoSpan;

  SimTime queue_wait() const { return started < 0 ? -1 : started - submitted; }
};

/// FIFO + first-fit-backfill scheduler over `total_nodes` identical nodes.
class BatchScheduler {
 public:
  BatchScheduler(EventLoop& loop, int total_nodes,
                 std::string name = "pbs-sim");

  const std::string& name() const { return name_; }
  int total_nodes() const { return total_nodes_; }
  int free_nodes() const { return free_nodes_; }

  /// Attach a chaos FaultPlan (non-owning; nullptr detaches). During a
  /// kEndpointOutage window for this scheduler, queued jobs do not
  /// start; starts resume automatically when the window ends.
  void set_fault_plan(FaultPlan* plan) { plan_ = plan; }

  /// Attach a trace recorder (non-owning; nullptr detaches). Each job
  /// becomes a span from submission to its terminal state, so queue
  /// wait is visible as the gap before the nested compute span.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Bind the queue-wait histogram to `metrics` (nullptr detaches).
  void set_metrics(obs::MetricsRegistry* metrics);

  JobId submit(JobSpec spec);
  /// Cancel a queued job (running jobs cannot be cancelled in this model).
  bool cancel(JobId id);

  const JobRecord& job(JobId id) const;
  const std::vector<JobRecord>& jobs() const { return records_; }

  std::size_t queue_length() const { return queue_.size(); }

  /// Fraction of node-time busy between the first submit and the last
  /// completion observed so far (0 when nothing has run).
  double utilization() const;

 private:
  struct QueuedJob {
    JobId id;
    JobSpec spec;
  };

  void try_start_jobs();
  void finish_job(JobId id, JobState state);

  EventLoop& loop_;
  int total_nodes_;
  int free_nodes_;
  std::string name_;
  FaultPlan* plan_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  obs::Histogram* m_queue_wait_ = nullptr;
  bool outage_recheck_pending_ = false;
  std::deque<QueuedJob> queue_;
  std::vector<JobRecord> records_;
  double busy_node_ms_ = 0.0;
  SimTime first_submit_ = -1;
  SimTime last_end_ = -1;
};

}  // namespace osprey::fabric
