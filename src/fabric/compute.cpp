#include "fabric/compute.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace osprey::fabric {

ComputeEndpoint::ComputeEndpoint(std::string name, EventLoop& loop,
                                 AuthService& auth, int slots)
    : name_(std::move(name)),
      loop_(loop),
      auth_(auth),
      kind_(EndpointKind::kLoginNode),
      slots_(slots),
      uuids_(0xC0DE) {
  OSPREY_REQUIRE(slots >= 1, "login-node endpoint needs at least one slot");
}

ComputeEndpoint::ComputeEndpoint(std::string name, EventLoop& loop,
                                 AuthService& auth, BatchScheduler& scheduler)
    : name_(std::move(name)),
      loop_(loop),
      auth_(auth),
      kind_(EndpointKind::kBatch),
      scheduler_(&scheduler),
      uuids_(0xC0DE) {}

std::string ComputeEndpoint::register_function(const std::string& name,
                                               ComputeFn fn, SimTime cost) {
  return register_function(name, std::move(fn),
                           CostFn([cost](const Value&) { return cost; }));
}

std::string ComputeEndpoint::register_function(const std::string& name,
                                               ComputeFn fn, CostFn cost) {
  OSPREY_REQUIRE(static_cast<bool>(fn), "null compute function");
  OSPREY_REQUIRE(static_cast<bool>(cost), "null cost function");
  std::string id = "fn-" + uuids_.next();
  functions_.emplace(id, Registered{name, std::move(fn), std::move(cost)});
  return id;
}

bool ComputeEndpoint::has_function(const std::string& function_id) const {
  return functions_.count(function_id) > 0;
}

void ComputeEndpoint::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_succeeded_ = &own_succeeded_;
    m_failed_ = &own_failed_;
    m_latency_ = nullptr;
    return;
  }
  m_succeeded_ = &metrics->counter("fabric_compute_tasks_succeeded_total",
                                   "compute tasks that ran to completion");
  m_failed_ = &metrics->counter(
      "fabric_compute_tasks_failed_total",
      "compute tasks that failed (outage, kill, walltime, error)");
  m_latency_ = &metrics->histogram(
      "fabric_compute_task_latency_ms",
      {1e3, 10e3, 60e3, 600e3, 3.6e6, 14.4e6},
      "submission-to-completion virtual latency per compute task (ms)");
}

void ComputeEndpoint::finish_obs(const ComputeTaskRecord& rec) {
  const bool ok = rec.status == ComputeTaskStatus::kSucceeded;
  if (tracer_ != nullptr) {
    tracer_->end_span(rec.trace_span, obs::sim_ns(rec.completed), ok,
                      rec.error);
  }
  if (ok) {
    m_succeeded_->inc();
  } else {
    m_failed_->inc();
  }
  if (m_latency_ != nullptr && rec.completed >= rec.submitted) {
    m_latency_->observe(static_cast<double>(rec.completed - rec.submitted));
  }
}

ComputeTaskId ComputeEndpoint::execute(const std::string& function_id,
                                       Value args, const std::string& token,
                                       Callback on_done) {
  auth_.validate(token, scopes::kCompute);
  auto it = functions_.find(function_id);
  if (it == functions_.end()) {
    throw osprey::util::NotFound("unknown compute function: " + function_id);
  }
  ComputeTaskId id = records_.size();
  ComputeTaskRecord rec;
  rec.id = id;
  rec.function_name = it->second.name;
  rec.endpoint = name_;
  rec.submitted = loop_.now();
  records_.push_back(rec);
  if (tracer_ != nullptr) {
    records_[id].trace_span = tracer_->begin_span(
        obs::Category::kCompute, "compute:" + records_[id].function_name,
        obs::sim_ns(rec.submitted), obs::kInheritParent,
        name_ + (kind_ == EndpointKind::kBatch ? " (batch)" : " (login)"));
  }

  if (plan_ != nullptr &&
      plan_->in_window(FaultKind::kEndpointOutage, "compute", name_,
                       loop_.now())) {
    // Endpoint unreachable: the submission fails fast after a short
    // connection timeout instead of queueing into a black hole.
    Callback cb = std::move(on_done);
    loop_.schedule_after(10 * osprey::util::kSecond,
                         [this, id, cb = std::move(cb)] {
                           ComputeTaskRecord& r = records_[id];
                           r.status = ComputeTaskStatus::kFailed;
                           r.error = "endpoint unreachable (outage)";
                           r.completed = loop_.now();
                           finish_obs(r);
                           if (cb) cb(Value(nullptr), r);
                         });
    return id;
  }

  PendingTask task{id, &it->second, std::move(args), std::move(on_done)};
  if (kind_ == EndpointKind::kLoginNode) {
    run_on_login_node(std::move(task));
  } else {
    run_via_scheduler(std::move(task));
  }
  return id;
}

void ComputeEndpoint::set_batch_walltime(SimTime walltime) {
  OSPREY_REQUIRE(kind_ == EndpointKind::kBatch,
                 "walltime applies to batch endpoints");
  OSPREY_REQUIRE(walltime > 0, "walltime must be positive");
  batch_walltime_ = walltime;
}

SimTime ComputeEndpoint::execute_body(PendingTask& task, SimTime limit) {
  ComputeTaskRecord& rec = records_[task.id];
  rec.started = loop_.now();
  rec.status = ComputeTaskStatus::kRunning;
  SimTime duration = 0;   // raw declared cost (returned to the scheduler)
  SimTime occupy = 0;     // virtual time until the task record completes
  Value result;
  try {
    duration = task.fn->cost(task.args);
    OSPREY_CHECK(duration >= 0, "negative declared cost");
    occupy = duration;
    if (limit >= 0 && duration > limit) {
      // The job will be killed at the walltime: the function's outputs
      // never materialize, and the caller learns of the failure at the
      // kill time. The raw duration is still returned so the scheduler
      // records the job as TIMEOUT.
      rec.status = ComputeTaskStatus::kFailed;
      rec.error = "walltime exceeded (" +
                  osprey::util::format_duration(duration) + " > " +
                  osprey::util::format_duration(limit) + ")";
      result = Value(nullptr);
      occupy = limit;
      OSPREY_LOG_WARN("compute", rec.function_name << " " << rec.error);
    } else if (plan_ != nullptr &&
               plan_->should_inject(FaultKind::kComputeKill, "compute",
                                    name_, loop_.now())) {
      // Injected mid-run kill: the task dies halfway through its
      // declared cost; outputs never materialize. The shortened
      // duration is also what the scheduler sees, so the node frees at
      // the kill time.
      occupy = std::max<SimTime>(1, occupy / 2);
      if (limit >= 0) occupy = std::min(occupy, limit);
      duration = occupy;
      rec.status = ComputeTaskStatus::kFailed;
      rec.error = "task killed (injected) after " +
                  osprey::util::format_duration(occupy);
      result = Value(nullptr);
      OSPREY_LOG_WARN("compute", rec.function_name << " " << rec.error);
    } else {
      result = task.fn->fn(task.args);
      rec.status = ComputeTaskStatus::kSucceeded;
    }
  } catch (const std::exception& e) {
    rec.status = ComputeTaskStatus::kFailed;
    rec.error = e.what();
    result = Value(nullptr);
    OSPREY_LOG_WARN("compute", rec.function_name << " failed: " << e.what());
  }
  // Completion (and the caller's callback) land `duration` later in
  // virtual time, even though the C++ body already ran. The execute_body
  // result above already respects the limit, so rec and the scheduler's
  // job state agree on kills.
  Callback cb = std::move(task.on_done);
  ComputeTaskId id = task.id;
  loop_.schedule_after(occupy,
                       [this, id, cb = std::move(cb),
                        result = std::move(result)] {
                         ComputeTaskRecord& r = records_[id];
                         r.completed = loop_.now();
                         finish_obs(r);
                         if (cb) cb(result, r);
                       });
  return duration;
}

void ComputeEndpoint::run_on_login_node(PendingTask task) {
  if (busy_slots_ >= slots_) {
    login_queue_.push_back(std::move(task));
    return;
  }
  ++busy_slots_;
  // Run on the next tick to keep submission re-entrancy simple.
  auto shared = std::make_shared<PendingTask>(std::move(task));
  loop_.schedule_after(0, [this, shared] {
    SimTime duration = execute_body(*shared);
    loop_.schedule_after(duration, [this] {
      --busy_slots_;
      drain_login_queue();
    });
  });
}

void ComputeEndpoint::drain_login_queue() {
  while (busy_slots_ < slots_ && !login_queue_.empty()) {
    PendingTask task = std::move(login_queue_.front());
    login_queue_.pop_front();
    ++busy_slots_;
    auto shared = std::make_shared<PendingTask>(std::move(task));
    SimTime duration = execute_body(*shared);
    loop_.schedule_after(duration, [this] {
      --busy_slots_;
      drain_login_queue();
    });
  }
}

void ComputeEndpoint::run_via_scheduler(PendingTask task) {
  auto shared = std::make_shared<PendingTask>(std::move(task));
  JobSpec spec;
  spec.name = "gc:" + shared->fn->name;
  spec.nodes = 1;
  spec.walltime = batch_walltime_;
  SimTime limit = batch_walltime_;
  spec.run = [this, shared, limit]() -> SimTime {
    return execute_body(*shared, limit);
  };
  scheduler_->submit(std::move(spec));
}

const ComputeTaskRecord& ComputeEndpoint::task(ComputeTaskId id) const {
  OSPREY_REQUIRE(id < records_.size(), "unknown compute task id");
  return records_[id];
}

}  // namespace osprey::fabric
