#include "fabric/timer.hpp"

#include "util/error.hpp"

namespace osprey::fabric {

TimerService::TimerService(EventLoop& loop, AuthService& auth)
    : loop_(loop), auth_(auth) {}

void TimerService::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    fires_ = &own_fires_;
    return;
  }
  fires_ = &metrics->counter("fabric_timer_fires_total",
                             "periodic timer firings");
}

TimerId TimerService::every(SimTime period, SimTime first_at,
                            std::function<void()> fn,
                            const std::string& token,
                            const std::string& name) {
  auth_.validate(token, scopes::kTimers);
  OSPREY_REQUIRE(period > 0, "timer period must be positive");
  OSPREY_REQUIRE(static_cast<bool>(fn), "null timer callback");
  OSPREY_REQUIRE(first_at >= loop_.now(), "first firing is in the past");
  TimerId id = next_id_++;
  timers_.emplace(id, Timer{name, period, std::move(fn), 0});
  arm(id, first_at);
  return id;
}

void TimerService::arm(TimerId id, SimTime at) {
  Timer& timer = timers_.at(id);
  timer.pending_event = loop_.schedule_at(at, [this, id, at] {
    auto it = timers_.find(id);
    if (it == timers_.end()) return;  // cancelled meanwhile
    fires_->inc();
    if (tracer_ != nullptr) {
      tracer_->instant(
          obs::Category::kFlow,
          "timer:" + (it->second.name.empty() ? std::to_string(id)
                                              : it->second.name),
          obs::sim_ns(loop_.now()), obs::kNoSpan);
    }
    // Re-arm before invoking so the callback may cancel the timer.
    SimTime next = at + it->second.period;
    std::function<void()> fn = it->second.fn;  // copy: cancel() may erase
    arm(id, next);
    fn();
  });
}

bool TimerService::cancel(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  loop_.cancel(it->second.pending_event);
  timers_.erase(it);
  return true;
}

}  // namespace osprey::fabric
