#include "fabric/flows.hpp"

#include <memory>

#include "util/error.hpp"
#include "util/log.hpp"

namespace osprey::fabric {

FlowsService::FlowsService(EventLoop& loop, AuthService& auth)
    : loop_(loop), auth_(auth) {}

void FlowsService::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    succeeded_ = &own_succeeded_;
    return;
  }
  succeeded_ = &metrics->counter("fabric_flow_runs_succeeded_total",
                                 "flow runs that completed every step");
}

FlowRunId FlowsService::run(const FlowDefinition& flow,
                            const std::string& token, RunCallback on_done,
                            osprey::util::Value initial_state) {
  auth_.validate(token, scopes::kFlows);
  OSPREY_REQUIRE(!flow.steps.empty(), "flow has no steps");
  FlowRunId id = records_.size();
  FlowRunRecord rec;
  rec.id = id;
  rec.flow_name = flow.name;
  rec.started = loop_.now();
  records_.push_back(rec);
  if (tracer_ != nullptr) {
    records_[id].trace_span = tracer_->begin_span(
        obs::Category::kFlow, "flow:" + flow.name, obs::sim_ns(rec.started));
  }

  auto active = std::make_shared<ActiveRun>();
  active->flow = flow;
  active->context.run_id = id;
  active->context.state = std::move(initial_state);
  active->on_done = std::move(on_done);

  loop_.schedule_after(0, [this, active] { advance(active); });
  return id;
}

void FlowsService::advance(std::shared_ptr<ActiveRun> run) {
  FlowRunRecord& rec = records_[run->context.run_id];
  if (run->next_step >= run->flow.steps.size()) {
    finish(run, FlowRunStatus::kSucceeded);
    return;
  }
  std::size_t step_index = run->next_step++;
  const FlowStep& step = run->flow.steps[step_index];
  rec.steps.push_back(
      StepRecord{step.name, loop_.now(), -1, false, "", obs::kNoSpan});
  if (tracer_ != nullptr) {
    rec.steps.back().trace_span = tracer_->begin_span(
        obs::Category::kFlow, "step:" + step.name, obs::sim_ns(loop_.now()),
        rec.trace_span, rec.flow_name);
  }
  OSPREY_LOG_DEBUG("flows", rec.flow_name << " step '" << step.name << "'");

  // The completion continuation may fire later in virtual time.
  auto done = [this, run, step_index](bool ok, const std::string& error) {
    FlowRunRecord& r = records_[run->context.run_id];
    StepRecord& sr = r.steps[step_index];
    sr.ended = loop_.now();
    sr.ok = ok;
    sr.error = error;
    if (tracer_ != nullptr) {
      tracer_->end_span(sr.trace_span, obs::sim_ns(sr.ended), ok, error);
    }
    if (!ok) {
      OSPREY_LOG_WARN("flows", r.flow_name << " step '" << sr.name
                                           << "' failed: " << error);
      finish(run, FlowRunStatus::kFailed);
      return;
    }
    advance(run);
  };

  auto invoke = [this, run, step_index, done] {
    const FlowStep& s = run->flow.steps[step_index];
    // Transfers/compute submitted by the step body nest under its span.
    obs::CurrentSpanGuard span_guard(
        records_[run->context.run_id].steps[step_index].trace_span);
    try {
      s.fn(run->context, done);
    } catch (const std::exception& e) {
      done(false, e.what());
    }
  };
  if (plan_ != nullptr &&
      plan_->should_inject(FaultKind::kFlowStall, "flows", rec.flow_name,
                           loop_.now())) {
    // The step starts late; the flow itself still completes, so stalls
    // surface as latency, not failure.
    loop_.schedule_after(plan_->stall_delay, invoke);
    return;
  }
  invoke();
}

void FlowsService::finish(std::shared_ptr<ActiveRun> run,
                          FlowRunStatus status) {
  FlowRunRecord& rec = records_[run->context.run_id];
  rec.status = status;
  rec.ended = loop_.now();
  if (tracer_ != nullptr) {
    tracer_->end_span(rec.trace_span, obs::sim_ns(rec.ended),
                      status == FlowRunStatus::kSucceeded);
  }
  if (status == FlowRunStatus::kSucceeded) succeeded_->inc();
  if (run->on_done) run->on_done(rec, run->context.state);
}

const FlowRunRecord& FlowsService::record(FlowRunId id) const {
  OSPREY_REQUIRE(id < records_.size(), "unknown flow run id");
  return records_[id];
}

}  // namespace osprey::fabric
