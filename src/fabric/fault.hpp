#pragma once

/// \file fault.hpp
/// Deterministic fault injection for the simulated research fabric.
///
/// A FaultPlan decides — from a seed and counter-based hashing, never
/// from global RNG state — when a fabric service should misbehave:
/// dropped/stalled/corrupted transfers, compute kills, endpoint outage
/// windows, auth token expiry, storage ACL propagation races, upstream
/// source outages and flow-step stalls. Services consult the plan at
/// their injection points; every injected fault (and every recovery or
/// degradation action the orchestration layer takes) is appended to a
/// structured IncidentLog that chaos tests assert against.
///
/// Determinism guarantee: a chaos run is a pure function of (workload,
/// plan seed, plan configuration). The per-(kind, site) operation
/// counter is advanced only by should_inject() calls, which the
/// single-threaded EventLoop issues in a deterministic order, so two
/// runs with the same seed produce bit-identical incident logs.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace osprey::fabric {

using osprey::util::SimTime;

/// Taxonomy of injectable faults (see DESIGN.md §"Fault model").
enum class FaultKind {
  kTransferDrop,     // transfer fails after setup latency (network drop)
  kTransferStall,    // transfer takes stall_delay longer than modeled
  kTransferCorrupt,  // payload bit-flipped in flight (checksum mismatch)
  kComputeKill,      // task killed mid-run (walltime-style kill)
  kEndpointOutage,   // compute endpoint / scheduler unreachable (window)
  kAuthExpiry,       // token validation fails transiently
  kAclRace,          // storage ACL propagation race (transient AuthError)
  kSourceOutage,     // upstream data source returns errors (window)
  kFlowStall,        // a flow step starts stall_delay late
  kProcessCrash,     // a service process dies mid-flow (volatile state
                     // lost; durable files survive — see aero::Wal)
};

inline constexpr int kNumFaultKinds = 10;

const char* fault_kind_name(FaultKind kind);

enum class IncidentCategory {
  kFault,     // a fault was injected
  kRecovery,  // the orchestration layer took a recovery action
  kDegraded,  // service degraded gracefully (e.g. stale estimate served)
};

const char* incident_category_name(IncidentCategory category);

/// One structured entry in the chaos record.
struct Incident {
  SimTime time = 0;
  IncidentCategory category = IncidentCategory::kFault;
  std::string kind;       // e.g. "transfer-corrupt", "retry-scheduled"
  std::string component;  // service that observed it: "transfer", "aero", ...
  std::string site;       // endpoint / flow / scheduler name
  std::string detail;
};

/// Append-only, deterministic record of faults and recovery actions.
class IncidentLog {
 public:
  void record(SimTime time, IncidentCategory category, std::string kind,
              std::string component, std::string site, std::string detail);

  const std::vector<Incident>& incidents() const { return incidents_; }
  std::size_t size() const { return incidents_.size(); }
  std::size_t count(IncidentCategory category) const;
  std::size_t count_kind(const std::string& kind) const;

  /// One line per incident; byte-identical across replays of the same
  /// seed (the chaos determinism tests compare this string).
  std::string to_string() const;

  void clear() { incidents_.clear(); }

 private:
  std::vector<Incident> incidents_;
};

/// Seeded, replayable decision-maker for fault injection.
///
/// Faults come in two forms:
///  - probabilistic: set_rate(kind[, site], rate) — each operation of
///    that kind at that site independently fails with `rate`, decided
///    by a counter-based hash of (seed, kind, site, op index);
///  - scripted: script_nth() fails one specific operation, and
///    script_window() declares an outage interval services poll with
///    in_window().
///
/// Services hold a non-owning pointer (set_fault_plan); a null plan
/// means no injection and zero overhead.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0);

  std::uint64_t seed() const { return seed_; }

  /// Extra delay applied by kTransferStall and kFlowStall faults.
  SimTime stall_delay = 30 * osprey::util::kMinute;

  // --- configuration -----------------------------------------------
  /// Probabilistic rate for `kind` at every site.
  void set_rate(FaultKind kind, double rate);
  /// Site-specific rate (overrides the per-kind rate for that site).
  void set_rate(FaultKind kind, const std::string& site, double rate);

  /// Fail exactly the `nth` operation (0-based) of `kind` at `site`.
  void script_nth(FaultKind kind, const std::string& site, std::uint64_t nth);

  /// Declare an outage window [begin, end) for `kind` at `site`
  /// (empty site = every site). Queried with in_window().
  void script_window(FaultKind kind, const std::string& site, SimTime begin,
                     SimTime end);

  /// Restrict probabilistic faults to [begin, end). Scripted faults are
  /// unaffected. Lets chaos tests guarantee a quiet tail so pipelines
  /// can converge or settle into a degraded state.
  void set_active_window(SimTime begin, SimTime end);

  /// A structurally identical plan for an isolated replica (e.g. one
  /// shard partition): same rates, scripted operations, outage/active
  /// windows and stall delay, but a fresh seed mixed from `salt`, zero
  /// operation counters and an empty incident log. Each replica then
  /// draws its own deterministic fault stream — a pure function of
  /// (master seed, salt) — independent of every other replica.
  FaultPlan fork(std::uint64_t salt) const;

  // --- service-side queries ----------------------------------------
  /// Called once per fault-prone operation. Advances the (kind, site)
  /// counter, decides scripted-then-probabilistic, and records a kFault
  /// incident when firing.
  bool should_inject(FaultKind kind, const std::string& component,
                     const std::string& site, SimTime now);

  /// Is `now` inside an outage window for (kind, site)? Records one
  /// kFault incident per window on first observation.
  bool in_window(FaultKind kind, const std::string& component,
                 const std::string& site, SimTime now);

  /// Latest end of any matching window containing `now` (so services
  /// can schedule a re-check when the outage lifts). Returns `now`
  /// when no window matches.
  SimTime window_end(FaultKind kind, const std::string& site,
                     SimTime now) const;

  // --- introspection -----------------------------------------------
  IncidentLog& log() { return log_; }
  const IncidentLog& log() const { return log_; }

  std::uint64_t injected(FaultKind kind) const;
  std::uint64_t injected_total() const;
  /// Did at least one fault of `kind` actually fire?
  bool exercised(FaultKind kind) const { return injected(kind) > 0; }

 private:
  struct Window {
    FaultKind kind;
    std::string site;  // empty = all sites
    SimTime begin;
    SimTime end;
    bool reported = false;
  };

  using SiteKey = std::pair<int, std::string>;

  bool probabilistic_hit(FaultKind kind, const std::string& site,
                         std::uint64_t op_index, SimTime now) const;

  std::uint64_t seed_;
  double kind_rates_[kNumFaultKinds];
  std::map<SiteKey, double> site_rates_;
  std::map<SiteKey, std::set<std::uint64_t>> scripted_;
  std::map<SiteKey, std::uint64_t> op_counts_;
  std::vector<Window> windows_;
  SimTime active_begin_ = 0;
  SimTime active_end_ = -1;  // -1 = unbounded
  std::uint64_t injected_[kNumFaultKinds] = {};
  IncidentLog log_;
};

}  // namespace osprey::fabric
