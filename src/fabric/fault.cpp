#include "fabric/fault.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace osprey::fabric {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransferDrop: return "transfer-drop";
    case FaultKind::kTransferStall: return "transfer-stall";
    case FaultKind::kTransferCorrupt: return "transfer-corrupt";
    case FaultKind::kComputeKill: return "compute-kill";
    case FaultKind::kEndpointOutage: return "endpoint-outage";
    case FaultKind::kAuthExpiry: return "auth-expiry";
    case FaultKind::kAclRace: return "acl-race";
    case FaultKind::kSourceOutage: return "source-outage";
    case FaultKind::kFlowStall: return "flow-stall";
    case FaultKind::kProcessCrash: return "process-crash";
  }
  return "?";
}

const char* incident_category_name(IncidentCategory category) {
  switch (category) {
    case IncidentCategory::kFault: return "fault";
    case IncidentCategory::kRecovery: return "recovery";
    case IncidentCategory::kDegraded: return "degraded";
  }
  return "?";
}

void IncidentLog::record(SimTime time, IncidentCategory category,
                         std::string kind, std::string component,
                         std::string site, std::string detail) {
  Incident inc;
  inc.time = time;
  inc.category = category;
  inc.kind = std::move(kind);
  inc.component = std::move(component);
  inc.site = std::move(site);
  inc.detail = std::move(detail);
  incidents_.push_back(std::move(inc));
}

std::size_t IncidentLog::count(IncidentCategory category) const {
  std::size_t n = 0;
  for (const Incident& inc : incidents_) {
    if (inc.category == category) ++n;
  }
  return n;
}

std::size_t IncidentLog::count_kind(const std::string& kind) const {
  std::size_t n = 0;
  for (const Incident& inc : incidents_) {
    if (inc.kind == kind) ++n;
  }
  return n;
}

std::string IncidentLog::to_string() const {
  std::string out;
  for (const Incident& inc : incidents_) {
    out += osprey::util::format_sim_time(inc.time);
    out += " [";
    out += incident_category_name(inc.category);
    out += "] ";
    out += inc.kind;
    out += " ";
    out += inc.component;
    out += ":";
    out += inc.site;
    if (!inc.detail.empty()) {
      out += " — ";
      out += inc.detail;
    }
    out += "\n";
  }
  return out;
}

namespace {

/// splitmix64 finalizer: the same counter-based primitive the legacy
/// TransferService injection uses; keeps fabric/ independent of num/.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed) {
  std::fill(std::begin(kind_rates_), std::end(kind_rates_), 0.0);
}

void FaultPlan::set_rate(FaultKind kind, double rate) {
  OSPREY_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault rate in [0,1]");
  kind_rates_[static_cast<int>(kind)] = rate;
}

void FaultPlan::set_rate(FaultKind kind, const std::string& site,
                         double rate) {
  OSPREY_REQUIRE(rate >= 0.0 && rate <= 1.0, "fault rate in [0,1]");
  site_rates_[{static_cast<int>(kind), site}] = rate;
}

void FaultPlan::script_nth(FaultKind kind, const std::string& site,
                           std::uint64_t nth) {
  scripted_[{static_cast<int>(kind), site}].insert(nth);
}

void FaultPlan::script_window(FaultKind kind, const std::string& site,
                              SimTime begin, SimTime end) {
  OSPREY_REQUIRE(end > begin, "outage window must have positive length");
  windows_.push_back(Window{kind, site, begin, end, false});
}

FaultPlan FaultPlan::fork(std::uint64_t salt) const {
  FaultPlan out(mix64(seed_ ^ mix64(salt)));
  std::copy(std::begin(kind_rates_), std::end(kind_rates_),
            std::begin(out.kind_rates_));
  out.site_rates_ = site_rates_;
  out.scripted_ = scripted_;
  out.windows_ = windows_;
  for (Window& w : out.windows_) w.reported = false;
  out.active_begin_ = active_begin_;
  out.active_end_ = active_end_;
  out.stall_delay = stall_delay;
  return out;
}

void FaultPlan::set_active_window(SimTime begin, SimTime end) {
  OSPREY_REQUIRE(end > begin, "active window must have positive length");
  active_begin_ = begin;
  active_end_ = end;
}

bool FaultPlan::probabilistic_hit(FaultKind kind, const std::string& site,
                                  std::uint64_t op_index, SimTime now) const {
  if (now < active_begin_) return false;
  if (active_end_ >= 0 && now >= active_end_) return false;
  double rate = kind_rates_[static_cast<int>(kind)];
  auto it = site_rates_.find({static_cast<int>(kind), site});
  if (it != site_rates_.end()) rate = it->second;
  if (rate <= 0.0) return false;
  std::uint64_t bits =
      mix64(seed_ ^ mix64(static_cast<std::uint64_t>(kind) ^
                          mix64(fnv1a(site) ^ mix64(op_index))));
  double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return u < rate;
}

bool FaultPlan::should_inject(FaultKind kind, const std::string& component,
                              const std::string& site, SimTime now) {
  SiteKey key{static_cast<int>(kind), site};
  std::uint64_t op_index = op_counts_[key]++;

  bool scripted = false;
  auto sit = scripted_.find(key);
  if (sit != scripted_.end() && sit->second.count(op_index) > 0) {
    scripted = true;
  }
  if (!scripted && !probabilistic_hit(kind, site, op_index, now)) {
    return false;
  }
  ++injected_[static_cast<int>(kind)];
  log_.record(now, IncidentCategory::kFault, fault_kind_name(kind), component,
              site,
              (scripted ? "scripted op #" : "op #") +
                  std::to_string(op_index));
  return true;
}

bool FaultPlan::in_window(FaultKind kind, const std::string& component,
                          const std::string& site, SimTime now) {
  bool hit = false;
  for (Window& w : windows_) {
    if (w.kind != kind) continue;
    if (!w.site.empty() && w.site != site) continue;
    if (now < w.begin || now >= w.end) continue;
    hit = true;
    if (!w.reported) {
      w.reported = true;
      ++injected_[static_cast<int>(kind)];
      log_.record(now, IncidentCategory::kFault, fault_kind_name(kind),
                  component, site,
                  "window " + osprey::util::format_sim_time(w.begin) + " .. " +
                      osprey::util::format_sim_time(w.end));
    }
  }
  return hit;
}

SimTime FaultPlan::window_end(FaultKind kind, const std::string& site,
                              SimTime now) const {
  SimTime end = now;
  for (const Window& w : windows_) {
    if (w.kind != kind) continue;
    if (!w.site.empty() && w.site != site) continue;
    if (now < w.begin || now >= w.end) continue;
    end = std::max(end, w.end);
  }
  return end;
}

std::uint64_t FaultPlan::injected(FaultKind kind) const {
  return injected_[static_cast<int>(kind)];
}

std::uint64_t FaultPlan::injected_total() const {
  std::uint64_t n = 0;
  for (std::uint64_t k : injected_) n += k;
  return n;
}

}  // namespace osprey::fabric
