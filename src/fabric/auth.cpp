#include "fabric/auth.hpp"

#include "fabric/event_loop.hpp"
#include "util/error.hpp"

namespace osprey::fabric {

AuthService::AuthService(std::uint64_t seed) : uuids_(seed) {}

std::string AuthService::issue_token(
    const std::string& identity,
    const std::vector<std::string>& token_scopes) {
  OSPREY_REQUIRE(!identity.empty(), "identity must not be empty");
  std::string token = "tok-" + uuids_.next();
  TokenInfo info;
  info.identity = identity;
  info.scopes.insert(token_scopes.begin(), token_scopes.end());
  tokens_.emplace(token, std::move(info));
  ++issued_;
  return token;
}

std::string AuthService::issue_full_token(const std::string& identity) {
  return issue_token(identity,
                     {scopes::kStorageRead, scopes::kStorageWrite,
                      scopes::kTransfer, scopes::kCompute, scopes::kFlows,
                      scopes::kTimers, scopes::kServe});
}

void AuthService::revoke(const std::string& token) {
  auto it = tokens_.find(token);
  if (it != tokens_.end()) it->second.revoked = true;
}

void AuthService::set_fault_plan(FaultPlan* plan, const EventLoop* loop) {
  plan_ = plan;
  loop_ = loop;
}

const TokenInfo& AuthService::validate(
    const std::string& token, const std::string& required_scope) const {
  ++validations_;
  auto it = tokens_.find(token);
  if (it == tokens_.end()) {
    throw osprey::util::AuthError("unknown token");
  }
  if (it->second.revoked) {
    throw osprey::util::AuthError("token revoked");
  }
  if (!required_scope.empty() &&
      it->second.scopes.count(required_scope) == 0) {
    throw osprey::util::AuthError("token lacks scope: " + required_scope);
  }
  if (plan_ != nullptr && loop_ != nullptr && !required_scope.empty() &&
      plan_->should_inject(FaultKind::kAuthExpiry, "auth", required_scope,
                           loop_->now())) {
    // Transient expiry: the token itself stays valid, so the caller's
    // retry (with the same token) succeeds once the fault passes.
    throw osprey::util::AuthError("token expired (injected): re-authenticate");
  }
  return it->second;
}

const std::string& AuthService::identity_of(const std::string& token) const {
  return validate(token, "").identity;
}

}  // namespace osprey::fabric
