#include "fabric/event_loop.hpp"

#include "util/error.hpp"

namespace osprey::fabric {

EventId EventLoop::schedule_at(SimTime t, Callback cb) {
  OSPREY_REQUIRE(t >= now_, "cannot schedule an event in the past");
  OSPREY_REQUIRE(static_cast<bool>(cb), "null event callback");
  EventId id = next_seq_++;
  queue_.push(Entry{t, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

EventId EventLoop::schedule_after(SimTime dt, Callback cb) {
  OSPREY_REQUIRE(dt >= 0, "negative delay");
  return schedule_at(now_ + dt, std::move(cb));
}

bool EventLoop::cancel(EventId id) { return callbacks_.erase(id) > 0; }

void EventLoop::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    processed_ = &own_processed_;
    return;
  }
  processed_ = &metrics->counter("fabric_events_processed_total",
                                 "events fired by the virtual-time loop");
}

bool EventLoop::fire_next() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    auto it = callbacks_.find(entry.seq);
    if (it == callbacks_.end()) {
      queue_.pop();  // tombstone of a cancelled event
      continue;
    }
    // Advance time, detach the callback, then run it (the callback may
    // schedule or cancel other events, including itself re-arming).
    queue_.pop();
    now_ = entry.time;
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    processed_->inc();
    cb();
    return true;
  }
  return false;
}

std::size_t EventLoop::run_until(SimTime t) {
  OSPREY_REQUIRE(t >= now_, "run_until into the past");
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Peek past tombstones to find the next live event time.
    Entry entry = queue_.top();
    if (callbacks_.find(entry.seq) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.time > t) break;
    if (fire_next()) ++fired;
  }
  now_ = t;
  return fired;
}

std::size_t EventLoop::run_all(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && fire_next()) {
    ++fired;
  }
  OSPREY_CHECK(fired < max_events, "event loop exceeded max_events cap");
  return fired;
}

}  // namespace osprey::fabric
