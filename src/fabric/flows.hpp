#pragma once

/// \file flows.hpp
/// Simulated Globus Flows: named sequences of asynchronous steps with
/// per-step provenance. AERO wraps every user function in a flow of
/// stage-in → execute → stage-out → metadata-update steps; this service
/// runs those sequences and records what happened.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fabric/auth.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/value.hpp"

namespace osprey::fabric {

using FlowRunId = std::uint64_t;

enum class FlowRunStatus { kRunning, kSucceeded, kFailed };

struct StepRecord {
  std::string name;
  SimTime started = -1;
  SimTime ended = -1;
  bool ok = false;
  std::string error;
  obs::SpanId trace_span = obs::kNoSpan;
};

struct FlowRunRecord {
  FlowRunId id = 0;
  std::string flow_name;
  SimTime started = 0;
  SimTime ended = -1;
  FlowRunStatus status = FlowRunStatus::kRunning;
  std::vector<StepRecord> steps;
  obs::SpanId trace_span = obs::kNoSpan;
};

/// Mutable state shared by the steps of one flow run.
struct FlowRunContext {
  FlowRunId run_id = 0;
  /// Scratch bag steps use to hand values downstream.
  osprey::util::Value state;
};

/// A step completes by calling `done(ok, error)` — possibly later in
/// virtual time (after a transfer or compute task finishes).
using StepDone = std::function<void(bool ok, const std::string& error)>;
using StepFn = std::function<void(FlowRunContext&, StepDone)>;

struct FlowStep {
  std::string name;
  StepFn fn;
};

/// Definition of a flow: an ordered list of named steps.
struct FlowDefinition {
  std::string name;
  std::vector<FlowStep> steps;
};

/// Runs flow definitions and keeps their run records.
class FlowsService {
 public:
  FlowsService(EventLoop& loop, AuthService& auth);

  /// Attach a chaos FaultPlan (non-owning; nullptr detaches). The plan
  /// can delay individual step starts by its stall_delay.
  void set_fault_plan(FaultPlan* plan) { plan_ = plan; }

  /// Attach a trace recorder (non-owning; nullptr detaches). Each run
  /// becomes a span with one child span per step; operations submitted
  /// inside a step (transfers, compute) nest under the step's span.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Bind the succeeded-runs counter to `metrics` (non-owning; nullptr
  /// reverts to the service's private fallback counter).
  void set_metrics(obs::MetricsRegistry* metrics);

  using RunCallback = std::function<void(const FlowRunRecord&,
                                         const osprey::util::Value& state)>;

  /// Start a run; steps execute in order, each beginning when its
  /// predecessor's `done` fires. A failed step aborts the run.
  FlowRunId run(const FlowDefinition& flow, const std::string& token,
                RunCallback on_done = nullptr,
                osprey::util::Value initial_state = {});

  const FlowRunRecord& record(FlowRunId id) const;
  const std::vector<FlowRunRecord>& records() const { return records_; }
  std::size_t runs_started() const { return records_.size(); }
  std::size_t runs_succeeded() const {
    return static_cast<std::size_t>(succeeded_->value());
  }

 private:
  struct ActiveRun {
    FlowDefinition flow;
    FlowRunContext context;
    RunCallback on_done;
    std::size_t next_step = 0;
  };

  void advance(std::shared_ptr<ActiveRun> run);
  void finish(std::shared_ptr<ActiveRun> run, FlowRunStatus status);

  EventLoop& loop_;
  AuthService& auth_;
  FaultPlan* plan_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;
  std::vector<FlowRunRecord> records_;
  // Always points at a live obs::Counter: the owned fallback until
  // set_metrics binds a registry, so runs_succeeded() works unwired.
  obs::Counter own_succeeded_;
  obs::Counter* succeeded_ = &own_succeeded_;
};

}  // namespace osprey::fabric
