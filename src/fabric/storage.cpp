#include "fabric/storage.hpp"

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace osprey::fabric {

StorageEndpoint::StorageEndpoint(std::string name, EventLoop& loop,
                                 AuthService& auth)
    : name_(std::move(name)), loop_(loop), auth_(auth) {}

void StorageEndpoint::create_collection(const std::string& collection,
                                        const std::string& token) {
  const TokenInfo& info = auth_.validate(token, scopes::kStorageWrite);
  OSPREY_REQUIRE(!collection.empty(), "collection name must not be empty");
  OSPREY_REQUIRE(collections_.count(collection) == 0,
                 "collection already exists: " + collection);
  Collection col;
  col.owner = info.identity;
  collections_.emplace(collection, std::move(col));
}

bool StorageEndpoint::has_collection(const std::string& collection) const {
  return collections_.count(collection) > 0;
}

const StorageEndpoint::Collection& StorageEndpoint::collection_for(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    throw osprey::util::NotFound("no such collection: " + name);
  }
  return it->second;
}

StorageEndpoint::Collection& StorageEndpoint::collection_for(
    const std::string& name) {
  return const_cast<Collection&>(
      static_cast<const StorageEndpoint*>(this)->collection_for(name));
}

void StorageEndpoint::require_permission(const Collection& col,
                                         const std::string& token,
                                         Permission needed,
                                         const std::string& scope) const {
  const TokenInfo& info = auth_.validate(token, scope);
  if (info.identity == col.owner) return;  // owner always has full access
  auto it = col.acl.find(info.identity);
  Permission have = (it == col.acl.end()) ? Permission::kNone : it->second;
  bool ok = (needed == Permission::kRead)
                ? (have == Permission::kRead || have == Permission::kReadWrite)
                : (have == Permission::kReadWrite);
  if (!ok) {
    throw osprey::util::AuthError("identity '" + info.identity +
                                  "' lacks permission on collection");
  }
}

void StorageEndpoint::grant(const std::string& collection,
                            const std::string& identity,
                            Permission permission,
                            const std::string& token) {
  Collection& col = collection_for(collection);
  const TokenInfo& info = auth_.validate(token, scopes::kStorageWrite);
  OSPREY_REQUIRE(info.identity == col.owner,
                 "only the collection owner may grant permissions");
  col.acl[identity] = permission;
}

Permission StorageEndpoint::permission_of(const std::string& collection,
                                          const std::string& identity) const {
  const Collection& col = collection_for(collection);
  if (identity == col.owner) return Permission::kReadWrite;
  auto it = col.acl.find(identity);
  return it == col.acl.end() ? Permission::kNone : it->second;
}

void StorageEndpoint::maybe_inject_acl_race(
    const std::string& collection) const {
  if (plan_ == nullptr) return;
  if (plan_->should_inject(FaultKind::kAclRace, "storage", name_,
                           loop_.now())) {
    throw osprey::util::AuthError(
        "ACL propagation race on collection '" + collection +
        "' (injected): permission not yet visible");
  }
}

std::string StorageEndpoint::put(const std::string& collection,
                                 const std::string& path, std::string bytes,
                                 const std::string& token) {
  Collection& col = collection_for(collection);
  require_permission(col, token, Permission::kReadWrite,
                     scopes::kStorageWrite);
  maybe_inject_acl_race(collection);
  StoredObject& obj = col.objects[path];
  bytes_stored_ += bytes.size();
  bytes_stored_ -= obj.bytes.size();
  obj.checksum = osprey::crypto::Sha256::hash_hex(bytes);
  obj.bytes = std::move(bytes);
  obj.modified = loop_.now();
  ++obj.generation;
  ++puts_;
  return obj.checksum;
}

const StoredObject& StorageEndpoint::get(const std::string& collection,
                                         const std::string& path,
                                         const std::string& token) const {
  const Collection& col = collection_for(collection);
  require_permission(col, token, Permission::kRead, scopes::kStorageRead);
  maybe_inject_acl_race(collection);
  auto it = col.objects.find(path);
  if (it == col.objects.end()) {
    throw osprey::util::NotFound("no such object: " + collection + "/" + path);
  }
  ++gets_;
  return it->second;
}

bool StorageEndpoint::exists(const std::string& collection,
                             const std::string& path) const {
  auto it = collections_.find(collection);
  if (it == collections_.end()) return false;
  return it->second.objects.count(path) > 0;
}

std::vector<std::string> StorageEndpoint::list(const std::string& collection,
                                               const std::string& prefix,
                                               const std::string& token) const {
  const Collection& col = collection_for(collection);
  require_permission(col, token, Permission::kRead, scopes::kStorageRead);
  std::vector<std::string> out;
  for (const auto& [path, obj] : col.objects) {
    (void)obj;
    if (path.compare(0, prefix.size(), prefix) == 0) out.push_back(path);
  }
  return out;
}

void StorageEndpoint::remove(const std::string& collection,
                             const std::string& path,
                             const std::string& token) {
  Collection& col = collection_for(collection);
  require_permission(col, token, Permission::kReadWrite,
                     scopes::kStorageWrite);
  auto it = col.objects.find(path);
  if (it == col.objects.end()) {
    throw osprey::util::NotFound("no such object: " + collection + "/" + path);
  }
  bytes_stored_ -= it->second.bytes.size();
  col.objects.erase(it);
}

std::size_t StorageEndpoint::num_objects() const {
  std::size_t n = 0;
  for (const auto& [name, col] : collections_) {
    (void)name;
    n += col.objects.size();
  }
  return n;
}

}  // namespace osprey::fabric
