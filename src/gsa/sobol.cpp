#include "gsa/sobol.hpp"

#include <cmath>

#include "num/simd.hpp"
#include "num/stats.hpp"
#include "util/error.hpp"

namespace osprey::gsa {

SobolIndices saltelli_indices(const BatchModelFn& model,
                              const std::vector<ParamRange>& ranges,
                              std::size_t n_base) {
  const std::size_t d = ranges.size();
  OSPREY_REQUIRE(d >= 1, "need at least one parameter");
  OSPREY_REQUIRE(n_base >= 8, "n_base too small");
  OSPREY_REQUIRE(2 * d <= osprey::num::SobolSequence::kMaxDim,
                 "too many dimensions for the Sobol' sequence table");

  // A and B from one 2d-dimensional low-discrepancy stream.
  osprey::num::SobolSequence seq(2 * d);
  Matrix a(n_base, d), b(n_base, d);
  for (std::size_t i = 0; i < n_base; ++i) {
    Vector p = seq.next();
    for (std::size_t j = 0; j < d; ++j) {
      a(i, j) = ranges[j].lo + (ranges[j].hi - ranges[j].lo) * p[j];
      b(i, j) = ranges[j].lo + (ranges[j].hi - ranges[j].lo) * p[d + j];
    }
  }

  Vector ya = model(a);
  Vector yb = model(b);
  OSPREY_CHECK(ya.size() == n_base && yb.size() == n_base,
               "model returned wrong batch size");

  // Total variance from the pooled A∪B sample.
  std::vector<double> pooled;
  pooled.reserve(2 * n_base);
  pooled.insert(pooled.end(), ya.begin(), ya.end());
  pooled.insert(pooled.end(), yb.begin(), yb.end());
  double var_y = osprey::num::variance(pooled);

  SobolIndices out;
  out.first_order.assign(d, 0.0);
  out.total_order.assign(d, 0.0);
  out.output_variance = var_y;
  out.evaluations = n_base * (d + 2);
  if (var_y <= 0.0) return out;  // constant model: all indices zero

  Matrix ab = a;
  // Jansen squared-difference terms, batched through the SoA kernel;
  // the i-ascending accumulation below matches the scalar loop exactly,
  // so replicate fan-outs stay bitwise identical to the legacy path.
  std::vector<double> db2(n_base), da2(n_base);
  for (std::size_t j = 0; j < d; ++j) {
    // AB_j: A with column j replaced from B.
    for (std::size_t i = 0; i < n_base; ++i) ab(i, j) = b(i, j);
    Vector yab = model(ab);
    osprey::num::simd::sub_square(yb.data(), yab.data(), db2.data(), n_base);
    osprey::num::simd::sub_square(ya.data(), yab.data(), da2.data(), n_base);
    double s1_acc = 0.0;
    double st_acc = 0.0;
    for (std::size_t i = 0; i < n_base; ++i) {
      s1_acc += db2[i];
      st_acc += da2[i];
    }
    double n = static_cast<double>(n_base);
    // Jansen estimators.
    out.first_order[j] = (var_y - s1_acc / (2.0 * n)) / var_y;
    out.total_order[j] = st_acc / (2.0 * n) / var_y;
    // Restore column j for the next dimension.
    for (std::size_t i = 0; i < n_base; ++i) ab(i, j) = a(i, j);
  }
  return out;
}

SobolIndices saltelli_indices(const ModelFn& model,
                              const std::vector<ParamRange>& ranges,
                              std::size_t n_base) {
  BatchModelFn batch = [&model](const Matrix& x) {
    Vector out(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) {
      out[i] = model(x.row(i));
    }
    return out;
  };
  return saltelli_indices(batch, ranges, n_base);
}

}  // namespace osprey::gsa
