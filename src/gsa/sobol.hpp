#pragma once

/// \file sobol.hpp
/// Variance-based global sensitivity analysis: Saltelli pick–freeze
/// estimation of first-order and total-order Sobol' indices (Jansen
/// estimators). Used both directly on models (reference values) and on
/// GP surrogate means (the MUSIC inner loop).

#include <functional>
#include <vector>

#include "num/sampling.hpp"
#include "num/vecmat.hpp"

namespace osprey::gsa {

using osprey::num::Matrix;
using osprey::num::ParamRange;
using osprey::num::Vector;

/// Scalar model over a parameter box.
using ModelFn = std::function<double(const Vector&)>;
/// Batch model over the box: rows of X are points (enables vectorized
/// surrogate evaluation).
using BatchModelFn = std::function<Vector(const Matrix&)>;

struct SobolIndices {
  std::vector<double> first_order;  // S1_i
  std::vector<double> total_order;  // ST_i
  double output_variance = 0.0;
  std::size_t evaluations = 0;
};

/// Saltelli design + Jansen estimators with `n_base` base samples from a
/// Sobol' low-discrepancy sequence; cost = n_base * (d + 2) evaluations.
SobolIndices saltelli_indices(const BatchModelFn& model,
                              const std::vector<ParamRange>& ranges,
                              std::size_t n_base);

/// Convenience wrapper for scalar models.
SobolIndices saltelli_indices(const ModelFn& model,
                              const std::vector<ParamRange>& ranges,
                              std::size_t n_base);

}  // namespace osprey::gsa
