#include "gsa/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "num/sampling.hpp"
#include "util/error.hpp"

namespace osprey::gsa {

using osprey::num::Matrix;
using osprey::num::Vector;

Calibrator::Calibrator(CalibrationConfig config)
    : config_(std::move(config)),
      rng_(config_.seed, 0xCA1B),
      gp_(config_.gp) {
  OSPREY_REQUIRE(!config_.ranges.empty(), "calibration needs ranges");
  OSPREY_REQUIRE(config_.n_init >= 4, "initial design too small");
  OSPREY_REQUIRE(config_.n_total >= config_.n_init, "n_total < n_init");
}

Matrix Calibrator::initial_design_box() {
  osprey::num::RngStream design_rng = rng_.substream(1);
  Matrix unit =
      osprey::num::latin_hypercube(config_.n_init, dim(), design_rng);
  return osprey::num::scale_design(unit, config_.ranges);
}

void Calibrator::ingest(const Vector& x_box, double loss) {
  OSPREY_REQUIRE(x_box.size() == dim(), "point dimension mismatch");
  OSPREY_REQUIRE(std::isfinite(loss), "non-finite loss");
  x_unit_.push_back(osprey::num::scale_to_unit(x_box, config_.ranges));
  y_.push_back(loss);
  double best = *std::min_element(y_.begin(), y_.end());
  trajectory_.push_back(CalibrationStep{y_.size(), best});
}

std::optional<Vector> Calibrator::advance() {
  OSPREY_REQUIRE(y_.size() >= config_.n_init,
                 "advance() before the initial design is evaluated");
  if (done()) return std::nullopt;

  Matrix x(x_unit_.size(), dim());
  for (std::size_t i = 0; i < x_unit_.size(); ++i) x.set_row(i, x_unit_[i]);
  if (!gp_initialized_ || y_.size() >= last_reopt_n_ + config_.reopt_every) {
    gp_.update_data(x, y_);
    gp_.reoptimize();
    gp_initialized_ = true;
    last_reopt_n_ = y_.size();
  } else {
    gp_.update_data(x, y_);
  }

  // Expected improvement for MINIMIZATION over an LHS candidate pool.
  double best_y = *std::min_element(y_.begin(), y_.end());
  osprey::num::RngStream cand_rng = rng_.substream(1000 + y_.size());
  Matrix candidates = osprey::num::latin_hypercube(config_.n_candidates,
                                                   dim(), cand_rng);
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t c = 0; c < candidates.rows(); ++c) {
    osprey::gp::GpPrediction pred = gp_.predict(candidates.row(c));
    double sd = std::sqrt(std::max(pred.variance, 0.0));
    double score;
    if (sd <= 0.0) {
      score = best_y - pred.mean;
    } else {
      double z = (best_y - pred.mean) / sd;
      double phi = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
      double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
      score = (best_y - pred.mean) * cdf + sd * phi;
    }
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return osprey::num::scale_to_box(candidates.row(best), config_.ranges);
}

CalibrationResult Calibrator::result() const {
  OSPREY_REQUIRE(!y_.empty(), "no evaluations recorded");
  CalibrationResult out;
  std::size_t best = 0;
  for (std::size_t i = 1; i < y_.size(); ++i) {
    if (y_[i] < y_[best]) best = i;
  }
  out.best_x = osprey::num::scale_to_box(x_unit_[best], config_.ranges);
  out.best_loss = y_[best];
  out.trajectory = trajectory_;
  out.evaluations = y_.size();
  return out;
}

CalibrationResult calibrate(const CalibrationConfig& config,
                            const LossFn& loss) {
  Calibrator calibrator(config);
  Matrix design = calibrator.initial_design_box();
  for (std::size_t i = 0; i < design.rows(); ++i) {
    Vector x = design.row(i);
    calibrator.ingest(x, loss(x));
  }
  while (std::optional<Vector> next = calibrator.advance()) {
    calibrator.ingest(*next, loss(*next));
  }
  return calibrator.result();
}

double series_mse_log(const std::vector<double>& simulated,
                      const std::vector<double>& observed) {
  OSPREY_REQUIRE(simulated.size() == observed.size() && !observed.empty(),
                 "series length mismatch");
  double acc = 0.0;
  for (std::size_t t = 0; t < observed.size(); ++t) {
    double d = std::log1p(std::max(simulated[t], 0.0)) -
               std::log1p(std::max(observed[t], 0.0));
    acc += d * d;
  }
  return acc / static_cast<double>(observed.size());
}

}  // namespace osprey::gsa
