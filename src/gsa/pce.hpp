#pragma once

/// \file pce.hpp
/// Polynomial chaos expansion GSA — the paper's baseline in Figure 4,
/// "included to highlight the limitations of one-shot approaches". A
/// total-degree Legendre PCE is fit by (ridge-regularized) least squares
/// on a single experimental design; Sobol' indices follow analytically
/// from the coefficient variance decomposition. The paper "chose a
/// degree 3 PCE as it performed the best", which is the default here.

#include <cstdint>
#include <vector>

#include "gsa/sobol.hpp"
#include "num/legendre.hpp"

namespace osprey::gsa {

struct PceConfig {
  unsigned degree = 3;
  double ridge_lambda = 1e-8;  // stabilizes under-determined fits (n < P)
};

/// A fitted expansion over the unit cube.
class PceModel {
 public:
  /// Fit on unit-cube inputs `u` (n x d) and responses `y`.
  PceModel(const Matrix& u, const Vector& y, const PceConfig& config = {});

  double predict(const Vector& u) const;

  std::size_t num_terms() const { return coefficients_.size(); }
  const Vector& coefficients() const { return coefficients_; }

  /// Analytic Sobol' indices of the expansion: with an orthonormal
  /// basis, Var = sum of squared non-constant coefficients; S1_i sums
  /// the terms involving only dimension i; ST_i all terms involving i.
  SobolIndices sobol() const;

 private:
  std::vector<std::vector<unsigned>> indices_;
  Vector coefficients_;
  std::size_t dim_ = 0;
};

/// One-shot PCE GSA of a model over a parameter box: draw an LHS design
/// of size n, fit, return the indices. This is the per-sample-size point
/// of the paper's magenta curves.
SobolIndices pce_gsa(const ModelFn& model,
                     const std::vector<ParamRange>& ranges, std::size_t n,
                     std::uint64_t seed, const PceConfig& config = {});

}  // namespace osprey::gsa
