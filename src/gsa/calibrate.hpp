#pragma once

/// \file calibrate.hpp
/// Surrogate-based model calibration — the workflow the paper's GSA
/// exists to serve ("GSA helps identify the most influential
/// parameters, facilitates dimensional reduction to aid in model
/// calibration efforts") and the kind of "novel, HPC-oriented model
/// exploration algorithm" its conclusion anticipates.
///
/// Bayesian-optimization loop over a parameter box: LHS initial design →
/// GP surrogate of the misfit → expected-improvement acquisition → one
/// evaluation per iteration. The misfit is any user loss (typically the
/// squared error between simulated and observed hospitalization
/// curves). Shares the GP/acquisition machinery with MUSIC.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "gp/gp.hpp"
#include "gsa/sobol.hpp"

namespace osprey::gsa {

/// Loss to minimize over the box (smaller = better fit).
using LossFn = std::function<double(const Vector&)>;

struct CalibrationConfig {
  std::vector<ParamRange> ranges;
  std::size_t n_init = 15;
  std::size_t n_total = 60;
  std::size_t n_candidates = 300;
  std::size_t reopt_every = 10;
  osprey::gp::GpConfig gp;
  std::uint64_t seed = 1;
};

struct CalibrationStep {
  std::size_t n = 0;
  double best_loss = 0.0;
};

struct CalibrationResult {
  Vector best_x;              // box coordinates of the best point found
  double best_loss = 0.0;
  std::vector<CalibrationStep> trajectory;  // best-so-far per evaluation
  std::size_t evaluations = 0;
};

/// Stepwise calibrator (design / ingest / advance), mirroring
/// MusicEngine so it can also run over an EMEWS queue.
class Calibrator {
 public:
  explicit Calibrator(CalibrationConfig config);

  std::size_t dim() const { return config_.ranges.size(); }
  std::size_t n_evaluated() const { return y_.size(); }
  bool done() const { return y_.size() >= config_.n_total; }

  /// Initial LHS design (box coordinates); call once.
  Matrix initial_design_box();
  /// Record an evaluated (point, loss).
  void ingest(const Vector& x_box, double loss);
  /// Refit and return the next expected-improvement point, or nullopt
  /// when the budget is exhausted.
  std::optional<Vector> advance();

  CalibrationResult result() const;

 private:
  CalibrationConfig config_;
  osprey::num::RngStream rng_;
  osprey::gp::GaussianProcess gp_;
  std::vector<Vector> x_unit_;
  std::vector<double> y_;
  std::vector<CalibrationStep> trajectory_;
  bool gp_initialized_ = false;
  std::size_t last_reopt_n_ = 0;
};

/// Synchronous driver.
CalibrationResult calibrate(const CalibrationConfig& config,
                            const LossFn& loss);

/// Convenience loss: mean squared error between two equal-length series
/// (e.g. observed vs simulated daily hospitalizations), on a log1p scale
/// so peaks don't dominate everything.
double series_mse_log(const std::vector<double>& simulated,
                      const std::vector<double>& observed);

}  // namespace osprey::gsa
