#pragma once

/// \file music.hpp
/// MUSIC active-learning GSA (Chauhan et al. 2024), the paper's §3.1.2:
/// a GP surrogate is trained on a small Latin-hypercube design and then
/// refined one point at a time with the EIGF (Expected Improvement in
/// Global Fit) acquisition; first-order Sobol' indices are re-estimated
/// on the surrogate after every new evaluation, producing the
/// index-vs-sample-size convergence curves of Figures 4 and 5.
///
/// EIGF(x) = (mu_n(x) - y(x_nn))^2 + s_n^2(x), where x_nn is the nearest
/// design point — the D1-style local-fit-improvement formulation used in
/// the paper's illustration.
///
/// The algorithm is split into an engine (design / ingest / advance) so
/// the same logic runs both synchronously (run_music) and cooperatively
/// interleaved on an EMEWS task queue (music_coop.hpp).

#include <cstdint>
#include <optional>
#include <vector>

#include "gp/gp.hpp"
#include "gsa/sobol.hpp"

namespace osprey::gsa {

/// Acquisition functions selectable for the active-learning loop. The
/// paper's illustration uses EIGF; EI and UCB are the "more common"
/// alternatives it contrasts with ("which focus on minimizing prediction
/// error in global surrogate prediction"), and kVariance (ALM) is the
/// pure-exploration baseline. Kept for the ablation bench.
enum class Acquisition {
  kEigf,      // (mu(x) - y(x_nn))^2 + s^2(x)
  kVariance,  // s^2(x)                 (ALM / active learning MacKay)
  kEi,        // expected improvement over the best observed response
  kUcb,       // mu(x) + beta * s(x)
  kRandom,    // uniform random point   (no-surrogate baseline)
};

const char* acquisition_name(Acquisition acquisition);

struct MusicConfig {
  std::vector<ParamRange> ranges;   // the Table-1 parameter box
  std::size_t n_init = 25;          // initial LHS design size
  std::size_t n_total = 200;        // total evaluation budget
  std::size_t n_candidates = 200;   // acquisition candidate pool per iter
  std::size_t surrogate_mc_n = 1024;  // Saltelli base n on the surrogate
  std::size_t reopt_every = 25;     // GP hyperparameter refit cadence
  Acquisition acquisition = Acquisition::kEigf;
  double ucb_beta = 2.0;            // exploration weight for kUcb
  osprey::gp::GpConfig gp;
  std::uint64_t seed = 1;
};

/// One point of the convergence trajectory.
struct MusicStep {
  std::size_t n = 0;               // design size when recorded
  std::vector<double> s1;          // estimated first-order indices
  std::vector<double> st;          // estimated total-order indices
};

struct MusicResult {
  std::vector<MusicStep> trajectory;
  std::vector<double> final_s1;
  Matrix x_box;                    // evaluated designs (box coordinates)
  Vector y;
  std::size_t evaluations = 0;
};

/// Stepwise MUSIC core. Usage:
///   auto design = engine.initial_design_box();
///   for (row : design) engine.ingest(row, model(row));
///   while (auto next = engine.advance()) engine.ingest(*next, model(*next));
///   auto result = engine.result();
class MusicEngine {
 public:
  explicit MusicEngine(MusicConfig config);

  const MusicConfig& config() const { return config_; }
  std::size_t dim() const { return config_.ranges.size(); }
  std::size_t n_evaluated() const { return y_.size(); }
  bool done() const { return y_.size() >= config_.n_total; }

  /// The initial LHS design in box coordinates (call once).
  Matrix initial_design_box();

  /// Record one evaluated point (box coordinates).
  void ingest(const Vector& x_box, double y);

  /// Fit/refresh the surrogate on everything ingested so far, append a
  /// trajectory record, and — unless the budget is exhausted — return
  /// the next EIGF point to evaluate (box coordinates).
  std::optional<Vector> advance();

  const std::vector<MusicStep>& trajectory() const { return trajectory_; }
  const osprey::gp::GaussianProcess& surrogate() const { return gp_; }

  /// Collect the final result (valid once done()).
  MusicResult result() const;

 private:
  SobolIndices estimate_surrogate_indices() const;
  Vector acquire_next();
  double acquisition_score(const Vector& u) const;

  MusicConfig config_;
  std::vector<ParamRange> unit_ranges_;
  osprey::num::RngStream rng_;
  osprey::gp::GaussianProcess gp_;
  std::vector<Vector> x_unit_;
  std::vector<double> y_;
  std::vector<MusicStep> trajectory_;
  bool gp_initialized_ = false;
  std::size_t last_reopt_n_ = 0;
};

/// Synchronous driver: evaluates `model` inline.
MusicResult run_music(const MusicConfig& config, const ModelFn& model);

/// Sample size after which the max subsequent change of every index
/// stays below `eps` (the "stabilization" the paper reads off Figure 4).
/// Returns the last recorded n when never stable.
std::size_t stabilization_n(const std::vector<MusicStep>& trajectory,
                            double eps);

}  // namespace osprey::gsa
