#include "gsa/pce.hpp"

#include "num/cholesky.hpp"
#include "num/rng.hpp"
#include "util/error.hpp"

namespace osprey::gsa {

PceModel::PceModel(const Matrix& u, const Vector& y, const PceConfig& config)
    : indices_(osprey::num::total_degree_multi_indices(u.cols(),
                                                       config.degree)),
      dim_(u.cols()) {
  OSPREY_REQUIRE(u.rows() == y.size(), "X/y size mismatch");
  OSPREY_REQUIRE(u.rows() >= 2, "PCE needs at least 2 points");

  // Design matrix of basis evaluations.
  Matrix psi(u.rows(), indices_.size());
  for (std::size_t i = 0; i < u.rows(); ++i) {
    Vector row = osprey::num::evaluate_pce_basis(indices_, u.row(i));
    psi.set_row(i, row);
  }
  coefficients_ = osprey::num::ridge_solve(psi, y, config.ridge_lambda);
}

double PceModel::predict(const Vector& u) const {
  Vector basis = osprey::num::evaluate_pce_basis(indices_, u);
  return osprey::num::dot(basis, coefficients_);
}

SobolIndices PceModel::sobol() const {
  SobolIndices out;
  out.first_order.assign(dim_, 0.0);
  out.total_order.assign(dim_, 0.0);

  double total_var = 0.0;
  for (std::size_t a = 1; a < indices_.size(); ++a) {
    total_var += coefficients_[a] * coefficients_[a];
  }
  out.output_variance = total_var;
  if (total_var <= 0.0) return out;

  for (std::size_t a = 1; a < indices_.size(); ++a) {
    double c2 = coefficients_[a] * coefficients_[a];
    // Which dimensions participate in this term?
    int active = -1;
    bool single = true;
    for (std::size_t j = 0; j < dim_; ++j) {
      if (indices_[a][j] == 0) continue;
      out.total_order[j] += c2;
      if (active < 0) {
        active = static_cast<int>(j);
      } else {
        single = false;
      }
    }
    if (single && active >= 0) {
      out.first_order[static_cast<std::size_t>(active)] += c2;
    }
  }
  for (std::size_t j = 0; j < dim_; ++j) {
    out.first_order[j] /= total_var;
    out.total_order[j] /= total_var;
  }
  return out;
}

SobolIndices pce_gsa(const ModelFn& model,
                     const std::vector<ParamRange>& ranges, std::size_t n,
                     std::uint64_t seed, const PceConfig& config) {
  const std::size_t d = ranges.size();
  osprey::num::RngStream rng(seed);
  Matrix u = osprey::num::latin_hypercube(n, d, rng);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = model(osprey::num::scale_to_box(u.row(i), ranges));
  }
  PceModel pce(u, y, config);
  SobolIndices out = pce.sobol();
  out.evaluations = n;
  return out;
}

}  // namespace osprey::gsa
