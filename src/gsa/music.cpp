#include "gsa/music.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "num/sampling.hpp"
#include "util/error.hpp"

namespace osprey::gsa {

using osprey::num::Matrix;
using osprey::num::Vector;

MusicEngine::MusicEngine(MusicConfig config)
    : config_(std::move(config)),
      rng_(config_.seed, 0xBEEF),
      gp_([&] {
        // The engine drives the refit cadence (config_.reopt_every), so
        // the GP's own add_point auto-reoptimize must stay out of the way.
        osprey::gp::GpConfig gp_config = config_.gp;
        gp_config.reopt_every = 0;
        return gp_config;
      }()) {
  OSPREY_REQUIRE(!config_.ranges.empty(), "MUSIC needs parameter ranges");
  OSPREY_REQUIRE(config_.n_init >= 4, "initial design too small");
  OSPREY_REQUIRE(config_.n_total >= config_.n_init,
                 "n_total < n_init");
  unit_ranges_.resize(config_.ranges.size());
  for (std::size_t j = 0; j < unit_ranges_.size(); ++j) {
    unit_ranges_[j] = ParamRange{config_.ranges[j].name, 0.0, 1.0};
  }
}

Matrix MusicEngine::initial_design_box() {
  osprey::num::RngStream design_rng = rng_.substream(1);
  Matrix unit = osprey::num::latin_hypercube(config_.n_init, dim(),
                                             design_rng);
  return osprey::num::scale_design(unit, config_.ranges);
}

void MusicEngine::ingest(const Vector& x_box, double y) {
  OSPREY_REQUIRE(x_box.size() == dim(), "point dimension mismatch");
  OSPREY_REQUIRE(std::isfinite(y), "non-finite response");
  x_unit_.push_back(osprey::num::scale_to_unit(x_box, config_.ranges));
  y_.push_back(y);
}

SobolIndices MusicEngine::estimate_surrogate_indices() const {
  BatchModelFn surrogate = [this](const Matrix& u) {
    return gp_.predict_mean(u);
  };
  SobolIndices idx =
      saltelli_indices(surrogate, unit_ranges_, config_.surrogate_mc_n);
  // Clamp to [0,1]: MC noise can push estimates slightly outside.
  for (double& s : idx.first_order) s = std::clamp(s, 0.0, 1.0);
  for (double& s : idx.total_order) s = std::clamp(s, 0.0, 1.0);
  return idx;
}

const char* acquisition_name(Acquisition acquisition) {
  switch (acquisition) {
    case Acquisition::kEigf: return "EIGF";
    case Acquisition::kVariance: return "variance (ALM)";
    case Acquisition::kEi: return "EI";
    case Acquisition::kUcb: return "UCB";
    case Acquisition::kRandom: return "random";
  }
  return "?";
}

double MusicEngine::acquisition_score(const Vector& u) const {
  osprey::gp::GpPrediction pred = gp_.predict(u);
  double sd = std::sqrt(std::max(pred.variance, 0.0));
  switch (config_.acquisition) {
    case Acquisition::kEigf: {
      // Nearest design point in the unit cube (plain Euclidean metric,
      // as in the EIGF definition).
      double best_dist = std::numeric_limits<double>::infinity();
      std::size_t nn = 0;
      for (std::size_t i = 0; i < x_unit_.size(); ++i) {
        double q = 0.0;
        for (std::size_t j = 0; j < u.size(); ++j) {
          double d = x_unit_[i][j] - u[j];
          q += d * d;
        }
        if (q < best_dist) {
          best_dist = q;
          nn = i;
        }
      }
      double local = pred.mean - y_[nn];
      return local * local + pred.variance;
    }
    case Acquisition::kVariance:
      return pred.variance;
    case Acquisition::kEi: {
      // Expected improvement over the best (largest) observed response.
      double best_y = *std::max_element(y_.begin(), y_.end());
      if (sd <= 0.0) return 0.0;
      double z = (pred.mean - best_y) / sd;
      double phi = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
      double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
      return (pred.mean - best_y) * cdf + sd * phi;
    }
    case Acquisition::kUcb:
      return pred.mean + config_.ucb_beta * sd;
    case Acquisition::kRandom:
      return 0.0;  // handled by the caller (all scores tie)
  }
  return 0.0;
}

Vector MusicEngine::acquire_next() {
  osprey::num::RngStream cand_rng = rng_.substream(1000 + y_.size());
  Matrix candidates = osprey::num::latin_hypercube(config_.n_candidates,
                                                   dim(), cand_rng);
  if (config_.acquisition == Acquisition::kRandom) {
    return candidates.row(
        static_cast<std::size_t>(cand_rng.uniform_int(candidates.rows())));
  }
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best = 0;
  for (std::size_t c = 0; c < candidates.rows(); ++c) {
    double score = acquisition_score(candidates.row(c));
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return candidates.row(best);
}

std::optional<Vector> MusicEngine::advance() {
  OSPREY_REQUIRE(y_.size() >= config_.n_init,
                 "advance() before the initial design is evaluated");

  // Refresh the surrogate: full MLE at init and every reopt_every new
  // points; otherwise append the new evaluations through the GP's
  // O(n^2) incremental rank-1 path (hyperparameters unchanged).
  if (!gp_initialized_ || y_.size() >= last_reopt_n_ + config_.reopt_every) {
    Matrix x(x_unit_.size(), dim());
    for (std::size_t i = 0; i < x_unit_.size(); ++i) x.set_row(i, x_unit_[i]);
    gp_.update_data(x, y_);
    gp_.reoptimize();
    gp_initialized_ = true;
    last_reopt_n_ = y_.size();
  } else {
    for (std::size_t i = gp_.n(); i < x_unit_.size(); ++i) {
      gp_.add_point(x_unit_[i], y_[i]);
    }
  }

  SobolIndices idx = estimate_surrogate_indices();
  trajectory_.push_back(MusicStep{y_.size(), std::move(idx.first_order),
                                  std::move(idx.total_order)});

  if (done()) return std::nullopt;
  Vector u = acquire_next();
  return osprey::num::scale_to_box(u, config_.ranges);
}

MusicResult MusicEngine::result() const {
  MusicResult out;
  out.trajectory = trajectory_;
  if (!trajectory_.empty()) out.final_s1 = trajectory_.back().s1;
  out.x_box = Matrix(x_unit_.size(), dim());
  for (std::size_t i = 0; i < x_unit_.size(); ++i) {
    out.x_box.set_row(
        i, osprey::num::scale_to_box(x_unit_[i], config_.ranges));
  }
  out.y = y_;
  out.evaluations = y_.size();
  return out;
}

MusicResult run_music(const MusicConfig& config, const ModelFn& model) {
  MusicEngine engine(config);
  Matrix design = engine.initial_design_box();
  for (std::size_t i = 0; i < design.rows(); ++i) {
    Vector x = design.row(i);
    engine.ingest(x, model(x));
  }
  while (std::optional<Vector> next = engine.advance()) {
    engine.ingest(*next, model(*next));
  }
  return engine.result();
}

std::size_t stabilization_n(const std::vector<MusicStep>& trajectory,
                            double eps) {
  OSPREY_REQUIRE(!trajectory.empty(), "empty trajectory");
  const std::size_t d = trajectory.front().s1.size();
  // Walk backwards: find the earliest record such that every later
  // record differs from the final values by < eps in every index.
  const std::vector<double>& final_s1 = trajectory.back().s1;
  std::size_t stable_from = trajectory.size() - 1;
  for (std::size_t r = trajectory.size(); r-- > 0;) {
    bool ok = true;
    for (std::size_t j = 0; j < d; ++j) {
      if (std::fabs(trajectory[r].s1[j] - final_s1[j]) >= eps) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
    stable_from = r;
  }
  return trajectory[stable_from].n;
}

}  // namespace osprey::gsa
