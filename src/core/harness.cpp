#include "core/harness.hpp"

#include "util/error.hpp"

namespace osprey::core {

const char* language_name(Language lang) {
  switch (lang) {
    case Language::kPython: return "python";
    case Language::kR: return "R";
    case Language::kJulia: return "julia";
    case Language::kCpp: return "c++";
  }
  return "?";
}

void HarnessRegistry::add(const std::string& name, Language language,
                          const std::string& description, HarnessFn fn) {
  OSPREY_REQUIRE(static_cast<bool>(fn), "null harness function");
  OSPREY_REQUIRE(entries_.count(name) == 0,
                 "harness already registered: " + name);
  Entry entry;
  entry.info.name = name;
  entry.info.language = language;
  entry.info.description = description;
  entry.fn = std::move(fn);
  entries_.emplace(name, std::move(entry));
}

bool HarnessRegistry::has(const std::string& name) const {
  return entries_.count(name) > 0;
}

osprey::util::Value HarnessRegistry::invoke(const std::string& name,
                                            const osprey::util::Value& args) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw osprey::util::NotFound("no such harness: " + name);
  }
  ++it->second.info.invocations;
  return it->second.fn(args);
}

HarnessFn HarnessRegistry::as_compute_fn(const std::string& name) {
  OSPREY_REQUIRE(has(name), "no such harness: " + name);
  return [this, name](const osprey::util::Value& args) {
    return invoke(name, args);
  };
}

const HarnessInfo& HarnessRegistry::info(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw osprey::util::NotFound("no such harness: " + name);
  }
  return it->second.info;
}

std::vector<HarnessInfo> HarnessRegistry::list() const {
  std::vector<HarnessInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)name;
    out.push_back(entry.info);
  }
  return out;
}

std::uint64_t HarnessRegistry::invocations_by(Language language) const {
  std::uint64_t n = 0;
  for (const auto& [name, entry] : entries_) {
    (void)name;
    if (entry.info.language == language) n += entry.info.invocations;
  }
  return n;
}

}  // namespace osprey::core
