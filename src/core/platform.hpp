#pragma once

/// \file platform.hpp
/// The OSPREY platform facade: one object owning the simulated research
/// fabric (event loop, auth, storage/compute endpoints, transfer, timers,
/// flows, schedulers), the AERO orchestration server, and the EMEWS task
/// database — the pieces the paper's two use cases are wired from.

#include <map>
#include <memory>
#include <string>

#include "aero/server.hpp"
#include "emews/task_db.hpp"
#include "fabric/auth.hpp"
#include "fabric/compute.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/flows.hpp"
#include "fabric/scheduler.hpp"
#include "fabric/storage.hpp"
#include "fabric/timer.hpp"
#include "fabric/transfer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace osprey::core {

class OspreyPlatform {
 public:
  OspreyPlatform();

  OspreyPlatform(const OspreyPlatform&) = delete;
  OspreyPlatform& operator=(const OspreyPlatform&) = delete;

  // --- fabric services ---
  fabric::EventLoop& loop() { return loop_; }
  fabric::AuthService& auth() { return auth_; }
  fabric::TimerService& timers() { return timers_; }
  fabric::TransferService& transfers() { return transfers_; }
  fabric::FlowsService& flows() { return flows_; }

  // --- resource construction ("bring your own storage and compute") ---
  fabric::StorageEndpoint& add_storage_endpoint(const std::string& name);
  fabric::BatchScheduler& add_scheduler(const std::string& name, int nodes);
  fabric::ComputeEndpoint& add_login_endpoint(const std::string& name,
                                              int slots);
  fabric::ComputeEndpoint& add_batch_endpoint(const std::string& name,
                                              fabric::BatchScheduler& sched);

  fabric::StorageEndpoint& storage_endpoint(const std::string& name);
  const fabric::StorageEndpoint& storage_endpoint(
      const std::string& name) const;
  fabric::ComputeEndpoint& compute_endpoint(const std::string& name);
  fabric::BatchScheduler& scheduler(const std::string& name);

  // --- orchestration layers ---
  aero::AeroServer& aero() { return aero_; }
  emews::TaskDb& task_db() { return task_db_; }

  // --- observability ---
  /// The platform-wide trace recorder. Every fabric service, the AERO
  /// server and the EMEWS task database record into it; timestamps are
  /// simulated time, so replays of the same seed yield identical traces.
  obs::TraceRecorder& tracer() { return tracer_; }
  const obs::TraceRecorder& tracer() const { return tracer_; }
  /// The platform-wide metrics registry (fabric_* and aero_* metrics).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Attach a chaos FaultPlan (non-owning) to every fabric service and
  /// the AERO server — including endpoints/schedulers added later.
  /// Pass nullptr to detach everywhere.
  void install_fault_plan(fabric::FaultPlan* plan);
  fabric::FaultPlan* fault_plan() { return plan_; }

  /// Issue a full-scope token for a user identity.
  std::string issue_token(const std::string& identity);

  /// Advance virtual time by whole days, processing all events.
  void run_days(int days);
  /// Advance to an absolute virtual time.
  void run_until(fabric::SimTime t);

 private:
  // Declared before the services so it outlives everything tracing
  // into it (and so aero_ can take &metrics_ at construction).
  obs::TraceRecorder tracer_;
  obs::MetricsRegistry metrics_;
  fabric::EventLoop loop_;
  fabric::AuthService auth_;
  fabric::TimerService timers_;
  fabric::TransferService transfers_;
  fabric::FlowsService flows_;
  std::map<std::string, std::unique_ptr<fabric::StorageEndpoint>> storage_;
  std::map<std::string, std::unique_ptr<fabric::BatchScheduler>> schedulers_;
  std::map<std::string, std::unique_ptr<fabric::ComputeEndpoint>> compute_;
  aero::AeroServer aero_;
  emews::TaskDb task_db_;
  fabric::FaultPlan* plan_ = nullptr;
};

}  // namespace osprey::core
