#pragma once

/// \file usecase_gsa.hpp
/// Use case 2 (paper §3): the Shared-Development-Environment workflow —
/// N instances of the MUSIC active-learning GSA (one per stochastic
/// MetaRVM replicate), interleaved over an EMEWS task queue whose worker
/// pool is started programmatically through the batch scheduler.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/metarvm_gsa.hpp"
#include "core/platform.hpp"
#include "emews/pool_launcher.hpp"
#include "gsa/music.hpp"
#include "core/music_coop.hpp"

namespace osprey::core {

struct GsaUseCaseConfig {
  gsa::MusicConfig music;          // ranges default to Table 1
  std::size_t n_replicates = 10;
  std::size_t n_workers = 4;
  /// Launch the pool through the simulated PBS (paper's production
  /// path) or directly (paper's "locally when testing" path).
  bool launch_via_scheduler = true;
  epi::MetaRvmConfig model;        // defaults to a stratified population
  std::uint64_t model_seed = 2024;

  GsaUseCaseConfig() {
    music.ranges = table1_ranges();
    music.n_init = 25;
    music.n_total = 120;
    model = epi::MetaRvmConfig::stratified_demo(200'000, 90);
  }
};

struct GsaUseCaseResult {
  std::vector<gsa::MusicResult> replicates;  // one per MUSIC instance
  double pool_utilization = 0.0;
  std::uint64_t tasks_evaluated = 0;
  std::uint64_t driver_polls = 0;
};

/// Builder/runner. run() blocks the calling thread (it *is* the ME
/// algorithm thread of the paper, with worker threads evaluating the
/// model concurrently).
class GsaUseCase {
 public:
  GsaUseCase(OspreyPlatform& platform, GsaUseCaseConfig config);

  /// Initialization (paper §3.2): set up the task queue, start the
  /// worker pool (through the scheduler in production mode), create the
  /// interleaved MUSIC instances; then drive them to completion and
  /// finalize (close the queue, stop the pool).
  GsaUseCaseResult run();

  static constexpr const char* kTaskType = "metarvm";

 private:
  OspreyPlatform& platform_;
  GsaUseCaseConfig config_;
};

}  // namespace osprey::core
