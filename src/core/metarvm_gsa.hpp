#pragma once

/// \file metarvm_gsa.hpp
/// The paper's Table 1: the five MetaRVM parameters treated as
/// uncertain in the GSA, their ranges, and the mapping from a sample
/// point to a full parameter set (everything else at nominal values).
/// The quantity of interest is the total number of hospitalizations at
/// the end of the 90-day simulation.

#include <cstdint>
#include <memory>

#include "epi/metarvm.hpp"
#include "num/sampling.hpp"
#include "util/value.hpp"

namespace osprey::core {

/// Table 1 of the paper, in order: ts, tv, pea, psh, phd.
std::vector<osprey::num::ParamRange> table1_ranges();

/// Human-readable Table-1 descriptions (parallel to table1_ranges()).
std::vector<std::string> table1_descriptions();

/// Point (ts, tv, pea, psh, phd) -> full parameter set at nominal values.
epi::MetaRvmParams params_from_point(const osprey::num::Vector& x);

/// Quantities of interest a GSA can target. The paper uses
/// kTotalHospitalizations ("the total number of hospitalizations at the
/// end of the simulation period"); the others support QoI-sensitivity
/// comparisons (different outcomes weight the parameters differently).
enum class Qoi {
  kTotalHospitalizations,
  kTotalDeaths,
  kPeakHospitalOccupancy,  // max simultaneous H census over the horizon
  kTotalInfections,
};

const char* qoi_name(Qoi qoi);

/// Extract a QoI from a finished trajectory.
double extract_qoi(const epi::MetaRvmTrajectory& trajectory, Qoi qoi);

/// The GSA model: evaluates the hospitalization QoI of `model` for a
/// Table-1 point under replicate `replicate` of `seed`. Matches the
/// paper's replicate semantics: the same replicate uses the same random
/// stream for every parameter point (common random numbers), so the
/// response surface per replicate is deterministic.
double evaluate_metarvm_qoi(const epi::MetaRvm& model,
                            const osprey::num::Vector& x, std::uint64_t seed,
                            std::uint64_t replicate,
                            Qoi qoi = Qoi::kTotalHospitalizations);

/// EMEWS worker model function for the GSA task protocol
/// ({"x": [...], "replicate": k} -> {"y": qoi}); shares `model`.
osprey::util::Value metarvm_task_model(
    const std::shared_ptr<const epi::MetaRvm>& model, std::uint64_t seed,
    const osprey::util::Value& payload);

}  // namespace osprey::core
