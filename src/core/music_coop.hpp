#pragma once

/// \file music_coop.hpp
/// MUSIC as a cooperative EMEWS algorithm instance (§3.2): the workflow
/// runs 10 such instances (one per stochastic replicate), interleaved so
/// that the worker pool stays busy while individual instances wait for
/// their single-point refinement evaluations.
///
/// Task protocol on the queue: payload {"x": [..], "replicate": k}
/// evaluated by the worker pool's model function into {"y": <double>}.

#include <cstdint>
#include <string>
#include <vector>

#include "emews/interleave.hpp"
#include "emews/task_api.hpp"
#include "gsa/music.hpp"

namespace osprey::core {

// The science (MusicEngine) lives in gsa; only this EMEWS adapter sits
// in core, which is the one module allowed to couple the two layers.
using osprey::gsa::Matrix;
using osprey::gsa::MusicConfig;
using osprey::gsa::MusicEngine;
using osprey::gsa::MusicResult;
using osprey::gsa::Vector;

class MusicCoop final : public osprey::emews::CoopAlgorithm {
 public:
  /// `replicate` is carried in every task payload so the worker's model
  /// can select the replicate's random stream (aleatoric uncertainty
  /// separation, §3.1.2).
  MusicCoop(std::string name, osprey::emews::TaskQueue queue,
            MusicConfig config, std::uint64_t replicate);

  std::string name() const override { return name_; }
  void start() override;
  osprey::emews::PollResult poll() override;

  bool finished() const { return finished_; }
  const MusicEngine& engine() const { return engine_; }
  MusicResult result() const { return engine_.result(); }
  std::uint64_t replicate() const { return replicate_; }

 private:
  struct Pending {
    osprey::emews::TaskFuture future;
    Vector x;
    double y = 0.0;          // buffered result
    bool collected = false;
  };

  void submit_point(const Vector& x_box);
  bool all_collected() const;
  /// Runs engine.advance() and submits the next point (or finishes).
  void advance_engine();

  std::string name_;
  osprey::emews::TaskQueue queue_;
  MusicEngine engine_;
  std::uint64_t replicate_;
  std::vector<Pending> pending_;
  std::size_t cursor_ = 0;   // round-robin position over pending_
  bool finished_ = false;
};

}  // namespace osprey::core
