#include "core/usecase_gsa.hpp"

#include "emews/interleave.hpp"
#include "emews/worker_pool.hpp"
#include "util/log.hpp"

namespace osprey::core {

GsaUseCase::GsaUseCase(OspreyPlatform& platform, GsaUseCaseConfig config)
    : platform_(platform), config_(std::move(config)) {}

GsaUseCaseResult GsaUseCase::run() {
  auto model = std::make_shared<const epi::MetaRvm>(config_.model);
  std::uint64_t seed = config_.model_seed;
  emews::ModelFn task_model =
      [model, seed](const osprey::util::Value& payload) {
        return metarvm_task_model(model, seed, payload);
      };

  // --- initialization: queue + worker pool ---
  emews::TaskDb& db = platform_.task_db();
  emews::TaskQueue queue(db, kTaskType);

  std::unique_ptr<emews::LaunchedPool> launched;
  std::unique_ptr<emews::WorkerPool> direct_pool;
  if (config_.launch_via_scheduler) {
    // Production path: a job on the (simulated) PBS starts the pool.
    fabric::BatchScheduler& sched = platform_.add_scheduler("improv-pbs", 2);
    emews::PoolLaunchSpec spec;
    spec.name = "metarvm-pool";
    spec.n_workers = config_.n_workers;
    launched = std::make_unique<emews::LaunchedPool>(
        sched, db, kTaskType, task_model, spec);
    platform_.run_until(platform_.loop().now() + osprey::util::kMinute);
  } else {
    direct_pool = std::make_unique<emews::WorkerPool>(
        db, kTaskType, task_model, config_.n_workers, "metarvm-pool");
  }

  // --- the interleaved MUSIC instances, one per replicate ---
  emews::InterleavedDriver driver(db);
  std::vector<std::shared_ptr<MusicCoop>> instances;
  for (std::size_t r = 0; r < config_.n_replicates; ++r) {
    gsa::MusicConfig mc = config_.music;
    mc.seed = config_.music.seed + r;  // distinct designs per instance
    auto coop = std::make_shared<MusicCoop>(
        "music-rep" + std::to_string(r), queue, mc, r);
    instances.push_back(coop);
    driver.add(coop);
  }
  // One span covers the interleaved ME drive; task spans (recorded by
  // the TaskDb on the same clock) fall inside it.
  obs::SpanId run_span = platform_.tracer().begin_span(
      obs::Category::kGsa, "gsa:music-run", db.clock().now_ns(),
      obs::kNoSpan, std::to_string(config_.n_replicates) + " replicate(s)");
  driver.run();
  platform_.tracer().end_span(run_span, db.clock().now_ns());

  // --- finalization: close the queue, stop the worker pool ---
  GsaUseCaseResult result;
  for (const auto& inst : instances) {
    result.replicates.push_back(inst->result());
  }
  if (launched) {
    launched->stop();
    result.pool_utilization = launched->pool().utilization();
    result.tasks_evaluated = launched->pool().tasks_evaluated();
  } else {
    direct_pool->shutdown();
    result.pool_utilization = direct_pool->utilization();
    result.tasks_evaluated = direct_pool->tasks_evaluated();
  }
  result.driver_polls = driver.total_polls();
  OSPREY_LOG_INFO("osprey", "GSA use case finished: "
                            << result.tasks_evaluated << " evaluations");
  return result;
}

}  // namespace osprey::core
