#include "core/wastewater_source.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/sim_time.hpp"

namespace osprey::core {

WastewaterSource::WastewaterSource(
    std::shared_ptr<epi::WastewaterGenerator> gen)
    : gen_(std::move(gen)) {
  OSPREY_REQUIRE(gen_ != nullptr, "null generator");
}

std::string WastewaterSource::url() const {
  // Mirrors the IWSS feed naming.
  std::string slug = gen_->plant().name;
  for (char& c : slug) {
    if (c == ' ' || c == '\'') c = '-';
  }
  return "https://iwss.sim/feeds/" + slug + ".csv";
}

std::optional<std::string> WastewaterSource::fetch(aero::SimTime now) {
  int day = static_cast<int>(osprey::util::sim_day(now));
  day = std::min(day, gen_->config().days - 1);
  if (gen_->last_publication_day(day) < 0) return std::nullopt;
  return gen_->published_csv(day);
}

}  // namespace osprey::core
