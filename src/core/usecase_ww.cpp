#include "core/usecase_ww.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>

#include "num/rng.hpp"
#include "num/stats.hpp"
#include "rt/ensemble.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/string_util.hpp"

namespace osprey::core {

using osprey::util::CsvTable;
using osprey::util::Value;
using osprey::util::ValueObject;

namespace {

std::vector<epi::WwSample> parse_samples(const std::string& csv) {
  CsvTable table = CsvTable::parse(csv);
  std::vector<epi::WwSample> out;
  out.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    epi::WwSample s;
    s.day = static_cast<int>(table.cell_double(r, "day"));
    s.concentration = table.cell_double(r, "concentration_gc_per_l");
    out.push_back(s);
  }
  return out;
}

std::string series_to_csv(const rt::RtSeries& series) {
  CsvTable table({"day", "median", "lo95", "hi95"});
  for (std::size_t t = 0; t < series.days(); ++t) {
    table.add_row({std::to_string(t),
                   osprey::util::format("%.6f", series.median[t]),
                   osprey::util::format("%.6f", series.lo95[t]),
                   osprey::util::format("%.6f", series.hi95[t])});
  }
  return table.to_string();
}

rt::RtSeries csv_to_series(const std::string& csv) {
  CsvTable table = CsvTable::parse(csv);
  rt::RtSeries s;
  s.median = table.column_doubles("median");
  s.lo95 = table.column_doubles("lo95");
  s.hi95 = table.column_doubles("hi95");
  return s;
}

std::string draws_to_csv(const rt::RtPosterior& posterior, int max_draws) {
  std::vector<std::string> header;
  header.reserve(posterior.days());
  for (std::size_t t = 0; t < posterior.days(); ++t) {
    header.push_back("d" + std::to_string(t));
  }
  CsvTable table(header);
  std::size_t n =
      std::min<std::size_t>(posterior.n_draws(),
                            static_cast<std::size_t>(max_draws));
  for (std::size_t d = 0; d < n; ++d) {
    std::vector<std::string> row;
    row.reserve(posterior.days());
    for (std::size_t t = 0; t < posterior.days(); ++t) {
      row.push_back(osprey::util::format("%.5f", posterior.draws(d, t)));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

rt::RtPosterior csv_to_posterior(const std::string& csv) {
  CsvTable table = CsvTable::parse(csv);
  rt::RtPosterior out;
  out.draws = osprey::num::Matrix(table.num_rows(), table.num_cols());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const auto& row = table.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.draws(r, c) = std::strtod(row[c].c_str(), nullptr);
    }
  }
  return out;
}

/// Tiny ASCII rendition of a series — the stand-in for the R-generated
/// plot artifacts the paper's workflow stores.
std::string ascii_plot(const rt::RtSeries& series, const std::string& title) {
  static const char* levels = " .:-=+*#%@";
  std::string out = "plot: " + title + "\n";
  double lo = 1e300, hi = -1e300;
  for (double m : series.median) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  double span = std::max(hi - lo, 1e-9);
  for (std::size_t t = 0; t < series.days(); ++t) {
    int lvl = static_cast<int>((series.median[t] - lo) / span * 9.0);
    out += levels[std::clamp(lvl, 0, 9)];
  }
  out += osprey::util::format("\nrange [%.2f, %.2f] over %zu days\n", lo, hi,
                              series.days());
  return out;
}

}  // namespace

WastewaterUseCase::WastewaterUseCase(OspreyPlatform& platform,
                                     WwUseCaseConfig config)
    : platform_(platform), config_(std::move(config)) {
  OSPREY_REQUIRE(config_.horizon_days > config_.first_poll_day,
                 "horizon must extend past the first poll");
}

void WastewaterUseCase::register_harnesses() {
  // Julia: the Goldstein R(t) estimation. Chain states are keyed by
  // the per-plant chain seed and shared across invocations — the first
  // fit for a plant is a cold full refit that seeds the state, and
  // every later per-sample trigger resumes from it with a capped
  // iteration budget (bounded time-to-fresh-R(t)).
  rt::GoldsteinConfig gconf = config_.goldstein;
  int aggregate_draws = config_.aggregate_draws;
  const bool online = config_.online_updates;
  struct ChainRegistry {
    osprey::util::Mutex mutex;
    std::map<std::uint64_t, rt::GoldsteinChainState> states;
  };
  auto registry = std::make_shared<ChainRegistry>();
  harnesses_.add(
      "rt-estimate", Language::kJulia,
      "semiparametric Bayesian R(t) estimation from wastewater (Goldstein)",
      [this, gconf, aggregate_draws, online,
       registry](const Value& args) -> Value {
        std::vector<epi::WwSample> samples =
            parse_samples(args.at("csv").as_string());
        OSPREY_REQUIRE(samples.size() >= 4, "not enough samples yet");
        int days = samples.back().day + 1;
        rt::GoldsteinConfig conf = gconf;
        conf.flow_liters_per_day = args.at("flow_liters").as_double();
        conf.seed = static_cast<std::uint64_t>(args.at("seed").as_int());
        rt::GoldsteinEstimator estimator(conf);

        osprey::util::MutexLock lock(registry->mutex);
        rt::GoldsteinChainState& state = registry->states[conf.seed];
        const bool warm = online && state.valid() && days >= state.days;
        obs::SpanId span = platform_.tracer().begin_span(
            obs::Category::kCompute,
            warm ? "rt:refit-warm" : "rt:refit-full",
            obs::sim_ns(platform_.loop().now()));
        rt::RtPosterior posterior;
        if (warm) {
          // Each warm update draws its chain seed from the plant's
          // stream indexed by lineage position, so the online sequence
          // is reproducible yet never reuses a seed.
          std::uint64_t update_seed = osprey::num::RngStream(conf.seed)
                                          .substream(state.updates + 1)
                                          .next_u64();
          posterior =
              estimator.estimate_update(samples, days, update_seed, state);
        } else {
          posterior = estimator.estimate(samples, days, conf.seed, &state);
        }
        platform_.tracer().end_span(span,
                                    obs::sim_ns(platform_.loop().now()),
                                    true, std::to_string(days) + " days");
        platform_.metrics()
            .counter(warm ? "rt_refit_warm_total" : "rt_refit_full_total",
                     "R(t) refits by chain mode")
            .inc();
        platform_.metrics()
            .gauge("rt_acceptance_rate_burnin",
                   "last refit's burn-in phase acceptance rate")
            .set(posterior.acceptance_rate_burnin);
        platform_.metrics()
            .gauge("rt_acceptance_rate_sampling",
                   "last refit's sampling phase acceptance rate")
            .set(posterior.acceptance_rate_sampling);

        CsvTable meta({"mode", "lineage_updates", "state_days",
                       "acceptance", "acceptance_burnin",
                       "acceptance_sampling"});
        meta.add_row(
            {warm ? "warm" : "full", std::to_string(state.updates),
             std::to_string(state.days),
             osprey::util::format("%.4f", posterior.acceptance_rate),
             osprey::util::format("%.4f", posterior.acceptance_rate_burnin),
             osprey::util::format("%.4f",
                                  posterior.acceptance_rate_sampling)});

        ValueObject out;
        out["summary_csv"] = Value(series_to_csv(posterior.summarize()));
        out["draws_csv"] = Value(draws_to_csv(posterior, aggregate_draws));
        out["acceptance"] = Value(posterior.acceptance_rate);
        out["meta_csv"] = Value(meta.to_string());
        return Value(std::move(out));
      });

  // R: plotting of a summary series.
  harnesses_.add("rt-plot", Language::kR,
                 "R(t) plot generation from the estimation summary",
                 [](const Value& args) -> Value {
                   rt::RtSeries s =
                       csv_to_series(args.at("summary_csv").as_string());
                   ValueObject out;
                   out["plot"] =
                       Value(ascii_plot(s, args.at("title").as_string()));
                   return Value(std::move(out));
                 });

  // Python: the data validation/transformation of the ingestion flows.
  // Data-quality curation (§1 goal 2, "ensuring data quality"): drop
  // non-positive/non-finite readings, and flag gross outliers (>5 robust
  // MADs from the running median on the log scale — lab errors, not
  // epidemiology).
  harnesses_.add(
      "ww-transform", Language::kPython,
      "validate and transform raw IWSS concentrations",
      [](const Value& args) -> Value {
        CsvTable raw = CsvTable::parse(args.at("input").as_string());
        // First pass: collect valid log-concentrations.
        std::vector<double> logs;
        for (std::size_t r = 0; r < raw.num_rows(); ++r) {
          double c = raw.cell_double(r, "concentration_gc_per_l");
          if (c > 0.0 && std::isfinite(c)) logs.push_back(std::log10(c));
        }
        double center = logs.empty() ? 0.0 : osprey::num::median(logs);
        std::vector<double> dev;
        dev.reserve(logs.size());
        for (double v : logs) dev.push_back(std::fabs(v - center));
        double mad = dev.empty() ? 0.0 : osprey::num::median(dev);
        double cutoff = 5.0 * std::max(mad, 0.05);  // floor avoids 0-MAD

        CsvTable out({"day", "plant", "concentration_gc_per_l",
                      "log10_concentration"});
        std::size_t dropped = 0;
        for (std::size_t r = 0; r < raw.num_rows(); ++r) {
          double c = raw.cell_double(r, "concentration_gc_per_l");
          if (!(c > 0.0) || !std::isfinite(c)) {
            ++dropped;
            continue;  // validation
          }
          if (std::fabs(std::log10(c) - center) > cutoff) {
            ++dropped;
            continue;  // gross outlier
          }
          out.add_row({raw.cell(r, "day"), raw.cell(r, "plant"),
                       raw.cell(r, "concentration_gc_per_l"),
                       osprey::util::format("%.5f", std::log10(c))});
        }
        ValueObject result;
        result["output"] = Value(out.to_string());
        result["dropped"] = Value(static_cast<std::int64_t>(dropped));
        return Value(std::move(result));
      });

  // Python harness composing the Julia estimation with the R plot — the
  // paper's "Python code harness function ... executes a Julia code R(t)
  // estimation and then executes R code to create the R(t) plots".
  harnesses_.add(
      "rt-analysis-harness", Language::kPython,
      "analysis-flow harness: Julia estimation + R plots",
      [this](const Value& args) -> Value {
        const ValueObject& inputs = args.at("inputs").as_object();
        OSPREY_REQUIRE(inputs.size() == 1, "expected one transformed input");
        const Value& user_args = args.at("args");
        ValueObject estimate_args;
        estimate_args["csv"] = inputs.begin()->second;
        estimate_args["flow_liters"] = user_args.at("flow_liters");
        estimate_args["seed"] = user_args.at("seed");
        Value est = harnesses_.invoke("rt-estimate",
                                      Value(std::move(estimate_args)));
        ValueObject plot_args;
        plot_args["summary_csv"] = est.at("summary_csv");
        plot_args["title"] = user_args.at("plant");
        Value plot = harnesses_.invoke("rt-plot", Value(std::move(plot_args)));
        ValueObject outputs;
        outputs["rt_summary.csv"] = est.at("summary_csv");
        outputs["rt_draws.csv"] = est.at("draws_csv");
        outputs["rt_plot.txt"] = plot.at("plot");
        outputs["rt_meta.csv"] = est.at("meta_csv");
        ValueObject result;
        result["outputs"] = Value(std::move(outputs));
        return Value(std::move(result));
      });

  // R: the population-weighted ensemble aggregation.
  harnesses_.add(
      "rt-aggregate", Language::kR,
      "population-weighted ensemble R(t) across plants",
      [](const Value& args) -> Value {
        const ValueObject& draws = args.at("draws").as_object();
        const Value& weights = args.at("weights");
        std::vector<rt::EnsembleMember> members;
        std::size_t min_days = SIZE_MAX;
        for (const auto& [uuid, csv] : draws) {
          rt::EnsembleMember m;
          m.name = uuid;
          m.population_weight = weights.at(uuid).as_double();
          m.posterior = csv_to_posterior(csv.as_string());
          min_days = std::min(min_days, m.posterior.days());
          members.push_back(std::move(m));
        }
        // Align horizons (plants publish on the same cadence, but guard
        // against off-by-one horizons).
        for (rt::EnsembleMember& m : members) {
          if (m.posterior.days() == min_days) continue;
          osprey::num::Matrix trimmed(m.posterior.n_draws(), min_days);
          for (std::size_t d = 0; d < m.posterior.n_draws(); ++d) {
            for (std::size_t t = 0; t < min_days; ++t) {
              trimmed(d, t) = m.posterior.draws(d, t);
            }
          }
          m.posterior.draws = std::move(trimmed);
        }
        rt::RtPosterior agg = rt::aggregate_population_weighted(members);
        ValueObject out;
        out["aggregate_csv"] = Value(series_to_csv(agg.summarize()));
        return Value(std::move(out));
      });

  // Python harness for the aggregation flow.
  harnesses_.add(
      "aggregate-harness", Language::kPython,
      "aggregation-flow harness: R ensemble + R plot",
      [this](const Value& args) -> Value {
        ValueObject agg_args;
        agg_args["draws"] = args.at("inputs");
        agg_args["weights"] = args.at("args").at("weights");
        Value agg =
            harnesses_.invoke("rt-aggregate", Value(std::move(agg_args)));
        ValueObject plot_args;
        plot_args["summary_csv"] = agg.at("aggregate_csv");
        plot_args["title"] = Value("population-weighted ensemble");
        Value plot = harnesses_.invoke("rt-plot", Value(std::move(plot_args)));
        ValueObject outputs;
        outputs["aggregate_rt.csv"] = agg.at("aggregate_csv");
        outputs["aggregate_plot.txt"] = plot.at("plot");
        ValueObject result;
        result["outputs"] = Value(std::move(outputs));
        return Value(std::move(result));
      });
}

void WastewaterUseCase::build() {
  OSPREY_REQUIRE(!built_, "build() called twice");
  built_ = true;

  // --- bring your own storage and compute ---
  auto& eagle = platform_.add_storage_endpoint(kStorageName);
  auto& scratch = platform_.add_storage_endpoint(kStagingName);
  auto& pbs = platform_.add_scheduler("bebop-pbs", 4);
  auto& login = platform_.add_login_endpoint("bebop-login", 2);
  auto& compute = platform_.add_batch_endpoint("bebop-compute", pbs);

  const std::string& token = platform_.aero().token();
  eagle.create_collection(kCollection, token);
  scratch.create_collection(kStagingCollection, token);
  // Outputs are shareable with stakeholders via collection permissions.
  eagle.grant(kCollection, "public-health-stakeholder",
              fabric::Permission::kRead, token);

  register_harnesses();

  // --- compute-function registration (with the paper's cost profile:
  // transformation and aggregation under a minute on the login node, the
  // R(t) analysis ~20 minutes on a PBS-scheduled compute node) ---
  std::string transform_fn = login.register_function(
      "ww-transform", harnesses_.as_compute_fn("ww-transform"),
      30 * osprey::util::kSecond);
  std::string analysis_fn = compute.register_function(
      "rt-analysis", harnesses_.as_compute_fn("rt-analysis-harness"),
      20 * osprey::util::kMinute);
  std::string aggregate_fn = login.register_function(
      "rt-aggregate", harnesses_.as_compute_fn("aggregate-harness"),
      45 * osprey::util::kSecond);

  // --- data sources: 4 plants with distinct epidemic waves ---
  std::vector<epi::Plant> plants = epi::chicago_plants();
  std::vector<epi::RtTruthParams> truths = epi::chicago_truths();
  osprey::num::RngStream seed_stream(config_.seed);
  epi::WastewaterConfig ww = config_.ww;
  ww.days = config_.horizon_days;

  std::vector<std::string> draws_uuids;
  ValueObject weight_map;
  for (std::size_t p = 0; p < plants.size(); ++p) {
    auto gen = std::make_shared<epi::WastewaterGenerator>(
        plants[p], truths[p], ww, seed_stream.substream(p).next_u64());
    generators_.push_back(gen);

    // Ingestion flow (daily polling).
    aero::IngestionFlowSpec ing;
    ing.name = "ingest-" + plants[p].name;
    ing.source = std::make_shared<WastewaterSource>(gen);
    ing.poll_period = osprey::util::kDay;
    ing.first_poll = config_.first_poll_day * osprey::util::kDay +
                     6 * osprey::util::kHour;
    ing.compute = &login;
    ing.function_id = transform_fn;
    ing.staging = &scratch;
    ing.staging_collection = kStagingCollection;
    ing.storage = &eagle;
    ing.collection = kCollection;
    ing.base_path = "plants/" + std::to_string(p);
    ing.retry = config_.retry;
    ing.breaker = config_.breaker;
    ingestion_handles_.push_back(
        platform_.aero().register_ingestion(std::move(ing)));

    // Analysis flow: triggered by the transformed-data UUID.
    aero::AnalysisFlowSpec ana;
    ana.name = "rt-" + plants[p].name;
    ana.input_uuids = {ingestion_handles_.back().output_uuid};
    ana.policy = aero::TriggerPolicy::kAny;
    ana.compute = &compute;
    ana.function_id = analysis_fn;
    ValueObject fn_args;
    fn_args["flow_liters"] = Value(plants[p].avg_flow_mgd * 3.785e6);
    fn_args["seed"] = Value(static_cast<std::int64_t>(
        config_.seed * 1000 + static_cast<std::int64_t>(p)));
    fn_args["plant"] = Value(plants[p].name);
    ana.function_args = Value(std::move(fn_args));
    ana.staging = &scratch;
    ana.staging_collection = kStagingCollection;
    ana.storage = &eagle;
    ana.collection = kCollection;
    ana.base_path = "rt/" + std::to_string(p);
    ana.output_names = {"rt_summary.csv", "rt_draws.csv", "rt_plot.txt",
                        "rt_meta.csv"};
    ana.retry = config_.retry;
    ana.breaker = config_.breaker;
    analysis_outputs_.push_back(
        platform_.aero().register_analysis(std::move(ana)));

    draws_uuids.push_back(analysis_outputs_.back()[1]);
    weight_map[draws_uuids.back()] =
        Value(static_cast<double>(plants[p].population_served));
  }

  // Aggregation flow: ALL four R(t) draws must have updated.
  aero::AnalysisFlowSpec agg;
  agg.name = "rt-aggregate";
  agg.input_uuids = draws_uuids;
  agg.policy = aero::TriggerPolicy::kAll;
  agg.compute = &login;
  agg.function_id = aggregate_fn;
  ValueObject agg_args;
  agg_args["weights"] = Value(std::move(weight_map));
  agg.function_args = Value(std::move(agg_args));
  agg.staging = &scratch;
  agg.staging_collection = kStagingCollection;
  agg.storage = &eagle;
  agg.collection = kCollection;
  agg.base_path = "aggregate";
  agg.output_names = {"aggregate_rt.csv", "aggregate_plot.txt"};
  agg.retry = config_.retry;
  agg.breaker = config_.breaker;
  aggregate_outputs_ = platform_.aero().register_analysis(std::move(agg));

  platform_.tracer().instant(
      obs::Category::kOther, "usecase:ww-built",
      obs::sim_ns(platform_.loop().now()), obs::kNoSpan,
      std::to_string(plants.size()) + " plant(s), " +
          std::to_string(config_.horizon_days) + " day horizon");
}

void WastewaterUseCase::run_to_end() {
  OSPREY_REQUIRE(built_, "run before build()");
  // One extra day absorbs queue waits and the aggregation tail.
  platform_.run_days(config_.horizon_days + 2);
  platform_.tracer().instant(obs::Category::kOther, "usecase:ww-done",
                             obs::sim_ns(platform_.loop().now()),
                             obs::kNoSpan);
}

rt::RtSeries WastewaterUseCase::read_series(const std::string& uuid) const {
  auto version = platform_.aero().db().latest_version(uuid);
  OSPREY_REQUIRE(version.has_value(), "output has no version yet");
  const OspreyPlatform& platform = platform_;
  const auto& obj = platform.storage_endpoint(version->endpoint)
                        .get(version->collection, version->path,
                             platform_.aero().token());
  return csv_to_series(obj.bytes);
}

std::vector<WastewaterUseCase::PlantOutput>
WastewaterUseCase::plant_outputs() const {
  std::vector<PlantOutput> out;
  for (std::size_t p = 0; p < generators_.size(); ++p) {
    PlantOutput po;
    po.plant = generators_[p]->plant();
    const std::string& summary_uuid = analysis_outputs_[p][0];
    po.versions =
        platform_.aero().db().latest_version_number(summary_uuid);
    OSPREY_REQUIRE(po.versions > 0,
                   "no published estimate for " + po.plant.name);
    po.series = read_series(summary_uuid);
    const std::vector<double>& truth = generators_[p]->true_rt();
    std::size_t days = std::min(po.series.days(), truth.size());
    po.truth.assign(truth.begin(),
                    truth.begin() + static_cast<std::ptrdiff_t>(days));
    out.push_back(std::move(po));
  }
  return out;
}

bool WastewaterUseCase::has_aggregate() const {
  return !aggregate_outputs_.empty() &&
         platform_.aero().db().latest_version_number(aggregate_outputs_[0]) >
             0;
}

rt::RtSeries WastewaterUseCase::aggregate_output() const {
  OSPREY_REQUIRE(has_aggregate(), "aggregation has not produced output");
  return read_series(aggregate_outputs_[0]);
}

std::vector<double> WastewaterUseCase::aggregate_truth(
    std::size_t days) const {
  std::vector<std::vector<double>> truths;
  std::vector<double> weights;
  for (const auto& gen : generators_) {
    std::vector<double> t = gen->true_rt();
    t.resize(days);
    truths.push_back(std::move(t));
    weights.push_back(static_cast<double>(gen->plant().population_served));
  }
  return rt::weighted_series_average(truths, weights);
}

}  // namespace osprey::core
