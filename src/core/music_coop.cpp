#include "core/music_coop.hpp"

#include "util/error.hpp"

namespace osprey::core {

using osprey::emews::PollResult;
using osprey::util::Value;
using osprey::util::ValueObject;

MusicCoop::MusicCoop(std::string name, osprey::emews::TaskQueue queue,
                     MusicConfig config, std::uint64_t replicate)
    : name_(std::move(name)),
      queue_(std::move(queue)),
      engine_(std::move(config)),
      replicate_(replicate) {}

void MusicCoop::submit_point(const Vector& x_box) {
  ValueObject payload;
  payload["x"] = Value::from_doubles(x_box);
  payload["replicate"] = Value(static_cast<std::int64_t>(replicate_));
  Pending p;
  p.x = x_box;
  p.future = queue_.submit(Value(std::move(payload)));
  pending_.push_back(std::move(p));
}

void MusicCoop::start() {
  Matrix design = engine_.initial_design_box();
  for (std::size_t i = 0; i < design.rows(); ++i) {
    submit_point(design.row(i));
  }
}

bool MusicCoop::all_collected() const {
  for (const Pending& p : pending_) {
    if (!p.collected) return false;
  }
  return true;
}

void MusicCoop::advance_engine() {
  // Ingest in SUBMISSION order (not completion order) so the GP data —
  // and therefore the whole trajectory — is independent of worker-pool
  // timing: the interleaved run is bit-reproducible.
  for (const Pending& p : pending_) {
    engine_.ingest(p.x, p.y);
  }
  pending_.clear();
  cursor_ = 0;
  std::optional<Vector> next = engine_.advance();
  if (next.has_value()) {
    submit_point(*next);
  } else {
    finished_ = true;
  }
}

PollResult MusicCoop::poll() {
  if (finished_) return PollResult::kFinished;
  OSPREY_CHECK(!pending_.empty(), "coop instance has nothing outstanding");

  // The paper's contract: check the completion of a single Future, then
  // cede control. Find the next uncollected future round-robin.
  std::size_t n = pending_.size();
  std::size_t checked_index = n;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t i = (cursor_ + k) % n;
    if (!pending_[i].collected) {
      checked_index = i;
      break;
    }
  }
  OSPREY_CHECK(checked_index < n, "no uncollected future outstanding");
  cursor_ = (checked_index + 1) % n;

  Pending& p = pending_[checked_index];
  if (!p.future.is_done()) return PollResult::kBlocked;

  Value result = p.future.get();  // throws if the task failed
  p.y = result.at("y").as_double();
  p.collected = true;

  if (all_collected()) {
    advance_engine();
    if (finished_) return PollResult::kFinished;
  }
  return PollResult::kProgress;
}

}  // namespace osprey::core
