#include "core/artifact_catalog.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace osprey::core {

using osprey::util::Value;
using osprey::util::ValueArray;
using osprey::util::ValueObject;

const char* artifact_type_name(ArtifactType type) {
  switch (type) {
    case ArtifactType::kModel: return "model";
    case ArtifactType::kMeAlgorithm: return "me-algorithm";
    case ArtifactType::kHarness: return "harness";
    case ArtifactType::kFlowDefinition: return "flow-definition";
    case ArtifactType::kDataset: return "dataset";
  }
  return "?";
}

namespace {

ArtifactType artifact_type_from_name(const std::string& name) {
  for (ArtifactType t :
       {ArtifactType::kModel, ArtifactType::kMeAlgorithm,
        ArtifactType::kHarness, ArtifactType::kFlowDefinition,
        ArtifactType::kDataset}) {
    if (name == artifact_type_name(t)) return t;
  }
  throw osprey::util::InvalidArgument("unknown artifact type: " + name);
}

Language language_from_name(const std::string& name) {
  for (Language l : {Language::kPython, Language::kR, Language::kJulia,
                     Language::kCpp}) {
    if (name == language_name(l)) return l;
  }
  throw osprey::util::InvalidArgument("unknown language: " + name);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

}  // namespace

void ArtifactCatalog::add(ArtifactRecord record) {
  OSPREY_REQUIRE(!record.name.empty(), "artifact needs a name");
  OSPREY_REQUIRE(!record.version.empty(), "artifact needs a version");
  OSPREY_REQUIRE(!has(record.name, record.version),
                 "artifact already registered: " + record.name + "@" +
                     record.version);
  record.registered_order = records_.size();
  records_.push_back(std::move(record));
}

bool ArtifactCatalog::has(const std::string& name,
                          const std::string& version) const {
  for (const auto& r : records_) {
    if (r.name == name && r.version == version) return true;
  }
  return false;
}

const ArtifactRecord& ArtifactCatalog::get(const std::string& name,
                                           const std::string& version) const {
  for (const auto& r : records_) {
    if (r.name == name && r.version == version) return r;
  }
  throw osprey::util::NotFound("no such artifact: " + name + "@" + version);
}

const ArtifactRecord& ArtifactCatalog::latest(const std::string& name) const {
  const ArtifactRecord* best = nullptr;
  for (const auto& r : records_) {
    if (r.name != name) continue;
    if (best == nullptr || r.registered_order > best->registered_order) {
      best = &r;
    }
  }
  if (best == nullptr) {
    throw osprey::util::NotFound("no such artifact: " + name);
  }
  return *best;
}

std::vector<ArtifactRecord> ArtifactCatalog::by_type(
    ArtifactType type) const {
  std::vector<ArtifactRecord> out;
  for (const auto& r : records_) {
    if (r.type == type) out.push_back(r);
  }
  return out;
}

std::vector<ArtifactRecord> ArtifactCatalog::by_tag(
    const std::string& tag) const {
  std::vector<ArtifactRecord> out;
  for (const auto& r : records_) {
    if (std::find(r.tags.begin(), r.tags.end(), tag) != r.tags.end()) {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<ArtifactRecord> ArtifactCatalog::by_language(
    Language language) const {
  std::vector<ArtifactRecord> out;
  for (const auto& r : records_) {
    if (r.language == language) out.push_back(r);
  }
  return out;
}

std::vector<ArtifactRecord> ArtifactCatalog::search(
    const std::string& text) const {
  std::string needle = lower(text);
  std::vector<ArtifactRecord> out;
  for (const auto& r : records_) {
    bool hit = lower(r.name).find(needle) != std::string::npos ||
               lower(r.description).find(needle) != std::string::npos;
    for (const std::string& tag : r.tags) {
      if (hit) break;
      hit = lower(tag).find(needle) != std::string::npos;
    }
    if (hit) out.push_back(r);
  }
  return out;
}

Value ArtifactCatalog::to_json() const {
  ValueArray artifacts;
  for (const auto& r : records_) {
    ValueObject obj;
    obj["name"] = Value(r.name);
    obj["type"] = Value(artifact_type_name(r.type));
    obj["language"] = Value(language_name(r.language));
    obj["version"] = Value(r.version);
    obj["description"] = Value(r.description);
    ValueArray tags;
    for (const std::string& t : r.tags) tags.emplace_back(t);
    obj["tags"] = Value(std::move(tags));
    obj["location"] = Value(r.location);
    artifacts.emplace_back(std::move(obj));
  }
  ValueObject root;
  root["catalog_format"] = Value(std::int64_t{1});
  root["artifacts"] = Value(std::move(artifacts));
  return Value(std::move(root));
}

ArtifactCatalog ArtifactCatalog::from_json(const Value& json) {
  OSPREY_REQUIRE(json.get_or("catalog_format", std::int64_t{0}) == 1,
                 "unsupported catalog format");
  ArtifactCatalog catalog;
  for (const Value& entry : json.at("artifacts").as_array()) {
    ArtifactRecord r;
    r.name = entry.at("name").as_string();
    r.type = artifact_type_from_name(entry.at("type").as_string());
    r.language = language_from_name(entry.at("language").as_string());
    r.version = entry.at("version").as_string();
    r.description = entry.at("description").as_string();
    for (const Value& t : entry.at("tags").as_array()) {
      r.tags.push_back(t.as_string());
    }
    r.location = entry.at("location").as_string();
    catalog.add(std::move(r));
  }
  return catalog;
}

}  // namespace osprey::core
