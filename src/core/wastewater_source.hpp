#pragma once

/// \file wastewater_source.hpp
/// Adapter exposing the synthetic wastewater feed as an AERO DataSource:
/// what the Illinois Wastewater Surveillance System URL is to the real
/// deployment. The published CSV only changes on (weekly) publication
/// days, so AERO's checksum-based update detection sees exactly one new
/// version per publication.

#include <memory>

#include "aero/source.hpp"
#include "epi/wastewater.hpp"

namespace osprey::core {

class WastewaterSource final : public aero::DataSource {
 public:
  explicit WastewaterSource(std::shared_ptr<epi::WastewaterGenerator> gen);

  std::string url() const override;
  std::optional<std::string> fetch(aero::SimTime now) override;

  const epi::WastewaterGenerator& generator() const { return *gen_; }

 private:
  std::shared_ptr<epi::WastewaterGenerator> gen_;
};

}  // namespace osprey::core
