#include "core/metarvm_gsa.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace osprey::core {

using osprey::num::ParamRange;
using osprey::num::Vector;
using osprey::util::Value;
using osprey::util::ValueObject;

std::vector<ParamRange> table1_ranges() {
  return {
      ParamRange{"ts", 0.1, 0.9},
      ParamRange{"tv", 0.01, 0.5},
      ParamRange{"pea", 0.4, 0.9},
      ParamRange{"psh", 0.1, 0.4},
      ParamRange{"phd", 0.0, 0.3},
  };
}

std::vector<std::string> table1_descriptions() {
  return {
      "Transmission rate for susceptible",
      "Transmission rate for vaccinated",
      "Proportion of asymptomatic cases",
      "Proportion of hospitalized",
      "Proportion of dead",
  };
}

epi::MetaRvmParams params_from_point(const Vector& x) {
  OSPREY_REQUIRE(x.size() == 5, "Table-1 point must have 5 coordinates");
  epi::MetaRvmParams p = epi::MetaRvmParams::nominal();
  p.ts = x[0];
  p.tv = x[1];
  p.pea = x[2];
  p.psh = x[3];
  p.phd = x[4];
  return p;
}

const char* qoi_name(Qoi qoi) {
  switch (qoi) {
    case Qoi::kTotalHospitalizations: return "total hospitalizations";
    case Qoi::kTotalDeaths: return "total deaths";
    case Qoi::kPeakHospitalOccupancy: return "peak hospital occupancy";
    case Qoi::kTotalInfections: return "total infections";
  }
  return "?";
}

double extract_qoi(const epi::MetaRvmTrajectory& trajectory, Qoi qoi) {
  switch (qoi) {
    case Qoi::kTotalHospitalizations:
      return static_cast<double>(trajectory.total_hospitalizations());
    case Qoi::kTotalDeaths:
      return static_cast<double>(trajectory.total_deaths());
    case Qoi::kPeakHospitalOccupancy: {
      std::int64_t peak = 0;
      // Census per day summed over groups (all groups share day counts).
      std::size_t n_days = trajectory.groups.front().daily.size();
      for (std::size_t t = 0; t < n_days; ++t) {
        std::int64_t census = 0;
        for (const auto& g : trajectory.groups) census += g.daily[t].h;
        peak = std::max(peak, census);
      }
      return static_cast<double>(peak);
    }
    case Qoi::kTotalInfections:
      return static_cast<double>(trajectory.total_infections());
  }
  return 0.0;
}

double evaluate_metarvm_qoi(const epi::MetaRvm& model, const Vector& x,
                            std::uint64_t seed, std::uint64_t replicate,
                            Qoi qoi) {
  epi::MetaRvmParams params = params_from_point(x);
  osprey::num::RngStream root(seed);
  osprey::num::RngStream stream = root.substream(replicate);
  epi::MetaRvmTrajectory traj = model.run(params, stream);
  return extract_qoi(traj, qoi);
}

Value metarvm_task_model(const std::shared_ptr<const epi::MetaRvm>& model,
                         std::uint64_t seed, const Value& payload) {
  Vector x = payload.at("x").to_doubles();
  std::uint64_t replicate =
      static_cast<std::uint64_t>(payload.at("replicate").as_int());
  double qoi = evaluate_metarvm_qoi(*model, x, seed, replicate);
  ValueObject out;
  out["y"] = Value(qoi);
  return Value(std::move(out));
}

}  // namespace osprey::core
