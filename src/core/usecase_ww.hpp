#pragma once

/// \file usecase_ww.hpp
/// Use case 1 (paper §2): the fully automated multi-source wastewater
/// R(t) workflow of Figure 1, built on the OSPREY platform:
///
///   4 ingestion flows (daily polling of the IWSS-like feeds, validate +
///   transform on the login node, versioned storage) →
///   4 R(t) analysis flows (Goldstein-style MCMC on the PBS-scheduled
///   compute endpoint, triggered by transformed-data updates) →
///   1 aggregation flow (population-weighted ensemble, triggered when
///   ALL four R(t) analyses have produced new data).
///
/// Harness languages mirror the paper: a Python harness wraps a Julia
/// R(t) estimation and R plotting; aggregation is an R function behind a
/// Python harness (see core/harness.hpp for the substitution note).

#include <memory>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "core/platform.hpp"
#include "core/wastewater_source.hpp"
#include "epi/wastewater.hpp"
#include "rt/goldstein.hpp"
#include "rt/posterior.hpp"

namespace osprey::core {

struct WwUseCaseConfig {
  int horizon_days = 120;
  std::uint64_t seed = 42;
  /// Day the daily polling timers first fire (enough samples must have
  /// accumulated for the estimator's minimum).
  int first_poll_day = 28;
  /// MCMC settings for the per-plant estimations (smaller than the
  /// estimator defaults: the workflow runs one MCMC per plant per week).
  rt::GoldsteinConfig goldstein;
  /// Posterior draws serialized for the ensemble aggregation.
  int aggregate_draws = 200;
  /// When true, every per-plant refit after the first cold fit resumes
  /// from the previous chain state (rt::GoldsteinEstimator::
  /// estimate_update) with capped iterations, so the per-sample trigger
  /// path has bounded time-to-fresh-R(t). The first fit — and any fit
  /// whose horizon moved backwards — stays a cold full refit.
  bool online_updates = true;
  epi::WastewaterConfig ww;
  /// Recovery knobs applied to every registered flow (ingestion,
  /// analysis, aggregation). Disabled by default, matching the paper's
  /// happy-path run; the chaos suite turns them on.
  osprey::util::RetryPolicy retry;
  osprey::util::CircuitBreakerConfig breaker;

  WwUseCaseConfig() {
    goldstein.iterations = 1600;
    goldstein.burnin = 800;
    goldstein.thin = 4;
    goldstein.update_iterations = 400;
    goldstein.update_burnin = 160;
  }
};

/// Builder + result reader for the workflow.
class WastewaterUseCase {
 public:
  WastewaterUseCase(OspreyPlatform& platform, WwUseCaseConfig config);

  /// Create endpoints/collections, register harnesses, compute
  /// functions and all AERO flows. Call once, before running.
  void build();

  /// Drive virtual time to the end of the horizon (plus a tail so the
  /// last analyses and aggregation complete).
  void run_to_end();

  // --- results ---
  struct PlantOutput {
    epi::Plant plant;
    rt::RtSeries series;          // latest published estimate
    std::vector<double> truth;    // ground-truth R(t), same length
    int versions = 0;             // published estimate versions
  };
  /// Latest per-plant R(t) estimates read back from the storage
  /// endpoint (as a stakeholder would).
  std::vector<PlantOutput> plant_outputs() const;

  bool has_aggregate() const;
  /// The population-weighted ensemble estimate (Figure 2, bottom).
  rt::RtSeries aggregate_output() const;
  /// Population-weighted truth for scoring the ensemble.
  std::vector<double> aggregate_truth(std::size_t days) const;

  // --- introspection ---
  HarnessRegistry& harnesses() { return harnesses_; }
  const std::vector<std::shared_ptr<epi::WastewaterGenerator>>& generators()
      const {
    return generators_;
  }
  const std::vector<aero::IngestionHandles>& ingestions() const {
    return ingestion_handles_;
  }
  /// Per plant: [summary uuid, draws uuid, plot uuid, meta uuid]. The
  /// meta artifact's aero version history is the warm-start lineage:
  /// each refit publishes its mode (full/warm), update counter and
  /// per-phase acceptance.
  const std::vector<std::vector<std::string>>& analysis_outputs() const {
    return analysis_outputs_;
  }
  const std::vector<std::string>& aggregate_outputs() const {
    return aggregate_outputs_;
  }

  static constexpr const char* kStorageName = "alcf-eagle";
  static constexpr const char* kStagingName = "bebop-scratch";
  static constexpr const char* kCollection = "ww-rt";
  static constexpr const char* kStagingCollection = "staging";

 private:
  void register_harnesses();
  rt::RtSeries read_series(const std::string& uuid) const;

  OspreyPlatform& platform_;
  WwUseCaseConfig config_;
  HarnessRegistry harnesses_;
  std::vector<std::shared_ptr<epi::WastewaterGenerator>> generators_;
  std::vector<aero::IngestionHandles> ingestion_handles_;
  std::vector<std::vector<std::string>> analysis_outputs_;
  std::vector<std::string> aggregate_outputs_;
  bool built_ = false;
};

}  // namespace osprey::core
