#pragma once

/// \file artifact_catalog.hpp
/// Workflow-artifact catalog — the paper's closing future-work item:
/// "a continued need to improve the ability to share scientific
/// workflows, including making workflow artifacts such as models and
/// model exploration algorithms more easily discoverable and
/// shareable."
///
/// A registry of named artifacts (models, ME algorithms, harnesses,
/// flow definitions, datasets) with type/language/tag metadata, simple
/// discovery queries, and a JSON export suitable for publication in a
/// shared collection.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/harness.hpp"
#include "util/value.hpp"

namespace osprey::core {

enum class ArtifactType {
  kModel,          // e.g. MetaRVM
  kMeAlgorithm,    // e.g. MUSIC, PCE, a calibrator
  kHarness,        // glue code routing between languages
  kFlowDefinition, // an AERO/Globus flow
  kDataset,        // a published data object
};

const char* artifact_type_name(ArtifactType type);

struct ArtifactRecord {
  std::string name;
  ArtifactType type = ArtifactType::kModel;
  Language language = Language::kCpp;
  std::string version = "1.0.0";
  std::string description;
  std::vector<std::string> tags;
  /// Where a copy lives ("endpoint/collection/path", a DOI, a repo URL).
  std::string location;
  std::uint64_t registered_order = 0;  // catalog insertion order
};

/// The catalog. Names are unique per (name, version).
class ArtifactCatalog {
 public:
  /// Register an artifact; throws InvalidArgument on duplicates.
  void add(ArtifactRecord record);

  bool has(const std::string& name, const std::string& version) const;
  const ArtifactRecord& get(const std::string& name,
                            const std::string& version) const;
  /// Latest registered version of `name`.
  const ArtifactRecord& latest(const std::string& name) const;

  std::size_t size() const { return records_.size(); }

  // --- discovery ---
  std::vector<ArtifactRecord> by_type(ArtifactType type) const;
  std::vector<ArtifactRecord> by_tag(const std::string& tag) const;
  std::vector<ArtifactRecord> by_language(Language language) const;
  /// Case-insensitive substring search over name, description and tags.
  std::vector<ArtifactRecord> search(const std::string& text) const;

  /// JSON export of the whole catalog (deterministic ordering).
  osprey::util::Value to_json() const;
  /// Import records from a to_json() export (merges; duplicate
  /// name+version entries throw).
  static ArtifactCatalog from_json(const osprey::util::Value& json);

 private:
  std::vector<ArtifactRecord> records_;
};

}  // namespace osprey::core
