#include "core/platform.hpp"

#include "util/error.hpp"

namespace osprey::core {

OspreyPlatform::OspreyPlatform()
    : auth_(0xA117),
      timers_(loop_, auth_),
      transfers_(loop_, auth_),
      flows_(loop_, auth_),
      aero_(loop_, auth_, timers_, transfers_, flows_, "aero", &metrics_) {
  loop_.set_metrics(&metrics_);
  timers_.set_tracer(&tracer_);
  timers_.set_metrics(&metrics_);
  transfers_.set_tracer(&tracer_);
  transfers_.set_metrics(&metrics_);
  flows_.set_tracer(&tracer_);
  flows_.set_metrics(&metrics_);
  aero_.set_tracer(&tracer_);
  task_db_.set_tracer(&tracer_);
}

fabric::StorageEndpoint& OspreyPlatform::add_storage_endpoint(
    const std::string& name) {
  OSPREY_REQUIRE(storage_.count(name) == 0,
                 "storage endpoint already exists: " + name);
  auto ep = std::make_unique<fabric::StorageEndpoint>(name, loop_, auth_);
  fabric::StorageEndpoint& ref = *ep;
  ref.set_fault_plan(plan_);
  storage_.emplace(name, std::move(ep));
  return ref;
}

fabric::BatchScheduler& OspreyPlatform::add_scheduler(const std::string& name,
                                                      int nodes) {
  OSPREY_REQUIRE(schedulers_.count(name) == 0,
                 "scheduler already exists: " + name);
  auto s = std::make_unique<fabric::BatchScheduler>(loop_, nodes, name);
  fabric::BatchScheduler& ref = *s;
  ref.set_fault_plan(plan_);
  ref.set_tracer(&tracer_);
  ref.set_metrics(&metrics_);
  schedulers_.emplace(name, std::move(s));
  return ref;
}

fabric::ComputeEndpoint& OspreyPlatform::add_login_endpoint(
    const std::string& name, int slots) {
  OSPREY_REQUIRE(compute_.count(name) == 0,
                 "compute endpoint already exists: " + name);
  auto ep = std::make_unique<fabric::ComputeEndpoint>(name, loop_, auth_,
                                                      slots);
  fabric::ComputeEndpoint& ref = *ep;
  ref.set_fault_plan(plan_);
  ref.set_tracer(&tracer_);
  ref.set_metrics(&metrics_);
  compute_.emplace(name, std::move(ep));
  return ref;
}

fabric::ComputeEndpoint& OspreyPlatform::add_batch_endpoint(
    const std::string& name, fabric::BatchScheduler& sched) {
  OSPREY_REQUIRE(compute_.count(name) == 0,
                 "compute endpoint already exists: " + name);
  auto ep =
      std::make_unique<fabric::ComputeEndpoint>(name, loop_, auth_, sched);
  fabric::ComputeEndpoint& ref = *ep;
  ref.set_fault_plan(plan_);
  ref.set_tracer(&tracer_);
  ref.set_metrics(&metrics_);
  compute_.emplace(name, std::move(ep));
  return ref;
}

fabric::StorageEndpoint& OspreyPlatform::storage_endpoint(
    const std::string& name) {
  auto it = storage_.find(name);
  if (it == storage_.end()) {
    throw osprey::util::NotFound("no such storage endpoint: " + name);
  }
  return *it->second;
}

const fabric::StorageEndpoint& OspreyPlatform::storage_endpoint(
    const std::string& name) const {
  auto it = storage_.find(name);
  if (it == storage_.end()) {
    throw osprey::util::NotFound("no such storage endpoint: " + name);
  }
  return *it->second;
}

fabric::ComputeEndpoint& OspreyPlatform::compute_endpoint(
    const std::string& name) {
  auto it = compute_.find(name);
  if (it == compute_.end()) {
    throw osprey::util::NotFound("no such compute endpoint: " + name);
  }
  return *it->second;
}

fabric::BatchScheduler& OspreyPlatform::scheduler(const std::string& name) {
  auto it = schedulers_.find(name);
  if (it == schedulers_.end()) {
    throw osprey::util::NotFound("no such scheduler: " + name);
  }
  return *it->second;
}

void OspreyPlatform::install_fault_plan(fabric::FaultPlan* plan) {
  plan_ = plan;
  transfers_.set_fault_plan(plan);
  flows_.set_fault_plan(plan);
  auth_.set_fault_plan(plan, &loop_);
  aero_.set_fault_plan(plan);
  for (auto& [name, ep] : storage_) ep->set_fault_plan(plan);
  for (auto& [name, sched] : schedulers_) sched->set_fault_plan(plan);
  for (auto& [name, ep] : compute_) ep->set_fault_plan(plan);
}

std::string OspreyPlatform::issue_token(const std::string& identity) {
  return auth_.issue_full_token(identity);
}

void OspreyPlatform::run_days(int days) {
  OSPREY_REQUIRE(days >= 0, "negative days");
  run_until(loop_.now() + days * osprey::util::kDay);
}

void OspreyPlatform::run_until(fabric::SimTime t) { loop_.run_until(t); }

}  // namespace osprey::core
