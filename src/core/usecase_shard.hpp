#pragma once

/// \file usecase_shard.hpp
/// Shared builder for the sharded-scale surveillance workload: N feeds
/// publishing weekly (staggered across weekdays, the same scheme the
/// single-loop scale bench uses) plus one cross-region aggregation.
/// Used by bench/bench_scale_workflow and the shard replay sweep so
/// both drive literally the same campaign.

#include <string>

#include "shard/campaign.hpp"

namespace osprey::core {

/// A campaign of `num_feeds` feeds named "<name>-feed<i>", each
/// publishing "feed<i>-week<w>" at (week*7 + i%7) days for `days` days,
/// polled every `poll_period`, with an ALL-member aggregation hub.
osprey::shard::CampaignSpec make_surveillance_campaign(
    const std::string& name, int num_feeds, int days,
    osprey::shard::SimTime poll_period = osprey::util::kDay);

}  // namespace osprey::core
