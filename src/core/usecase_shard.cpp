#include "core/usecase_shard.hpp"

#include "util/error.hpp"

namespace osprey::core {

using osprey::shard::CampaignSpec;
using osprey::shard::FeedSpec;
using osprey::util::kDay;

CampaignSpec make_surveillance_campaign(const std::string& name,
                                        int num_feeds, int days,
                                        osprey::shard::SimTime poll_period) {
  OSPREY_REQUIRE(num_feeds >= 1, "need at least one feed");
  OSPREY_REQUIRE(days >= 1, "need at least one day");
  CampaignSpec campaign;
  campaign.name = name;
  campaign.aggregate = true;
  campaign.aggregate_poll = poll_period;
  campaign.feeds.reserve(static_cast<std::size_t>(num_feeds));
  for (int f = 0; f < num_feeds; ++f) {
    FeedSpec feed;
    feed.name = name + "-feed" + std::to_string(f);
    feed.poll_period = poll_period;
    for (int week = 0; week * 7 < days; ++week) {
      feed.timeline.emplace_back(
          (week * 7 + f % 7) * kDay,
          "feed" + std::to_string(f) + "-week" + std::to_string(week));
    }
    campaign.feeds.push_back(std::move(feed));
  }
  return campaign;
}

}  // namespace osprey::core
