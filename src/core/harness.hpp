#pragma once

/// \file harness.hpp
/// Shared Development Environment (SDE) multi-language harness registry.
///
/// In the paper, workflow tasks are "a Python code harness function ...
/// executes a Julia code R(t) estimation and then executes R code to
/// create the R(t) plots", and the GSA ME algorithm is R driving the
/// workflow logic. The SDE's job is routing and composing components
/// written in different languages. In this C++ reproduction each harness
/// is a registered C++ callable tagged with the language it stands in
/// for; the registry preserves the routing/composition/provenance
/// semantics (which-language-ran-what) that the SDE use case
/// demonstrates. See DESIGN.md "Substitutions".

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/value.hpp"

namespace osprey::core {

enum class Language { kPython, kR, kJulia, kCpp };

const char* language_name(Language lang);

using HarnessFn =
    std::function<osprey::util::Value(const osprey::util::Value&)>;

struct HarnessInfo {
  std::string name;
  Language language = Language::kCpp;
  std::string description;
  std::uint64_t invocations = 0;
};

/// Registry of named harnesses. A harness may invoke other harnesses
/// (composition), as the paper's Python->Julia->R chain does.
class HarnessRegistry {
 public:
  void add(const std::string& name, Language language,
           const std::string& description, HarnessFn fn);

  bool has(const std::string& name) const;

  /// Invoke a harness; counts the invocation for provenance.
  osprey::util::Value invoke(const std::string& name,
                             const osprey::util::Value& args);

  /// A ComputeFn that routes to this registry's harness `name`
  /// (suitable for ComputeEndpoint::register_function). The registry
  /// must outlive the returned callable.
  HarnessFn as_compute_fn(const std::string& name);

  const HarnessInfo& info(const std::string& name) const;
  std::vector<HarnessInfo> list() const;
  std::uint64_t invocations_by(Language language) const;

 private:
  struct Entry {
    HarnessInfo info;
    HarnessFn fn;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace osprey::core
