#pragma once

/// \file gp.hpp
/// Gaussian-process regression surrogate with maximum-likelihood
/// hyperparameter estimation — the from-scratch stand-in for the hetGP
/// R package the paper's MUSIC workflow uses. The nugget is estimated
/// alongside the lengthscales, which is the (homoskedastic slice of the)
/// heteroskedastic-noise capability MUSIC relies on for stochastic
/// simulators.
///
/// Inputs are expected in the unit cube [0,1]^d (MUSIC normalizes Table-1
/// parameter boxes before fitting); outputs are standardized internally.

#include <cstdint>
#include <optional>

#include "gp/kernel.hpp"
#include "num/cholesky.hpp"
#include "num/rng.hpp"

namespace osprey::gp {

struct GpConfig {
  double jitter = 1e-10;          // numerical floor added to the diagonal
  std::size_t mle_restarts = 2;   // extra Nelder–Mead starts
  std::size_t mle_max_iterations = 200;
  double min_lengthscale = 1e-3;
  double max_lengthscale = 1e2;
  double min_nugget = 1e-8;
  double max_nugget = 1.0;        // relative to unit output variance
  std::uint64_t seed = 7;         // restarts' perturbation stream
  /// add_point(): extend the Cholesky factor by one row/column in
  /// O(n^2) instead of re-factorizing in O(n^3). Hyperparameters are
  /// unchanged on this path, so the factor is exact (up to rounding);
  /// a failed extension falls back to the full re-factorization.
  bool incremental = true;
  /// add_point(): run a full hyperparameter reoptimize() every this
  /// many appended points (0 = never; the caller drives the cadence,
  /// as the MUSIC engine does).
  std::size_t reopt_every = 25;
  /// Fan wide batch predictions and MLE multistarts out on the shared
  /// util::global_pool(). Results are bit-identical to the serial path.
  bool parallel = true;
};

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  // predictive variance incl. nugget floor 0
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpConfig config = {});

  /// Fit hyperparameters by MLE and condition on (x, y).
  void fit(const Matrix& x, const Vector& y);

  /// Condition on new data, keeping the current hyperparameters (cheap
  /// path for active-learning loops between re-optimizations).
  void update_data(const Matrix& x, const Vector& y);

  /// Append one observation. With config.incremental this is the O(n^2)
  /// rank-1 Cholesky extension (the active-learning hot path); every
  /// config.reopt_every appended points it instead runs a full
  /// reoptimize() so the hyperparameters track the growing design.
  void add_point(const Vector& x, double y);

  /// Re-run the hyperparameter optimization on the current data.
  void reoptimize();

  bool fitted() const { return chol_.has_value(); }
  std::size_t n() const { return x_.rows(); }
  std::size_t dim() const { return x_.cols(); }

  GpPrediction predict(const Vector& xstar) const;
  /// Mean-only batch prediction (O(n·d) per point; used by the
  /// surrogate-based Sobol estimator where variance is not needed).
  Vector predict_mean(const Matrix& xstar) const;

  /// Log marginal likelihood of the current fit (standardized scale).
  double log_marginal_likelihood() const;

  const ArdSqExpKernel& kernel() const { return kernel_; }
  double nugget() const { return nugget_; }

  /// The training response closest (in the kernel metric) to x — the
  /// y(x_nn) term of the EIGF acquisition.
  double nearest_response(const Vector& xstar) const;

  /// Leave-one-out cross-validation diagnostics, via the closed form
  /// mu_{-i} = y_i - [K^{-1} y]_i / [K^{-1}]_{ii} (no n refits). The
  /// K^{-1} diagonal comes straight from the Cholesky factor's column
  /// solves — the full inverse is never materialized. The standard
  /// surrogate-quality check before trusting GSA estimates.
  struct LooDiagnostics {
    double rmse = 0.0;          // raw-scale LOO prediction error
    double coverage95 = 0.0;    // fraction of y_i inside the 95% LOO band
    std::vector<double> residuals;  // raw-scale LOO residuals
  };
  LooDiagnostics leave_one_out() const;

 private:
  /// NLML of hyperparameters packed as log values.
  double nlml(const Vector& log_params) const;
  void condition();  // rebuild Cholesky and alpha for current hypers/data
  void restandardize();  // recompute y_mean_/y_sd_/y_std_ from y_
  void refresh_alpha_and_lml();  // alpha and lml from the current factor

  GpConfig config_;
  Matrix x_;
  Vector y_;           // raw responses
  Vector y_std_;       // standardized responses
  double y_mean_ = 0.0;
  double y_sd_ = 1.0;
  ArdSqExpKernel kernel_;
  double nugget_ = 1e-6;
  std::optional<osprey::num::Cholesky> chol_;
  /// Extra diagonal jitter the last condition() actually used on top of
  /// nugget + config.jitter (cholesky_with_jitter may escalate). The
  /// rank-1 extension must add the same amount so both paths factor the
  /// identical matrix.
  double cond_jitter_ = 0.0;
  Vector alpha_;       // K^{-1} y_std
  double lml_ = 0.0;
  std::size_t points_since_reopt_ = 0;  // add_point()s since last MLE
};

}  // namespace osprey::gp
