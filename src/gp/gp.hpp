#pragma once

/// \file gp.hpp
/// Gaussian-process regression surrogate with maximum-likelihood
/// hyperparameter estimation — the from-scratch stand-in for the hetGP
/// R package the paper's MUSIC workflow uses. The nugget is estimated
/// alongside the lengthscales, which is the (homoskedastic slice of the)
/// heteroskedastic-noise capability MUSIC relies on for stochastic
/// simulators.
///
/// Inputs are expected in the unit cube [0,1]^d (MUSIC normalizes Table-1
/// parameter boxes before fitting); outputs are standardized internally.

#include <cstdint>
#include <optional>

#include "gp/kernel.hpp"
#include "num/cholesky.hpp"
#include "num/rng.hpp"

namespace osprey::gp {

struct GpConfig {
  double jitter = 1e-10;          // numerical floor added to the diagonal
  std::size_t mle_restarts = 2;   // extra Nelder–Mead starts
  std::size_t mle_max_iterations = 200;
  double min_lengthscale = 1e-3;
  double max_lengthscale = 1e2;
  double min_nugget = 1e-8;
  double max_nugget = 1.0;        // relative to unit output variance
  std::uint64_t seed = 7;         // restarts' perturbation stream
};

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  // predictive variance incl. nugget floor 0
};

class GaussianProcess {
 public:
  explicit GaussianProcess(GpConfig config = {});

  /// Fit hyperparameters by MLE and condition on (x, y).
  void fit(const Matrix& x, const Vector& y);

  /// Condition on new data, keeping the current hyperparameters (cheap
  /// path for active-learning loops between re-optimizations).
  void update_data(const Matrix& x, const Vector& y);

  /// Append one observation, keeping hyperparameters.
  void add_point(const Vector& x, double y);

  /// Re-run the hyperparameter optimization on the current data.
  void reoptimize();

  bool fitted() const { return chol_.has_value(); }
  std::size_t n() const { return x_.rows(); }
  std::size_t dim() const { return x_.cols(); }

  GpPrediction predict(const Vector& xstar) const;
  /// Mean-only batch prediction (O(n·d) per point; used by the
  /// surrogate-based Sobol estimator where variance is not needed).
  Vector predict_mean(const Matrix& xstar) const;

  /// Log marginal likelihood of the current fit (standardized scale).
  double log_marginal_likelihood() const;

  const ArdSqExpKernel& kernel() const { return kernel_; }
  double nugget() const { return nugget_; }

  /// The training response closest (in the kernel metric) to x — the
  /// y(x_nn) term of the EIGF acquisition.
  double nearest_response(const Vector& xstar) const;

  /// Leave-one-out cross-validation diagnostics, via the closed form
  /// mu_{-i} = y_i - [K^{-1} y]_i / [K^{-1}]_{ii} (no n refits). The
  /// standard surrogate-quality check before trusting GSA estimates.
  struct LooDiagnostics {
    double rmse = 0.0;          // raw-scale LOO prediction error
    double coverage95 = 0.0;    // fraction of y_i inside the 95% LOO band
    std::vector<double> residuals;  // raw-scale LOO residuals
  };
  LooDiagnostics leave_one_out() const;

 private:
  /// NLML of hyperparameters packed as log values.
  double nlml(const Vector& log_params) const;
  void condition();  // rebuild Cholesky and alpha for current hypers/data

  GpConfig config_;
  Matrix x_;
  Vector y_;           // raw responses
  Vector y_std_;       // standardized responses
  double y_mean_ = 0.0;
  double y_sd_ = 1.0;
  ArdSqExpKernel kernel_;
  double nugget_ = 1e-6;
  std::optional<osprey::num::Cholesky> chol_;
  Vector alpha_;       // K^{-1} y_std
  double lml_ = 0.0;
};

}  // namespace osprey::gp
