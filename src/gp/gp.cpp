#include "gp/gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "num/optim.hpp"
#include "num/stats.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace osprey::gp {

using osprey::num::Cholesky;
using osprey::num::Vector;

GaussianProcess::GaussianProcess(GpConfig config)
    : config_(std::move(config)) {}

void GaussianProcess::fit(const Matrix& x, const Vector& y) {
  update_data(x, y);
  reoptimize();
}

void GaussianProcess::restandardize() {
  y_mean_ = osprey::num::mean(y_);
  y_sd_ = osprey::num::stddev(y_);
  if (y_sd_ < 1e-12) y_sd_ = 1.0;  // constant responses: degenerate scale
  y_std_.resize(y_.size());
  for (std::size_t i = 0; i < y_.size(); ++i) {
    y_std_[i] = (y_[i] - y_mean_) / y_sd_;
  }
}

void GaussianProcess::update_data(const Matrix& x, const Vector& y) {
  OSPREY_REQUIRE(x.rows() == y.size(), "X/y size mismatch");
  OSPREY_REQUIRE(x.rows() >= 2, "GP needs at least 2 points");
  x_ = x;
  y_ = y;
  restandardize();
  if (kernel_.lengthscales.size() != x_.cols()) {
    kernel_.lengthscales.assign(x_.cols(), 0.3);
    kernel_.variance = 1.0;
    nugget_ = 1e-4;
  }
  condition();
}

void GaussianProcess::add_point(const Vector& x, double y) {
  OSPREY_REQUIRE(fitted(), "add_point before fit");
  OSPREY_REQUIRE(x.size() == x_.cols(), "point dimension mismatch");
  const std::size_t n = x_.rows();
  Matrix x2(n + 1, x_.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < x_.cols(); ++j) x2(i, j) = x_(i, j);
  }
  for (std::size_t j = 0; j < x_.cols(); ++j) x2(n, j) = x[j];
  x_ = std::move(x2);
  y_.push_back(y);
  restandardize();
  ++points_since_reopt_;

  if (config_.reopt_every > 0 && points_since_reopt_ >= config_.reopt_every) {
    reoptimize();
    return;
  }
  if (!config_.incremental) {
    condition();
    return;
  }
  // Rank-1 path: the kernel matrix of the first n points is unchanged
  // (hyperparameters are fixed here), so only the new row/column enters
  // the factor — O(n^2) instead of the O(n^3) re-factorization. The
  // response standardization does shift with the new y, but that only
  // affects alpha, which is an O(n^2) pair of triangular solves.
  Vector k(n);
  for (std::size_t i = 0; i < n; ++i) k[i] = kernel_(x_.row(i), x);
  // Diagonal must match condition() exactly: nugget + the base jitter
  // plus whatever extra jitter the last factorization escalated to.
  double c = kernel_.variance + nugget_ + config_.jitter + cond_jitter_;
  try {
    chol_->extend(k, c);
  } catch (const osprey::util::NumericalError&) {
    // Near-duplicate point made the bordered matrix numerically
    // indefinite: fall back to the jitter-growing full factorization.
    condition();
    return;
  }
  refresh_alpha_and_lml();
}

double GaussianProcess::nlml(const Vector& log_params) const {
  // log_params = [log l_1..log l_d, log variance, log nugget].
  const std::size_t d = x_.cols();
  ArdSqExpKernel kernel;
  kernel.lengthscales.resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    double l = std::exp(log_params[j]);
    if (l < config_.min_lengthscale || l > config_.max_lengthscale) {
      return 1e12;
    }
    kernel.lengthscales[j] = l;
  }
  kernel.variance = std::exp(log_params[d]);
  if (kernel.variance < 1e-6 || kernel.variance > 1e4) return 1e12;
  double nugget = std::exp(log_params[d + 1]);
  if (nugget < config_.min_nugget || nugget > config_.max_nugget) return 1e12;

  Matrix k = kernel.covariance(x_);
  for (std::size_t i = 0; i < k.rows(); ++i) {
    k(i, i) += nugget + config_.jitter;
  }
  try {
    Cholesky chol(k);
    Vector alpha = chol.solve(y_std_);
    double fit_term = 0.5 * osprey::num::dot(y_std_, alpha);
    double det_term = 0.5 * chol.log_det();
    double n = static_cast<double>(x_.rows());
    return fit_term + det_term + 0.5 * n * std::log(2.0 * M_PI);
  } catch (const osprey::util::NumericalError&) {
    return 1e12;
  }
}

void GaussianProcess::reoptimize() {
  OSPREY_REQUIRE(x_.rows() >= 2, "reoptimize before data");
  const std::size_t d = x_.cols();
  Vector x0(d + 2);
  for (std::size_t j = 0; j < d; ++j) {
    x0[j] = std::log(std::clamp(kernel_.lengthscales[j],
                                config_.min_lengthscale,
                                config_.max_lengthscale));
  }
  x0[d] = std::log(std::clamp(kernel_.variance, 1e-6, 1e4));
  x0[d + 1] = std::log(std::clamp(nugget_, config_.min_nugget,
                                  config_.max_nugget));

  osprey::num::NelderMeadOptions options;
  options.max_iterations = config_.mle_max_iterations;
  options.initial_step = 0.7;
  osprey::num::RngStream rng(config_.seed);
  // nlml() only reads const state, so the multistarts are safe to fan
  // out; the result is bit-identical to the serial path.
  osprey::util::ThreadPool* pool =
      (config_.parallel && config_.mle_restarts > 0)
          ? &osprey::util::global_pool()
          : nullptr;
  osprey::num::OptimResult best = osprey::num::multistart_minimize(
      [this](const Vector& p) { return nlml(p); }, x0, config_.mle_restarts,
      1.5, rng, options, pool);

  for (std::size_t j = 0; j < d; ++j) {
    kernel_.lengthscales[j] = std::exp(best.x[j]);
  }
  kernel_.variance = std::exp(best.x[d]);
  nugget_ = std::exp(best.x[d + 1]);
  points_since_reopt_ = 0;
  condition();
}

void GaussianProcess::condition() {
  Matrix k = kernel_.covariance(x_);
  for (std::size_t i = 0; i < k.rows(); ++i) {
    k(i, i) += nugget_ + config_.jitter;
  }
  chol_ = osprey::num::cholesky_with_jitter(k, config_.jitter, 10,
                                            &cond_jitter_);
  refresh_alpha_and_lml();
}

void GaussianProcess::refresh_alpha_and_lml() {
  alpha_ = chol_->solve(y_std_);
  double fit_term = 0.5 * osprey::num::dot(y_std_, alpha_);
  double det_term = 0.5 * chol_->log_det();
  double n = static_cast<double>(x_.rows());
  lml_ = -(fit_term + det_term + 0.5 * n * std::log(2.0 * M_PI));
}

GpPrediction GaussianProcess::predict(const Vector& xstar) const {
  OSPREY_REQUIRE(fitted(), "predict before fit");
  Vector k = kernel_.cross(x_, xstar);
  GpPrediction pred;
  double m = osprey::num::dot(k, alpha_);
  pred.mean = y_mean_ + y_sd_ * m;
  Vector v = chol_->solve_lower(k);
  double var = kernel_.variance - osprey::num::dot(v, v);
  var = std::max(var, 0.0);
  pred.variance = var * y_sd_ * y_sd_;
  return pred;
}

Vector GaussianProcess::predict_mean(const Matrix& xstar) const {
  OSPREY_REQUIRE(fitted(), "predict before fit");
  OSPREY_REQUIRE(xstar.cols() == x_.cols(), "dimension mismatch");
  Vector out(xstar.rows());
  const std::size_t d = x_.cols();
  auto predict_row = [&](std::size_t p) {
    double m = 0.0;
    for (std::size_t i = 0; i < x_.rows(); ++i) {
      double q = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        double diff = (x_(i, j) - xstar(p, j)) / kernel_.lengthscales[j];
        q += diff * diff;
      }
      m += alpha_[i] * kernel_.variance * std::exp(-0.5 * q);
    }
    out[p] = y_mean_ + y_sd_ * m;
  };
  // Rows are independent and each writes its own slot, so the fan-out
  // is bit-identical to the serial loop. Only batches with real work
  // (rows x training points) go to the pool.
  if (config_.parallel && xstar.rows() >= 32 &&
      xstar.rows() * x_.rows() >= 16384) {
    osprey::util::global_pool().parallel_for(xstar.rows(), predict_row);
  } else {
    for (std::size_t p = 0; p < xstar.rows(); ++p) predict_row(p);
  }
  return out;
}

double GaussianProcess::log_marginal_likelihood() const {
  OSPREY_REQUIRE(fitted(), "log_marginal_likelihood before fit");
  return lml_;
}

GaussianProcess::LooDiagnostics GaussianProcess::leave_one_out() const {
  OSPREY_REQUIRE(fitted(), "leave_one_out before fit");
  const std::size_t n = x_.rows();
  // Diagonal of K^{-1} straight from the factor's column solves —
  // ~n^3/6 flops and O(n) memory, versus the ~n^3 flops plus two n x n
  // temporaries of the old solve(Matrix::identity(n)) formulation.
  Vector k_inv_diag = chol_->inverse_diagonal();
  LooDiagnostics out;
  out.residuals.resize(n);
  double acc = 0.0;
  std::size_t inside = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double kii = k_inv_diag[i];
    OSPREY_CHECK(kii > 0.0, "non-positive K^{-1} diagonal");
    // Standardized-scale LOO residual and variance.
    double resid_std = alpha_[i] / kii;
    double var_std = 1.0 / kii;
    double resid = resid_std * y_sd_;
    out.residuals[i] = resid;
    acc += resid * resid;
    double sd = std::sqrt(var_std) * y_sd_;
    if (std::fabs(resid) <= 1.96 * sd) ++inside;
  }
  out.rmse = std::sqrt(acc / static_cast<double>(n));
  out.coverage95 = static_cast<double>(inside) / static_cast<double>(n);
  return out;
}

double GaussianProcess::nearest_response(const Vector& xstar) const {
  OSPREY_REQUIRE(fitted(), "nearest_response before fit");
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < x_.rows(); ++i) {
    double q = 0.0;
    for (std::size_t j = 0; j < x_.cols(); ++j) {
      double diff = (x_(i, j) - xstar[j]) / kernel_.lengthscales[j];
      q += diff * diff;
    }
    if (q < best_dist) {
      best_dist = q;
      best = i;
    }
  }
  return y_[best];
}

}  // namespace osprey::gp
