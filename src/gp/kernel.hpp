#pragma once

/// \file kernel.hpp
/// Covariance kernels for the Gaussian-process surrogate (the hetGP role
/// in the paper's MUSIC-GSA stack).

#include "num/vecmat.hpp"

namespace osprey::gp {

using osprey::num::Matrix;
using osprey::num::Vector;

/// Anisotropic (ARD) squared-exponential kernel:
///   k(x, x') = variance * exp(-0.5 * sum_j ((x_j - x'_j)/l_j)^2)
struct ArdSqExpKernel {
  Vector lengthscales;   // one per input dimension
  double variance = 1.0;

  double operator()(const Vector& a, const Vector& b) const;

  /// Full covariance matrix K(X, X).
  Matrix covariance(const Matrix& x) const;
  /// Cross-covariance vector k(X, x*).
  Vector cross(const Matrix& x, const Vector& xstar) const;
};

}  // namespace osprey::gp
