#include "gp/kernel.hpp"

#include <cmath>

#include "util/error.hpp"

namespace osprey::gp {

double ArdSqExpKernel::operator()(const Vector& a, const Vector& b) const {
  OSPREY_REQUIRE(a.size() == lengthscales.size() && b.size() == a.size(),
                 "kernel dimension mismatch");
  double q = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    double d = (a[j] - b[j]) / lengthscales[j];
    q += d * d;
  }
  return variance * std::exp(-0.5 * q);
}

Matrix ArdSqExpKernel::covariance(const Matrix& x) const {
  const std::size_t n = x.rows();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = variance;
    for (std::size_t j = i + 1; j < n; ++j) {
      double q = 0.0;
      for (std::size_t c = 0; c < x.cols(); ++c) {
        double d = (x(i, c) - x(j, c)) / lengthscales[c];
        q += d * d;
      }
      double v = variance * std::exp(-0.5 * q);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Vector ArdSqExpKernel::cross(const Matrix& x, const Vector& xstar) const {
  OSPREY_REQUIRE(xstar.size() == x.cols(), "kernel dimension mismatch");
  Vector out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double q = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      double d = (x(i, c) - xstar[c]) / lengthscales[c];
      q += d * d;
    }
    out[i] = variance * std::exp(-0.5 * q);
  }
  return out;
}

}  // namespace osprey::gp
