#include "serve/frontend.hpp"

#include <utility>

#include "util/error.hpp"

namespace osprey::serve {

const char* serve_outcome_name(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kHit:        return "hit";
    case ServeOutcome::kMiss:       return "miss";
    case ServeOutcome::kRevalidate: return "revalidate";
    case ServeOutcome::kDenied:     return "denied";
    case ServeOutcome::kShed:       return "shed";
  }
  return "?";
}

namespace {

ServeOutcome to_serve_outcome(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kHit:        return ServeOutcome::kHit;
    case CacheOutcome::kMiss:       return ServeOutcome::kMiss;
    case CacheOutcome::kRevalidate: return ServeOutcome::kRevalidate;
  }
  return ServeOutcome::kMiss;
}

}  // namespace

FrontEnd::FrontEnd(fabric::EventLoop& loop, fabric::AuthService& auth,
                   ResultCache& cache, obs::MetricsRegistry& metrics,
                   FrontEndConfig config)
    : loop_(loop), auth_(auth), cache_(cache), config_(config) {
  served_ = &metrics.counter("serve_requests_served_total",
                             "requests completed with a cache outcome");
  shed_ = &metrics.counter("serve_requests_shed_total",
                           "requests rejected by admission control");
  denied_ = &metrics.counter("serve_requests_denied_total",
                             "requests whose token lacked the serve scope");
  queue_depth_gauge_ =
      &metrics.gauge("serve_queue_depth", "requests currently waiting");
  latency_ms_ = &metrics.histogram(
      "serve_latency_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000},
      "end-to-end request latency including queueing (virtual ms)");
}

void FrontEnd::submit(ServeRequest request, Callback done) {
  SimTime now = loop_.now();
  try {
    auth_.validate(request.token, fabric::scopes::kServe);
  } catch (const osprey::util::AuthError&) {
    denied_->inc();
    ServeResponse resp;
    resp.outcome = ServeOutcome::kDenied;
    resp.enqueued_at = now;
    resp.completed_at = now;
    if (done) done(resp);
    return;
  }
  if (queue_.size() >= config_.max_queue_depth) {
    // Overload: refuse honestly and immediately. The queue bound keeps
    // tail latency finite; shed traffic is the pressure signal.
    shed_->inc();
    if (tracer_ != nullptr) {
      tracer_->instant(obs::Category::kServe, "shed:" + request.uuid,
                       obs::sim_ns(now), obs::kNoSpan, request.tenant);
    }
    ServeResponse resp;
    resp.outcome = ServeOutcome::kShed;
    resp.enqueued_at = now;
    resp.completed_at = now;
    if (done) done(resp);
    return;
  }
  queue_.push_back(Queued{std::move(request), std::move(done), now});
  queue_depth_gauge_->set(static_cast<double>(queue_.size()));
  pump();
}

void FrontEnd::pump() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  Queued q = std::move(queue_.front());
  queue_.pop_front();
  queue_depth_gauge_->set(static_cast<double>(queue_.size()));

  // The cache outcome is decided at dequeue time; the per-outcome
  // service time models the work that outcome costs.
  ResultCache::Result r = cache_.lookup(q.request.uuid);
  ServeOutcome outcome = to_serve_outcome(r.outcome);
  SimTime service = config_.hit_service_time;
  if (r.outcome == CacheOutcome::kMiss) {
    service = config_.miss_service_time;
  } else if (r.outcome == CacheOutcome::kRevalidate) {
    service = config_.revalidate_service_time;
  }

  obs::SpanId span = obs::kNoSpan;
  if (tracer_ != nullptr) {
    span = tracer_->begin_span(
        obs::Category::kServe, "serve:" + q.request.uuid,
        obs::sim_ns(loop_.now()), obs::kNoSpan,
        q.request.tenant + " " + serve_outcome_name(outcome));
  }

  loop_.schedule_after(
      service, [this, q = std::move(q), estimate = std::move(r.estimate),
                outcome, span]() mutable {
        finish(std::move(q.request), std::move(q.done), outcome,
               std::move(estimate), q.enqueued_at, span);
      });
}

void FrontEnd::finish(ServeRequest /*request*/, Callback done,
                      ServeOutcome outcome,
                      aero::AeroServer::ServedEstimate estimate,
                      SimTime enqueued_at, obs::SpanId span) {
  ServeResponse resp;
  resp.outcome = outcome;
  resp.estimate = std::move(estimate);
  resp.enqueued_at = enqueued_at;
  resp.completed_at = loop_.now();
  served_->inc();
  latency_ms_->observe(static_cast<double>(resp.latency()));
  if (tracer_ != nullptr) {
    tracer_->end_span(span, obs::sim_ns(loop_.now()), true);
  }
  busy_ = false;
  if (done) done(resp);
  pump();
}

}  // namespace osprey::serve
