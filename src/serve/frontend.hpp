#pragma once

/// \file frontend.hpp
/// Request front end for the serving tier: per-tenant auth, admission
/// control, and load shedding in front of a ResultCache.
///
/// Requests are admitted into a bounded FIFO queue and served one at a
/// time on the event loop (the serving tier is a single logical server
/// in the simulation; capacity is modeled by per-outcome service
/// times). Overload never blocks the loop and never silently drops
/// work: a request arriving with the queue full completes immediately
/// with the explicit `kShed` outcome, and a request whose token lacks
/// the `serve` scope completes with `kDenied`. Everything else resolves
/// to the cache outcome (hit / miss / revalidate) after its service
/// time, with queueing delay included in the reported latency.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "fabric/auth.hpp"
#include "fabric/event_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "util/sim_time.hpp"

namespace osprey::serve {

using osprey::util::SimTime;

enum class ServeOutcome { kHit, kMiss, kRevalidate, kDenied, kShed };

const char* serve_outcome_name(ServeOutcome outcome);

struct ServeRequest {
  std::string uuid;    // data object to read
  std::string token;   // bearer token; must carry scopes::kServe
  std::string tenant;  // requesting tenant, for spans/accounting
};

struct ServeResponse {
  ServeOutcome outcome = ServeOutcome::kShed;
  /// Engaged estimate for hit/miss/revalidate; default-constructed for
  /// denied/shed (those outcomes carry no data).
  aero::AeroServer::ServedEstimate estimate;
  SimTime enqueued_at = 0;
  SimTime completed_at = 0;

  /// End-to-end latency including queueing delay.
  SimTime latency() const { return completed_at - enqueued_at; }
};

struct FrontEndConfig {
  /// Requests allowed to wait (beyond the one in service); arrivals
  /// past this complete immediately as kShed.
  std::size_t max_queue_depth = 64;
  /// Service time per cache outcome. Hits skip the origin entirely;
  /// revalidates pay a metadata query; misses pay the full origin path.
  SimTime hit_service_time = 1;
  SimTime revalidate_service_time = 5;
  SimTime miss_service_time = 20;
};

class FrontEnd {
 public:
  using Callback = std::function<void(const ServeResponse&)>;

  FrontEnd(fabric::EventLoop& loop, fabric::AuthService& auth,
           ResultCache& cache, obs::MetricsRegistry& metrics,
           FrontEndConfig config = {});

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Attach a trace recorder (non-owning; nullptr detaches). Each
  /// served request becomes a "serve:<uuid>" span from dequeue to
  /// completion.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// Submit a read. Denied/shed requests complete synchronously;
  /// admitted requests complete via the event loop after queueing plus
  /// service time. `done` may be empty (fire-and-forget).
  void submit(ServeRequest request, Callback done);

  const FrontEndConfig& config() const { return config_; }
  std::size_t queue_depth() const { return queue_.size(); }
  std::uint64_t served() const { return served_->value(); }
  std::uint64_t shed() const { return shed_->value(); }
  std::uint64_t denied() const { return denied_->value(); }

 private:
  struct Queued {
    ServeRequest request;
    Callback done;
    SimTime enqueued_at = 0;
  };

  /// Start service on the queue head (no-op when idle or empty).
  void pump();
  void finish(ServeRequest request, Callback done, ServeOutcome outcome,
              aero::AeroServer::ServedEstimate estimate, SimTime enqueued_at,
              obs::SpanId span);

  fabric::EventLoop& loop_;
  fabric::AuthService& auth_;
  ResultCache& cache_;
  FrontEndConfig config_;
  obs::TraceRecorder* tracer_ = nullptr;

  std::deque<Queued> queue_;
  bool busy_ = false;  // a request is in service

  obs::Counter* served_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* denied_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* latency_ms_ = nullptr;
};

}  // namespace osprey::serve
