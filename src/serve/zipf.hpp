#pragma once

/// \file zipf.hpp
/// Counter-based Zipf workload trace for the serving tier. Dashboard
/// traffic is heavily skewed — a handful of headline QoIs absorb most
/// reads — and Zipf(s) is the standard model for that skew. `item(i)`
/// is a pure function of (seed, i): request i of a trace maps to the
/// same item on every run and platform, so flood benches and replay
/// tests share bit-identical request streams without carrying RNG
/// state through the event loop.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace osprey::serve {

class ZipfTrace {
 public:
  /// Ranks 0..num_items-1 with P(rank k) proportional to
  /// 1/(k+1)^exponent. `num_items` >= 1, `exponent` >= 0 (0 = uniform).
  ZipfTrace(std::size_t num_items, double exponent, std::uint64_t seed);

  std::size_t num_items() const { return cdf_.size(); }

  /// Item rank drawn for request `request_index` (counter-based, pure:
  /// no internal state advances).
  std::size_t item(std::uint64_t request_index) const;

 private:
  std::uint64_t seed_;
  std::vector<double> cdf_;  // cumulative probabilities; back() == 1.0
};

}  // namespace osprey::serve
