#include "serve/cache.hpp"

#include "util/error.hpp"

namespace osprey::serve {

const char* cache_outcome_name(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kHit:        return "hit";
    case CacheOutcome::kMiss:       return "miss";
    case CacheOutcome::kRevalidate: return "revalidate";
  }
  return "?";
}

ResultCache::ResultCache(aero::AeroServer& server,
                         obs::MetricsRegistry& metrics)
    : server_(&server) {
  hits_ = &metrics.counter("serve_cache_hits_total",
                           "lookups answered from a validated entry");
  misses_ = &metrics.counter("serve_cache_misses_total",
                             "lookups with no entry (origin fetched)");
  revalidates_ = &metrics.counter(
      "serve_cache_revalidates_total",
      "lookups whose entry was invalidated (origin re-fetched)");
  invalidations_ = &metrics.counter(
      "serve_cache_invalidations_total",
      "entries invalidated by version bumps or degradation flips");
  listener_id_ = server_->add_update_listener(
      [this](const std::string& uuid) { invalidate(uuid); });
}

ResultCache::~ResultCache() { detach(); }

void ResultCache::detach() {
  if (server_ == nullptr) return;
  server_->remove_update_listener(listener_id_);
  listener_id_ = 0;
  server_ = nullptr;
}

void ResultCache::rebind(aero::AeroServer& server) {
  detach();
  // Invalidate everything cached before the restart: the recovered
  // origin decides afresh what is current and what is stale.
  for (auto& [uuid, entry] : entries_) {
    (void)uuid;
    if (entry.valid) {
      entry.valid = false;
      invalidations_->inc();
    }
  }
  server_ = &server;
  listener_id_ = server_->add_update_listener(
      [this](const std::string& uuid) { invalidate(uuid); });
}

void ResultCache::rebind(aero::AeroServer& server, std::string shard) {
  shard_ = std::move(shard);
  rebind(server);
}

ResultCache::Result ResultCache::lookup(const std::string& uuid) {
  auto it = entries_.find(uuid);
  // A hit requires the entry to carry the cache's CURRENT shard
  // qualifier; an entry fetched under a previous qualifier is as
  // untrustworthy as an invalidated one and must revalidate.
  if (it != entries_.end() && it->second.valid && it->second.shard == shard_) {
    hits_->inc();
    return Result{CacheOutcome::kHit, it->second.estimate, shard_};
  }
  CacheOutcome outcome =
      it == entries_.end() ? CacheOutcome::kMiss : CacheOutcome::kRevalidate;
  (outcome == CacheOutcome::kMiss ? misses_ : revalidates_)->inc();
  Entry& entry = entries_[uuid];
  entry.estimate = fetch_origin(uuid);
  entry.valid = true;
  entry.shard = shard_;
  return Result{outcome, entry.estimate, shard_};
}

void ResultCache::invalidate(const std::string& uuid) {
  auto it = entries_.find(uuid);
  if (it != entries_.end() && it->second.valid) {
    it->second.valid = false;
    invalidations_->inc();
  }
}

aero::AeroServer::ServedEstimate ResultCache::fetch_origin(
    const std::string& uuid) {
  OSPREY_REQUIRE(server_ != nullptr, "ResultCache is detached from its origin");
  // The cache is the serving tier's one sanctioned origin client; all
  // other serve-tier code must go through lookup().
  return server_->serve_latest(uuid);  // osprey-lint: allow(serve-direct-origin)
}

}  // namespace osprey::serve
