#pragma once

/// \file cache.hpp
/// Version-keyed result cache fronting AeroServer::serve_latest().
/// Lookup states follow Apache Traffic Server's cache model:
///
///   hit        — a validated entry exists; answered without touching
///                the origin (no metadata query, no serve_latest call).
///   miss       — no entry for the uuid; fetched from the origin and
///                cached.
///   revalidate — an entry exists but was invalidated by an update
///                notification; re-fetched from the origin (the entry's
///                last-good body is still available to degraded reads).
///
/// Entries are keyed by (uuid, DataVersion) semantically: the cached
/// body is the ServedEstimate for one specific version, and the entry
/// is invalidated — never silently reused — when AERO registers a new
/// version OR flips the object's degradation state. Degradation matters
/// as much as version bumps: a producer failure changes the honest
/// answer (stale=true + reason) even though no new version appeared, so
/// the cache revalidates and serves the last-good estimate WITH the
/// staleness reason attached. A stale answer can therefore never be
/// laundered into a fresh-looking hit.

#include <cstdint>
#include <map>
#include <string>

#include "aero/server.hpp"
#include "obs/metrics.hpp"

namespace osprey::serve {

enum class CacheOutcome { kHit, kMiss, kRevalidate };

const char* cache_outcome_name(CacheOutcome outcome);

class ResultCache {
 public:
  /// Registers an update listener on `server` for invalidation; the
  /// cache must be destroyed (it unregisters itself) before the server.
  /// Counters land in `metrics` under serve_cache_* names.
  ResultCache(aero::AeroServer& server, obs::MetricsRegistry& metrics);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  struct Result {
    CacheOutcome outcome = CacheOutcome::kMiss;
    aero::AeroServer::ServedEstimate estimate;
    /// Shard qualifier the answer was fetched under ("" unsharded).
    std::string shard;
  };

  /// Shard qualifier for every subsequently cached answer (DESIGN.md
  /// §7): in a sharded fabric each partition's cache is stamped with
  /// its partition key, and an entry only counts as a hit when its
  /// qualifier matches the cache's CURRENT one. Rebinding to a
  /// different shard (or a recovered instance of the same shard)
  /// therefore forces revalidation — a version fetched under one
  /// shard's origin can never be served as a fresh hit under another.
  void set_shard(std::string shard) { shard_ = std::move(shard); }
  const std::string& shard() const { return shard_; }

  /// Serve `uuid` from cache, fetching from the origin on miss or
  /// revalidate. The returned estimate carries AERO's staleness signal
  /// verbatim (reason empty iff fresh).
  Result lookup(const std::string& uuid);

  /// Mark `uuid`'s entry for revalidation (no-op when absent or already
  /// invalid). Wired to AeroServer's update listener; public so tests
  /// can exercise invalidation directly.
  void invalidate(const std::string& uuid);

  // --- crash-recovery rebinding (DESIGN.md §4f) ----------------------
  /// Unhook from the origin server (e.g. just before it is destroyed in
  /// a process-crash drill). Detached lookups throw; entries are kept
  /// for rebind().
  void detach();
  /// Attach to a (re)started origin. EVERY entry is invalidated first:
  /// the new server may have recovered past the cached state, so
  /// nothing cached across a restart may ever be served as a fresh hit.
  void rebind(aero::AeroServer& server);
  /// Rebind AND adopt a new shard qualifier in one step (the sharded
  /// crash-recovery path: the restarted partition re-qualifies every
  /// subsequently served version).
  void rebind(aero::AeroServer& server, std::string shard);
  bool attached() const { return server_ != nullptr; }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  std::uint64_t revalidates() const { return revalidates_->value(); }
  std::uint64_t invalidations() const { return invalidations_->value(); }

 private:
  aero::AeroServer::ServedEstimate fetch_origin(const std::string& uuid);

  struct Entry {
    bool valid = false;  // false => next lookup revalidates
    aero::AeroServer::ServedEstimate estimate;
    std::string shard;  // qualifier the estimate was fetched under
  };

  aero::AeroServer* server_ = nullptr;  // null while detached
  std::uint64_t listener_id_ = 0;
  std::string shard_;
  std::map<std::string, Entry> entries_;

  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* revalidates_ = nullptr;
  obs::Counter* invalidations_ = nullptr;
};

}  // namespace osprey::serve
