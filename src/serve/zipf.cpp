#include "serve/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace osprey::serve {

namespace {

/// splitmix64 finalizer — the repo's standard counter-based generator
/// (same construction as util::RetryPolicy jitter and num:: streams).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double uniform01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

ZipfTrace::ZipfTrace(std::size_t num_items, double exponent,
                     std::uint64_t seed)
    : seed_(seed) {
  OSPREY_REQUIRE(num_items >= 1, "zipf trace needs at least one item");
  OSPREY_REQUIRE(exponent >= 0.0, "zipf exponent must be non-negative");
  cdf_.resize(num_items);
  double total = 0.0;
  for (std::size_t k = 0; k < num_items; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfTrace::item(std::uint64_t request_index) const {
  double u = uniform01(mix64(seed_ ^ mix64(request_index)));
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace osprey::serve
