#include "rt/likelihood_ws.hpp"

#include <algorithm>
#include <cmath>

#include "num/simd.hpp"
#include "util/error.hpp"

namespace osprey::rt {

namespace {
/// The reference guard value for out-of-support parameter vectors.
constexpr double kGuard = 1e12;
}  // namespace

LikelihoodWorkspace::LikelihoodWorkspace(
    const GoldsteinConfig& config, std::vector<double> gen_interval,
    std::vector<double> shedding, const std::vector<epi::WwSample>& samples,
    int days)
    : config_(config),
      w_(std::move(gen_interval)),
      shed_(std::move(shedding)),
      days_(days) {
  OSPREY_REQUIRE(days_ >= 2, "need at least 2 days");
  const int spacing = config_.knot_spacing_days;
  k_ = (days_ - 1) / spacing + 1;
  if ((k_ - 1) * spacing < days_ - 1) ++k_;
  burnin_ = static_cast<int>(w_.size());

  sample_day_.reserve(samples.size());
  sample_log_c_.reserve(samples.size());
  sample_pos_c_.reserve(samples.size());
  for (const epi::WwSample& s : samples) {
    OSPREY_REQUIRE(s.day >= 0 && s.day < days_, "sample outside horizon");
    sample_day_.push_back(s.day);
    const bool pos = s.concentration > 0.0;
    sample_pos_c_.push_back(pos ? 1 : 0);
    sample_log_c_.push_back(pos ? std::log(s.concentration) : 0.0);
  }

  const std::size_t nd = static_cast<std::size_t>(days_);
  const std::size_t ni = static_cast<std::size_t>(burnin_) + nd;
  const std::size_t ns = samples.size();
  theta_.assign(dim(), 0.0);
  rt_.assign(nd, 0.0);
  inc_.assign(ni, 0.0);
  mu_.assign(nd, 0.0);
  log_mu_.assign(ns, 0.0);
  contrib_.assign(ns, 0.0);
  cand_theta_.assign(dim(), 0.0);
  cand_rt_.assign(nd, 0.0);
  cand_inc_.assign(ni, 0.0);
  cand_mu_.assign(nd, 0.0);
  cand_log_mu_.assign(ns, 0.0);
  cand_contrib_.assign(ns, 0.0);
}

std::size_t LikelihoodWorkspace::first_sample_at(int day) const {
  std::size_t i = 0;
  while (i < sample_day_.size() && sample_day_[i] < day) ++i;
  return i;
}

LikelihoodWorkspace::Plan LikelihoodWorkspace::plan_for(std::size_t j) const {
  Plan p;
  if (degenerate_) {
    // Caches are stale (or nothing was committed yet): full evaluation.
    return p;
  }
  const std::size_t kidx = static_cast<std::size_t>(k_);
  if (j < kidx) {
    // Knot j first influences daily R at day (j-1)*spacing + 1 (day 0
    // for the first knot); everything before that is untouched.
    int tf = j == 0 ? 0
                    : (static_cast<int>(j) - 1) * config_.knot_spacing_days + 1;
    tf = std::min(tf, days_);
    p.rt_from = tf;
    p.inc_from = tf;
    p.sample_from = first_sample_at(tf);
  } else if (j == kidx) {
    // log I0 re-seeds the incidence recursion; daily R is reusable.
    p.rt_from = days_;
    p.inc_from = 0;
    p.sample_from = 0;
  } else {
    // log sigma rescales the observation terms only.
    p.rt_from = days_;
    p.inc_from = days_;
    p.sample_from = 0;
    p.sigma_only = true;
  }
  return p;
}

double LikelihoodWorkspace::eval(const std::vector<double>& theta,
                                 const Plan& plan) {
  const std::size_t kidx = static_cast<std::size_t>(k_);
  cand_theta_ = theta;
  cand_plan_ = plan;
  cand_degenerate_ = false;

  const double log_i0 = theta[kidx];
  const double log_sigma = theta[kidx + 1];
  if (log_i0 > 25.0 || log_sigma > 5.0 || log_sigma < -7.0) {
    cand_degenerate_ = true;
    cand_value_ = kGuard;
    return kGuard;
  }
  const double sigma = std::exp(log_sigma);

  // Priors, in the reference accumulation order (they touch every
  // component, so they are always recomputed — k+2 terms, negligible).
  double nlp = 0.0;
  const double s0 = config_.logr0_prior_sd;
  nlp += 0.5 * theta[0] * theta[0] / (s0 * s0);
  const double srw = config_.rw_prior_sd;
  for (int j = 1; j < k_; ++j) {
    double d = theta[static_cast<std::size_t>(j)] -
               theta[static_cast<std::size_t>(j - 1)];
    nlp += 0.5 * d * d / (srw * srw);
  }
  double dli = log_i0 - std::log(100.0);
  nlp += 0.5 * dli * dli / (3.0 * 3.0);
  const double shn = config_.sigma_halfnormal_sd;
  nlp += 0.5 * sigma * sigma / (shn * shn) - log_sigma;

  // Series suffixes through the shared SoA kernels.
  const double* rt = rt_.data();
  if (plan.rt_from < days_) {
    // The interpolation is element-local; the prefix is never read.
    num::simd::interp_log_knots_exp(theta.data(), k_,
                                    config_.knot_spacing_days, days_,
                                    plan.rt_from, cand_rt_.data());
    rt = cand_rt_.data();
  }
  const double* mu = mu_.data();
  if (plan.inc_from < days_) {
    if (plan.inc_from == 0) {
      // Reference semantics: the burn-in prefix of the incidence array
      // holds the initial level I0.
      std::fill(cand_inc_.begin(), cand_inc_.begin() + burnin_,
                std::exp(log_i0));
    } else {
      // The recursion reads up to max(|w|, |shed|) days back across the
      // restart point; copy the whole committed prefix (cheap, SoA).
      std::copy(inc_.begin(),
                inc_.begin() + burnin_ + plan.inc_from, cand_inc_.begin());
    }
    num::simd::renewal_incidence(rt, w_.data(), static_cast<int>(w_.size()),
                                 burnin_, plan.inc_from, days_,
                                 cand_inc_.data());
    std::copy(mu_.begin(), mu_.begin() + plan.inc_from, cand_mu_.begin());
    num::simd::shedding_convolve(cand_inc_.data(), shed_.data(),
                                 static_cast<int>(shed_.size()), burnin_,
                                 config_.shedding_scale,
                                 config_.flow_liters_per_day, plan.inc_from,
                                 days_, cand_mu_.data());
    mu = cand_mu_.data();
  }

  // Observation terms.
  const std::size_t n = sample_day_.size();
  if (plan.sigma_only) {
    // Cached log(mu) is exact; only the scale and the additive
    // log sigma change. The committed state passed every positivity
    // guard, and mu is untouched, so no re-check is needed.
    for (std::size_t i = 0; i < n; ++i) {
      const double z = (sample_log_c_[i] - log_mu_[i]) / sigma;
      cand_contrib_[i] = 0.5 * z * z + log_sigma;
    }
  } else if (!num::simd::lognormal_terms(
                 mu, sample_day_.data(), sample_log_c_.data(),
                 sample_pos_c_.data(), plan.sample_from, n, sigma, log_sigma,
                 cand_log_mu_.data(), cand_contrib_.data())) {
    cand_degenerate_ = true;
    cand_value_ = kGuard;
    return kGuard;
  }
  for (std::size_t i = 0; i < plan.sample_from; ++i) nlp += contrib_[i];
  for (std::size_t i = plan.sample_from; i < n; ++i) nlp += cand_contrib_[i];

  cand_value_ = nlp;
  return nlp;
}

double LikelihoodWorkspace::commit_full(const std::vector<double>& theta) {
  OSPREY_REQUIRE(theta.size() == dim(), "theta size mismatch");
  eval(theta, Plan{});
  accept();
  return value_;
}

double LikelihoodWorkspace::propose(const std::vector<double>& theta,
                                    std::size_t j) {
  return eval(theta, plan_for(j));
}

void LikelihoodWorkspace::accept() {
  theta_ = cand_theta_;
  value_ = cand_value_;
  if (cand_degenerate_) {
    // The guard path computes no series; caches no longer describe the
    // committed theta, so later proposals fall back to full evaluation.
    degenerate_ = true;
    return;
  }
  const Plan& p = cand_plan_;
  if (p.rt_from < days_) {
    std::copy(cand_rt_.begin() + p.rt_from, cand_rt_.end(),
              rt_.begin() + p.rt_from);
  }
  if (p.inc_from < days_) {
    const std::ptrdiff_t from =
        p.inc_from == 0 ? 0 : burnin_ + p.inc_from;
    std::copy(cand_inc_.begin() + from, cand_inc_.end(), inc_.begin() + from);
    std::copy(cand_mu_.begin() + p.inc_from, cand_mu_.end(),
              mu_.begin() + p.inc_from);
  }
  if (p.sigma_only) {
    std::copy(cand_contrib_.begin(), cand_contrib_.end(), contrib_.begin());
  } else {
    std::copy(cand_log_mu_.begin() +
                  static_cast<std::ptrdiff_t>(p.sample_from),
              cand_log_mu_.end(),
              log_mu_.begin() + static_cast<std::ptrdiff_t>(p.sample_from));
    std::copy(cand_contrib_.begin() +
                  static_cast<std::ptrdiff_t>(p.sample_from),
              cand_contrib_.end(),
              contrib_.begin() + static_cast<std::ptrdiff_t>(p.sample_from));
  }
  degenerate_ = false;
}

}  // namespace osprey::rt
