#pragma once

/// \file likelihood_ws.hpp
/// Incremental evaluation of the Goldstein neg-log-posterior.
///
/// The component-wise Metropolis sweep perturbs ONE coordinate of
/// theta = [log R knots..., log I0, log sigma] per proposal. The chain
/// of dependencies is strictly forward in time:
///
///   knot j  -> daily R from day (j-1)*spacing+1   (piecewise-linear)
///           -> incidence from that day            (renewal recursion)
///           -> expected concentration from it     (shedding convolution)
///           -> observation terms of samples at/after it,
///
/// while log I0 re-seeds the incidence recursion (daily R untouched)
/// and log sigma rescales only the observation terms (all series
/// untouched). This workspace caches the committed state's
/// structure-of-arrays — daily R, incidence, expected concentration,
/// per-sample log(mu) and likelihood contributions — and recomputes
/// exactly the affected suffix per proposal through the shared
/// num::simd kernels.
///
/// **Bit-identity contract.** propose() returns the same IEEE double a
/// from-scratch evaluation of the candidate theta would return: cached
/// prefix values are pure functions of unchanged inputs, the suffix is
/// recomputed by the same kernels, and the accumulation (priors first,
/// then per-sample terms in sample order) replays the reference order.
/// The Metropolis accept decisions — and therefore the posterior draws
/// — are unchanged from a full-recompute sweep; only the work shrinks.
///
/// Degenerate states (the reference returns the 1e12 guard value,
/// either from the theta bounds guard or a non-positive expected
/// concentration) leave the caches stale; the workspace tracks this and
/// falls back to full evaluation until a finite state is committed,
/// matching the reference arithmetic there too.

#include <cstddef>
#include <vector>

#include "epi/wastewater.hpp"
#include "rt/goldstein.hpp"

namespace osprey::rt {

class LikelihoodWorkspace {
 public:
  /// Buffers are sized once here; no allocation happens per proposal.
  /// Throws InvalidArgument when a sample day is outside [0, days).
  LikelihoodWorkspace(const GoldsteinConfig& config,
                      std::vector<double> gen_interval,
                      std::vector<double> shedding,
                      const std::vector<epi::WwSample>& samples, int days);

  int days() const { return days_; }
  int num_knots() const { return k_; }
  std::size_t dim() const { return static_cast<std::size_t>(k_) + 2; }

  /// Evaluate theta from scratch and make it the committed state.
  double commit_full(const std::vector<double>& theta);

  /// Evaluate a candidate theta that differs from the committed theta
  /// in exactly component j. Does not change the committed state; call
  /// accept() to adopt the candidate, or simply propose again.
  double propose(const std::vector<double>& theta, std::size_t j);

  /// Adopt the most recent propose()/commit_full() candidate.
  void accept();

  double committed_value() const { return value_; }
  const std::vector<double>& committed_theta() const { return theta_; }
  /// Committed daily R(t); only meaningful for a non-degenerate state.
  const std::vector<double>& committed_rt() const { return rt_; }
  bool committed_degenerate() const { return degenerate_; }

 private:
  /// What a candidate evaluation must recompute. Indices at the end of
  /// their range mean "nothing changed, reuse the committed array".
  struct Plan {
    int rt_from = 0;
    int inc_from = 0;
    std::size_t sample_from = 0;
    bool sigma_only = false;  // reuse cached log(mu), rescale terms
  };

  Plan plan_for(std::size_t j) const;
  double eval(const std::vector<double>& theta, const Plan& plan);
  /// First sample index at/after `day` (all earlier indices are
  /// strictly before it, whatever the input order).
  std::size_t first_sample_at(int day) const;

  // --- immutable problem description ---
  GoldsteinConfig config_;
  std::vector<double> w_;     // generation interval
  std::vector<double> shed_;  // shedding kernel
  int days_ = 0;
  int k_ = 0;       // number of knots
  int burnin_ = 0;  // incidence burn-in rows (= w_.size())
  std::vector<int> sample_day_;
  std::vector<double> sample_log_c_;
  std::vector<unsigned char> sample_pos_c_;

  // --- committed state ---
  std::vector<double> theta_;
  std::vector<double> rt_;       // days_
  std::vector<double> inc_;      // burnin_ + days_
  std::vector<double> mu_;       // days_
  std::vector<double> log_mu_;   // per sample
  std::vector<double> contrib_;  // per sample
  double value_ = 0.0;
  bool degenerate_ = true;  // nothing committed yet

  // --- candidate state (filled by propose/commit_full) ---
  std::vector<double> cand_theta_;
  std::vector<double> cand_rt_;
  std::vector<double> cand_inc_;
  std::vector<double> cand_mu_;
  std::vector<double> cand_log_mu_;
  std::vector<double> cand_contrib_;
  Plan cand_plan_;
  double cand_value_ = 0.0;
  bool cand_degenerate_ = true;
};

}  // namespace osprey::rt
