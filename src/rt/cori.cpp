#include "rt/cori.hpp"

#include <cmath>

#include "epi/kernels.hpp"
#include "num/special.hpp"
#include "util/error.hpp"

namespace osprey::rt {

CoriResult estimate_cori_from_concentration(
    const std::vector<epi::WwSample>& samples, int days,
    double pseudo_count_scale, const CoriConfig& config) {
  OSPREY_REQUIRE(samples.size() >= 2, "need at least 2 samples");
  OSPREY_REQUIRE(days > samples.back().day, "horizon before last sample");
  OSPREY_REQUIRE(pseudo_count_scale > 0, "scale must be positive");

  // Linear interpolation of the sparse samples onto a daily grid
  // (constant extrapolation before the first / after the last sample).
  std::vector<double> daily(static_cast<std::size_t>(days), 0.0);
  std::size_t k = 0;
  for (int t = 0; t < days; ++t) {
    while (k + 1 < samples.size() && samples[k + 1].day <= t) ++k;
    double value;
    if (t <= samples.front().day) {
      value = samples.front().concentration;
    } else if (k + 1 >= samples.size()) {
      value = samples.back().concentration;
    } else {
      const epi::WwSample& a = samples[k];
      const epi::WwSample& b = samples[k + 1];
      double frac = static_cast<double>(t - a.day) /
                    static_cast<double>(b.day - a.day);
      value = a.concentration + frac * (b.concentration - a.concentration);
    }
    daily[static_cast<std::size_t>(t)] = value;
  }

  // Rescale to pseudo-counts: mean concentration -> pseudo_count_scale
  // cases/day, so the gamma posterior width is in a plausible regime.
  double mean_c = 0.0;
  for (double v : daily) mean_c += v;
  mean_c /= static_cast<double>(days);
  OSPREY_REQUIRE(mean_c > 0, "degenerate concentration series");
  for (double& v : daily) v = v / mean_c * pseudo_count_scale;

  return estimate_cori(daily, config);
}

CoriResult estimate_cori(const std::vector<double>& daily_cases,
                         const CoriConfig& config) {
  OSPREY_REQUIRE(!daily_cases.empty(), "no case data");
  OSPREY_REQUIRE(config.window_days >= 1, "bad window");
  std::vector<double> w = config.generation_interval.empty()
                              ? epi::default_generation_interval()
                              : config.generation_interval;

  const std::size_t days = daily_cases.size();
  // Infection pressure Lambda(t).
  std::vector<double> lambda(days, 0.0);
  for (std::size_t t = 0; t < days; ++t) {
    lambda[t] = epi::renewal_pressure(daily_cases, t, w);
  }

  CoriResult out;
  out.series.median.assign(days, 1.0);
  out.series.lo95.assign(days, 0.0);
  out.series.hi95.assign(days, 0.0);
  out.mean.assign(days, 1.0);
  out.reliable.assign(days, false);

  for (std::size_t t = 0; t < days; ++t) {
    // Window [t - window + 1, t], clipped at the start.
    std::size_t begin =
        t + 1 >= static_cast<std::size_t>(config.window_days)
            ? t + 1 - static_cast<std::size_t>(config.window_days)
            : 0;
    double sum_cases = 0.0;
    double sum_lambda = 0.0;
    for (std::size_t s = begin; s <= t; ++s) {
      sum_cases += daily_cases[s];
      sum_lambda += lambda[s];
    }
    double shape = config.prior_shape + sum_cases;
    double rate = 1.0 / config.prior_scale + sum_lambda;
    if (rate <= 0.0) continue;  // no pressure yet: leave the prior default
    double scale = 1.0 / rate;
    out.mean[t] = shape * scale;
    out.series.median[t] = osprey::num::gamma_quantile(0.5, shape, scale);
    out.series.lo95[t] = osprey::num::gamma_quantile(0.025, shape, scale);
    out.series.hi95[t] = osprey::num::gamma_quantile(0.975, shape, scale);
    // EpiEstim's usual reliability rule of thumb: enough incidence in
    // the window.
    out.reliable[t] = sum_cases >= 10.0 && sum_lambda > 0.0;
  }
  return out;
}

}  // namespace osprey::rt
