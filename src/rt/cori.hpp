#pragma once

/// \file cori.hpp
/// The Cori et al. (2013) / EpiEstim method — the paper's example of a
/// "more standard R(t) estimation method" that the Goldstein approach is
/// significantly more expensive than. Estimates R(t) from reported case
/// counts with a sliding-window conjugate gamma posterior:
///
///   R_t | data ~ Gamma(a + sum_{s in window} I_s,
///                      scale = 1 / (1/b + sum_{s in window} Lambda_s))
///
/// where Lambda_s is the renewal infection pressure.

#include <vector>

#include "epi/wastewater.hpp"
#include "rt/posterior.hpp"

namespace osprey::rt {

struct CoriConfig {
  int window_days = 7;
  double prior_shape = 1.0;   // a
  double prior_scale = 5.0;   // b
  /// Generation-interval override (defaults to the shared COVID-like one).
  std::vector<double> generation_interval;
};

/// Point + interval estimates per day (analytic, no sampling).
struct CoriResult {
  RtSeries series;               // median and 95% CI per day
  std::vector<double> mean;      // posterior mean per day
  /// Days with too little infection pressure are flagged unreliable.
  std::vector<bool> reliable;
};

/// Run the Cori method on daily case counts.
CoriResult estimate_cori(const std::vector<double>& daily_cases,
                         const CoriConfig& config = {});

/// The "what if we just ran the standard method on the wastewater
/// signal" baseline: linearly interpolate the sparse concentration
/// samples to a daily series, rescale it into pseudo-case counts, and
/// run the Cori method on that. This ignores the shedding-delay
/// convolution entirely — it is the cheap shortcut the Goldstein method
/// exists to improve on, included for the Figure-2 comparison.
CoriResult estimate_cori_from_concentration(
    const std::vector<epi::WwSample>& samples, int days,
    double pseudo_count_scale = 100.0, const CoriConfig& config = {});

}  // namespace osprey::rt
