#pragma once

/// \file goldstein.hpp
/// Semiparametric Bayesian estimation of R(t) from wastewater pathogen
/// concentrations, following the structure of the Goldstein method the
/// paper's §2.1 adopts:
///
///  - a mechanistic epidemic layer: log R(t) is piecewise linear between
///    weekly knots with a Gaussian random-walk prior (the semiparametric
///    part); latent incidence follows the renewal equation;
///  - a statistical observation layer: expected concentration is the
///    shedding-kernel convolution of incidence normalized by plant flow;
///    observed concentrations are lognormally distributed around it;
///  - posterior sampling: adaptive component-wise random-walk Metropolis
///    over (log R knots, log initial incidence, log observation sigma).
///
/// "This estimation procedure is significantly more computationally
/// expensive than more standard R(t) estimation methods" — the MCMC here
/// is orders of magnitude more work than the Cori baseline in cori.hpp,
/// which is exactly why the paper runs it on an HPC compute node.

#include <cstdint>
#include <vector>

#include "epi/wastewater.hpp"
#include "rt/posterior.hpp"

namespace osprey::rt {

struct GoldsteinConfig {
  int knot_spacing_days = 7;
  int iterations = 6000;
  int burnin = 3000;
  int thin = 6;
  double rw_prior_sd = 0.15;      // random-walk prior on log R knots
  double logr0_prior_sd = 0.5;    // prior on the first knot
  double sigma_halfnormal_sd = 0.5;  // prior scale of observation sigma
  /// Known physical constants of the observation layer (the estimator,
  /// like the original method, assumes known shedding dynamics).
  double shedding_scale = 1.0e9;
  double flow_liters_per_day = 230.0 * 3.785e6;
  std::uint64_t seed = 12345;
};

/// The estimator. Construction precomputes kernels; estimate() is const
/// and safe to call concurrently with distinct outputs.
class GoldsteinEstimator {
 public:
  explicit GoldsteinEstimator(GoldsteinConfig config);

  const GoldsteinConfig& config() const { return config_; }

  /// Estimate R(t) for days [0, days) from the samples. Throws
  /// InvalidArgument when there are fewer than 4 samples.
  RtPosterior estimate(const std::vector<epi::WwSample>& samples,
                       int days) const;

  /// Same, with an explicit chain seed overriding config.seed. The
  /// posterior is a pure function of (samples, days, seed), so ensemble
  /// fan-outs can give each plant its own independent stream and still
  /// get bit-identical results regardless of execution order.
  RtPosterior estimate(const std::vector<epi::WwSample>& samples, int days,
                       std::uint64_t seed) const;

  /// Negative log posterior at a parameter vector (exposed for tests).
  /// theta = [logR knots..., log I0, log sigma].
  double neg_log_posterior(const std::vector<double>& theta,
                           const std::vector<epi::WwSample>& samples,
                           int days) const;

  int num_knots(int days) const;

 private:
  /// Daily R(t) from knot values (piecewise linear in log space).
  std::vector<double> knots_to_daily(const std::vector<double>& log_knots,
                                     int days) const;
  /// Deterministic renewal incidence given daily R and initial level.
  std::vector<double> incidence_from_rt(const std::vector<double>& rt,
                                        double i0) const;
  /// Expected concentration per day from incidence (with burn-in rows).
  std::vector<double> expected_concentration(
      const std::vector<double>& incidence_with_burnin, int days) const;

  GoldsteinConfig config_;
  std::vector<double> gen_interval_;
  std::vector<double> shedding_;
};

}  // namespace osprey::rt
