#pragma once

/// \file goldstein.hpp
/// Semiparametric Bayesian estimation of R(t) from wastewater pathogen
/// concentrations, following the structure of the Goldstein method the
/// paper's §2.1 adopts:
///
///  - a mechanistic epidemic layer: log R(t) is piecewise linear between
///    weekly knots with a Gaussian random-walk prior (the semiparametric
///    part); latent incidence follows the renewal equation;
///  - a statistical observation layer: expected concentration is the
///    shedding-kernel convolution of incidence normalized by plant flow;
///    observed concentrations are lognormally distributed around it;
///  - posterior sampling: adaptive component-wise random-walk Metropolis
///    over (log R knots, log initial incidence, log observation sigma).
///
/// "This estimation procedure is significantly more computationally
/// expensive than more standard R(t) estimation methods" — the MCMC here
/// is orders of magnitude more work than the Cori baseline in cori.hpp,
/// which is exactly why the paper runs it on an HPC compute node.
///
/// Two execution modes share the incremental LikelihoodWorkspace
/// (likelihood_ws.hpp):
///  - estimate() runs the full cold chain; its draws are a pure function
///    of (samples, days, seed);
///  - estimate_update() warm-starts from a GoldsteinChainState captured
///    by a previous fit, extends the knot vector only by the newly
///    observed days, and runs a capped number of iterations so the
///    time-to-fresh-R(t) after one new sample is bounded.

#include <cstdint>
#include <vector>

#include "epi/wastewater.hpp"
#include "rt/posterior.hpp"

namespace osprey::rt {

class LikelihoodWorkspace;

struct GoldsteinConfig {
  int knot_spacing_days = 7;
  int iterations = 6000;
  int burnin = 3000;
  int thin = 6;
  /// Capped chain length for warm-start online refits: an
  /// estimate_update() call runs exactly update_iterations sweeps
  /// (update_burnin of them re-adaptive), independent of how much
  /// history has accumulated — this is what bounds time-to-fresh-R(t).
  int update_iterations = 600;
  int update_burnin = 200;
  double rw_prior_sd = 0.15;      // random-walk prior on log R knots
  double logr0_prior_sd = 0.5;    // prior on the first knot
  double sigma_halfnormal_sd = 0.5;  // prior scale of observation sigma
  /// Known physical constants of the observation layer (the estimator,
  /// like the original method, assumes known shedding dynamics).
  double shedding_scale = 1.0e9;
  double flow_liters_per_day = 230.0 * 3.785e6;
  std::uint64_t seed = 12345;
};

/// Where a Metropolis chain left off: the last parameter vector, the
/// adapted per-component step sizes, and the horizon they describe.
/// Captured by estimate() and advanced in place by estimate_update();
/// `updates` counts warm refits applied since the cold fit, giving each
/// posterior in an online sequence its provenance lineage position.
struct GoldsteinChainState {
  std::vector<double> theta;  // [log R knots..., log I0, log sigma]
  std::vector<double> step;   // adapted proposal scales, same layout
  int days = 0;
  std::uint64_t updates = 0;

  bool valid() const {
    return days >= 2 && theta.size() >= 3 && theta.size() == step.size();
  }
};

/// The estimator. Construction precomputes kernels; estimate() is const
/// and safe to call concurrently with distinct outputs.
class GoldsteinEstimator {
 public:
  explicit GoldsteinEstimator(GoldsteinConfig config);

  const GoldsteinConfig& config() const { return config_; }

  /// Estimate R(t) for days [0, days) from the samples. Throws
  /// InvalidArgument when there are fewer than 4 samples.
  RtPosterior estimate(const std::vector<epi::WwSample>& samples,
                       int days) const;

  /// Same, with an explicit chain seed overriding config.seed. The
  /// posterior is a pure function of (samples, days, seed), so ensemble
  /// fan-outs can give each plant its own independent stream and still
  /// get bit-identical results regardless of execution order. When
  /// out_state is non-null the final chain position is captured there
  /// for later estimate_update() calls.
  RtPosterior estimate(const std::vector<epi::WwSample>& samples, int days,
                       std::uint64_t seed,
                       GoldsteinChainState* out_state = nullptr) const;

  /// Warm-start online refit: resume from `state` (advanced in place),
  /// extending the knot vector to cover days [state.days, days) by
  /// replicating the last knot — the random-walk prior's mean-zero
  /// increment — and run a capped update_iterations-sweep chain.
  /// Requires state.valid(), days >= state.days and >= 4 samples.
  RtPosterior estimate_update(const std::vector<epi::WwSample>& samples,
                              int days, std::uint64_t seed,
                              GoldsteinChainState& state) const;

  /// Negative log posterior at a parameter vector (exposed for tests).
  /// theta = [logR knots..., log I0, log sigma]. Allocating wrapper
  /// over a one-shot LikelihoodWorkspace full evaluation.
  double neg_log_posterior(const std::vector<double>& theta,
                           const std::vector<epi::WwSample>& samples,
                           int days) const;

  int num_knots(int days) const;

  /// Daily R(t) from knot values (piecewise linear in log space; the
  /// final knot is pinned to day days-1 when the spacing does not
  /// divide days-1). Exposed so tests and draw post-processing share
  /// the exact chain arithmetic.
  std::vector<double> knots_to_daily(const std::vector<double>& log_knots,
                                     int days) const;

  const std::vector<double>& generation_interval() const {
    return gen_interval_;
  }
  const std::vector<double>& shedding_kernel() const { return shedding_; }

  /// An incremental-evaluation workspace bound to (samples, days),
  /// sharing this estimator's config and kernels.
  LikelihoodWorkspace make_workspace(
      const std::vector<epi::WwSample>& samples, int days) const;

 private:
  /// The component-wise adaptive Metropolis sweep shared by cold fits
  /// and warm updates. theta/step are the chain position (advanced in
  /// place); draws and the overall/per-phase acceptance rates are
  /// stored into `posterior`.
  void run_chain(LikelihoodWorkspace& ws, std::vector<double>& theta,
                 std::vector<double>& step, std::uint64_t seed,
                 int iterations, int burnin, int days,
                 RtPosterior& posterior) const;

  GoldsteinConfig config_;
  std::vector<double> gen_interval_;
  std::vector<double> shedding_;
};

}  // namespace osprey::rt
