#include "rt/goldstein.hpp"

#include <algorithm>
#include <cmath>

#include "epi/kernels.hpp"
#include "num/rng.hpp"
#include "num/simd.hpp"
#include "num/stats.hpp"
#include "rt/likelihood_ws.hpp"
#include "util/error.hpp"

namespace osprey::rt {

using osprey::num::RngStream;

GoldsteinEstimator::GoldsteinEstimator(GoldsteinConfig config)
    : config_(std::move(config)),
      gen_interval_(epi::default_generation_interval()),
      shedding_(epi::default_shedding_kernel()) {
  OSPREY_REQUIRE(config_.knot_spacing_days >= 1, "bad knot spacing");
  OSPREY_REQUIRE(config_.iterations > config_.burnin, "burnin >= iterations");
  OSPREY_REQUIRE(config_.thin >= 1, "thin must be >= 1");
  OSPREY_REQUIRE(config_.update_burnin >= 0, "bad update burnin");
  OSPREY_REQUIRE(config_.update_iterations > config_.update_burnin,
                 "update_burnin >= update_iterations");
  OSPREY_REQUIRE(config_.flow_liters_per_day > 0, "bad flow");
  OSPREY_REQUIRE(config_.shedding_scale > 0, "bad shedding scale");
}

int GoldsteinEstimator::num_knots(int days) const {
  OSPREY_REQUIRE(days >= 2, "need at least 2 days");
  // Knots at 0, spacing, 2*spacing, ... plus one at/after the last day.
  int k = (days - 1) / config_.knot_spacing_days + 1;
  if ((k - 1) * config_.knot_spacing_days < days - 1) ++k;
  return k;
}

std::vector<double> GoldsteinEstimator::knots_to_daily(
    const std::vector<double>& log_knots, int days) const {
  std::vector<double> rt(static_cast<std::size_t>(days));
  num::simd::interp_log_knots_exp(log_knots.data(),
                                  static_cast<int>(log_knots.size()),
                                  config_.knot_spacing_days, days, 0,
                                  rt.data());
  return rt;
}

LikelihoodWorkspace GoldsteinEstimator::make_workspace(
    const std::vector<epi::WwSample>& samples, int days) const {
  return LikelihoodWorkspace(config_, gen_interval_, shedding_, samples,
                             days);
}

double GoldsteinEstimator::neg_log_posterior(
    const std::vector<double>& theta,
    const std::vector<epi::WwSample>& samples, int days) const {
  const int k = num_knots(days);
  OSPREY_REQUIRE(theta.size() == static_cast<std::size_t>(k) + 2,
                 "theta size mismatch");
  LikelihoodWorkspace ws = make_workspace(samples, days);
  return ws.commit_full(theta);
}

void GoldsteinEstimator::run_chain(LikelihoodWorkspace& ws,
                                   std::vector<double>& theta,
                                   std::vector<double>& step,
                                   std::uint64_t seed, int iterations,
                                   int burnin, int days,
                                   RtPosterior& posterior) const {
  const std::size_t dim = theta.size();
  const int k = ws.num_knots();
  OSPREY_REQUIRE(dim == ws.dim() && dim == step.size(),
                 "chain dimension mismatch");

  RngStream rng(seed);
  double current = ws.commit_full(theta);

  std::vector<std::size_t> accepts(dim, 0);
  std::vector<std::size_t> proposals(dim, 0);
  const int adapt_window = 50;

  // Draws land at offsets 0, thin, 2*thin, ... within the post-burn-in
  // span, so the count is the CEILING of span/thin — floor division
  // would silently drop the final thinned draw whenever thin does not
  // divide the span.
  const int span = iterations - burnin;
  const int n_draws = (span + config_.thin - 1) / config_.thin;
  posterior.draws = osprey::num::Matrix(static_cast<std::size_t>(n_draws),
                                        static_cast<std::size_t>(days));

  std::vector<double> rt_buf(static_cast<std::size_t>(days));
  std::size_t stored = 0;
  std::uint64_t burn_acc = 0;
  std::uint64_t burn_prop = 0;
  std::uint64_t samp_acc = 0;
  std::uint64_t samp_prop = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    const bool in_burnin = iter < burnin;
    // Component-wise Metropolis sweep; the workspace recomputes only
    // the suffix the perturbed component can influence.
    for (std::size_t j = 0; j < dim; ++j) {
      double old = theta[j];
      theta[j] = old + step[j] * rng.normal();
      double cand = ws.propose(theta, j);
      ++proposals[j];
      if (in_burnin) {
        ++burn_prop;
      } else {
        ++samp_prop;
      }
      if (std::log(rng.uniform() + 1e-300) < current - cand) {
        current = cand;
        ws.accept();
        ++accepts[j];
        if (in_burnin) {
          ++burn_acc;
        } else {
          ++samp_acc;
        }
      } else {
        theta[j] = old;
      }
    }
    // Adapt step sizes toward ~44% acceptance during burn-in.
    if (in_burnin && (iter + 1) % adapt_window == 0) {
      for (std::size_t j = 0; j < dim; ++j) {
        double rate = static_cast<double>(accepts[j]) /
                      static_cast<double>(proposals[j]);
        step[j] *= std::exp(rate - 0.44);
        step[j] = std::clamp(step[j], 1e-4, 2.0);
        accepts[j] = 0;
        proposals[j] = 0;
      }
    }
    if (iter >= burnin && (iter - burnin) % config_.thin == 0) {
      // Draws always go through the interpolation kernel directly: the
      // workspace R cache is stale whenever the committed state is
      // degenerate, but theta itself is always well-defined.
      num::simd::interp_log_knots_exp(theta.data(), k,
                                      config_.knot_spacing_days, days, 0,
                                      rt_buf.data());
      for (int t = 0; t < days; ++t) {
        posterior.draws(stored, static_cast<std::size_t>(t)) =
            rt_buf[static_cast<std::size_t>(t)];
      }
      ++stored;
    }
  }
  OSPREY_CHECK(stored == static_cast<std::size_t>(n_draws),
               "thinned draw count mismatch");

  const std::uint64_t total_acc = burn_acc + samp_acc;
  const std::uint64_t total_prop = burn_prop + samp_prop;
  auto ratio = [](std::uint64_t a, std::uint64_t p) {
    return p == 0 ? 0.0
                  : static_cast<double>(a) / static_cast<double>(p);
  };
  posterior.acceptance_rate = ratio(total_acc, total_prop);
  posterior.acceptance_rate_burnin = ratio(burn_acc, burn_prop);
  posterior.acceptance_rate_sampling = ratio(samp_acc, samp_prop);
}

RtPosterior GoldsteinEstimator::estimate(
    const std::vector<epi::WwSample>& samples, int days) const {
  return estimate(samples, days, config_.seed);
}

RtPosterior GoldsteinEstimator::estimate(
    const std::vector<epi::WwSample>& samples, int days, std::uint64_t seed,
    GoldsteinChainState* out_state) const {
  OSPREY_REQUIRE(samples.size() >= 4, "need at least 4 samples");
  const int k = num_knots(days);
  const std::size_t dim = static_cast<std::size_t>(k) + 2;

  // Initialize: flat R(t)=1, incidence level backed out of the mean
  // observed concentration, moderate noise.
  std::vector<double> conc;
  conc.reserve(samples.size());
  for (const auto& s : samples) conc.push_back(s.concentration);
  double mean_c = std::max(osprey::num::mean(conc), 1e-12);
  double i0_guess =
      std::max(mean_c * config_.flow_liters_per_day / config_.shedding_scale,
               1.0);

  std::vector<double> theta(dim, 0.0);
  theta[static_cast<std::size_t>(k)] = std::log(i0_guess);
  theta[static_cast<std::size_t>(k) + 1] = std::log(0.5);
  std::vector<double> step(dim, 0.08);

  LikelihoodWorkspace ws = make_workspace(samples, days);
  RtPosterior posterior;
  run_chain(ws, theta, step, seed, config_.iterations, config_.burnin, days,
            posterior);

  if (out_state != nullptr) {
    out_state->theta = std::move(theta);
    out_state->step = std::move(step);
    out_state->days = days;
    out_state->updates = 0;
  }
  return posterior;
}

RtPosterior GoldsteinEstimator::estimate_update(
    const std::vector<epi::WwSample>& samples, int days, std::uint64_t seed,
    GoldsteinChainState& state) const {
  OSPREY_REQUIRE(state.valid(), "invalid chain state");
  OSPREY_REQUIRE(days >= state.days, "online horizon cannot shrink");
  OSPREY_REQUIRE(samples.size() >= 4, "need at least 4 samples");
  const int k = num_knots(days);
  const int k_old = static_cast<int>(state.theta.size()) - 2;
  OSPREY_REQUIRE(k >= k_old, "chain state has more knots than horizon");

  // Extend the parameter vector over the newly observed days by
  // replicating the last knot — the mean of the random-walk prior
  // increment — and give new knots the last knot's adapted step.
  std::vector<double> theta = state.theta;
  std::vector<double> step = state.step;
  theta.insert(theta.begin() + k_old, static_cast<std::size_t>(k - k_old),
               theta[static_cast<std::size_t>(k_old) - 1]);
  step.insert(step.begin() + k_old, static_cast<std::size_t>(k - k_old),
              step[static_cast<std::size_t>(k_old) - 1]);

  LikelihoodWorkspace ws = make_workspace(samples, days);
  RtPosterior posterior;
  run_chain(ws, theta, step, seed, config_.update_iterations,
            config_.update_burnin, days, posterior);

  state.theta = std::move(theta);
  state.step = std::move(step);
  state.days = days;
  ++state.updates;
  return posterior;
}

}  // namespace osprey::rt
