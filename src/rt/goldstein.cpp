#include "rt/goldstein.hpp"

#include <algorithm>
#include <cmath>

#include "epi/kernels.hpp"
#include "num/rng.hpp"
#include "num/stats.hpp"
#include "util/error.hpp"

namespace osprey::rt {

using osprey::num::RngStream;

GoldsteinEstimator::GoldsteinEstimator(GoldsteinConfig config)
    : config_(std::move(config)),
      gen_interval_(epi::default_generation_interval()),
      shedding_(epi::default_shedding_kernel()) {
  OSPREY_REQUIRE(config_.knot_spacing_days >= 1, "bad knot spacing");
  OSPREY_REQUIRE(config_.iterations > config_.burnin, "burnin >= iterations");
  OSPREY_REQUIRE(config_.thin >= 1, "thin must be >= 1");
  OSPREY_REQUIRE(config_.flow_liters_per_day > 0, "bad flow");
  OSPREY_REQUIRE(config_.shedding_scale > 0, "bad shedding scale");
}

int GoldsteinEstimator::num_knots(int days) const {
  OSPREY_REQUIRE(days >= 2, "need at least 2 days");
  // Knots at 0, spacing, 2*spacing, ... plus one at/after the last day.
  int k = (days - 1) / config_.knot_spacing_days + 1;
  if ((k - 1) * config_.knot_spacing_days < days - 1) ++k;
  return k;
}

std::vector<double> GoldsteinEstimator::knots_to_daily(
    const std::vector<double>& log_knots, int days) const {
  std::vector<double> rt(static_cast<std::size_t>(days));
  int spacing = config_.knot_spacing_days;
  for (int t = 0; t < days; ++t) {
    int k = t / spacing;
    int k1 = std::min<int>(k + 1, static_cast<int>(log_knots.size()) - 1);
    double frac = static_cast<double>(t - k * spacing) / spacing;
    double log_rt = log_knots[static_cast<std::size_t>(k)] * (1.0 - frac) +
                    log_knots[static_cast<std::size_t>(k1)] * frac;
    rt[static_cast<std::size_t>(t)] = std::exp(log_rt);
  }
  return rt;
}

std::vector<double> GoldsteinEstimator::incidence_from_rt(
    const std::vector<double>& rt, double i0) const {
  const int burnin = static_cast<int>(gen_interval_.size());
  std::vector<double> inc(static_cast<std::size_t>(burnin) + rt.size(), i0);
  for (std::size_t t = 0; t < rt.size(); ++t) {
    std::size_t idx = static_cast<std::size_t>(burnin) + t;
    inc[idx] = rt[t] * epi::renewal_pressure(inc, idx, gen_interval_);
  }
  return inc;
}

std::vector<double> GoldsteinEstimator::expected_concentration(
    const std::vector<double>& inc, int days) const {
  const int burnin = static_cast<int>(gen_interval_.size());
  std::vector<double> mu(static_cast<std::size_t>(days), 0.0);
  for (int t = 0; t < days; ++t) {
    double load = 0.0;
    for (std::size_t s = 0; s < shedding_.size(); ++s) {
      int src = burnin + t - static_cast<int>(s);
      if (src < 0) break;
      load += shedding_[s] * inc[static_cast<std::size_t>(src)];
    }
    mu[static_cast<std::size_t>(t)] =
        config_.shedding_scale * load / config_.flow_liters_per_day;
  }
  return mu;
}

double GoldsteinEstimator::neg_log_posterior(
    const std::vector<double>& theta,
    const std::vector<epi::WwSample>& samples, int days) const {
  const int k = num_knots(days);
  OSPREY_REQUIRE(theta.size() == static_cast<std::size_t>(k) + 2,
                 "theta size mismatch");
  const double log_i0 = theta[static_cast<std::size_t>(k)];
  const double log_sigma = theta[static_cast<std::size_t>(k) + 1];
  if (log_i0 > 25.0 || log_sigma > 5.0 || log_sigma < -7.0) return 1e12;
  const double sigma = std::exp(log_sigma);

  double nlp = 0.0;
  // Random-walk prior over log R knots.
  double s0 = config_.logr0_prior_sd;
  nlp += 0.5 * theta[0] * theta[0] / (s0 * s0);
  double srw = config_.rw_prior_sd;
  for (int j = 1; j < k; ++j) {
    double d = theta[static_cast<std::size_t>(j)] -
               theta[static_cast<std::size_t>(j - 1)];
    nlp += 0.5 * d * d / (srw * srw);
  }
  // Weak prior on the initial incidence level.
  double dli = log_i0 - std::log(100.0);
  nlp += 0.5 * dli * dli / (3.0 * 3.0);
  // Half-normal prior on sigma (including the log-scale Jacobian).
  double shn = config_.sigma_halfnormal_sd;
  nlp += 0.5 * sigma * sigma / (shn * shn) - log_sigma;

  // Likelihood.
  std::vector<double> log_knots(theta.begin(),
                                theta.begin() + static_cast<std::ptrdiff_t>(k));
  std::vector<double> rt = knots_to_daily(log_knots, days);
  std::vector<double> inc = incidence_from_rt(rt, std::exp(log_i0));
  std::vector<double> mu = expected_concentration(inc, days);
  for (const epi::WwSample& s : samples) {
    OSPREY_REQUIRE(s.day >= 0 && s.day < days, "sample outside horizon");
    double m = mu[static_cast<std::size_t>(s.day)];
    if (!(m > 0.0) || !(s.concentration > 0.0)) return 1e12;
    double z = (std::log(s.concentration) - std::log(m)) / sigma;
    nlp += 0.5 * z * z + log_sigma;
  }
  return nlp;
}

RtPosterior GoldsteinEstimator::estimate(
    const std::vector<epi::WwSample>& samples, int days) const {
  return estimate(samples, days, config_.seed);
}

RtPosterior GoldsteinEstimator::estimate(
    const std::vector<epi::WwSample>& samples, int days,
    std::uint64_t seed) const {
  OSPREY_REQUIRE(samples.size() >= 4, "need at least 4 samples");
  const int k = num_knots(days);
  const std::size_t dim = static_cast<std::size_t>(k) + 2;

  // Initialize: flat R(t)=1, incidence level backed out of the mean
  // observed concentration, moderate noise.
  std::vector<double> conc;
  conc.reserve(samples.size());
  for (const auto& s : samples) conc.push_back(s.concentration);
  double mean_c = std::max(osprey::num::mean(conc), 1e-12);
  double i0_guess =
      std::max(mean_c * config_.flow_liters_per_day / config_.shedding_scale,
               1.0);

  std::vector<double> theta(dim, 0.0);
  theta[static_cast<std::size_t>(k)] = std::log(i0_guess);
  theta[static_cast<std::size_t>(k) + 1] = std::log(0.5);

  RngStream rng(seed);
  double current = neg_log_posterior(theta, samples, days);

  std::vector<double> step(dim, 0.08);
  std::vector<std::size_t> accepts(dim, 0);
  std::vector<std::size_t> proposals(dim, 0);
  const int adapt_window = 50;

  // Draws land at offsets 0, thin, 2*thin, ... within the post-burn-in
  // span, so the count is the CEILING of span/thin — floor division
  // would silently drop the final thinned draw whenever thin does not
  // divide the span.
  const int span = config_.iterations - config_.burnin;
  const int n_draws = (span + config_.thin - 1) / config_.thin;
  RtPosterior posterior;
  posterior.draws =
      osprey::num::Matrix(static_cast<std::size_t>(n_draws),
                          static_cast<std::size_t>(days));

  std::size_t stored = 0;
  std::uint64_t total_acc = 0;
  std::uint64_t total_prop = 0;
  for (int iter = 0; iter < config_.iterations; ++iter) {
    // Component-wise Metropolis sweep.
    for (std::size_t j = 0; j < dim; ++j) {
      double old = theta[j];
      theta[j] = old + step[j] * rng.normal();
      double cand = neg_log_posterior(theta, samples, days);
      ++proposals[j];
      ++total_prop;
      if (std::log(rng.uniform() + 1e-300) < current - cand) {
        current = cand;
        ++accepts[j];
        ++total_acc;
      } else {
        theta[j] = old;
      }
    }
    // Adapt step sizes toward ~44% acceptance during burn-in.
    if (iter < config_.burnin && (iter + 1) % adapt_window == 0) {
      for (std::size_t j = 0; j < dim; ++j) {
        double rate = static_cast<double>(accepts[j]) /
                      static_cast<double>(proposals[j]);
        step[j] *= std::exp(rate - 0.44);
        step[j] = std::clamp(step[j], 1e-4, 2.0);
        accepts[j] = 0;
        proposals[j] = 0;
      }
    }
    if (iter >= config_.burnin &&
        (iter - config_.burnin) % config_.thin == 0) {
      std::vector<double> log_knots(
          theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(k));
      std::vector<double> rt = knots_to_daily(log_knots, days);
      for (int t = 0; t < days; ++t) {
        posterior.draws(stored, static_cast<std::size_t>(t)) =
            rt[static_cast<std::size_t>(t)];
      }
      ++stored;
    }
  }
  OSPREY_CHECK(stored == static_cast<std::size_t>(n_draws),
               "thinned draw count mismatch");
  posterior.acceptance_rate =
      total_prop == 0 ? 0.0
                      : static_cast<double>(total_acc) /
                            static_cast<double>(total_prop);
  return posterior;
}

}  // namespace osprey::rt
