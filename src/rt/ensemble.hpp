#pragma once

/// \file ensemble.hpp
/// Population-weighted ensemble aggregation of per-plant R(t)
/// posteriors — the paper's third workflow step: "we pool estimates
/// across multiple wastewater sources and use a population-weighted
/// ensemble average to improve the R(t) signal to noise" (Figure 2,
/// bottom panel).

#include <string>
#include <vector>

#include "rt/posterior.hpp"

namespace osprey::rt {

/// One member of the ensemble.
struct EnsembleMember {
  std::string name;
  double population_weight = 1.0;  // e.g. population served by the plant
  RtPosterior posterior;
};

/// Combine posteriors draw-wise: aggregate draw d, day t is the
/// weight-normalized average of the members' draw d, day t. Members must
/// agree on days; draw counts may differ (draws are index-cycled).
RtPosterior aggregate_population_weighted(
    const std::vector<EnsembleMember>& members);

/// Convenience: weighted average of daily series (medians); used for
/// quick diagnostics without full posteriors.
std::vector<double> weighted_series_average(
    const std::vector<std::vector<double>>& series,
    const std::vector<double>& weights);

}  // namespace osprey::rt
