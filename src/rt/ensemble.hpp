#pragma once

/// \file ensemble.hpp
/// Population-weighted ensemble aggregation of per-plant R(t)
/// posteriors — the paper's third workflow step: "we pool estimates
/// across multiple wastewater sources and use a population-weighted
/// ensemble average to improve the R(t) signal to noise" (Figure 2,
/// bottom panel).

#include <cstdint>
#include <string>
#include <vector>

#include "rt/goldstein.hpp"
#include "rt/posterior.hpp"
#include "util/thread_pool.hpp"

namespace osprey::rt {

/// One member of the ensemble.
struct EnsembleMember {
  std::string name;
  double population_weight = 1.0;  // e.g. population served by the plant
  RtPosterior posterior;
};

/// Per-plant input to the ensemble fan-out: samples plus the plant's
/// own estimator settings (flow normalization and MCMC seed differ per
/// plant, so each gets an independent chain).
struct PlantData {
  std::string name;
  double population_weight = 1.0;
  std::vector<epi::WwSample> samples;
  GoldsteinConfig config;
};

/// Run the Goldstein estimator for every plant and return the members
/// in input order. The per-plant MCMC chains are independent (each a
/// pure function of its samples/days/config), so when `pool` is given
/// the estimates fan out across threads with bit-identical posteriors —
/// this is the dominant wall-clock cost of the Figure-2 workflow, and
/// it scales with the plant count.
std::vector<EnsembleMember> estimate_members(
    const std::vector<PlantData>& plants, int days,
    osprey::util::ThreadPool* pool = nullptr);

/// Combine posteriors draw-wise: aggregate draw d, day t is the
/// weight-normalized average of the members' draw d, day t. Members must
/// agree on days; draw counts may differ (draws are index-cycled).
RtPosterior aggregate_population_weighted(
    const std::vector<EnsembleMember>& members);

/// Convenience: weighted average of daily series (medians); used for
/// quick diagnostics without full posteriors.
std::vector<double> weighted_series_average(
    const std::vector<std::vector<double>>& series,
    const std::vector<double>& weights);

}  // namespace osprey::rt
