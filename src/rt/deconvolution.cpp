#include "rt/deconvolution.hpp"

#include <algorithm>
#include <cmath>

#include "epi/kernels.hpp"
#include "util/error.hpp"

namespace osprey::rt {

namespace {

/// Causal convolution: out[t] = sum_s kernel[s] * source[t - s].
std::vector<double> convolve_causal(const std::vector<double>& source,
                                    const std::vector<double>& kernel) {
  std::vector<double> out(source.size(), 0.0);
  for (std::size_t t = 0; t < source.size(); ++t) {
    double acc = 0.0;
    for (std::size_t s = 0; s < kernel.size() && s <= t; ++s) {
      acc += kernel[s] * source[t - s];
    }
    out[t] = acc;
  }
  return out;
}

std::vector<double> moving_average(const std::vector<double>& xs,
                                   int window) {
  if (window <= 1) return xs;
  std::vector<double> out(xs.size(), 0.0);
  int half = window / 2;
  for (std::size_t t = 0; t < xs.size(); ++t) {
    double acc = 0.0;
    int n = 0;
    for (int k = -half; k <= half; ++k) {
      std::ptrdiff_t i = static_cast<std::ptrdiff_t>(t) + k;
      if (i < 0 || i >= static_cast<std::ptrdiff_t>(xs.size())) continue;
      acc += xs[static_cast<std::size_t>(i)];
      ++n;
    }
    out[t] = n > 0 ? acc / n : xs[t];
  }
  return out;
}

}  // namespace

std::vector<double> richardson_lucy(const std::vector<double>& observed,
                                    const std::vector<double>& kernel,
                                    int iterations) {
  OSPREY_REQUIRE(!observed.empty() && !kernel.empty(), "empty inputs");
  OSPREY_REQUIRE(iterations >= 1, "iterations must be >= 1");
  double ksum = 0.0;
  for (double k : kernel) {
    OSPREY_REQUIRE(k >= 0.0, "kernel must be non-negative");
    ksum += k;
  }
  OSPREY_REQUIRE(ksum > 0.0, "kernel must have positive mass");

  // Initialize with the observation itself (a standard choice).
  std::vector<double> estimate = observed;
  for (double& v : estimate) v = std::max(v, 1e-12);

  for (int it = 0; it < iterations; ++it) {
    std::vector<double> predicted = convolve_causal(estimate, kernel);
    // Ratio of observed to predicted (guarding empty early days).
    std::vector<double> ratio(observed.size(), 1.0);
    for (std::size_t t = 0; t < observed.size(); ++t) {
      ratio[t] = predicted[t] > 1e-12 ? observed[t] / predicted[t] : 1.0;
    }
    // Correlate the ratio with the flipped kernel:
    // correction[t] = sum_s kernel[s] * ratio[t + s] / ksum.
    for (std::size_t t = 0; t < estimate.size(); ++t) {
      double acc = 0.0;
      double used = 0.0;
      for (std::size_t s = 0; s < kernel.size(); ++s) {
        std::size_t idx = t + s;
        if (idx >= ratio.size()) break;
        acc += kernel[s] * ratio[idx];
        used += kernel[s];
      }
      double correction = used > 1e-12 ? acc / used : 1.0;
      estimate[t] = std::max(estimate[t] * correction, 0.0);
    }
  }
  return estimate;
}

DeconvolutionResult estimate_rt_deconvolution(
    const std::vector<epi::WwSample>& samples, int days,
    const DeconvolutionConfig& config) {
  OSPREY_REQUIRE(samples.size() >= 2, "need at least 2 samples");
  OSPREY_REQUIRE(days > samples.back().day, "horizon before last sample");

  // Daily grid by linear interpolation (constant extrapolation at ends).
  std::vector<double> daily(static_cast<std::size_t>(days), 0.0);
  std::size_t k = 0;
  for (int t = 0; t < days; ++t) {
    while (k + 1 < samples.size() && samples[k + 1].day <= t) ++k;
    double value;
    if (t <= samples.front().day) {
      value = samples.front().concentration;
    } else if (k + 1 >= samples.size()) {
      value = samples.back().concentration;
    } else {
      const epi::WwSample& a = samples[k];
      const epi::WwSample& b = samples[k + 1];
      double frac = static_cast<double>(t - a.day) /
                    static_cast<double>(b.day - a.day);
      value = a.concentration + frac * (b.concentration - a.concentration);
    }
    daily[static_cast<std::size_t>(t)] = std::max(value, 0.0);
  }

  DeconvolutionResult result;
  result.daily_concentration = moving_average(daily, config.smoothing_window);

  std::vector<double> kernel = config.shedding_kernel.empty()
                                   ? epi::default_shedding_kernel()
                                   : config.shedding_kernel;
  result.incidence_proxy = richardson_lucy(result.daily_concentration,
                                           kernel, config.iterations);

  // Rescale the proxy into a case-count-like magnitude for the gamma
  // posterior (R(t) is scale-invariant; the interval width is not).
  double mean_proxy = 0.0;
  for (double v : result.incidence_proxy) mean_proxy += v;
  mean_proxy /= static_cast<double>(result.incidence_proxy.size());
  std::vector<double> scaled = result.incidence_proxy;
  if (mean_proxy > 0.0) {
    for (double& v : scaled) v = v / mean_proxy * 100.0;
  }
  result.rt = estimate_cori(scaled, config.cori);
  return result;
}

}  // namespace osprey::rt
