#pragma once

/// \file posterior.hpp
/// Posterior containers for R(t) estimates: draw matrices and their
/// (median, 95% CI) summaries — the bands of the paper's Figure 2.

#include <cstddef>
#include <vector>

#include "num/vecmat.hpp"

namespace osprey::rt {

/// Daily summary series of an R(t) posterior.
struct RtSeries {
  std::vector<double> median;
  std::vector<double> lo95;  // 2.5% quantile
  std::vector<double> hi95;  // 97.5% quantile

  std::size_t days() const { return median.size(); }

  /// Fraction of days where truth lies inside [lo95, hi95].
  double coverage(const std::vector<double>& truth) const;
};

/// Posterior draws of R(t): draws x days.
struct RtPosterior {
  osprey::num::Matrix draws;  // (n_draws, days)
  double acceptance_rate = 0.0;
  /// Per-phase acceptance, split at the burn-in boundary. A healthy
  /// adaptive chain sits near 0.44 in both; a warm-start refit whose
  /// sampling-phase rate collapses signals a stale chain state.
  double acceptance_rate_burnin = 0.0;
  double acceptance_rate_sampling = 0.0;

  std::size_t n_draws() const { return draws.rows(); }
  std::size_t days() const { return draws.cols(); }

  RtSeries summarize() const;
};

}  // namespace osprey::rt
