#include "rt/posterior.hpp"

#include <algorithm>

#include "num/stats.hpp"
#include "util/error.hpp"

namespace osprey::rt {

double RtSeries::coverage(const std::vector<double>& truth) const {
  OSPREY_REQUIRE(truth.size() == median.size(), "coverage size mismatch");
  if (truth.empty()) return 0.0;
  std::size_t inside = 0;
  for (std::size_t t = 0; t < truth.size(); ++t) {
    if (truth[t] >= lo95[t] && truth[t] <= hi95[t]) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(truth.size());
}

RtSeries RtPosterior::summarize() const {
  RtSeries out;
  std::size_t t_days = days();
  out.median.resize(t_days);
  out.lo95.resize(t_days);
  out.hi95.resize(t_days);
  std::vector<double> col(n_draws());
  for (std::size_t t = 0; t < t_days; ++t) {
    for (std::size_t d = 0; d < n_draws(); ++d) col[d] = draws(d, t);
    std::sort(col.begin(), col.end());
    out.median[t] = osprey::num::quantile_sorted(col, 0.5);
    out.lo95[t] = osprey::num::quantile_sorted(col, 0.025);
    out.hi95[t] = osprey::num::quantile_sorted(col, 0.975);
  }
  return out;
}

}  // namespace osprey::rt
