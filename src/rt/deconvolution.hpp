#pragma once

/// \file deconvolution.hpp
/// A middle-ground wastewater R(t) estimator between the naive shortcut
/// and the full Bayesian machinery: Richardson–Lucy deconvolution of the
/// (interpolated, smoothed) concentration series by the shedding kernel
/// recovers a daily incidence proxy, which then feeds the standard Cori
/// estimator. This is the classic two-stage approach from the
/// wastewater-epidemiology literature (e.g. Huisman et al.), included as
/// a second baseline tier for the Figure-2 comparison.

#include <vector>

#include "epi/wastewater.hpp"
#include "rt/cori.hpp"

namespace osprey::rt {

/// Defaults tuned on the synthetic plants: RL iterations kept low and
/// smoothing generous, because Richardson–Lucy amplifies measurement
/// noise with every iteration (the classic bias–variance dial of
/// deconvolution-based R(t) estimators).
struct DeconvolutionConfig {
  int iterations = 8;           // Richardson–Lucy iterations
  int smoothing_window = 11;    // centered moving-average prefilter (days)
  /// Shedding kernel override (defaults to the shared one).
  std::vector<double> shedding_kernel;
  CoriConfig cori{/*window_days=*/10, /*prior_shape=*/1.0,
                  /*prior_scale=*/5.0, /*generation_interval=*/{}};
};

struct DeconvolutionResult {
  std::vector<double> daily_concentration;  // interpolated + smoothed
  std::vector<double> incidence_proxy;      // deconvolved series
  CoriResult rt;                            // Cori on the proxy
};

/// Interpolate samples to a daily grid (linear), smooth, deconvolve by
/// the shedding kernel (Richardson–Lucy with non-negativity), and
/// estimate R(t) from the recovered incidence proxy.
DeconvolutionResult estimate_rt_deconvolution(
    const std::vector<epi::WwSample>& samples, int days,
    const DeconvolutionConfig& config = {});

/// Exposed for testing: Richardson–Lucy deconvolution of `observed` =
/// conv(kernel, source) for a causal kernel; returns the source estimate
/// (same length, non-negative).
std::vector<double> richardson_lucy(const std::vector<double>& observed,
                                    const std::vector<double>& kernel,
                                    int iterations);

}  // namespace osprey::rt
