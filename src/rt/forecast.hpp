#pragma once

/// \file forecast.hpp
/// Short-term epidemic forecasting from an R(t) posterior — the
/// decision-support product public-health stakeholders actually consume
/// ("timely responses to urgent questions", paper conclusion). Each
/// posterior draw of R(t) is extended `horizon` days (mean-reverting
/// toward 1) and pushed through the renewal equation to project
/// incidence; quantiles of the projected draws give forecast bands.

#include <cstdint>
#include <vector>

#include "rt/posterior.hpp"

namespace osprey::rt {

struct ForecastConfig {
  int horizon_days = 28;
  /// Daily mean-reversion of log R toward 0 (R toward 1); 0 = hold flat.
  double reversion_rate = 0.03;
  /// Random-walk innovation of log R per projected day (forecast
  /// uncertainty widens with lead time).
  double log_rt_daily_sd = 0.02;
  std::uint64_t seed = 99;
};

struct Forecast {
  /// Projected daily incidence: median and 95% band, horizon_days long.
  std::vector<double> median;
  std::vector<double> lo95;
  std::vector<double> hi95;
  /// Projected R(t) median over the horizon.
  std::vector<double> rt_median;
};

/// Project incidence forward from an R(t) posterior and the recent
/// incidence history (most recent day last; must cover at least the
/// generation interval).
Forecast forecast_incidence(const RtPosterior& posterior,
                            const std::vector<double>& recent_incidence,
                            const ForecastConfig& config = {});

}  // namespace osprey::rt
