#include "rt/forecast.hpp"

#include <cmath>

#include "epi/kernels.hpp"
#include "num/rng.hpp"
#include "num/stats.hpp"
#include "util/error.hpp"

namespace osprey::rt {

Forecast forecast_incidence(const RtPosterior& posterior,
                            const std::vector<double>& recent_incidence,
                            const ForecastConfig& config) {
  OSPREY_REQUIRE(posterior.n_draws() > 0, "empty posterior");
  OSPREY_REQUIRE(config.horizon_days >= 1, "horizon must be >= 1");
  const std::vector<double> w = epi::default_generation_interval();
  OSPREY_REQUIRE(recent_incidence.size() >= w.size(),
                 "incidence history shorter than the generation interval");

  const std::size_t h = static_cast<std::size_t>(config.horizon_days);
  const std::size_t n_draws = posterior.n_draws();
  osprey::num::RngStream root(config.seed);

  // Projected incidence per draw.
  osprey::num::Matrix projections(n_draws, h);
  osprey::num::Matrix rt_paths(n_draws, h);
  for (std::size_t d = 0; d < n_draws; ++d) {
    osprey::num::RngStream rng = root.substream(d);
    // Start log R at the draw's final estimated value.
    double log_rt = std::log(
        std::max(posterior.draws(d, posterior.days() - 1), 1e-6));
    std::vector<double> inc = recent_incidence;
    for (std::size_t t = 0; t < h; ++t) {
      log_rt = (1.0 - config.reversion_rate) * log_rt +
               config.log_rt_daily_sd * rng.normal();
      double rt = std::exp(log_rt);
      double pressure = epi::renewal_pressure(inc, inc.size(), w);
      double next = rt * pressure;
      inc.push_back(next);
      projections(d, t) = next;
      rt_paths(d, t) = rt;
    }
  }

  Forecast out;
  out.median.resize(h);
  out.lo95.resize(h);
  out.hi95.resize(h);
  out.rt_median.resize(h);
  std::vector<double> col(n_draws);
  for (std::size_t t = 0; t < h; ++t) {
    for (std::size_t d = 0; d < n_draws; ++d) col[d] = projections(d, t);
    out.median[t] = osprey::num::quantile(col, 0.5);
    out.lo95[t] = osprey::num::quantile(col, 0.025);
    out.hi95[t] = osprey::num::quantile(col, 0.975);
    for (std::size_t d = 0; d < n_draws; ++d) col[d] = rt_paths(d, t);
    out.rt_median[t] = osprey::num::quantile(col, 0.5);
  }
  return out;
}

}  // namespace osprey::rt
