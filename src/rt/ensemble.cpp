#include "rt/ensemble.hpp"

#include <algorithm>

#include "num/simd.hpp"
#include "util/error.hpp"

namespace osprey::rt {

std::vector<EnsembleMember> estimate_members(
    const std::vector<PlantData>& plants, int days,
    osprey::util::ThreadPool* pool) {
  OSPREY_REQUIRE(!plants.empty(), "empty ensemble");
  std::vector<EnsembleMember> members(plants.size());
  auto estimate_one = [&](std::size_t p) {
    members[p].name = plants[p].name;
    members[p].population_weight = plants[p].population_weight;
    GoldsteinEstimator estimator(plants[p].config);
    members[p].posterior = estimator.estimate(plants[p].samples, days);
  };
  if (pool != nullptr && plants.size() > 1) {
    pool->parallel_for(plants.size(), estimate_one);
  } else {
    for (std::size_t p = 0; p < plants.size(); ++p) estimate_one(p);
  }
  return members;
}

RtPosterior aggregate_population_weighted(
    const std::vector<EnsembleMember>& members) {
  OSPREY_REQUIRE(!members.empty(), "empty ensemble");
  std::size_t days = members.front().posterior.days();
  double total_weight = 0.0;
  std::size_t max_draws = 0;
  for (const EnsembleMember& m : members) {
    OSPREY_REQUIRE(m.posterior.days() == days,
                   "ensemble members disagree on horizon");
    OSPREY_REQUIRE(m.posterior.n_draws() > 0, "member has no draws");
    OSPREY_REQUIRE(m.population_weight > 0, "non-positive weight");
    total_weight += m.population_weight;
    max_draws = std::max(max_draws, m.posterior.n_draws());
  }

  RtPosterior out;
  out.draws = osprey::num::Matrix(max_draws, days, 0.0);
  // Accumulate whole member rows through the SoA axpy kernel. Members
  // are added in the same fixed order per element as the scalar
  // triple loop, so the aggregate stays bit-identical to it.
  for (std::size_t d = 0; d < max_draws; ++d) {
    double* out_row = out.draws.data().data() + d * days;
    for (const EnsembleMember& m : members) {
      std::size_t dd = d % m.posterior.n_draws();
      const double* src_row = m.posterior.draws.data().data() + dd * days;
      osprey::num::simd::axpy(m.population_weight, src_row, out_row, days);
    }
    for (std::size_t t = 0; t < days; ++t) out_row[t] /= total_weight;
  }
  return out;
}

std::vector<double> weighted_series_average(
    const std::vector<std::vector<double>>& series,
    const std::vector<double>& weights) {
  OSPREY_REQUIRE(!series.empty(), "no series");
  OSPREY_REQUIRE(series.size() == weights.size(), "weights size mismatch");
  std::size_t days = series.front().size();
  double total = 0.0;
  for (double w : weights) {
    OSPREY_REQUIRE(w > 0, "non-positive weight");
    total += w;
  }
  std::vector<double> out(days, 0.0);
  for (std::size_t i = 0; i < series.size(); ++i) {
    OSPREY_REQUIRE(series[i].size() == days, "series length mismatch");
    osprey::num::simd::axpy(weights[i], series[i].data(), out.data(), days);
  }
  for (double& x : out) x /= total;
  return out;
}

}  // namespace osprey::rt
