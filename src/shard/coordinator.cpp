#include "shard/coordinator.hpp"

#include "util/error.hpp"

namespace osprey::shard {

using osprey::util::Value;
using osprey::util::ValueArray;
using osprey::util::ValueObject;

Coordinator::Coordinator(std::uint64_t seed) : outbox_(kOrigin, seed) {
  tracer_.set_shard_label("coordinator");
  messages_ = &metrics_.counter("shard_coord_messages_total",
                                "envelopes delivered to the coordinator");
  version_reports_ =
      &metrics_.counter("shard_coord_versions_total",
                        "data-version reports received from partitions");
  rounds_ = &metrics_.counter("shard_coord_rounds_total",
                              "cross-region aggregation rounds dispatched");
  campaigns_registered_ = &metrics_.counter(
      "shard_coord_campaigns_total", "campaigns registered on the fabric");
}

std::string Coordinator::hub_key(const std::string& campaign) {
  return campaign + "-hub";
}

void Coordinator::register_campaign(const CampaignSpec& spec) {
  OSPREY_REQUIRE(!spec.name.empty(), "campaign needs a name");
  OSPREY_REQUIRE(!spec.feeds.empty(), "campaign needs at least one feed");
  OSPREY_REQUIRE(campaigns_.count(spec.name) == 0,
                 "campaign already registered: " + spec.name);

  Campaign campaign;
  campaign.name = spec.name;
  campaign.aggregate = spec.aggregate;
  for (const FeedSpec& feed : spec.feeds) {
    OSPREY_REQUIRE(campaign.by_feed.count(feed.name) == 0,
                   "duplicate feed in campaign: " + feed.name);
    OSPREY_REQUIRE(feed_campaign_.count(feed.name) == 0,
                   "feed already registered on the fabric: " + feed.name);
    campaign.by_feed[feed.name] = campaign.members.size();
    campaign.members.push_back(Member{feed.name, 0, 0, {}, {}});
    feed_campaign_[feed.name] = spec.name;
    ValueObject payload;
    payload["campaign"] = Value(spec.name);
    payload["feed"] = feed.to_value();
    outbox_.post(tick_, feed.name, "register-feed", Value(std::move(payload)));
  }
  if (spec.aggregate) {
    ValueObject payload;
    payload["campaign"] = Value(spec.name);
    payload["poll_period"] =
        Value(static_cast<std::int64_t>(spec.aggregate_poll));
    payload["members"] = Value(static_cast<std::int64_t>(spec.feeds.size()));
    outbox_.post(tick_, hub_key(spec.name), "register-aggregate",
                 Value(std::move(payload)));
  }
  campaigns_[spec.name] = std::move(campaign);
  campaigns_registered_->inc();
  tracer_.instant(obs::Category::kOther, "coord:register:" + spec.name,
                  now_ns_, obs::kNoSpan,
                  std::to_string(spec.feeds.size()) + " feeds");
}

void Coordinator::begin_tick(std::uint64_t tick, std::uint64_t now_ns) {
  tick_ = tick;
  now_ns_ = now_ns;
}

void Coordinator::deliver(const std::vector<Envelope>& merged) {
  for (const Envelope& env : merged) {
    messages_->inc();
    if (env.topic == "version") {
      on_version(env);
    }
    // Unknown topics are counted but otherwise ignored: forward
    // compatibility for partition-side extensions.
  }
}

void Coordinator::on_version(const Envelope& env) {
  version_reports_->inc();
  VersionInfo info;
  info.partition = env.payload.at("partition").as_string();
  info.feed = env.payload.get_or("feed", std::string());
  info.kind = env.payload.at("kind").as_string();
  info.uuid = env.payload.at("uuid").as_string();
  info.version = static_cast<int>(env.payload.at("version").as_int());
  info.checksum = env.payload.at("checksum").as_string();
  info.timestamp = env.payload.at("timestamp").as_int();
  versions_[info.partition + "/" + info.uuid] = info;

  if (info.kind == "aggregate") {
    // Hub partitions are keyed "<campaign>-hub"; recover the campaign
    // from the partition key.
    for (auto& [name, campaign] : campaigns_) {
      if (hub_key(name) == info.partition) {
        ++campaign.aggregates;
        break;
      }
    }
    return;
  }
  if (info.kind != "analysis") return;
  auto cit = feed_campaign_.find(info.feed);
  if (cit == feed_campaign_.end()) return;
  Campaign& campaign = campaigns_.at(cit->second);
  Member& member = campaign.members[campaign.by_feed.at(info.feed)];
  member.latest = info.version;
  member.uuid = info.uuid;
  member.checksum = info.checksum;
  if (campaign.aggregate) maybe_dispatch_round(campaign);
}

void Coordinator::maybe_dispatch_round(Campaign& campaign) {
  for (const Member& member : campaign.members) {
    if (member.latest <= member.consumed) return;
  }
  ++campaign.rounds;
  rounds_->inc();
  ValueArray inputs;
  inputs.reserve(campaign.members.size());
  for (Member& member : campaign.members) {
    member.consumed = member.latest;
    ValueObject input;
    input["feed"] = Value(member.feed);
    input["uuid"] = Value(member.uuid);
    input["version"] = Value(static_cast<std::int64_t>(member.latest));
    input["checksum"] = Value(member.checksum);
    inputs.push_back(Value(std::move(input)));
  }
  ValueObject payload;
  payload["campaign"] = Value(campaign.name);
  payload["round"] = Value(static_cast<std::int64_t>(campaign.rounds));
  payload["inputs"] = Value(std::move(inputs));
  outbox_.post(tick_, hub_key(campaign.name), "aggregate-input",
               Value(std::move(payload)));
  tracer_.instant(obs::Category::kOther, "coord:round:" + campaign.name,
                  now_ns_, obs::kNoSpan,
                  "round " + std::to_string(campaign.rounds));
}

std::vector<Envelope> Coordinator::collect() { return outbox_.drain(); }

std::uint64_t Coordinator::rounds_dispatched(
    const std::string& campaign) const {
  auto it = campaigns_.find(campaign);
  return it == campaigns_.end() ? 0 : it->second.rounds;
}

std::uint64_t Coordinator::aggregates_published(
    const std::string& campaign) const {
  auto it = campaigns_.find(campaign);
  return it == campaigns_.end() ? 0 : it->second.aggregates;
}

}  // namespace osprey::shard
