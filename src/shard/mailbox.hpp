#pragma once

/// \file mailbox.hpp
/// Deterministic cross-shard messaging for the ShardedFabric
/// (DESIGN.md §7). All communication between partitions and the
/// coordination layer travels as Envelopes through seeded,
/// counter-stamped Outboxes, and is merged at epoch barriers in a
/// total order that depends only on logical state:
///
///   (tick, origin, seq)
///
/// where `origin` is the sender's STABLE partition ordinal (coordinator
/// = 0, partitions numbered in registration order) — never an ephemeral
/// shard/thread id. Two runs of the same workload therefore deliver the
/// same envelopes in the same order regardless of how many OS threads
/// executed the shards or how they interleaved, which is what makes the
/// fabric's merged artifacts byte-identical across shard counts.

#include <cstdint>
#include <string>
#include <vector>

#include "util/value.hpp"

namespace osprey::shard {

/// One cross-shard message.
struct Envelope {
  std::uint64_t tick = 0;    // epoch the message was posted in
  std::uint32_t origin = 0;  // stable ordinal of the sender (0 = coordinator)
  std::uint64_t seq = 0;     // per-origin post counter
  /// Seeded provenance stamp: mix(outbox seed, origin, seq). Replays of
  /// the same seed reproduce it bit-for-bit; two runs with different
  /// seeds are distinguishable at a glance in dumped mailboxes.
  std::uint64_t stamp = 0;
  std::string topic;  // "register-feed", "version", "aggregate-input", ...
  std::string dest;   // destination partition key ("" = coordinator)
  osprey::util::Value payload;
};

/// Strict total order for the barrier merge: (tick, origin, seq).
bool envelope_before(const Envelope& a, const Envelope& b);

/// FNV-1a of a partition key — the STABLE hash used for both shard
/// placement and per-partition seed derivation (never std::hash, whose
/// value may differ across libraries/processes).
std::uint64_t stable_key_hash(const std::string& key);

/// Shard owning `key` out of `num_shards` (stable hash mod shards).
std::size_t shard_of(const std::string& key, std::size_t num_shards);

/// Per-sender message buffer. Single-owner: only the owning partition
/// (or the coordinator) posts into its outbox, inside its own epoch, so
/// no locking is needed; the barrier merge happens after the join.
class Outbox {
 public:
  Outbox(std::uint32_t origin, std::uint64_t seed);

  std::uint32_t origin() const { return origin_; }

  /// Append an envelope posted in epoch `tick`.
  void post(std::uint64_t tick, std::string dest, std::string topic,
            osprey::util::Value payload);

  /// Move out everything posted since the last drain (ascending
  /// (tick, seq) by construction: ticks are monotone, seq increments).
  std::vector<Envelope> drain();

  /// Total envelopes ever posted (not reset by drain).
  std::uint64_t posted() const { return seq_; }

 private:
  std::uint32_t origin_;
  std::uint64_t seed_;
  std::uint64_t base_stamp_;
  std::uint64_t seq_ = 0;
  std::vector<Envelope> pending_;
};

/// Merge per-sender envelope streams (each already ascending in
/// (tick, seq)) into one stream totally ordered by envelope_before.
/// Min-heap k-way merge: O(n log k), independent of thread timing.
std::vector<Envelope> merge_envelopes(
    std::vector<std::vector<Envelope>> sources);

}  // namespace osprey::shard
