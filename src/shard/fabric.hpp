#pragma once

/// \file fabric.hpp
/// ShardedFabric (DESIGN.md §7): N event-loop shards on real threads,
/// each owning a disjoint set of partitions (stable key hash → shard),
/// advancing in epoch lockstep:
///
///   every epoch: route coordinator mail → [parallel] each shard
///   delivers its partitions' inboxes and runs their event loops to the
///   epoch boundary → join (barrier) → drain every outbox → merge into
///   the (tick, origin, seq) total order → coordinator consumes the
///   merged stream and posts responses for the next epoch.
///
/// Messages posted in epoch k are delivered at the START of epoch k+1,
/// so no partition ever observes another mid-epoch; combined with the
/// stable-ordinal merge order this makes every run — and every merged
/// artifact: Chrome trace, incident log, metrics snapshot, Prometheus
/// export — byte-identical across shard counts, thread interleavings
/// and replays of the same seed.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fabric/fault.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "shard/campaign.hpp"
#include "shard/coordinator.hpp"
#include "shard/mailbox.hpp"
#include "shard/partition.hpp"
#include "util/durable_fs.hpp"
#include "util/thread_pool.hpp"
#include "util/value.hpp"

namespace osprey::shard {

struct ShardedFabricConfig {
  std::size_t num_shards = 1;
  SimTime epoch = osprey::util::kDay;
  std::uint64_t seed = 0x05FA;
  /// Per-partition tracing (off for throughput benches).
  bool tracing = true;
  int login_slots = 2;
};

class ShardedFabric {
 public:
  explicit ShardedFabric(ShardedFabricConfig config = {});

  ShardedFabric(const ShardedFabric&) = delete;
  ShardedFabric& operator=(const ShardedFabric&) = delete;

  /// Master chaos plan; every subsequently created partition forks its
  /// own seeded replica. Must precede register_campaign.
  void set_chaos(const fabric::FaultPlan& master);

  /// Create one partition per feed (key = feed name) plus the
  /// campaign's aggregation hub, and hand the spec to the coordinator
  /// (whose registration envelopes land at the next epoch boundary).
  void register_campaign(const CampaignSpec& spec);

  /// Per-partition durable metadata under `<base_dir>/<key>`; recovery
  /// replays each partition's own WAL segment directory. Call after
  /// register_campaign and before run_until.
  struct RecoverySummary {
    std::size_t partitions = 0;
    std::size_t checkpoints_loaded = 0;
    std::uint64_t replayed = 0;
    std::uint64_t torn = 0;
    std::uint64_t corrupt = 0;
  };
  RecoverySummary enable_durability(osprey::util::DurableFs& fs,
                                    const std::string& base_dir);

  /// Advance every partition in epoch lockstep to virtual time `t`.
  void run_until(SimTime t);

  SimTime now() const { return now_; }
  /// Completed epochs.
  std::uint64_t epochs() const { return tick_ - 1; }

  /// Serve a shard-qualified object: "<partition-key>/<uuid>".
  serve::ResultCache::Result lookup(const std::string& qualified_uuid);

  std::size_t num_partitions() const { return partitions_.size(); }
  const std::vector<std::string>& partition_keys() const { return keys_; }
  ShardPartition& partition(const std::string& key);
  Coordinator& coordinator() { return coordinator_; }
  const Coordinator& coordinator() const { return coordinator_; }

  /// Sum of events processed across every partition's loop.
  std::uint64_t events_processed() const;

  // --- merged, canonical artifacts (byte-identical across replays and
  // shard counts; the replay sweep compares these) -------------------
  /// Per-partition incident logs in ordinal order, with shard headers.
  std::string merged_incident_log() const;
  /// Coordinator + partition spans, shard-labeled, canonical order.
  std::vector<obs::SpanRecord> merged_spans() const;
  std::string merged_chrome_trace() const;
  osprey::util::Value merged_metrics() const;
  std::string merged_prometheus() const;

 private:
  void create_partition(const std::string& key);
  void step_epoch(SimTime until);

  ShardedFabricConfig config_;
  Coordinator coordinator_;
  std::vector<std::unique_ptr<ShardPartition>> partitions_;  // ordinal order
  std::vector<std::string> keys_;                            // parallel
  std::map<std::string, std::size_t> by_key_;
  /// shard -> its partitions' indexes, each in ordinal order.
  std::vector<std::vector<std::size_t>> shard_members_;
  std::unique_ptr<fabric::FaultPlan> master_chaos_;
  std::unique_ptr<osprey::util::ThreadPool> pool_;
  SimTime now_ = 0;
  std::uint64_t tick_ = 1;
};

}  // namespace osprey::shard
