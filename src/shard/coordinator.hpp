#pragma once

/// \file coordinator.hpp
/// The thin coordination layer of the ShardedFabric: the only component
/// with a global view, and deliberately the only one WITHOUT access to
/// any partition's orchestration state. It speaks exclusively in
/// envelopes (enforced by osprey_lint's cross-shard-isolation rule):
/// campaign registration fans out as "register-*" envelopes, partitions
/// report published data versions as "version" envelopes, and the
/// coordinator closes the loop by posting "aggregate-input" envelopes
/// to the campaign's hub partition whenever every member has advanced —
/// the cross-region aggregation round of the paper's multi-site
/// workflows. All decisions are functions of envelope contents in their
/// deterministic merge order, so the coordinator replays bit-identically
/// no matter how many threads ran the shards.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shard/campaign.hpp"
#include "shard/mailbox.hpp"

namespace osprey::shard {

class Coordinator {
 public:
  /// The coordinator's stable origin ordinal in the envelope order.
  static constexpr std::uint32_t kOrigin = 0;

  explicit Coordinator(std::uint64_t seed);

  /// Partition key of a campaign's aggregation hub. Derived with a
  /// suffix that keeps the key '/'-free and distinct from feed names.
  static std::string hub_key(const std::string& campaign);

  /// Record the campaign and post its registration envelopes (delivered
  /// to the partitions at the next epoch boundary).
  void register_campaign(const CampaignSpec& spec);

  /// Start an epoch: subsequent posts and trace instants carry `tick` /
  /// `now_ns`.
  void begin_tick(std::uint64_t tick, std::uint64_t now_ns);

  /// Consume the barrier-merged envelope stream addressed to the
  /// coordinator, in its deterministic order.
  void deliver(const std::vector<Envelope>& merged);

  /// Drain the coordinator's outbox for routing to partitions.
  std::vector<Envelope> collect();

  /// Latest data version reported for one partition-qualified uuid.
  struct VersionInfo {
    std::string partition;
    std::string feed;
    std::string kind;  // "analysis" | "aggregate"
    std::string uuid;
    int version = 0;
    std::string checksum;
    std::int64_t timestamp = 0;
  };
  /// Keyed by "<partition>/<uuid>" (the fabric's serve addressing).
  const std::map<std::string, VersionInfo>& versions() const {
    return versions_;
  }

  /// Aggregation rounds dispatched for `campaign` (0 for unknown).
  std::uint64_t rounds_dispatched(const std::string& campaign) const;
  /// Aggregate versions the hub reported back for `campaign`.
  std::uint64_t aggregates_published(const std::string& campaign) const;

  std::uint64_t messages_received() const { return messages_->value(); }

  obs::TraceRecorder& tracer() { return tracer_; }
  const obs::TraceRecorder& tracer() const { return tracer_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  struct Member {
    std::string feed;
    int latest = 0;    // newest analysis version reported
    int consumed = 0;  // version consumed by the last dispatched round
    std::string uuid;
    std::string checksum;
  };
  struct Campaign {
    std::string name;
    bool aggregate = false;
    std::vector<Member> members;             // registration order
    std::map<std::string, std::size_t> by_feed;
    std::uint64_t rounds = 0;
    std::uint64_t aggregates = 0;
  };

  void on_version(const Envelope& env);
  /// Dispatch an aggregation round if every member advanced.
  void maybe_dispatch_round(Campaign& campaign);

  obs::TraceRecorder tracer_;
  obs::MetricsRegistry metrics_;
  Outbox outbox_;
  std::uint64_t tick_ = 0;
  std::uint64_t now_ns_ = 0;

  std::map<std::string, Campaign> campaigns_;
  /// feed partition key -> campaign name (for routing version reports).
  std::map<std::string, std::string> feed_campaign_;
  std::map<std::string, VersionInfo> versions_;

  obs::Counter* messages_ = nullptr;
  obs::Counter* version_reports_ = nullptr;
  obs::Counter* rounds_ = nullptr;
  obs::Counter* campaigns_registered_ = nullptr;
};

}  // namespace osprey::shard
