#pragma once

/// \file partition.hpp
/// One partition of the ShardedFabric: a self-contained mini-universe of
/// the orchestration stack — its own EventLoop, auth/timer/transfer/flow
/// services, AERO server (with a partition-stable uuid seed), storage and
/// compute endpoints, serving-tier cache and observability sinks — owning
/// exactly one surveillance feed (or one campaign's aggregation hub).
///
/// The PARTITION, not the shard, is the determinism unit: everything a
/// partition computes is a pure function of its own registration
/// envelopes, its delivered mailbox, and its forked fault-plan seed.
/// Shards are pure execution units — any number of threads may execute
/// any assignment of partitions and every artifact (trace, incident log,
/// metrics, uuids) comes out bit-identical, which is what the replay
/// sweep in tests/test_shard_replay.cpp proves.
///
/// This is the ONLY file in src/shard/ allowed to touch the aero/serve
/// orchestration types (osprey_lint's cross-shard-isolation rule):
/// fabric.cpp and coordinator.cpp must stay at the envelope level, so no
/// cross-partition reference can creep in and silently break isolation.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aero/server.hpp"
#include "fabric/compute.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/fault.hpp"
#include "fabric/flows.hpp"
#include "fabric/storage.hpp"
#include "fabric/timer.hpp"
#include "fabric/transfer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "shard/campaign.hpp"
#include "shard/mailbox.hpp"
#include "util/durable_fs.hpp"

namespace osprey::shard {

class MailboxSource;  // defined in partition.cpp

struct PartitionConfig {
  /// Partition key: the feed name or "<campaign>-hub". Must not contain
  /// '/' (reserved by the "<partition>/<uuid>" serve addressing).
  std::string key;
  /// Stable 1-based ordinal in fabric registration order (0 is the
  /// coordinator). This — never the ephemeral shard/thread id — is the
  /// partition's origin in the envelope merge order.
  std::uint32_t ordinal = 1;
  /// Fabric seed; envelope stamps and the uuid stream derive from
  /// (seed, key), so they are invariant under the shard count.
  std::uint64_t seed = 0;
  bool tracing = true;
  int login_slots = 2;
  SimTime transform_cost = 30 * osprey::util::kSecond;
  SimTime analysis_cost = osprey::util::kMinute;
  SimTime aggregate_cost = osprey::util::kMinute;
};

class ShardPartition {
 public:
  explicit ShardPartition(PartitionConfig config);
  ~ShardPartition();

  ShardPartition(const ShardPartition&) = delete;
  ShardPartition& operator=(const ShardPartition&) = delete;

  const std::string& key() const { return config_.key; }
  std::uint32_t ordinal() const { return config_.ordinal; }

  /// Fork `master` into this partition's private fault plan (seeded by
  /// the stable key hash, so each partition draws an independent but
  /// replayable fault stream) and attach it to every service. Call
  /// before the first epoch.
  void enable_chaos(const fabric::FaultPlan& master);
  /// The partition's private plan (nullptr without chaos).
  fabric::FaultPlan* chaos() { return chaos_.get(); }
  const fabric::FaultPlan* chaos() const { return chaos_.get(); }

  /// Durable metadata under `<base_dir>/<key>` — each partition owns a
  /// disjoint WAL segment directory (PR 9 layout), so recovery is
  /// per-partition and embarrassingly parallel. Must precede the first
  /// epoch (registration envelopes are applied idempotently on top of
  /// the recovered state).
  aero::RecoveryStats enable_durability(osprey::util::DurableFs& fs,
                                        const std::string& base_dir);

  /// Apply one envelope addressed to this partition (start of an epoch,
  /// on the owning shard's thread).
  void deliver(const Envelope& env);

  /// Advance the partition's event loop to `until` within epoch `tick`.
  void run_epoch(std::uint64_t tick, SimTime until);

  /// Drain the partition's outbox (at the epoch barrier, post-join).
  std::vector<Envelope> collect();

  /// Serve a data object through the partition's cache tier.
  serve::ResultCache::Result lookup(const std::string& uuid);

  /// Uuids of the flows hosted for one feed.
  struct FeedInfo {
    std::string name;
    std::string ingest_uuid;    // transformed ingestion output
    std::string analysis_uuid;  // per-feed analysis output
  };
  const std::vector<FeedInfo>& feeds() const { return feeds_; }
  /// Aggregate output uuid ("" unless this partition hosts a hub).
  const std::string& aggregate_uuid() const { return aggregate_uuid_; }

  std::uint64_t events_processed() const { return loop_.events_processed(); }
  /// Chaos incident log (nullptr without chaos).
  const fabric::IncidentLog* incident_log() const {
    return chaos_ ? &chaos_->log() : nullptr;
  }
  std::vector<obs::SpanRecord> spans() const { return tracer_.snapshot(); }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Test/tool introspection into the partition's orchestration stack.
  aero::AeroServer& server() { return server_; }
  serve::ResultCache& cache() { return *cache_; }

 private:
  void add_feed(const FeedSpec& spec);
  void host_aggregate(const std::string& campaign, SimTime poll_period);
  /// Update-listener hook: report newly published versions upward.
  void on_updated(const std::string& uuid);

  PartitionConfig config_;
  obs::TraceRecorder tracer_;
  obs::MetricsRegistry metrics_;
  fabric::EventLoop loop_;
  fabric::AuthService auth_;
  fabric::TimerService timers_;
  fabric::TransferService transfers_;
  fabric::FlowsService flows_;
  std::unique_ptr<fabric::FaultPlan> chaos_;
  aero::AeroServer server_;
  fabric::StorageEndpoint eagle_;
  fabric::StorageEndpoint scratch_;
  fabric::ComputeEndpoint login_;
  /// Declared after server_ so it detaches before the server dies.
  std::unique_ptr<serve::ResultCache> cache_;
  std::string transform_fn_;
  std::string analysis_fn_;
  std::string aggregate_fn_;
  Outbox outbox_;
  std::uint64_t tick_ = 0;

  struct Tracked {
    std::string feed;  // "" for the aggregate output
    std::string kind;  // "analysis" | "aggregate"
  };
  std::map<std::string, Tracked> tracked_;  // uuid -> provenance
  std::map<std::string, int> last_version_posted_;
  std::vector<FeedInfo> feeds_;
  std::shared_ptr<MailboxSource> aggregate_source_;
  std::string aggregate_campaign_;
  std::string aggregate_uuid_;
};

}  // namespace osprey::shard
