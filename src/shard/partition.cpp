#include "shard/partition.hpp"

#include <optional>
#include <utility>

#include "aero/source.hpp"
#include "util/error.hpp"

namespace osprey::shard {

using osprey::util::Value;
using osprey::util::ValueObject;

/// Upstream "URL" fed by coordinator envelopes instead of a scripted
/// timeline: the hub's aggregation rides the normal AERO ingestion path
/// (poll → checksum change → transform → publish), with each
/// "aggregate-input" envelope becoming the next upstream payload.
class MailboxSource final : public aero::DataSource {
 public:
  explicit MailboxSource(std::string url) : url_(std::move(url)) {}

  std::string url() const override { return url_; }
  std::optional<std::string> fetch(SimTime) override { return payload_; }

  void set_payload(std::string payload) { payload_ = std::move(payload); }

 private:
  std::string url_;
  std::optional<std::string> payload_;
};

namespace {

/// splitmix64 finalizer (file-local copy, repo idiom).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Partition-stable uuid seed: a function of the key only, so the uuid
/// stream is invariant under the shard count AND across crash-recovery
/// restarts (WAL replay re-draws uuids in lockstep from this seed).
std::uint64_t partition_uuid_seed(const std::string& key) {
  return mix64(0xAE70 ^ stable_key_hash(key));
}

Value transform_fn_impl(const Value& args) {
  ValueObject out;
  out["output"] = args.at("input");
  return Value(std::move(out));
}

Value analysis_fn_impl(const Value& args) {
  ValueObject outputs;
  outputs["out"] =
      Value("analyzed:" + std::to_string(args.at("inputs").size()));
  ValueObject out;
  out["outputs"] = Value(std::move(outputs));
  return Value(std::move(out));
}

/// The hub's aggregation executes as the transform step of its
/// mailbox-fed ingestion flow, so it sees {"input": <payload JSON>}
/// where the payload is the coordinator's aggregate-input round (the
/// member versions/checksums it merges over).
Value aggregate_fn_impl(const Value& args) {
  Value round = Value::parse_json(args.at("input").as_string());
  ValueObject out;
  out["output"] = Value(
      "aggregated:round" + std::to_string(round.at("round").as_int()) + ":" +
      std::to_string(round.at("inputs").size()));
  return Value(std::move(out));
}

}  // namespace

ShardPartition::ShardPartition(PartitionConfig config)
    : config_(std::move(config)),
      timers_(loop_, auth_),
      transfers_(loop_, auth_),
      flows_(loop_, auth_),
      server_(loop_, auth_, timers_, transfers_, flows_,
              "aero/" + config_.key, &metrics_,
              partition_uuid_seed(config_.key)),
      eagle_("eagle", loop_, auth_),
      scratch_("scratch", loop_, auth_),
      login_("login", loop_, auth_, config_.login_slots),
      outbox_(config_.ordinal, config_.seed) {
  OSPREY_REQUIRE(!config_.key.empty(), "partition needs a key");
  OSPREY_REQUIRE(config_.key.find('/') == std::string::npos,
                 "partition key must not contain '/': " + config_.key);
  OSPREY_REQUIRE(config_.ordinal >= 1, "ordinal 0 is the coordinator");

  tracer_.set_shard_label(config_.key);
  tracer_.set_enabled(config_.tracing);
  loop_.set_metrics(&metrics_);
  timers_.set_metrics(&metrics_);
  transfers_.set_metrics(&metrics_);
  flows_.set_metrics(&metrics_);
  login_.set_metrics(&metrics_);
  timers_.set_tracer(&tracer_);
  transfers_.set_tracer(&tracer_);
  flows_.set_tracer(&tracer_);
  login_.set_tracer(&tracer_);
  server_.set_tracer(&tracer_);

  eagle_.create_collection("data", server_.token());
  scratch_.create_collection("staging", server_.token());
  transform_fn_ = login_.register_function("transform", transform_fn_impl,
                                           config_.transform_cost);
  analysis_fn_ = login_.register_function("analysis", analysis_fn_impl,
                                          config_.analysis_cost);
  aggregate_fn_ = login_.register_function("aggregate", aggregate_fn_impl,
                                           config_.aggregate_cost);

  cache_ = std::make_unique<serve::ResultCache>(server_, metrics_);
  cache_->set_shard(config_.key);

  server_.add_update_listener(
      [this](const std::string& uuid) { on_updated(uuid); });
}

ShardPartition::~ShardPartition() = default;

void ShardPartition::enable_chaos(const fabric::FaultPlan& master) {
  OSPREY_REQUIRE(chaos_ == nullptr, "chaos already enabled");
  chaos_ = std::make_unique<fabric::FaultPlan>(
      master.fork(stable_key_hash(config_.key)));
  auth_.set_fault_plan(chaos_.get(), &loop_);
  transfers_.set_fault_plan(chaos_.get());
  flows_.set_fault_plan(chaos_.get());
  login_.set_fault_plan(chaos_.get());
  eagle_.set_fault_plan(chaos_.get());
  scratch_.set_fault_plan(chaos_.get());
  server_.set_fault_plan(chaos_.get());
}

aero::RecoveryStats ShardPartition::enable_durability(
    osprey::util::DurableFs& fs, const std::string& base_dir) {
  aero::WalOptions options;
  options.dir = base_dir + "/" + config_.key;
  return server_.enable_durability(fs, std::move(options));
}

void ShardPartition::deliver(const Envelope& env) {
  if (env.topic == "register-feed") {
    FeedSpec spec = FeedSpec::from_value(env.payload.at("feed"));
    OSPREY_REQUIRE(spec.name == config_.key,
                   "feed routed to wrong partition: " + spec.name);
    for (const FeedInfo& feed : feeds_) {
      if (feed.name == spec.name) return;  // idempotent re-registration
    }
    add_feed(spec);
  } else if (env.topic == "register-aggregate") {
    if (aggregate_source_) return;  // idempotent re-registration
    host_aggregate(env.payload.at("campaign").as_string(),
                   static_cast<SimTime>(env.payload.at("poll_period").as_int()));
  } else if (env.topic == "aggregate-input") {
    OSPREY_REQUIRE(aggregate_source_ != nullptr,
                   "aggregate-input on a partition without a hub");
    aggregate_source_->set_payload(env.payload.to_json());
  }
  // Unknown topics are ignored (forward compatibility).
}

void ShardPartition::add_feed(const FeedSpec& spec) {
  aero::IngestionFlowSpec ing;
  ing.name = "ingest-" + spec.name;
  ing.source = std::make_shared<aero::ScriptedSource>(
      "https://feeds/" + spec.name, spec.timeline);
  ing.poll_period = spec.poll_period;
  ing.compute = &login_;
  ing.function_id = transform_fn_;
  ing.staging = &scratch_;
  ing.staging_collection = "staging";
  ing.storage = &eagle_;
  ing.collection = "data";
  ing.base_path = "feed/" + spec.name;
  ing.max_retries = spec.max_retries;
  aero::IngestionHandles handles = server_.register_ingestion(std::move(ing));

  aero::AnalysisFlowSpec ana;
  ana.name = "analyze-" + spec.name;
  ana.input_uuids = {handles.output_uuid};
  ana.policy = aero::TriggerPolicy::kAny;
  ana.compute = &login_;
  ana.function_id = analysis_fn_;
  ana.staging = &scratch_;
  ana.staging_collection = "staging";
  ana.storage = &eagle_;
  ana.collection = "data";
  ana.base_path = "analysis/" + spec.name;
  ana.output_names = {"out"};
  ana.max_retries = spec.max_retries;
  std::string analysis_uuid = server_.register_analysis(std::move(ana))[0];

  tracked_[analysis_uuid] = Tracked{spec.name, "analysis"};
  feeds_.push_back(FeedInfo{spec.name, handles.output_uuid, analysis_uuid});
}

void ShardPartition::host_aggregate(const std::string& campaign,
                                    SimTime poll_period) {
  aggregate_source_ =
      std::make_shared<MailboxSource>("mailbox://" + config_.key);
  aero::IngestionFlowSpec ing;
  ing.name = "aggregate-" + campaign;
  ing.source = aggregate_source_;
  ing.poll_period = poll_period;
  ing.compute = &login_;
  ing.function_id = aggregate_fn_;
  ing.staging = &scratch_;
  ing.staging_collection = "staging";
  ing.storage = &eagle_;
  ing.collection = "data";
  ing.base_path = "aggregate/" + campaign;
  aero::IngestionHandles handles = server_.register_ingestion(std::move(ing));

  aggregate_campaign_ = campaign;
  aggregate_uuid_ = handles.output_uuid;
  tracked_[handles.output_uuid] = Tracked{"", "aggregate"};
}

void ShardPartition::on_updated(const std::string& uuid) {
  auto it = tracked_.find(uuid);
  if (it == tracked_.end()) return;
  std::optional<aero::DataVersion> latest = server_.db().latest_version(uuid);
  if (!latest) return;  // degradation flip without a new version
  int& posted = last_version_posted_[uuid];
  if (latest->version <= posted) return;
  posted = latest->version;
  ValueObject payload;
  payload["partition"] = Value(config_.key);
  payload["feed"] = Value(it->second.feed);
  payload["kind"] = Value(it->second.kind);
  payload["uuid"] = Value(uuid);
  payload["version"] = Value(static_cast<std::int64_t>(latest->version));
  payload["checksum"] = Value(latest->checksum);
  payload["timestamp"] = Value(static_cast<std::int64_t>(latest->timestamp));
  outbox_.post(tick_, "", "version", Value(std::move(payload)));
}

void ShardPartition::run_epoch(std::uint64_t tick, SimTime until) {
  tick_ = tick;
  loop_.run_until(until);
}

std::vector<Envelope> ShardPartition::collect() { return outbox_.drain(); }

serve::ResultCache::Result ShardPartition::lookup(const std::string& uuid) {
  return cache_->lookup(uuid);
}

}  // namespace osprey::shard
