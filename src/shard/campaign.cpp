#include "shard/campaign.hpp"

#include "util/error.hpp"

namespace osprey::shard {

using osprey::util::Value;
using osprey::util::ValueArray;
using osprey::util::ValueObject;

Value FeedSpec::to_value() const {
  ValueObject obj;
  obj["name"] = Value(name);
  ValueArray entries;
  entries.reserve(timeline.size());
  for (const auto& [time, payload] : timeline) {
    ValueObject entry;
    entry["time"] = Value(static_cast<std::int64_t>(time));
    entry["payload"] = Value(payload);
    entries.push_back(Value(std::move(entry)));
  }
  obj["timeline"] = Value(std::move(entries));
  obj["poll_period"] = Value(static_cast<std::int64_t>(poll_period));
  obj["max_retries"] = Value(static_cast<std::int64_t>(max_retries));
  return Value(std::move(obj));
}

FeedSpec FeedSpec::from_value(const Value& v) {
  OSPREY_REQUIRE(v.is_object(), "FeedSpec value must be an object");
  FeedSpec spec;
  spec.name = v.at("name").as_string();
  for (const Value& entry : v.at("timeline").as_array()) {
    spec.timeline.emplace_back(
        static_cast<SimTime>(entry.at("time").as_int()),
        entry.at("payload").as_string());
  }
  spec.poll_period = static_cast<SimTime>(v.at("poll_period").as_int());
  spec.max_retries = static_cast<int>(v.at("max_retries").as_int());
  return spec;
}

}  // namespace osprey::shard
