#include "shard/fabric.hpp"

#include <algorithm>

#include "obs/export.hpp"
#include "obs/merge.hpp"
#include "util/error.hpp"

namespace osprey::shard {

ShardedFabric::ShardedFabric(ShardedFabricConfig config)
    : config_(config),
      coordinator_(config.seed),
      shard_members_(std::max<std::size_t>(config.num_shards, 1)) {
  OSPREY_REQUIRE(config_.num_shards >= 1, "need at least one shard");
  OSPREY_REQUIRE(config_.epoch > 0, "epoch must be positive");
  if (config_.num_shards > 1) {
    pool_ = std::make_unique<osprey::util::ThreadPool>(config_.num_shards);
  }
}

void ShardedFabric::set_chaos(const fabric::FaultPlan& master) {
  OSPREY_REQUIRE(partitions_.empty(),
                 "set_chaos must precede register_campaign");
  master_chaos_ = std::make_unique<fabric::FaultPlan>(master);
}

void ShardedFabric::create_partition(const std::string& key) {
  OSPREY_REQUIRE(!key.empty(), "partition key must not be empty");
  OSPREY_REQUIRE(key.find('/') == std::string::npos,
                 "partition key must not contain '/': " + key);
  OSPREY_REQUIRE(key != "coordinator",
                 "partition key 'coordinator' is reserved");
  OSPREY_REQUIRE(by_key_.count(key) == 0, "duplicate partition key: " + key);
  PartitionConfig config;
  config.key = key;
  config.ordinal = static_cast<std::uint32_t>(partitions_.size() + 1);
  config.seed = config_.seed;
  config.tracing = config_.tracing;
  config.login_slots = config_.login_slots;
  auto partition = std::make_unique<ShardPartition>(std::move(config));
  if (master_chaos_) partition->enable_chaos(*master_chaos_);
  by_key_[key] = partitions_.size();
  shard_members_[shard_of(key, config_.num_shards)].push_back(
      partitions_.size());
  keys_.push_back(key);
  partitions_.push_back(std::move(partition));
}

void ShardedFabric::register_campaign(const CampaignSpec& spec) {
  for (const FeedSpec& feed : spec.feeds) create_partition(feed.name);
  if (spec.aggregate) create_partition(Coordinator::hub_key(spec.name));
  coordinator_.register_campaign(spec);
}

ShardedFabric::RecoverySummary ShardedFabric::enable_durability(
    osprey::util::DurableFs& fs, const std::string& base_dir) {
  RecoverySummary summary;
  for (auto& partition : partitions_) {
    aero::RecoveryStats stats = partition->enable_durability(fs, base_dir);
    ++summary.partitions;
    if (stats.checkpoint_loaded) ++summary.checkpoints_loaded;
    summary.replayed += stats.replayed;
    summary.torn += stats.torn;
    summary.corrupt += stats.corrupt;
  }
  return summary;
}

void ShardedFabric::run_until(SimTime t) {
  OSPREY_REQUIRE(t >= now_, "run_until must not go backwards");
  while (now_ < t) {
    step_epoch(std::min<SimTime>(now_ + config_.epoch, t));
  }
}

void ShardedFabric::step_epoch(SimTime until) {
  // 1. Route the coordinator's pending mail to per-partition inboxes
  //    (epoch-k posts are delivered at the start of epoch k+1).
  std::vector<std::vector<Envelope>> inboxes(partitions_.size());
  for (Envelope& env : coordinator_.collect()) {
    auto it = by_key_.find(env.dest);
    OSPREY_REQUIRE(it != by_key_.end(),
                   "envelope addressed to unknown partition: " + env.dest);
    inboxes[it->second].push_back(std::move(env));
  }

  // 2. Run every shard over its partitions. Each partition is touched
  //    by exactly one task; the parallel_for join is the epoch barrier
  //    (a happens-before edge, so the collection below is race-free).
  const std::uint64_t tick = tick_;
  auto run_shard = [&](std::size_t shard) {
    for (std::size_t index : shard_members_[shard]) {
      ShardPartition& partition = *partitions_[index];
      for (const Envelope& env : inboxes[index]) partition.deliver(env);
      partition.run_epoch(tick, until);
    }
  };
  if (pool_) {
    pool_->parallel_for(shard_members_.size(), run_shard);
  } else {
    for (std::size_t s = 0; s < shard_members_.size(); ++s) run_shard(s);
  }

  // 3. Barrier: drain outboxes in ordinal order and merge into the
  //    (tick, origin, seq) total order — a pure function of logical
  //    state, independent of which threads ran which shard.
  std::vector<std::vector<Envelope>> outboxes;
  outboxes.reserve(partitions_.size());
  for (auto& partition : partitions_) outboxes.push_back(partition->collect());

  // 4. The coordinator consumes the merged stream; its responses are
  //    posted under this tick and routed at the next epoch start.
  coordinator_.begin_tick(tick_, obs::sim_ns(until));
  coordinator_.deliver(merge_envelopes(std::move(outboxes)));

  now_ = until;
  ++tick_;
}

ShardPartition& ShardedFabric::partition(const std::string& key) {
  auto it = by_key_.find(key);
  OSPREY_REQUIRE(it != by_key_.end(), "unknown partition: " + key);
  return *partitions_[it->second];
}

serve::ResultCache::Result ShardedFabric::lookup(
    const std::string& qualified_uuid) {
  std::size_t slash = qualified_uuid.find('/');
  OSPREY_REQUIRE(slash != std::string::npos,
                 "expected '<partition>/<uuid>': " + qualified_uuid);
  return partition(qualified_uuid.substr(0, slash))
      .lookup(qualified_uuid.substr(slash + 1));
}

std::uint64_t ShardedFabric::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& partition : partitions_) {
    total += partition->events_processed();
  }
  return total;
}

std::string ShardedFabric::merged_incident_log() const {
  std::string out;
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const fabric::IncidentLog* log = partitions_[i]->incident_log();
    if (log == nullptr) continue;
    out += "=== shard " + keys_[i] + " ===\n";
    out += log->to_string();
  }
  return out;
}

std::vector<obs::SpanRecord> ShardedFabric::merged_spans() const {
  std::vector<obs::LabeledSpans> sources;
  sources.reserve(partitions_.size() + 1);
  sources.push_back(
      obs::LabeledSpans{"coordinator", coordinator_.tracer().snapshot()});
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    sources.push_back(obs::LabeledSpans{keys_[i], partitions_[i]->spans()});
  }
  return obs::merge_labeled_spans(std::move(sources));
}

std::string ShardedFabric::merged_chrome_trace() const {
  return obs::chrome_trace_json(merged_spans());
}

namespace {

std::vector<obs::LabeledRegistry> labeled_registries(
    const Coordinator& coordinator, const std::vector<std::string>& keys,
    const std::vector<std::unique_ptr<ShardPartition>>& partitions) {
  std::vector<obs::LabeledRegistry> sources;
  sources.reserve(partitions.size() + 1);
  sources.push_back(obs::LabeledRegistry{"coordinator", &coordinator.metrics()});
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    sources.push_back(obs::LabeledRegistry{keys[i], &partitions[i]->metrics()});
  }
  return sources;
}

}  // namespace

osprey::util::Value ShardedFabric::merged_metrics() const {
  return obs::merged_metrics_snapshot(
      labeled_registries(coordinator_, keys_, partitions_));
}

std::string ShardedFabric::merged_prometheus() const {
  return obs::prometheus_text_sharded(
      labeled_registries(coordinator_, keys_, partitions_));
}

}  // namespace osprey::shard
