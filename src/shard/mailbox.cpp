#include "shard/mailbox.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "util/error.hpp"

namespace osprey::shard {

namespace {

/// splitmix64 finalizer (same counter-stamp primitive the fault plan
/// uses; file-local so shard/ carries no extra dependency for it).
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

bool envelope_before(const Envelope& a, const Envelope& b) {
  return std::tie(a.tick, a.origin, a.seq) < std::tie(b.tick, b.origin, b.seq);
}

std::uint64_t stable_key_hash(const std::string& key) { return fnv1a(key); }

std::size_t shard_of(const std::string& key, std::size_t num_shards) {
  OSPREY_REQUIRE(num_shards >= 1, "need at least one shard");
  return static_cast<std::size_t>(stable_key_hash(key) % num_shards);
}

Outbox::Outbox(std::uint32_t origin, std::uint64_t seed)
    : origin_(origin),
      seed_(seed),
      base_stamp_(mix64(seed ^ mix64(origin))) {}

void Outbox::post(std::uint64_t tick, std::string dest, std::string topic,
                  osprey::util::Value payload) {
  Envelope env;
  env.tick = tick;
  env.origin = origin_;
  env.seq = seq_++;
  env.stamp = mix64(base_stamp_ ^ env.seq);
  env.topic = std::move(topic);
  env.dest = std::move(dest);
  env.payload = std::move(payload);
  pending_.push_back(std::move(env));
}

std::vector<Envelope> Outbox::drain() {
  std::vector<Envelope> out;
  out.swap(pending_);
  return out;
}

std::vector<Envelope> merge_envelopes(
    std::vector<std::vector<Envelope>> sources) {
  struct Head {
    std::size_t source;
    std::size_t index;
  };
  // Min-heap keyed by the head envelope of each source.
  auto later = [&sources](const Head& a, const Head& b) {
    return envelope_before(sources[b.source][b.index],
                           sources[a.source][a.index]);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(later);
  std::size_t total = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    total += sources[s].size();
    if (!sources[s].empty()) heap.push(Head{s, 0});
  }
  std::vector<Envelope> merged;
  merged.reserve(total);
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    merged.push_back(std::move(sources[head.source][head.index]));
    if (head.index + 1 < sources[head.source].size()) {
      heap.push(Head{head.source, head.index + 1});
    }
  }
  return merged;
}

}  // namespace osprey::shard
