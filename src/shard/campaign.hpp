#pragma once

/// \file campaign.hpp
/// Declarative surveillance-campaign specs for the ShardedFabric. A
/// campaign names a set of upstream feeds (each becomes one partition
/// with its own ingestion + analysis flows) and optionally a
/// cross-region aggregation hosted on a dedicated hub partition. Specs
/// are plain data with Value round-trips: the coordination layer ships
/// them to partitions inside registration envelopes, so this header
/// deliberately knows nothing about the orchestration services.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_time.hpp"
#include "util/value.hpp"

namespace osprey::shard {

using osprey::util::SimTime;

/// One upstream feed: a scripted publication timeline plus polling
/// parameters. The feed name doubles as its partition key, so it must
/// be unique across every campaign registered on a fabric and must not
/// contain '/' (reserved by the "<partition>/<uuid>" serve addressing).
struct FeedSpec {
  std::string name;
  /// (publish time, payload) — sorted ascending by time.
  std::vector<std::pair<SimTime, std::string>> timeline;
  SimTime poll_period = osprey::util::kDay;
  int max_retries = 0;

  osprey::util::Value to_value() const;
  static FeedSpec from_value(const osprey::util::Value& v);
};

/// A campaign: feeds + optional ALL-member aggregation.
struct CampaignSpec {
  std::string name;
  std::vector<FeedSpec> feeds;
  /// Host a hub partition aggregating every member's analysis output.
  bool aggregate = true;
  SimTime aggregate_poll = osprey::util::kDay;
};

}  // namespace osprey::shard
