#include "emews/task_db.hpp"

#include <chrono>

#include "util/error.hpp"

namespace osprey::emews {

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

const char* task_status_name(TaskStatus s) {
  switch (s) {
    case TaskStatus::kQueued: return "QUEUED";
    case TaskStatus::kRunning: return "RUNNING";
    case TaskStatus::kComplete: return "COMPLETE";
    case TaskStatus::kFailed: return "FAILED";
    case TaskStatus::kCancelled: return "CANCELLED";
  }
  return "?";
}

TaskRecord& TaskDb::record_locked(TaskId id) {
  OSPREY_REQUIRE(id < tasks_.size(), "unknown task id");
  return tasks_[id];
}

const TaskRecord& TaskDb::record_locked(TaskId id) const {
  OSPREY_REQUIRE(id < tasks_.size(), "unknown task id");
  return tasks_[id];
}

TaskId TaskDb::submit(const std::string& type, osprey::util::Value payload,
                      int priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  OSPREY_REQUIRE(!closed_, "submit to a closed task database");
  TaskId id = tasks_.size();
  TaskRecord rec;
  rec.id = id;
  rec.type = type;
  rec.payload = std::move(payload);
  rec.priority = priority;
  rec.submitted_ns = steady_ns();
  tasks_.push_back(std::move(rec));
  queues_[type][priority].push_back(id);
  queue_cv_.notify_one();
  return id;
}

std::optional<TaskId> TaskDb::claim(const std::string& type,
                                    const std::string& worker) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    auto qit = queues_.find(type);
    if (qit != queues_.end() && !qit->second.empty()) {
      auto& by_priority = qit->second;
      auto pit = by_priority.begin();
      TaskId id = pit->second.front();
      pit->second.pop_front();
      if (pit->second.empty()) by_priority.erase(pit);
      TaskRecord& rec = record_locked(id);
      rec.status = TaskStatus::kRunning;
      rec.worker = worker;
      rec.started_ns = steady_ns();
      return id;
    }
    if (closed_) return std::nullopt;
    queue_cv_.wait(lock);
  }
}

std::optional<TaskId> TaskDb::claim_for(const std::string& type,
                                        const std::string& worker,
                                        std::int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (true) {
    auto qit = queues_.find(type);
    if (qit != queues_.end() && !qit->second.empty()) {
      auto& by_priority = qit->second;
      auto pit = by_priority.begin();
      TaskId id = pit->second.front();
      pit->second.pop_front();
      if (pit->second.empty()) by_priority.erase(pit);
      TaskRecord& rec = record_locked(id);
      rec.status = TaskStatus::kRunning;
      rec.worker = worker;
      rec.started_ns = steady_ns();
      return id;
    }
    if (closed_) return std::nullopt;
    if (queue_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return std::nullopt;
    }
  }
}

std::optional<TaskId> TaskDb::try_claim(const std::string& type,
                                        const std::string& worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto qit = queues_.find(type);
  if (qit == queues_.end() || qit->second.empty()) return std::nullopt;
  auto& by_priority = qit->second;
  auto pit = by_priority.begin();
  TaskId id = pit->second.front();
  pit->second.pop_front();
  if (pit->second.empty()) by_priority.erase(pit);
  TaskRecord& rec = record_locked(id);
  rec.status = TaskStatus::kRunning;
  rec.worker = worker;
  rec.started_ns = steady_ns();
  return id;
}

void TaskDb::finish_locked(TaskId id, TaskStatus status) {
  TaskRecord& rec = record_locked(id);
  rec.status = status;
  rec.completed_ns = steady_ns();
  ++finished_;
  done_cv_.notify_all();
}

void TaskDb::complete(TaskId id, osprey::util::Value result) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& rec = record_locked(id);
  OSPREY_REQUIRE(rec.status == TaskStatus::kRunning,
                 "complete() on a task that is not running");
  rec.result = std::move(result);
  finish_locked(id, TaskStatus::kComplete);
}

void TaskDb::fail(TaskId id, const std::string& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& rec = record_locked(id);
  OSPREY_REQUIRE(rec.status == TaskStatus::kRunning,
                 "fail() on a task that is not running");
  rec.error = error;
  finish_locked(id, TaskStatus::kFailed);
}

bool TaskDb::cancel(TaskId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskRecord& rec = record_locked(id);
  if (rec.status != TaskStatus::kQueued) return false;
  // Remove from its queue.
  auto& by_priority = queues_[rec.type];
  auto pit = by_priority.find(rec.priority);
  if (pit != by_priority.end()) {
    auto& fifo = pit->second;
    for (auto it = fifo.begin(); it != fifo.end(); ++it) {
      if (*it == id) {
        fifo.erase(it);
        break;
      }
    }
    if (fifo.empty()) by_priority.erase(pit);
  }
  finish_locked(id, TaskStatus::kCancelled);
  return true;
}

TaskRecord TaskDb::snapshot(TaskId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return record_locked(id);
}

bool TaskDb::is_done(TaskId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskStatus s = record_locked(id).status;
  return s == TaskStatus::kComplete || s == TaskStatus::kFailed ||
         s == TaskStatus::kCancelled;
}

TaskRecord TaskDb::wait(TaskId id) const {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    TaskStatus s = record_locked(id).status;
    return s == TaskStatus::kComplete || s == TaskStatus::kFailed ||
           s == TaskStatus::kCancelled;
  });
  return record_locked(id);
}

std::uint64_t TaskDb::finished_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

void TaskDb::wait_for_more_finished(std::uint64_t seen) const {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return finished_ > seen || closed_; });
}

std::size_t TaskDb::queued_count(const std::string& type) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto qit = queues_.find(type);
  if (qit == queues_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [prio, fifo] : qit->second) {
    (void)prio;
    n += fifo.size();
  }
  return n;
}

std::size_t TaskDb::total_submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void TaskDb::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  // Cancel everything still queued.
  for (auto& [type, by_priority] : queues_) {
    (void)type;
    for (auto& [prio, fifo] : by_priority) {
      (void)prio;
      for (TaskId id : fifo) {
        TaskRecord& rec = record_locked(id);
        rec.status = TaskStatus::kCancelled;
        rec.completed_ns = steady_ns();
        ++finished_;
      }
      fifo.clear();
    }
  }
  queues_.clear();
  queue_cv_.notify_all();
  done_cv_.notify_all();
}

bool TaskDb::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace osprey::emews
