#include "emews/task_db.hpp"

#include <chrono>

#include "util/error.hpp"

namespace osprey::emews {

using osprey::util::MutexLock;

const char* task_status_name(TaskStatus s) {
  switch (s) {
    case TaskStatus::kQueued: return "QUEUED";
    case TaskStatus::kRunning: return "RUNNING";
    case TaskStatus::kComplete: return "COMPLETE";
    case TaskStatus::kFailed: return "FAILED";
    case TaskStatus::kCancelled: return "CANCELLED";
  }
  return "?";
}

TaskRecord& TaskDb::record_locked(TaskId id) {
  OSPREY_REQUIRE(id < tasks_.size(), "unknown task id");
  return tasks_[id];
}

const TaskRecord& TaskDb::record_locked(TaskId id) const {
  OSPREY_REQUIRE(id < tasks_.size(), "unknown task id");
  return tasks_[id];
}

TaskId TaskDb::submit(const std::string& type, osprey::util::Value payload,
                      int priority) {
  MutexLock lock(mutex_);
  OSPREY_REQUIRE(!closed_, "submit to a closed task database");
  TaskId id = tasks_.size();
  TaskRecord rec;
  rec.id = id;
  rec.type = type;
  rec.payload = std::move(payload);
  rec.priority = priority;
  rec.submitted_ns = clock_->now_ns();
  if (tracer_ != nullptr) {
    tracer_->instant(obs::Category::kEmews, "submit:" + type,
                     rec.submitted_ns, obs::kNoSpan,
                     "task " + std::to_string(id));
  }
  tasks_.push_back(std::move(rec));
  queues_[type][priority].push_back(id);
  queue_cv_.notify_one();
  return id;
}

std::optional<TaskId> TaskDb::claim_locked(const std::string& type,
                                           const std::string& worker) {
  auto qit = queues_.find(type);
  if (qit == queues_.end() || qit->second.empty()) return std::nullopt;
  auto& by_priority = qit->second;
  auto pit = by_priority.begin();
  TaskId id = pit->second.front();
  pit->second.pop_front();
  if (pit->second.empty()) by_priority.erase(pit);
  TaskRecord& rec = record_locked(id);
  rec.status = TaskStatus::kRunning;
  rec.worker = worker;
  rec.started_ns = clock_->now_ns();
  if (tracer_ != nullptr) {
    rec.trace_span = tracer_->begin_span(
        obs::Category::kEmews, "task:" + rec.type, rec.started_ns,
        obs::kNoSpan, "task " + std::to_string(id) + " on " + worker);
  }
  return id;
}

std::optional<TaskId> TaskDb::claim(const std::string& type,
                                    const std::string& worker) {
  MutexLock lock(mutex_);
  while (true) {
    if (auto id = claim_locked(type, worker)) return id;
    if (closed_) return std::nullopt;
    queue_cv_.wait(lock);
  }
}

std::optional<TaskId> TaskDb::claim_for(const std::string& type,
                                        const std::string& worker,
                                        std::int64_t timeout_ms) {
  MutexLock lock(mutex_);
  std::int64_t remaining_ms = timeout_ms;
  while (true) {
    if (auto id = claim_locked(type, worker)) return id;
    if (closed_) return std::nullopt;
    if (remaining_ms <= 0) return std::nullopt;
    // The blocking bound is real time (a poll interval, not simulated
    // state); elapsed time is measured through the injected clock so a
    // SimClock still controls the records.
    std::uint64_t t0 = clock_->now_ns();
    if (queue_cv_.wait_for(lock, std::chrono::milliseconds(remaining_ms)) ==
        std::cv_status::timeout) {
      return std::nullopt;
    }
    std::uint64_t dt_ns = clock_->now_ns() - t0;
    remaining_ms -= static_cast<std::int64_t>(dt_ns / 1'000'000ull);
  }
}

std::optional<TaskId> TaskDb::try_claim(const std::string& type,
                                        const std::string& worker) {
  MutexLock lock(mutex_);
  return claim_locked(type, worker);
}

void TaskDb::finish_locked(TaskId id, TaskStatus status) {
  TaskRecord& rec = record_locked(id);
  rec.status = status;
  rec.completed_ns = clock_->now_ns();
  if (tracer_ != nullptr && rec.trace_span != obs::kNoSpan) {
    tracer_->end_span(rec.trace_span, rec.completed_ns,
                      status == TaskStatus::kComplete,
                      status == TaskStatus::kComplete
                          ? std::string()
                          : (rec.error.empty() ? task_status_name(status)
                                               : rec.error));
    rec.trace_span = obs::kNoSpan;
  }
  ++finished_;
  done_cv_.notify_all();
}

void TaskDb::complete(TaskId id, osprey::util::Value result) {
  MutexLock lock(mutex_);
  TaskRecord& rec = record_locked(id);
  OSPREY_REQUIRE(rec.status == TaskStatus::kRunning,
                 "complete() on a task that is not running");
  rec.result = std::move(result);
  finish_locked(id, TaskStatus::kComplete);
}

void TaskDb::fail(TaskId id, const std::string& error) {
  MutexLock lock(mutex_);
  TaskRecord& rec = record_locked(id);
  OSPREY_REQUIRE(rec.status == TaskStatus::kRunning,
                 "fail() on a task that is not running");
  rec.error = error;
  finish_locked(id, TaskStatus::kFailed);
}

bool TaskDb::cancel(TaskId id) {
  MutexLock lock(mutex_);
  TaskRecord& rec = record_locked(id);
  if (rec.status != TaskStatus::kQueued) return false;
  // Remove from its queue.
  auto& by_priority = queues_[rec.type];
  auto pit = by_priority.find(rec.priority);
  if (pit != by_priority.end()) {
    auto& fifo = pit->second;
    for (auto it = fifo.begin(); it != fifo.end(); ++it) {
      if (*it == id) {
        fifo.erase(it);
        break;
      }
    }
    if (fifo.empty()) by_priority.erase(pit);
  }
  finish_locked(id, TaskStatus::kCancelled);
  return true;
}

bool TaskDb::requeue(TaskId id) {
  MutexLock lock(mutex_);
  if (closed_) return false;
  TaskRecord& rec = record_locked(id);
  if (rec.status != TaskStatus::kRunning) return false;
  if (tracer_ != nullptr && rec.trace_span != obs::kNoSpan) {
    // The attempt's span closes here; the next claim opens a fresh one.
    tracer_->end_span(rec.trace_span, clock_->now_ns(), false, "requeued");
    rec.trace_span = obs::kNoSpan;
  }
  rec.status = TaskStatus::kQueued;
  rec.worker.clear();
  rec.started_ns = 0;
  ++rec.requeues;
  queues_[rec.type][rec.priority].push_back(id);
  queue_cv_.notify_one();
  return true;
}

TaskRecord TaskDb::snapshot(TaskId id) const {
  MutexLock lock(mutex_);
  return record_locked(id);
}

bool TaskDb::is_done(TaskId id) const {
  MutexLock lock(mutex_);
  TaskStatus s = record_locked(id).status;
  return s == TaskStatus::kComplete || s == TaskStatus::kFailed ||
         s == TaskStatus::kCancelled;
}

TaskRecord TaskDb::wait(TaskId id) const {
  MutexLock lock(mutex_);
  while (true) {
    TaskStatus s = record_locked(id).status;
    if (s == TaskStatus::kComplete || s == TaskStatus::kFailed ||
        s == TaskStatus::kCancelled) {
      return record_locked(id);
    }
    done_cv_.wait(lock);
  }
}

std::uint64_t TaskDb::finished_count() const {
  MutexLock lock(mutex_);
  return finished_;
}

void TaskDb::wait_for_more_finished(std::uint64_t seen) const {
  MutexLock lock(mutex_);
  while (finished_ <= seen && !closed_) {
    done_cv_.wait(lock);
  }
}

std::size_t TaskDb::queued_count(const std::string& type) const {
  MutexLock lock(mutex_);
  auto qit = queues_.find(type);
  if (qit == queues_.end()) return 0;
  std::size_t n = 0;
  for (const auto& [prio, fifo] : qit->second) {
    (void)prio;
    n += fifo.size();
  }
  return n;
}

std::size_t TaskDb::total_submitted() const {
  MutexLock lock(mutex_);
  return tasks_.size();
}

void TaskDb::close() {
  MutexLock lock(mutex_);
  if (closed_) return;
  closed_ = true;
  // Cancel everything still queued.
  for (auto& [type, by_priority] : queues_) {
    (void)type;
    for (auto& [prio, fifo] : by_priority) {
      (void)prio;
      for (TaskId id : fifo) {
        TaskRecord& rec = record_locked(id);
        rec.status = TaskStatus::kCancelled;
        rec.completed_ns = clock_->now_ns();
        ++finished_;
      }
      fifo.clear();
    }
  }
  queues_.clear();
  queue_cv_.notify_all();
  done_cv_.notify_all();
}

bool TaskDb::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

void TaskDb::set_tracer(obs::TraceRecorder* tracer) {
  MutexLock lock(mutex_);
  tracer_ = tracer;
}

obs::TraceRecorder* TaskDb::tracer() const {
  MutexLock lock(mutex_);
  return tracer_;
}

}  // namespace osprey::emews
