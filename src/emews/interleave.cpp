#include "emews/interleave.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace osprey::emews {

void InterleavedDriver::add(std::shared_ptr<CoopAlgorithm> algorithm) {
  OSPREY_REQUIRE(algorithm != nullptr, "null algorithm");
  algorithms_.push_back(std::move(algorithm));
}

void InterleavedDriver::run() {
  OSPREY_REQUIRE(!algorithms_.empty(), "no algorithm instances added");
  for (auto& algo : algorithms_) algo->start();

  std::vector<bool> finished(algorithms_.size(), false);
  std::size_t n_finished = 0;

  while (n_finished < algorithms_.size()) {
    bool any_progress = false;
    // Snapshot the finished counter before the round: if nothing moves
    // during the round we sleep until one more task completes.
    std::uint64_t seen = db_->finished_count();
    for (std::size_t i = 0; i < algorithms_.size(); ++i) {
      if (finished[i]) continue;
      ++polls_;
      PollResult r = algorithms_[i]->poll();
      if (r == PollResult::kFinished) {
        finished[i] = true;
        ++n_finished;
        any_progress = true;
        OSPREY_LOG_INFO("emews", "instance '" << algorithms_[i]->name()
                                 << "' finished");
      } else if (r == PollResult::kProgress) {
        any_progress = true;
      }
    }
    if (!any_progress && n_finished < algorithms_.size()) {
      ++blocked_waits_;
      db_->wait_for_more_finished(seen);
    }
  }
}

void SequentialDriver::add(std::shared_ptr<CoopAlgorithm> algorithm) {
  OSPREY_REQUIRE(algorithm != nullptr, "null algorithm");
  algorithms_.push_back(std::move(algorithm));
}

void SequentialDriver::run() {
  OSPREY_REQUIRE(!algorithms_.empty(), "no algorithm instances added");
  for (auto& algo : algorithms_) {
    algo->start();
    while (true) {
      std::uint64_t seen = db_->finished_count();
      PollResult r = algo->poll();
      if (r == PollResult::kFinished) break;
      if (r == PollResult::kBlocked) db_->wait_for_more_finished(seen);
    }
  }
}

}  // namespace osprey::emews
