#pragma once

/// \file worker_pool.hpp
/// An EMEWS worker pool: a set of worker threads on a compute resource
/// that "retrieve and evaluate tasks submitted to the task database,
/// e.g. ... run models where the tasks' data are model input
/// parameters". Per-worker busy-time accounting backs the utilization
/// comparison of interleaved vs sequential ME instances (§3.2).
///
/// All timestamps come from the task database's injected util::Clock,
/// so a SimClock-driven run produces replayable utilization numbers.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "emews/task_db.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/retry.hpp"
#include "util/value.hpp"

namespace osprey::emews {

/// The model a pool evaluates: payload in, result out. Exceptions mark
/// the task failed.
using ModelFn = std::function<osprey::util::Value(const osprey::util::Value&)>;

struct WorkerStats {
  std::string name;
  std::uint64_t tasks_evaluated = 0;
  std::uint64_t busy_ns = 0;
};

class WorkerPool {
 public:
  /// Starts `n_workers` threads immediately; they claim tasks of
  /// `task_type` from `db` until shutdown() (or db.close()).
  /// When `retry.enabled()`, a task whose model throws is requeued (up
  /// to retry.max_attempts times, tracked in TaskRecord::requeues)
  /// instead of failed — any worker may pick up the requeued task.
  WorkerPool(TaskDb& db, std::string task_type, ModelFn model,
             std::size_t n_workers, std::string pool_name = "pool",
             osprey::util::RetryPolicy retry = {});

  /// Stops and joins all workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  const std::string& name() const { return name_; }
  std::size_t num_workers() const { return threads_.size(); }

  /// Drain remaining queued tasks, then stop and join all workers.
  /// Implemented with a stop flag + timed claims (not in-band poison
  /// messages), so multiple pools can safely serve one queue. Safe to
  /// call multiple times and from multiple threads (the join handoff is
  /// serialized by an internal mutex).
  void shutdown();

  /// Pool-lifetime utilization: busy worker-time / (workers × wall time
  /// from construction until shutdown (or now, while running)).
  double utilization() const;

  std::uint64_t tasks_evaluated() const { return evaluated_.load(); }
  /// Evaluations that threw and were returned to the queue for retry.
  std::uint64_t tasks_requeued() const { return requeued_.load(); }
  std::vector<WorkerStats> worker_stats() const;

 private:
  void worker_loop(std::size_t worker_index);
  std::uint64_t now_ns() const { return db_.clock().now_ns(); }

  TaskDb& db_;
  std::string type_;
  ModelFn model_;
  std::string name_;
  osprey::util::RetryPolicy retry_;
  std::vector<std::atomic<std::uint64_t>> busy_ns_;     // per worker
  std::vector<std::atomic<std::uint64_t>> task_counts_; // per worker
  // WorkerPool models a compute resource and so legitimately owns raw
  // threads, like util::ThreadPool. osprey-lint: allow(raw-thread)
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> evaluated_{0};
  std::atomic<std::uint64_t> requeued_{0};
  std::uint64_t start_ns_ = 0;
  std::atomic<std::uint64_t> end_ns_{0};  // set at shutdown
  osprey::util::Mutex join_mutex_;
  bool joined_ OSPREY_GUARDED_BY(join_mutex_) = false;
};

}  // namespace osprey::emews
