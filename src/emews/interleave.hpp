#pragma once

/// \file interleave.hpp
/// Cooperative interleaving of multiple model-exploration algorithm
/// instances over one task queue — the paper's solution (§3.2) to the
/// utilization problem when instances alternate between large initial
/// designs and single-point refinements:
///
///   "each algorithm checks for the completion of a single Future,
///    ceding control to the next instance after this check"
///
/// An algorithm exposes start() / poll() steps; the driver round-robins
/// poll() across unfinished instances, sleeping on the task database's
/// completion signal when a full round makes no progress (so the driver
/// never burns a core busy-waiting).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "emews/task_db.hpp"

namespace osprey::emews {

/// Result of one cooperative poll step.
enum class PollResult {
  kFinished,  // the instance has completed its whole algorithm
  kProgress,  // something advanced (a future completed, tasks submitted)
  kBlocked,   // the checked future is still outstanding
};

/// Interface a cooperative ME algorithm instance implements.
class CoopAlgorithm {
 public:
  virtual ~CoopAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Submit the instance's initial work (e.g. its LHS design).
  virtual void start() = 0;

  /// Check ONE outstanding future and advance if possible, then return.
  virtual PollResult poll() = 0;
};

/// Round-robin driver.
class InterleavedDriver {
 public:
  explicit InterleavedDriver(TaskDb& db) : db_(&db) {}

  void add(std::shared_ptr<CoopAlgorithm> algorithm);

  /// start() every instance, then interleave poll() until all finish.
  void run();

  std::uint64_t total_polls() const { return polls_; }
  std::uint64_t blocked_waits() const { return blocked_waits_; }

 private:
  TaskDb* db_;
  std::vector<std::shared_ptr<CoopAlgorithm>> algorithms_;
  std::uint64_t polls_ = 0;
  std::uint64_t blocked_waits_ = 0;
};

/// Baseline for the ablation bench: run instances strictly one after
/// another (start, poll to completion, next) — the paper's "if our MUSIC
/// instances were run sequentially" scenario.
class SequentialDriver {
 public:
  explicit SequentialDriver(TaskDb& db) : db_(&db) {}

  void add(std::shared_ptr<CoopAlgorithm> algorithm);
  void run();

 private:
  TaskDb* db_;
  std::vector<std::shared_ptr<CoopAlgorithm>> algorithms_;
};

}  // namespace osprey::emews
