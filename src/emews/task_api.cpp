#include "emews/task_api.hpp"

#include "util/error.hpp"

namespace osprey::emews {

bool TaskFuture::is_done() const {
  OSPREY_REQUIRE(valid(), "is_done() on an invalid future");
  return db_->is_done(id_);
}

osprey::util::Value TaskFuture::get() const {
  TaskRecord rec = wait();
  if (rec.status == TaskStatus::kComplete) return rec.result;
  throw osprey::util::Error("task " + std::to_string(id_) + " " +
                            task_status_name(rec.status) +
                            (rec.error.empty() ? "" : ": " + rec.error));
}

TaskRecord TaskFuture::wait() const {
  OSPREY_REQUIRE(valid(), "wait() on an invalid future");
  return db_->wait(id_);
}

TaskQueue::TaskQueue(TaskDb& db, std::string task_type)
    : db_(&db), type_(std::move(task_type)) {}

TaskFuture TaskQueue::submit(osprey::util::Value payload, int priority) {
  TaskId id = db_->submit(type_, std::move(payload), priority);
  return TaskFuture(db_, id);
}

std::vector<TaskFuture> TaskQueue::submit_batch(
    std::vector<osprey::util::Value> payloads, int priority) {
  std::vector<TaskFuture> out;
  out.reserve(payloads.size());
  for (auto& p : payloads) {
    out.push_back(submit(std::move(p), priority));
  }
  return out;
}

void TaskQueue::wait_all(const std::vector<TaskFuture>& futures) {
  for (const TaskFuture& f : futures) f.wait();
}

std::size_t TaskQueue::count_done(const std::vector<TaskFuture>& futures) {
  std::size_t n = 0;
  for (const TaskFuture& f : futures) {
    if (f.is_done()) ++n;
  }
  return n;
}

}  // namespace osprey::emews
