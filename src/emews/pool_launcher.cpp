#include "emews/pool_launcher.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace osprey::emews {

LaunchedPool::LaunchedPool(fabric::BatchScheduler& scheduler, TaskDb& db,
                           const std::string& task_type, ModelFn model,
                           PoolLaunchSpec spec)
    : slot_(std::make_shared<Slot>()) {
  fabric::JobSpec job;
  job.name = "emews:" + spec.name;
  job.nodes = spec.nodes;
  job.walltime = spec.walltime;
  std::shared_ptr<Slot> slot = slot_;
  job.run = [slot, &db, task_type, model = std::move(model),
             spec]() -> fabric::SimTime {
    // The scheduler granted the nodes: bring up the (real) workers.
    slot->pool = std::make_shared<WorkerPool>(db, task_type, model,
                                              spec.n_workers, spec.name);
    return spec.reservation;
  };
  job_ = scheduler.submit(std::move(job));
  OSPREY_LOG_INFO("emews", "pool '" << spec.name
                           << "' submitted to scheduler as job " << job_);
}

WorkerPool& LaunchedPool::pool() {
  OSPREY_REQUIRE(started(), "pool job has not started yet");
  return *slot_->pool;
}

const WorkerPool& LaunchedPool::pool() const {
  OSPREY_REQUIRE(started(), "pool job has not started yet");
  return *slot_->pool;
}

void LaunchedPool::stop() {
  if (slot_->pool) slot_->pool->shutdown();
}

}  // namespace osprey::emews
