#pragma once

/// \file task_api.hpp
/// The EMEWS task API as seen by a model-exploration algorithm:
/// submitting a task returns a Future immediately; the Future can be
/// polled ("checks for the completion of a single Future, ceding
/// control") or waited on. Mirrors the paper's R/Python task APIs.

#include <string>
#include <vector>

#include "emews/task_db.hpp"
#include "util/value.hpp"

namespace osprey::emews {

/// Handle for the asynchronous evaluation of one task.
class TaskFuture {
 public:
  TaskFuture() = default;
  TaskFuture(TaskDb* db, TaskId id) : db_(db), id_(id) {}

  bool valid() const { return db_ != nullptr; }
  TaskId id() const { return id_; }

  /// Non-blocking completion check.
  bool is_done() const;

  /// Block until done; returns the result value. Throws Error if the
  /// task failed or was cancelled.
  osprey::util::Value get() const;

  /// Full record (blocking until done).
  TaskRecord wait() const;

 private:
  TaskDb* db_ = nullptr;
  TaskId id_ = 0;
};

/// Client-side facade binding a task database and a task type: the
/// "EMEWS task queue" an ME algorithm talks to.
class TaskQueue {
 public:
  TaskQueue(TaskDb& db, std::string task_type);

  const std::string& task_type() const { return type_; }
  TaskDb& db() { return *db_; }

  /// Submit one task; returns its Future immediately.
  TaskFuture submit(osprey::util::Value payload, int priority = 0);

  /// Submit a batch (e.g. an initial experiment design).
  std::vector<TaskFuture> submit_batch(
      std::vector<osprey::util::Value> payloads, int priority = 0);

  /// Convenience: block until every future in `futures` is done.
  static void wait_all(const std::vector<TaskFuture>& futures);

  /// Number of futures in `futures` that are done.
  static std::size_t count_done(const std::vector<TaskFuture>& futures);

 private:
  TaskDb* db_;
  std::string type_;
};

}  // namespace osprey::emews
