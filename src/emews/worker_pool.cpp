#include "emews/worker_pool.hpp"

#include <limits>

#include "util/log.hpp"

namespace osprey::emews {

namespace {

/// How long a worker blocks on the queue before re-checking its pool's
/// stop flag. Several pools may serve the same queue, so stopping must
/// not depend on in-band messages another pool could consume.
constexpr std::int64_t kClaimTimeoutMs = 25;

}  // namespace

WorkerPool::WorkerPool(TaskDb& db, std::string task_type, ModelFn model,
                       std::size_t n_workers, std::string pool_name,
                       osprey::util::RetryPolicy retry)
    : db_(db),
      type_(std::move(task_type)),
      model_(std::move(model)),
      name_(std::move(pool_name)),
      retry_(retry),
      busy_ns_(n_workers == 0 ? 1 : n_workers),
      task_counts_(n_workers == 0 ? 1 : n_workers),
      start_ns_(db.clock().now_ns()) {
  if (n_workers == 0) n_workers = 1;
  if (obs::TraceRecorder* tracer = db_.tracer()) {
    tracer->instant(obs::Category::kEmews, "pool-start:" + name_, start_ns_,
                    obs::kNoSpan,
                    std::to_string(n_workers) + " worker(s) on '" + type_ +
                        "'");
  }
  threads_.reserve(n_workers);
  for (std::size_t i = 0; i < n_workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  OSPREY_LOG_INFO("emews", "worker pool '" << name_ << "' started with "
                           << n_workers << " worker(s) on queue '" << type_
                           << "'");
}

WorkerPool::~WorkerPool() { shutdown(); }

void WorkerPool::worker_loop(std::size_t worker_index) {
  std::string worker_name =
      name_ + "/w" + std::to_string(worker_index);
  auto evaluate = [&](TaskId id) {
    TaskRecord rec = db_.snapshot(id);
    std::uint64_t t0 = now_ns();
    try {
      osprey::util::Value result = model_(rec.payload);
      db_.complete(id, std::move(result));
    } catch (const std::exception& e) {
      // Transient model/evaluation faults go back on the queue while
      // the retry budget lasts; any worker may pick the task up again.
      if (retry_.enabled() &&
          rec.requeues < static_cast<std::uint32_t>(retry_.max_attempts) &&
          db_.requeue(id)) {
        requeued_.fetch_add(1, std::memory_order_relaxed);
        OSPREY_LOG_WARN("emews", worker_name << " requeued task " << id
                                 << " (attempt " << rec.requeues + 1
                                 << "): " << e.what());
      } else {
        db_.fail(id, e.what());
      }
    }
    std::uint64_t dt = now_ns() - t0;
    busy_ns_[worker_index].fetch_add(dt, std::memory_order_relaxed);
    task_counts_[worker_index].fetch_add(1, std::memory_order_relaxed);
    evaluated_.fetch_add(1, std::memory_order_relaxed);
  };

  while (true) {
    std::optional<TaskId> id =
        db_.claim_for(type_, worker_name, kClaimTimeoutMs);
    if (id.has_value()) {
      evaluate(*id);
      continue;
    }
    if (db_.closed()) break;
    if (stopping_.load(std::memory_order_acquire)) {
      // Drain-then-stop: finish whatever is still queued, then exit.
      while (auto leftover = db_.try_claim(type_, worker_name)) {
        evaluate(*leftover);
      }
      break;
    }
  }
}

void WorkerPool::shutdown() {
  // Hold the mutex across the join: a concurrent second shutdown()
  // blocks until the workers are actually stopped, then no-ops.
  osprey::util::MutexLock lock(join_mutex_);
  if (joined_) return;
  joined_ = true;
  stopping_.store(true, std::memory_order_release);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  end_ns_.store(now_ns());
  if (obs::TraceRecorder* tracer = db_.tracer()) {
    tracer->instant(obs::Category::kEmews, "pool-stop:" + name_,
                    end_ns_.load(), obs::kNoSpan,
                    std::to_string(evaluated_.load()) + " task(s) evaluated");
  }
  OSPREY_LOG_INFO("emews", "worker pool '" << name_ << "' stopped after "
                           << evaluated_.load() << " task(s)");
}

double WorkerPool::utilization() const {
  std::uint64_t end = end_ns_.load();
  if (end == 0) end = now_ns();
  double span = static_cast<double>(end - start_ns_) *
                static_cast<double>(threads_.size());
  if (span <= 0.0) return 0.0;
  double busy = 0.0;
  for (const auto& b : busy_ns_) {
    busy += static_cast<double>(b.load(std::memory_order_relaxed));
  }
  return busy / span;
}

std::vector<WorkerStats> WorkerPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(threads_.size());
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    WorkerStats s;
    s.name = name_ + "/w" + std::to_string(i);
    s.tasks_evaluated = task_counts_[i].load(std::memory_order_relaxed);
    s.busy_ns = busy_ns_[i].load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace osprey::emews
