#pragma once

/// \file pool_launcher.hpp
/// Programmatic worker-pool startup through the batch scheduler — the
/// paper's "the ability to programmatically start a worker pool on a
/// compute node via an API call ... by submitting a job to the compute
/// resource scheduler (e.g., SLURM or PBS)".
///
/// The scheduler decides *when* the pool starts (virtual queue wait on
/// the simulated PBS); the pool's worker threads are real. stop() plays
/// the finalization role: drain, join, and release.

#include <memory>
#include <string>

#include "emews/worker_pool.hpp"
#include "fabric/scheduler.hpp"

namespace osprey::emews {

struct PoolLaunchSpec {
  std::string name = "worker-pool";
  std::size_t n_workers = 4;
  int nodes = 1;
  fabric::SimTime walltime = 12 * osprey::util::kHour;
  /// Virtual duration the pool job occupies its nodes (the reservation
  /// length requested from the scheduler).
  fabric::SimTime reservation = 8 * osprey::util::kHour;
};

/// Handle to a scheduler-launched pool. The pool object comes into
/// existence when the simulated scheduler starts the job, so callers
/// must drive the event loop past the queue wait before using pool().
class LaunchedPool {
 public:
  LaunchedPool(fabric::BatchScheduler& scheduler, TaskDb& db,
               const std::string& task_type, ModelFn model,
               PoolLaunchSpec spec);

  fabric::JobId job_id() const { return job_; }

  /// True once the scheduler has started the job and the workers exist.
  bool started() const { return static_cast<bool>(slot_->pool); }

  /// The running pool; throws if the job has not started yet.
  WorkerPool& pool();
  const WorkerPool& pool() const;

  /// Drain + join the workers (no-op if never started).
  void stop();

 private:
  struct Slot {
    std::shared_ptr<WorkerPool> pool;
  };

  fabric::JobId job_ = 0;
  std::shared_ptr<Slot> slot_;
};

}  // namespace osprey::emews
