#pragma once

/// \file task_db.hpp
/// The EMEWS task database: the decoupled heart of the model-exploration
/// framework. Model-exploration (ME) algorithms insert tasks; worker
/// pools on compute resources claim and evaluate them; results flow back
/// through the same database. Submission returns immediately (the
/// asynchronous Future pattern of §3.2); completion is signalled through
/// condition variables so pollers never spin.
///
/// Thread-safe: ME algorithm threads, worker threads and monitors may
/// call concurrently.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/value.hpp"

namespace osprey::emews {

using TaskId = std::uint64_t;

enum class TaskStatus { kQueued, kRunning, kComplete, kFailed, kCancelled };

const char* task_status_name(TaskStatus s);

/// Snapshot of one task's state.
struct TaskRecord {
  TaskId id = 0;
  std::string type;          // queue name, e.g. "metarvm"
  osprey::util::Value payload;
  int priority = 0;          // higher runs first
  TaskStatus status = TaskStatus::kQueued;
  osprey::util::Value result;
  std::string error;
  std::string worker;        // who evaluated it
  // Wall-clock nanoseconds (steady clock) for throughput accounting.
  std::uint64_t submitted_ns = 0;
  std::uint64_t started_ns = 0;
  std::uint64_t completed_ns = 0;
};

/// The task database.
class TaskDb {
 public:
  TaskDb() = default;
  TaskDb(const TaskDb&) = delete;
  TaskDb& operator=(const TaskDb&) = delete;

  /// Insert a task; returns its id immediately (the Future handle is
  /// built from this id).
  TaskId submit(const std::string& type, osprey::util::Value payload,
                int priority = 0);

  /// Claim the highest-priority queued task of `type`, blocking until
  /// one is available or the database is closed (-> nullopt). FIFO
  /// within a priority level.
  std::optional<TaskId> claim(const std::string& type,
                              const std::string& worker);

  /// Non-blocking claim.
  std::optional<TaskId> try_claim(const std::string& type,
                                  const std::string& worker);

  /// Claim with a timeout: blocks up to `timeout_ms` for a task of
  /// `type`, then returns nullopt. Lets worker pools poll a shared queue
  /// and still observe their own stop signal (multiple pools may serve
  /// one queue, so unblocking cannot rely on per-pool poison messages).
  std::optional<TaskId> claim_for(const std::string& type,
                                  const std::string& worker,
                                  std::int64_t timeout_ms);

  void complete(TaskId id, osprey::util::Value result);
  void fail(TaskId id, const std::string& error);
  /// Cancel a still-queued task; returns false if it already started.
  bool cancel(TaskId id);

  /// Copy of the task's current state.
  TaskRecord snapshot(TaskId id) const;
  /// True once the task is complete/failed/cancelled.
  bool is_done(TaskId id) const;
  /// Block until the task is done; returns its record.
  TaskRecord wait(TaskId id) const;

  /// Total finished tasks (complete + failed + cancelled); used by
  /// cooperative pollers to sleep until something new finishes.
  std::uint64_t finished_count() const;
  /// Block until finished_count() > `seen` or the database is closed.
  void wait_for_more_finished(std::uint64_t seen) const;

  std::size_t queued_count(const std::string& type) const;
  std::size_t total_submitted() const;

  /// Close the database: wakes all blocked claims/waits. Pending queued
  /// tasks are cancelled.
  void close();
  bool closed() const;

 private:
  TaskRecord& record_locked(TaskId id);
  const TaskRecord& record_locked(TaskId id) const;
  void finish_locked(TaskId id, TaskStatus status);

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;        // new task or close
  mutable std::condition_variable done_cv_; // task finished or close
  std::vector<TaskRecord> tasks_;
  // type -> priority -> FIFO of task ids (higher priority first).
  std::map<std::string, std::map<int, std::deque<TaskId>, std::greater<int>>>
      queues_;
  std::uint64_t finished_ = 0;
  bool closed_ = false;
};

}  // namespace osprey::emews
