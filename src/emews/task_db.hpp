#pragma once

/// \file task_db.hpp
/// The EMEWS task database: the decoupled heart of the model-exploration
/// framework. Model-exploration (ME) algorithms insert tasks; worker
/// pools on compute resources claim and evaluate them; results flow back
/// through the same database. Submission returns immediately (the
/// asynchronous Future pattern of §3.2); completion is signalled through
/// condition variables so pollers never spin.
///
/// Thread-safe: ME algorithm threads, worker threads and monitors may
/// call concurrently. The lock discipline is machine-checked — every
/// mutable member is OSPREY_GUARDED_BY(mutex_) and the
/// OSPREY_THREAD_SAFETY build rejects unguarded access at compile time.
///
/// Timestamps come from an injected util::Clock (default: the process
/// real clock), so simulated runs driven by a util::SimClock are
/// bit-replayable; no std::chrono clock is named in this layer.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/annotations.hpp"
#include "util/clock.hpp"
#include "util/mutex.hpp"
#include "util/value.hpp"

namespace osprey::emews {

using TaskId = std::uint64_t;

enum class TaskStatus { kQueued, kRunning, kComplete, kFailed, kCancelled };

const char* task_status_name(TaskStatus s);

/// Snapshot of one task's state.
struct TaskRecord {
  TaskId id = 0;
  std::string type;          // queue name, e.g. "metarvm"
  osprey::util::Value payload;
  int priority = 0;          // higher runs first
  TaskStatus status = TaskStatus::kQueued;
  osprey::util::Value result;
  std::string error;
  std::string worker;        // who evaluated it
  /// How often the task was returned to the queue by requeue().
  std::uint32_t requeues = 0;
  // Clock nanoseconds (injected util::Clock) for throughput accounting.
  std::uint64_t submitted_ns = 0;
  std::uint64_t started_ns = 0;
  std::uint64_t completed_ns = 0;
  /// Lifecycle span from claim to completion (kNoSpan without a tracer).
  obs::SpanId trace_span = obs::kNoSpan;
};

/// The task database.
class TaskDb {
 public:
  /// `clock` stamps task lifecycle events; nullptr selects the process
  /// real clock. Pass a util::SimClock for deterministic simulated runs.
  explicit TaskDb(const osprey::util::Clock* clock = nullptr)
      : clock_(clock != nullptr ? clock : &osprey::util::real_clock()) {}
  TaskDb(const TaskDb&) = delete;
  TaskDb& operator=(const TaskDb&) = delete;

  /// The clock stamping this database's records (shared with worker
  /// pools so busy-time accounting uses the same time base).
  const osprey::util::Clock& clock() const { return *clock_; }

  /// Insert a task; returns its id immediately (the Future handle is
  /// built from this id).
  TaskId submit(const std::string& type, osprey::util::Value payload,
                int priority = 0);

  /// Claim the highest-priority queued task of `type`, blocking until
  /// one is available or the database is closed (-> nullopt). FIFO
  /// within a priority level.
  std::optional<TaskId> claim(const std::string& type,
                              const std::string& worker);

  /// Non-blocking claim.
  std::optional<TaskId> try_claim(const std::string& type,
                                  const std::string& worker);

  /// Claim with a timeout: blocks up to `timeout_ms` for a task of
  /// `type`, then returns nullopt. Lets worker pools poll a shared queue
  /// and still observe their own stop signal (multiple pools may serve
  /// one queue, so unblocking cannot rely on per-pool poison messages).
  std::optional<TaskId> claim_for(const std::string& type,
                                  const std::string& worker,
                                  std::int64_t timeout_ms);

  void complete(TaskId id, osprey::util::Value result);
  void fail(TaskId id, const std::string& error);
  /// Cancel a still-queued task; returns false if it already started.
  bool cancel(TaskId id);
  /// Return a running task to its queue (e.g. its worker died or was
  /// preempted); it becomes claimable again at its original priority,
  /// behind tasks already queued at that priority. Returns false if the
  /// task is not currently running.
  bool requeue(TaskId id);

  /// Copy of the task's current state.
  TaskRecord snapshot(TaskId id) const;
  /// True once the task is complete/failed/cancelled.
  bool is_done(TaskId id) const;
  /// Block until the task is done; returns its record.
  TaskRecord wait(TaskId id) const;

  /// Total finished tasks (complete + failed + cancelled); used by
  /// cooperative pollers to sleep until something new finishes.
  std::uint64_t finished_count() const;
  /// Block until finished_count() > `seen` or the database is closed.
  void wait_for_more_finished(std::uint64_t seen) const;

  std::size_t queued_count(const std::string& type) const;
  std::size_t total_submitted() const;

  /// Close the database: wakes all blocked claims/waits. Pending queued
  /// tasks are cancelled.
  void close();
  bool closed() const;

  /// Attach a trace recorder (non-owning; nullptr detaches). Submissions
  /// become "submit:<type>" instants; each claim opens a "task:<type>"
  /// span that closes on complete/fail/requeue. Timestamps come from
  /// this database's injected clock.
  void set_tracer(obs::TraceRecorder* tracer);
  obs::TraceRecorder* tracer() const;

 private:
  TaskRecord& record_locked(TaskId id) OSPREY_REQUIRES(mutex_);
  const TaskRecord& record_locked(TaskId id) const OSPREY_REQUIRES(mutex_);
  void finish_locked(TaskId id, TaskStatus status) OSPREY_REQUIRES(mutex_);
  /// Pop the highest-priority queued id of `type`, mark it running by
  /// `worker`; nullopt when nothing is queued.
  std::optional<TaskId> claim_locked(const std::string& type,
                                     const std::string& worker)
      OSPREY_REQUIRES(mutex_);

  const osprey::util::Clock* clock_;
  mutable osprey::util::Mutex mutex_;
  osprey::util::CondVar queue_cv_;         // new task or close
  mutable osprey::util::CondVar done_cv_;  // task finished or close
  std::vector<TaskRecord> tasks_ OSPREY_GUARDED_BY(mutex_);
  // type -> priority -> FIFO of task ids (higher priority first).
  std::map<std::string, std::map<int, std::deque<TaskId>, std::greater<int>>>
      queues_ OSPREY_GUARDED_BY(mutex_);
  std::uint64_t finished_ OSPREY_GUARDED_BY(mutex_) = 0;
  bool closed_ OSPREY_GUARDED_BY(mutex_) = false;
  obs::TraceRecorder* tracer_ OSPREY_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace osprey::emews
