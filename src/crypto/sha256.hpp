#pragma once

/// \file sha256.hpp
/// From-scratch SHA-256 (FIPS 180-4). AERO stores a checksum with every
/// data version; the simulated Globus transfer layer verifies payload
/// integrity with the same digests.

#include <array>
#include <cstdint>
#include <string>

namespace osprey::crypto {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorb `len` bytes.
  void update(const void* data, std::size_t len);
  void update(const std::string& s) { update(s.data(), s.size()); }

  /// Finalize and return the 32-byte digest. The hasher must not be
  /// updated afterwards (reset() to reuse).
  std::array<std::uint8_t, 32> digest();

  /// Finalize and return the digest as lowercase hex.
  std::string hex_digest();

  void reset();

  /// One-shot convenience: hex digest of a string payload.
  static std::string hash_hex(const std::string& payload);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finalized_ = false;
};

}  // namespace osprey::crypto
