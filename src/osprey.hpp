#pragma once

/// \file osprey.hpp
/// Umbrella header: the whole OSPREY reproduction behind one include.
/// Fine for applications and examples; library code should include the
/// specific module headers instead.

// Utility substrate
#include "util/channel.hpp"     // IWYU pragma: export
#include "util/csv.hpp"         // IWYU pragma: export
#include "util/error.hpp"       // IWYU pragma: export
#include "util/file_io.hpp"     // IWYU pragma: export
#include "util/log.hpp"         // IWYU pragma: export
#include "util/sim_time.hpp"    // IWYU pragma: export
#include "util/string_util.hpp" // IWYU pragma: export
#include "util/table.hpp"       // IWYU pragma: export
#include "util/thread_pool.hpp" // IWYU pragma: export
#include "util/uuid.hpp"        // IWYU pragma: export
#include "util/value.hpp"       // IWYU pragma: export

// Crypto + numerics
#include "crypto/sha256.hpp"    // IWYU pragma: export
#include "num/cholesky.hpp"     // IWYU pragma: export
#include "num/legendre.hpp"     // IWYU pragma: export
#include "num/optim.hpp"        // IWYU pragma: export
#include "num/rng.hpp"          // IWYU pragma: export
#include "num/sampling.hpp"     // IWYU pragma: export
#include "num/special.hpp"      // IWYU pragma: export
#include "num/stats.hpp"        // IWYU pragma: export
#include "num/vecmat.hpp"       // IWYU pragma: export

// Simulated research fabric (Globus-like services + PBS)
#include "fabric/auth.hpp"       // IWYU pragma: export
#include "fabric/compute.hpp"    // IWYU pragma: export
#include "fabric/event_loop.hpp" // IWYU pragma: export
#include "fabric/flows.hpp"      // IWYU pragma: export
#include "fabric/scheduler.hpp"  // IWYU pragma: export
#include "fabric/storage.hpp"    // IWYU pragma: export
#include "fabric/timer.hpp"      // IWYU pragma: export
#include "fabric/transfer.hpp"   // IWYU pragma: export

// Orchestration layers
#include "aero/metadata_db.hpp"   // IWYU pragma: export
#include "aero/server.hpp"        // IWYU pragma: export
#include "aero/source.hpp"        // IWYU pragma: export
#include "emews/interleave.hpp"   // IWYU pragma: export
#include "emews/pool_launcher.hpp"// IWYU pragma: export
#include "emews/task_api.hpp"     // IWYU pragma: export
#include "emews/task_db.hpp"      // IWYU pragma: export
#include "emews/worker_pool.hpp"  // IWYU pragma: export

// Science payloads
#include "epi/kernels.hpp"        // IWYU pragma: export
#include "epi/metarvm.hpp"        // IWYU pragma: export
#include "epi/seir.hpp"           // IWYU pragma: export
#include "epi/wastewater.hpp"     // IWYU pragma: export
#include "gp/gp.hpp"              // IWYU pragma: export
#include "gp/kernel.hpp"          // IWYU pragma: export
#include "gsa/calibrate.hpp"      // IWYU pragma: export
#include "gsa/music.hpp"          // IWYU pragma: export
#include "gsa/pce.hpp"            // IWYU pragma: export
#include "gsa/sobol.hpp"          // IWYU pragma: export
#include "rt/cori.hpp"            // IWYU pragma: export
#include "rt/deconvolution.hpp"   // IWYU pragma: export
#include "rt/ensemble.hpp"        // IWYU pragma: export
#include "rt/forecast.hpp"        // IWYU pragma: export
#include "rt/goldstein.hpp"       // IWYU pragma: export
#include "rt/posterior.hpp"       // IWYU pragma: export

// Platform + use cases
#include "core/artifact_catalog.hpp" // IWYU pragma: export
#include "core/harness.hpp"          // IWYU pragma: export
#include "core/metarvm_gsa.hpp"      // IWYU pragma: export
#include "core/music_coop.hpp"       // IWYU pragma: export
#include "core/platform.hpp"         // IWYU pragma: export
#include "core/usecase_gsa.hpp"      // IWYU pragma: export
#include "core/usecase_ww.hpp"       // IWYU pragma: export
#include "core/wastewater_source.hpp"// IWYU pragma: export
