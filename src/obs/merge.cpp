#include "obs/merge.hpp"

#include <cstdio>
#include <map>
#include <set>

#include "obs/export.hpp"
#include "util/error.hpp"

namespace osprey::obs {

using osprey::util::Value;
using osprey::util::ValueObject;

namespace {

void require_unique_labels(const std::vector<std::string>& labels) {
  std::set<std::string> seen;
  for (const std::string& label : labels) {
    OSPREY_REQUIRE(seen.insert(label).second,
                   "duplicate shard label in merge: " + label);
  }
}

// Same deterministic formatting as the single-registry exposition
// (integers without a fraction, %.17g otherwise).
std::string format_number(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Sorted union of one metric kind's names across every source.
template <typename NamesFn>
std::vector<std::string> name_union(
    const std::vector<LabeledRegistry>& sources, NamesFn names) {
  std::set<std::string> all;
  for (const LabeledRegistry& src : sources) {
    for (const std::string& n : names(*src.registry)) all.insert(n);
  }
  return {all.begin(), all.end()};
}

void append_family_header(std::string& out,
                          const std::vector<LabeledRegistry>& sources,
                          const std::string& name, const char* type) {
  for (const LabeledRegistry& src : sources) {
    const std::string help = src.registry->help(name);
    if (!help.empty()) {
      out += "# HELP " + name + " " + help + "\n";
      break;
    }
  }
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

}  // namespace

std::vector<SpanRecord> merge_labeled_spans(
    std::vector<LabeledSpans> sources) {
  std::vector<std::string> labels;
  labels.reserve(sources.size());
  for (const LabeledSpans& src : sources) labels.push_back(src.label);
  require_unique_labels(labels);

  std::vector<SpanRecord> merged;
  SpanId offset = 0;
  for (LabeledSpans& src : sources) {
    SpanId max_id = 0;
    for (SpanRecord& s : src.spans) {
      if (s.shard.empty()) s.shard = src.label;
      if (s.id != kNoSpan) {
        if (s.id > max_id) max_id = s.id;
        s.id += offset;
      }
      if (s.parent != kNoSpan) s.parent += offset;
      merged.push_back(std::move(s));
    }
    offset += max_id;
  }
  return canonical_spans(std::move(merged));
}

Value merged_metrics_snapshot(const std::vector<LabeledRegistry>& sources) {
  std::vector<std::string> labels;
  labels.reserve(sources.size());
  for (const LabeledRegistry& src : sources) labels.push_back(src.label);
  require_unique_labels(labels);

  ValueObject shards;
  std::map<std::string, std::uint64_t> counter_totals;
  for (const LabeledRegistry& src : sources) {
    shards[src.label] = src.registry->snapshot();
    for (const std::string& name : src.registry->counter_names()) {
      counter_totals[name] += src.registry->find_counter(name)->value();
    }
  }
  ValueObject totals_counters;
  for (const auto& [name, total] : counter_totals) {
    totals_counters[name] = Value(static_cast<std::int64_t>(total));
  }
  ValueObject totals;
  totals["counters"] = Value(std::move(totals_counters));
  ValueObject out;
  out["shards"] = Value(std::move(shards));
  out["totals"] = Value(std::move(totals));
  return Value(std::move(out));
}

std::string prometheus_text_sharded(
    const std::vector<LabeledRegistry>& sources) {
  std::vector<std::string> labels;
  labels.reserve(sources.size());
  for (const LabeledRegistry& src : sources) labels.push_back(src.label);
  require_unique_labels(labels);

  std::string out;
  for (const std::string& name : name_union(sources, [](const auto& r) {
         return r.counter_names();
       })) {
    append_family_header(out, sources, name, "counter");
    for (const LabeledRegistry& src : sources) {
      const Counter* c = src.registry->find_counter(name);
      if (c == nullptr) continue;
      out += name + "{shard=\"" + src.label + "\"} " +
             format_number(static_cast<double>(c->value())) + "\n";
    }
  }
  for (const std::string& name : name_union(sources, [](const auto& r) {
         return r.gauge_names();
       })) {
    append_family_header(out, sources, name, "gauge");
    for (const LabeledRegistry& src : sources) {
      const Gauge* g = src.registry->find_gauge(name);
      if (g == nullptr) continue;
      out += name + "{shard=\"" + src.label + "\"} " +
             format_number(g->value()) + "\n";
    }
  }
  for (const std::string& name : name_union(sources, [](const auto& r) {
         return r.histogram_names();
       })) {
    append_family_header(out, sources, name, "histogram");
    for (const LabeledRegistry& src : sources) {
      const Histogram* h = src.registry->find_histogram(name);
      if (h == nullptr) continue;
      const std::string shard_label = "shard=\"" + src.label + "\"";
      const std::vector<double> bounds = h->bounds();
      const std::vector<std::uint64_t> buckets = h->bucket_counts();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += buckets[i];
        out += name + "_bucket{" + shard_label + ",le=\"" +
               format_number(bounds[i]) + "\"} " +
               format_number(static_cast<double>(cumulative)) + "\n";
      }
      cumulative += buckets.back();
      out += name + "_bucket{" + shard_label + ",le=\"+Inf\"} " +
             format_number(static_cast<double>(cumulative)) + "\n";
      out += name + "_sum{" + shard_label + "} " + format_number(h->sum()) +
             "\n";
      out += name + "_count{" + shard_label + "} " +
             format_number(static_cast<double>(h->count())) + "\n";
    }
  }
  return out;
}

}  // namespace osprey::obs
