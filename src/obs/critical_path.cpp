#include "obs/critical_path.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "obs/export.hpp"
#include "util/sim_time.hpp"
#include "util/table.hpp"

namespace osprey::obs {

using osprey::util::Value;
using osprey::util::ValueArray;
using osprey::util::ValueObject;

namespace {

std::string ns_to_text(std::uint64_t ns) {
  // Trace times are virtual SimTime milliseconds scaled to ns.
  return osprey::util::format_duration(
      static_cast<osprey::util::SimTime>(ns / 1'000'000ull));
}

}  // namespace

CriticalPathReport analyze(std::vector<SpanRecord> spans, std::size_t top_k) {
  CriticalPathReport report;
  const std::vector<SpanRecord> canon = canonical_spans(std::move(spans));

  std::vector<SpanRecord> closed;
  closed.reserve(canon.size());
  for (const SpanRecord& s : canon) {
    if (s.instant) {
      ++report.instant_count;
      continue;
    }
    if (s.open) {
      ++report.open_count;
      continue;
    }
    closed.push_back(s);
  }
  report.span_count = closed.size();
  if (closed.empty()) return report;

  report.trace_begin_ns = closed.front().begin_ns;
  for (const SpanRecord& s : closed) {
    const std::string cat = category_name(s.category);
    report.category_ns[cat] += s.duration_ns();
    report.category_spans[cat] += 1;
    report.trace_begin_ns = std::min(report.trace_begin_ns, s.begin_ns);
    report.trace_end_ns = std::max(report.trace_end_ns, s.end_ns);
  }
  report.makespan_ns = report.trace_end_ns - report.trace_begin_ns;

  // Longest chain of non-overlapping spans: sort by end time, then for
  // each span take the best chain among spans ending at or before its
  // begin (prefix maximum over the end-sorted order).
  std::vector<std::size_t> order(closed.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(closed[a].end_ns, closed[a].begin_ns, closed[a].id) <
           std::tie(closed[b].end_ns, closed[b].begin_ns, closed[b].id);
  });
  std::vector<std::uint64_t> ends(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    ends[i] = closed[order[i]].end_ns;
  }
  std::vector<std::uint64_t> chain(order.size(), 0);
  // prefix_best[i]: position (in `order`) of the best chain among the
  // first i+1 spans; kNone when none.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> prefix_best(order.size(), kNone);
  std::vector<std::size_t> pred(order.size(), kNone);
  std::size_t best_pos = kNone;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const SpanRecord& s = closed[order[i]];
    // Spans ending at or before s.begin_ns occupy ends[0..j).
    const auto it = std::upper_bound(ends.begin(), ends.begin() +
                                         static_cast<std::ptrdiff_t>(i),
                                     s.begin_ns);
    const std::size_t j = static_cast<std::size_t>(it - ends.begin());
    std::uint64_t base = 0;
    if (j > 0 && prefix_best[j - 1] != kNone) {
      pred[i] = prefix_best[j - 1];
      base = chain[prefix_best[j - 1]];
    }
    chain[i] = base + s.duration_ns();
    prefix_best[i] =
        (i > 0 && prefix_best[i - 1] != kNone &&
         chain[prefix_best[i - 1]] >= chain[i])
            ? prefix_best[i - 1]
            : i;
    if (best_pos == kNone || chain[i] > chain[best_pos]) best_pos = i;
  }
  for (std::size_t pos = best_pos; pos != kNone; pos = pred[pos]) {
    report.path.push_back(closed[order[pos]]);
  }
  std::reverse(report.path.begin(), report.path.end());
  report.path_ns = chain[best_pos];

  std::vector<SpanRecord> by_duration = closed;
  std::sort(by_duration.begin(), by_duration.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              const std::uint64_t da = a.duration_ns();
              const std::uint64_t db = b.duration_ns();
              if (da != db) return da > db;
              return std::tie(a.begin_ns, a.name, a.id) <
                     std::tie(b.begin_ns, b.name, b.id);
            });
  if (by_duration.size() > top_k) by_duration.resize(top_k);
  report.top_spans = std::move(by_duration);
  return report;
}

std::string render_report(const CriticalPathReport& report) {
  std::string out;
  out += osprey::util::banner("trace summary");
  out += "spans: " + std::to_string(report.span_count) +
         " closed, " + std::to_string(report.open_count) + " open, " +
         std::to_string(report.instant_count) + " instants\n";
  if (report.span_count == 0) return out;
  out += "trace begin: " + ns_to_text(report.trace_begin_ns) +
         "   end: " + ns_to_text(report.trace_end_ns) + "\n";
  out += "makespan: " + ns_to_text(report.makespan_ns) + "\n";
  out += "critical path: " + std::to_string(report.path.size()) +
         " span(s), " + ns_to_text(report.path_ns) + " (" +
         osprey::util::TextTable::num(
             report.makespan_ns == 0
                 ? 0.0
                 : 100.0 * static_cast<double>(report.path_ns) /
                       static_cast<double>(report.makespan_ns),
             1) +
         "% of makespan)\n";

  out += osprey::util::banner("per-category time");
  {
    osprey::util::TextTable table({"category", "spans", "total"});
    for (const auto& [cat, ns] : report.category_ns) {
      table.add_row({cat, std::to_string(report.category_spans.at(cat)),
                     ns_to_text(ns)});
    }
    out += table.render();
  }

  out += osprey::util::banner("critical path");
  {
    osprey::util::TextTable table(
        {"begin", "duration", "category", "name", "ok"});
    for (const SpanRecord& s : report.path) {
      table.add_row({ns_to_text(s.begin_ns), ns_to_text(s.duration_ns()),
                     category_name(s.category), s.name, s.ok ? "yes" : "NO"});
    }
    out += table.render();
  }

  out += osprey::util::banner("top spans by duration");
  {
    osprey::util::TextTable table(
        {"duration", "begin", "category", "name", "detail"});
    for (const SpanRecord& s : report.top_spans) {
      table.add_row({ns_to_text(s.duration_ns()), ns_to_text(s.begin_ns),
                     category_name(s.category), s.name, s.detail});
    }
    out += table.render();
  }
  return out;
}

Value report_json(const CriticalPathReport& report) {
  ValueObject out;
  out["span_count"] = report.span_count;
  out["open_count"] = report.open_count;
  out["instant_count"] = report.instant_count;
  out["trace_begin_ms"] =
      static_cast<std::int64_t>(report.trace_begin_ns / 1'000'000ull);
  out["trace_end_ms"] =
      static_cast<std::int64_t>(report.trace_end_ns / 1'000'000ull);
  out["makespan_ms"] =
      static_cast<std::int64_t>(report.makespan_ns / 1'000'000ull);
  out["critical_path_ms"] =
      static_cast<std::int64_t>(report.path_ns / 1'000'000ull);
  ValueObject categories;
  for (const auto& [cat, ns] : report.category_ns) {
    ValueObject entry;
    entry["spans"] = report.category_spans.at(cat);
    entry["total_ms"] = static_cast<std::int64_t>(ns / 1'000'000ull);
    categories[cat] = std::move(entry);
  }
  out["categories"] = std::move(categories);
  ValueArray path;
  for (const SpanRecord& s : report.path) {
    ValueObject entry;
    entry["name"] = s.name;
    entry["category"] = category_name(s.category);
    entry["begin_ms"] = static_cast<std::int64_t>(s.begin_ns / 1'000'000ull);
    entry["duration_ms"] =
        static_cast<std::int64_t>(s.duration_ns() / 1'000'000ull);
    entry["ok"] = s.ok;
    path.emplace_back(std::move(entry));
  }
  out["critical_path"] = std::move(path);
  return out;
}

}  // namespace osprey::obs
