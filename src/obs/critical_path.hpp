#pragma once

/// \file critical_path.hpp
/// Critical-path analysis over a recorded (or imported) span set — the
/// machine-checked version of the paper's Figure-1 timeline reading:
/// which dependency chain of operations determined the workflow's
/// makespan, where did the time go per category, and which individual
/// spans dominated.
///
/// The dependency model is temporal: span B depends on span A when A
/// ended no later than B began (the fabric's event loop only starts an
/// operation when its prerequisites completed, so happens-before in
/// virtual time subsumes the explicit parent/child links). The critical
/// path is the maximum-duration chain of pairwise non-overlapping
/// spans, computed by a prefix-max DP over end-time order (O(n log n)).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/value.hpp"

namespace osprey::obs {

struct CriticalPathReport {
  // Extent of the trace over closed, non-instant spans.
  std::uint64_t trace_begin_ns = 0;
  std::uint64_t trace_end_ns = 0;
  /// trace_end_ns - trace_begin_ns: the workflow's end-to-end time.
  std::uint64_t makespan_ns = 0;

  /// The critical path, in time order; path_ns sums its durations.
  std::vector<SpanRecord> path;
  std::uint64_t path_ns = 0;

  /// Per-category totals over all closed spans (keys: category names,
  /// sorted). Totals can exceed the makespan when spans overlap.
  std::map<std::string, std::uint64_t> category_ns;
  std::map<std::string, std::uint64_t> category_spans;

  /// Top-k spans by duration (ties broken by begin time, then name).
  std::vector<SpanRecord> top_spans;

  std::size_t span_count = 0;     // closed, non-instant spans analyzed
  std::size_t open_count = 0;     // spans still open (excluded)
  std::size_t instant_count = 0;  // instant events (excluded)
};

/// Analyze a span set (canonicalized internally, so the result is
/// deterministic regardless of recording order).
CriticalPathReport analyze(std::vector<SpanRecord> spans,
                           std::size_t top_k = 10);

/// Human-readable report (makespan, critical path table, per-category
/// breakdown, top-k spans).
std::string render_report(const CriticalPathReport& report);

/// JSON form (used by the BENCH_*.json snapshots and osprey_trace
/// --json).
osprey::util::Value report_json(const CriticalPathReport& report);

}  // namespace osprey::obs
