#include "obs/metrics.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace osprey::obs {

using osprey::util::MutexLock;
using osprey::util::Value;
using osprey::util::ValueArray;
using osprey::util::ValueObject;

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  OSPREY_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    OSPREY_REQUIRE(bounds_[i - 1] < bounds_[i],
                   "histogram bounds must be strictly increasing");
  }
}

void Histogram::observe(double x) {
  // First bucket whose upper bound is >= x (le semantics); past the
  // last bound the sample lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  MutexLock lock(mutex_);
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

std::uint64_t Histogram::count() const {
  MutexLock lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  MutexLock lock(mutex_);
  return min_;
}

double Histogram::max() const {
  MutexLock lock(mutex_);
  return max_;
}

std::vector<double> Histogram::bounds() const { return bounds_; }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  MutexLock lock(mutex_);
  return buckets_;
}

double Histogram::quantile(double q) const {
  OSPREY_REQUIRE(q >= 0.0 && q <= 1.0, "quantile wants q in [0,1]");
  MutexLock lock(mutex_);
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double before = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const double in_bucket = static_cast<double>(buckets_[b]);
    if (in_bucket == 0.0 || before + in_bucket < target) {
      before += in_bucket;
      continue;
    }
    // Interpolate within [lo, hi]; the first bucket starts at the
    // observed min and the overflow bucket ends at the observed max.
    const double lo = b == 0 ? min_ : bounds_[b - 1];
    const double hi = b < bounds_.size() ? bounds_[b] : max_;
    const double frac = (target - before) / in_bucket;
    const double v = lo + frac * (hi - lo);
    return std::clamp(v, min_, max_);
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    check_kind_locked(name, "counter");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    check_kind_locked(name, "gauge");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& help) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    check_kind_locked(name, "histogram");
    it = histograms_
             .emplace(name,
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
    if (!help.empty()) help_[name] = help;
  }
  return *it->second;
}

void MetricsRegistry::check_kind_locked(const std::string& name,
                                        const char* kind) const {
  const bool taken = counters_.count(name) != 0 || gauges_.count(name) != 0 ||
                     histograms_.count(name) != 0;
  if (taken) {
    throw osprey::util::InvalidArgument(
        "metric name already registered under a different kind: " + name +
        " (requested " + kind + ")");
  }
}

std::string MetricsRegistry::help(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = help_.find(name);
  return it == help_.end() ? std::string() : it->second;
}

Value MetricsRegistry::snapshot() const {
  MutexLock lock(mutex_);
  ValueObject counters;
  for (const auto& [name, c] : counters_) {
    counters[name] = static_cast<std::int64_t>(c->value());
  }
  ValueObject gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  ValueObject histograms;
  for (const auto& [name, h] : histograms_) {
    ValueObject entry;
    entry["count"] = static_cast<std::int64_t>(h->count());
    entry["sum"] = h->sum();
    entry["bounds"] = Value::from_doubles(h->bounds());
    ValueArray buckets;
    for (std::uint64_t b : h->bucket_counts()) {
      buckets.emplace_back(static_cast<std::int64_t>(b));
    }
    entry["buckets"] = std::move(buckets);
    histograms[name] = std::move(entry);
  }
  ValueObject out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  return out;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

}  // namespace osprey::obs
