#pragma once

/// \file metrics.hpp
/// Counters, gauges and fixed-bucket histograms with deterministic
/// snapshot ordering (metric names sorted; bucket bounds fixed at
/// registration). Instruments are owned by a MetricsRegistry and live
/// as long as it does, so services bind `Counter*`/`Histogram*` once at
/// wiring time and increment lock-free afterwards. The Prometheus text
/// exporter lives in obs/export.hpp.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/value.hpp"

namespace osprey::obs {

/// Monotonic event counter (lock-free).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (lock-free set/add; e.g. open circuit breakers).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Buckets are defined by strictly increasing
/// upper bounds plus an implicit +Inf overflow bucket; a sample equal
/// to a bound lands in that bound's bucket (Prometheus `le` semantics).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing
  /// (InvalidArgument otherwise).
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty

  /// Upper bounds as registered (without the implicit +Inf).
  std::vector<double> bounds() const;
  /// Per-bucket counts, size bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;

  /// Approximate q-quantile (q in [0,1]) by linear interpolation within
  /// the bucket containing the target rank, clamped to the observed
  /// [min, max]. Returns 0 for an empty histogram.
  double quantile(double q) const;

 private:
  mutable osprey::util::Mutex mutex_;
  std::vector<double> bounds_;  // immutable after construction
  std::vector<std::uint64_t> buckets_ OSPREY_GUARDED_BY(mutex_);
  std::uint64_t count_ OSPREY_GUARDED_BY(mutex_) = 0;
  double sum_ OSPREY_GUARDED_BY(mutex_) = 0.0;
  double min_ OSPREY_GUARDED_BY(mutex_) = 0.0;
  double max_ OSPREY_GUARDED_BY(mutex_) = 0.0;
};

/// Named instrument registry. Instruments are created on first use and
/// returned by reference on later calls with the same name; references
/// stay valid for the registry's lifetime. Registering the same name
/// under a different instrument kind throws InvalidArgument. Names are
/// kept in a std::map, so snapshots and the Prometheus exposition
/// iterate in a deterministic (sorted) order.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = {});
  Gauge& gauge(const std::string& name, const std::string& help = {});
  /// `upper_bounds` is used on first registration only; later calls
  /// with the same name return the existing histogram.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const std::string& help = {});

  /// Help string registered for `name` (empty if none).
  std::string help(const std::string& name) const;

  /// Deterministic JSON-able snapshot:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, bounds, buckets}}}
  osprey::util::Value snapshot() const;

  std::size_t size() const;

  /// Sorted names per kind (for exporters).
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

 private:
  void check_kind_locked(const std::string& name, const char* kind) const
      OSPREY_REQUIRES(mutex_);

  mutable osprey::util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      OSPREY_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      OSPREY_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      OSPREY_GUARDED_BY(mutex_);
  std::map<std::string, std::string> help_ OSPREY_GUARDED_BY(mutex_);
};

}  // namespace osprey::obs
