#include "obs/trace.hpp"

#include <utility>

namespace osprey::obs {

namespace {
// One slot per thread, shared by all recorders in the process: the
// platform owns a single recorder, and guards are strictly nested, so
// a per-recorder map would buy nothing but lookups on the hot path.
thread_local SpanId t_current_span = kNoSpan;
}  // namespace

const char* category_name(Category category) {
  switch (category) {
    case Category::kTransfer: return "transfer";
    case Category::kCompute:  return "compute";
    case Category::kFlow:     return "flow";
    case Category::kAero:     return "aero";
    case Category::kEmews:    return "emews";
    case Category::kGsa:      return "gsa";
    case Category::kServe:    return "serve";
    case Category::kOther:    return "other";
  }
  return "other";
}

Category category_from_name(const std::string& name) {
  for (int i = 0; i < kNumCategories; ++i) {
    const auto c = static_cast<Category>(i);
    if (name == category_name(c)) return c;
  }
  return Category::kOther;
}

SpanId current_span() { return t_current_span; }

SpanId TraceRecorder::begin_span(Category category, std::string name,
                                 std::uint64_t begin_ns, SpanId parent,
                                 std::string detail) {
  if (!enabled()) return kNoSpan;
  if (parent == kInheritParent) parent = t_current_span;
  const osprey::util::Clock* wall = wall_.load(std::memory_order_acquire);
  SpanRecord rec;
  rec.parent = parent;
  rec.category = category;
  rec.name = std::move(name);
  rec.begin_ns = begin_ns;
  rec.end_ns = begin_ns;
  rec.open = true;
  rec.detail = std::move(detail);
  if (wall != nullptr) rec.wall_begin_ns = wall->now_ns();
  osprey::util::MutexLock lock(mutex_);
  rec.shard = shard_label_;
  rec.id = static_cast<SpanId>(spans_.size()) + 1;
  spans_.push_back(std::move(rec));
  ++open_;
  return spans_.back().id;
}

void TraceRecorder::set_shard_label(std::string label) {
  osprey::util::MutexLock lock(mutex_);
  shard_label_ = std::move(label);
}

std::string TraceRecorder::shard_label() const {
  osprey::util::MutexLock lock(mutex_);
  return shard_label_;
}

void TraceRecorder::end_span(SpanId id, std::uint64_t end_ns, bool ok,
                             const std::string& error) {
  if (id == kNoSpan) return;
  const osprey::util::Clock* wall = wall_.load(std::memory_order_acquire);
  osprey::util::MutexLock lock(mutex_);
  if (id > spans_.size()) return;
  SpanRecord& rec = spans_[id - 1];
  if (!rec.open) return;
  rec.open = false;
  rec.ok = ok;
  rec.end_ns = end_ns;
  if (!error.empty()) rec.detail = error;
  if (wall != nullptr) rec.wall_end_ns = wall->now_ns();
  --open_;
}

SpanId TraceRecorder::instant(Category category, std::string name,
                              std::uint64_t at_ns, SpanId parent,
                              std::string detail) {
  if (!enabled()) return kNoSpan;
  if (parent == kInheritParent) parent = t_current_span;
  const osprey::util::Clock* wall = wall_.load(std::memory_order_acquire);
  SpanRecord rec;
  rec.parent = parent;
  rec.category = category;
  rec.name = std::move(name);
  rec.begin_ns = at_ns;
  rec.end_ns = at_ns;
  rec.instant = true;
  rec.detail = std::move(detail);
  if (wall != nullptr) {
    rec.wall_begin_ns = wall->now_ns();
    rec.wall_end_ns = rec.wall_begin_ns;
  }
  osprey::util::MutexLock lock(mutex_);
  rec.shard = shard_label_;
  rec.id = static_cast<SpanId>(spans_.size()) + 1;
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
  osprey::util::MutexLock lock(mutex_);
  return spans_;
}

std::size_t TraceRecorder::span_count() const {
  osprey::util::MutexLock lock(mutex_);
  return spans_.size();
}

std::size_t TraceRecorder::open_count() const {
  osprey::util::MutexLock lock(mutex_);
  return open_;
}

void TraceRecorder::clear() {
  osprey::util::MutexLock lock(mutex_);
  spans_.clear();
  open_ = 0;
}

CurrentSpanGuard::CurrentSpanGuard(SpanId span) : previous_(t_current_span) {
  t_current_span = span;
}

CurrentSpanGuard::~CurrentSpanGuard() { t_current_span = previous_; }

osprey::util::LogSink make_trace_log_sink(TraceRecorder& recorder,
                                          const osprey::util::Clock& clock) {
  return [&recorder, &clock](osprey::util::LogLevel level,
                             const std::string& component,
                             const std::string& message) {
    recorder.instant(Category::kOther, std::string("log:") + component,
                     clock.now_ns(), kInheritParent,
                     std::string(osprey::util::level_name(level)) + ": " +
                         message);
  };
}

}  // namespace osprey::obs
