#pragma once

/// \file trace.hpp
/// Deterministic tracing for the OSPREY platform: spans and instant
/// events keyed on *virtual* time (the fabric's SimTime, or an injected
/// util::Clock for the EMEWS layer), so a trace of a simulated workflow
/// replays byte-identically for the same seed — including chaos seeds.
///
/// Model:
///  - a span has a begin/end timestamp (nanoseconds), a category
///    (transfer/compute/flow/aero/emews/gsa), a parent span id and a
///    success flag; an instant event is a zero-duration marker.
///  - parentage is established either explicitly or through the calling
///    thread's *current span* (CurrentSpanGuard): the single-threaded
///    event loop sets the guard around a flow step's dispatch, so the
///    transfers and compute tasks submitted inside it nest under it.
///  - recording is thread-safe (util::Mutex + TSA annotations): the
///    parallel GP/MCMC workers may record through the same recorder.
///    Timestamps are virtual, so replays of the same seed produce the
///    same set of spans; the Chrome exporter (obs/export.hpp) sorts
///    into a canonical order, making the exported bytes identical even
///    when thread interleaving varied the recording order.
///  - wall time is opt-in (set_wall_clock) for bench runs; it annotates
///    spans with real nanoseconds and intentionally breaks byte
///    identity, so it is off by default.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/sim_time.hpp"

namespace osprey::obs {

enum class Category {
  kTransfer = 0,
  kCompute,
  kFlow,
  kAero,
  kEmews,
  kGsa,
  kServe,
  kOther,
};

inline constexpr int kNumCategories = 8;

const char* category_name(Category category);
/// Inverse of category_name (kOther for unknown names).
Category category_from_name(const std::string& name);

using SpanId = std::uint64_t;

/// The null span: "no parent" / "nothing recorded".
inline constexpr SpanId kNoSpan = 0;
/// Sentinel parent: inherit the calling thread's current span.
inline constexpr SpanId kInheritParent = ~static_cast<SpanId>(0);

/// Fabric virtual time (integral milliseconds) as trace nanoseconds.
inline std::uint64_t sim_ns(osprey::util::SimTime t) {
  return static_cast<std::uint64_t>(t) * 1'000'000ull;
}

/// One recorded span or instant event.
struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  Category category = Category::kOther;
  std::string name;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  bool open = false;     // begun but not yet ended
  bool ok = true;        // false: the operation the span covers failed
  bool instant = false;  // zero-duration marker event
  std::string detail;    // free-form annotation (bytes, error, cause)
  /// Shard-label dimension (set_shard_label): which shard/partition
  /// recorded the span. Empty on unsharded recorders, so single-loop
  /// traces export byte-identically to before the dimension existed.
  std::string shard;
  // Optional real-time annotation (set_wall_clock); 0 when disabled.
  std::uint64_t wall_begin_ns = 0;
  std::uint64_t wall_end_ns = 0;

  std::uint64_t duration_ns() const {
    return end_ns >= begin_ns ? end_ns - begin_ns : 0;
  }
};

/// The calling thread's current span (kNoSpan outside any guard).
SpanId current_span();

/// Thread-safe recorder of spans and instants. Services hold a
/// non-owning `TraceRecorder*`; a null pointer means no tracing and
/// zero overhead. Never logs (log sinks may record into it).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// A disabled recorder drops everything (begin_span returns kNoSpan).
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Annotate spans with real time from `wall` (nullptr disables). For
  /// bench runs only: wall annotations break replay byte-identity.
  void set_wall_clock(const osprey::util::Clock* wall) {
    wall_.store(wall, std::memory_order_release);
  }

  /// Stamp every subsequently recorded span/instant with `label` (the
  /// shard-label dimension; "" reverts to unlabeled). Set once at
  /// wiring time, before recording starts: per-shard recorders get the
  /// partition key, so merged exports keep each span attributable.
  void set_shard_label(std::string label);
  std::string shard_label() const;

  /// Open a span at virtual `begin_ns`. `parent` defaults to the
  /// calling thread's current span.
  SpanId begin_span(Category category, std::string name,
                    std::uint64_t begin_ns, SpanId parent = kInheritParent,
                    std::string detail = {});

  /// Close a span. `error` (when non-empty) replaces the detail. Safe
  /// to call with kNoSpan (no-op), so callers need no null checks for
  /// spans begun while the recorder was disabled.
  void end_span(SpanId id, std::uint64_t end_ns, bool ok = true,
                const std::string& error = {});

  /// Record a zero-duration marker event.
  SpanId instant(Category category, std::string name, std::uint64_t at_ns,
                 SpanId parent = kInheritParent, std::string detail = {});

  /// Copy of every record, in recording order (ids ascending).
  std::vector<SpanRecord> snapshot() const;

  std::size_t span_count() const;
  std::size_t open_count() const;
  void clear();

 private:
  mutable osprey::util::Mutex mutex_;
  std::vector<SpanRecord> spans_ OSPREY_GUARDED_BY(mutex_);
  std::string shard_label_ OSPREY_GUARDED_BY(mutex_);
  std::size_t open_ OSPREY_GUARDED_BY(mutex_) = 0;
  std::atomic<bool> enabled_{true};
  std::atomic<const osprey::util::Clock*> wall_{nullptr};
};

/// RAII: makes `span` the calling thread's current span; restores the
/// previous one on destruction. Does NOT end the span (spans of the
/// simulated fabric end later in virtual time). kNoSpan is allowed and
/// clears the slot for the scope.
class CurrentSpanGuard {
 public:
  explicit CurrentSpanGuard(SpanId span);
  ~CurrentSpanGuard();

  CurrentSpanGuard(const CurrentSpanGuard&) = delete;
  CurrentSpanGuard& operator=(const CurrentSpanGuard&) = delete;

 private:
  SpanId previous_;
};

/// A util::LogSink that records every log line as an instant event
/// (name "log:<component>", detail = message) parented to the calling
/// thread's current span, timestamped from `clock`. Install with
/// util::set_log_sink; the line is recorded instead of printed.
osprey::util::LogSink make_trace_log_sink(TraceRecorder& recorder,
                                          const osprey::util::Clock& clock);

}  // namespace osprey::obs
