#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

#include "util/error.hpp"
#include "util/value.hpp"

namespace osprey::obs {

using osprey::util::Value;
using osprey::util::ValueArray;
using osprey::util::ValueObject;

std::vector<SpanRecord> canonical_spans(std::vector<SpanRecord> spans) {
  std::stable_sort(
      spans.begin(), spans.end(),
      [](const SpanRecord& a, const SpanRecord& b) {
        return std::tie(a.begin_ns, a.end_ns, a.category, a.name, a.detail,
                        a.shard, a.instant, a.id) <
               std::tie(b.begin_ns, b.end_ns, b.category, b.name, b.detail,
                        b.shard, b.instant, b.id);
      });
  std::map<SpanId, SpanId> renumber;
  renumber[kNoSpan] = kNoSpan;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    renumber[spans[i].id] = static_cast<SpanId>(i) + 1;
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    spans[i].id = static_cast<SpanId>(i) + 1;
    const auto it = renumber.find(spans[i].parent);
    spans[i].parent = it == renumber.end() ? kNoSpan : it->second;
  }
  return spans;
}

std::string chrome_trace_json(const std::vector<SpanRecord>& spans) {
  const std::vector<SpanRecord> canon = canonical_spans(spans);
  ValueArray events;
  events.reserve(canon.size());
  for (const SpanRecord& s : canon) {
    ValueObject args;
    args["id"] = static_cast<std::int64_t>(s.id);
    if (s.parent != kNoSpan) {
      args["parent"] = static_cast<std::int64_t>(s.parent);
    }
    if (!s.ok) args["ok"] = false;
    if (s.open) args["open"] = true;
    if (!s.detail.empty()) args["detail"] = s.detail;
    if (!s.shard.empty()) args["shard"] = s.shard;
    if (s.wall_begin_ns != 0) {
      args["wall_begin_ns"] = static_cast<std::int64_t>(s.wall_begin_ns);
    }
    if (s.wall_end_ns != 0) {
      args["wall_end_ns"] = static_cast<std::int64_t>(s.wall_end_ns);
    }
    ValueObject ev;
    ev["name"] = s.name;
    ev["cat"] = category_name(s.category);
    ev["ph"] = s.instant ? "i" : "X";
    ev["ts"] = static_cast<std::int64_t>(s.begin_ns / 1000);
    if (s.instant) {
      ev["s"] = "t";  // thread-scoped instant
    } else {
      ev["dur"] = static_cast<std::int64_t>(s.duration_ns() / 1000);
    }
    ev["pid"] = 1;
    // One Perfetto track per category keeps the timeline readable.
    ev["tid"] = static_cast<std::int64_t>(s.category) + 1;
    ev["args"] = std::move(args);
    events.emplace_back(std::move(ev));
  }
  ValueObject doc;
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = std::move(events);
  return Value(std::move(doc)).to_json();
}

std::string chrome_trace_json(const TraceRecorder& recorder) {
  return chrome_trace_json(recorder.snapshot());
}

std::vector<SpanRecord> parse_chrome_trace(const std::string& json) {
  const Value doc = Value::parse_json(json);
  OSPREY_REQUIRE(doc.is_object() && doc.contains("traceEvents"),
                 "not a chrome trace document");
  std::vector<SpanRecord> spans;
  for (const Value& ev : doc.at("traceEvents").as_array()) {
    SpanRecord s;
    s.name = ev.at("name").as_string();
    s.category = category_from_name(ev.at("cat").as_string());
    const std::string& ph = ev.at("ph").as_string();
    s.instant = ph == "i" || ph == "I";
    s.begin_ns = static_cast<std::uint64_t>(ev.at("ts").as_int()) * 1000;
    const std::int64_t dur = s.instant ? 0 : ev.get_or("dur", std::int64_t{0});
    s.end_ns = s.begin_ns + static_cast<std::uint64_t>(dur) * 1000;
    if (ev.contains("args")) {
      const Value& args = ev.at("args");
      s.id = static_cast<SpanId>(args.get_or("id", std::int64_t{0}));
      s.parent = static_cast<SpanId>(args.get_or("parent", std::int64_t{0}));
      s.ok = !args.contains("ok") || args.at("ok").as_bool();
      s.open = args.contains("open") && args.at("open").as_bool();
      s.detail = args.get_or("detail", std::string());
      s.shard = args.get_or("shard", std::string());
      s.wall_begin_ns = static_cast<std::uint64_t>(
          args.get_or("wall_begin_ns", std::int64_t{0}));
      s.wall_end_ns = static_cast<std::uint64_t>(
          args.get_or("wall_end_ns", std::int64_t{0}));
    }
    spans.push_back(std::move(s));
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.id < b.id;
                   });
  return spans;
}

namespace {

// Deterministic number formatting for the exposition text: integral
// values print without a fraction, others with %.17g (round-trippable).
std::string format_number(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void append_header(std::string& out, const MetricsRegistry& registry,
                   const std::string& name, const char* type) {
  const std::string help = registry.help(name);
  if (!help.empty()) out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " " + type + "\n";
}

}  // namespace

std::string prometheus_text(const MetricsRegistry& registry) {
  std::string out;
  for (const std::string& name : registry.counter_names()) {
    const Counter* c = registry.find_counter(name);
    append_header(out, registry, name, "counter");
    out += name + " " + format_number(static_cast<double>(c->value())) + "\n";
  }
  for (const std::string& name : registry.gauge_names()) {
    const Gauge* g = registry.find_gauge(name);
    append_header(out, registry, name, "gauge");
    out += name + " " + format_number(g->value()) + "\n";
  }
  for (const std::string& name : registry.histogram_names()) {
    const Histogram* h = registry.find_histogram(name);
    append_header(out, registry, name, "histogram");
    const std::vector<double> bounds = h->bounds();
    const std::vector<std::uint64_t> buckets = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += buckets[i];
      out += name + "_bucket{le=\"" + format_number(bounds[i]) + "\"} " +
             format_number(static_cast<double>(cumulative)) + "\n";
    }
    cumulative += buckets.back();
    out += name + "_bucket{le=\"+Inf\"} " +
           format_number(static_cast<double>(cumulative)) + "\n";
    out += name + "_sum " + format_number(h->sum()) + "\n";
    out += name + "_count " + format_number(static_cast<double>(h->count())) +
           "\n";
  }
  return out;
}

}  // namespace osprey::obs
