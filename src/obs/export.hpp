#pragma once

/// \file export.hpp
/// Trace and metrics exporters:
///  - chrome_trace_json: Chrome `trace_event` JSON (loadable in
///    about:tracing / https://ui.perfetto.dev). Spans are emitted as
///    "X" complete events and instants as "i" events; the µs `ts`/`dur`
///    fields come from the virtual nanosecond timestamps. Before
///    emission the spans are sorted into a canonical order and their
///    ids renumbered, so the exported bytes are identical across
///    replays of the same seed even when thread interleaving varied
///    the recording order.
///  - parse_chrome_trace: inverse of chrome_trace_json (consumed by
///    tools/osprey_trace).
///  - prometheus_text: Prometheus text exposition format (# HELP /
///    # TYPE / samples), metric names in sorted order.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace osprey::obs {

/// Canonical form of a span set: sorted by (begin, end, category,
/// name, detail), ids renumbered 1..n in that order, parents remapped.
std::vector<SpanRecord> canonical_spans(std::vector<SpanRecord> spans);

/// Chrome trace_event JSON for `spans` (canonicalized internally).
std::string chrome_trace_json(const std::vector<SpanRecord>& spans);
std::string chrome_trace_json(const TraceRecorder& recorder);

/// Parse a chrome_trace_json document back into span records (ids
/// ascending). Throws util::InvalidArgument on malformed input.
std::vector<SpanRecord> parse_chrome_trace(const std::string& json);

/// Prometheus text exposition of every instrument in `registry`.
std::string prometheus_text(const MetricsRegistry& registry);

}  // namespace osprey::obs
