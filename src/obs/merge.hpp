#pragma once

/// \file merge.hpp
/// Deterministic merging of per-shard observability state into one
/// canonical export (the shard-label dimension of DESIGN.md §7).
///
/// A sharded run records into one TraceRecorder / MetricsRegistry per
/// partition, each stamped with its shard label. Merging is pure
/// bookkeeping on stable identifiers — labels, recording order and
/// sorted metric names — so the merged artifacts are byte-identical
/// across replays AND across shard counts: the per-partition state is
/// invariant to which thread ran the partition, and nothing here ever
/// consults an ephemeral id.

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/value.hpp"

namespace osprey::obs {

/// One source in a merge: a shard label plus that shard's spans (as
/// returned by TraceRecorder::snapshot(), ids 1..n in recording order).
struct LabeledSpans {
  std::string label;
  std::vector<SpanRecord> spans;
};

/// Merge per-shard span sets into one canonical set: span ids are
/// offset per source (so parent links survive), the union is sorted by
/// the canonical key — which includes the shard label — and ids are
/// renumbered 1..n. Labels must be unique (InvalidArgument otherwise).
/// Feeding the result to chrome_trace_json yields bytes that depend
/// only on the per-source span sets, not on thread interleaving.
std::vector<SpanRecord> merge_labeled_spans(std::vector<LabeledSpans> sources);

/// One registry in a metrics merge (non-owning; must outlive the call).
struct LabeledRegistry {
  std::string label;
  const MetricsRegistry* registry = nullptr;
};

/// Deterministic JSON-able merge of per-shard registries:
///   {"shards": {label: registry.snapshot()},
///    "totals": {"counters": {name: sum across shards}}}
/// Labels must be unique. Serialization is deterministic (ValueObject
/// keeps keys sorted), so the bytes are replay- and shard-count-stable.
osprey::util::Value merged_metrics_snapshot(
    const std::vector<LabeledRegistry>& sources);

/// Prometheus text exposition with a {shard="<label>"} dimension on
/// every sample. Metric families appear in sorted-name order; within a
/// family, shards appear in the order given (callers pass partitions in
/// stable ordinal order). Histograms keep full bucket detail per shard.
std::string prometheus_text_sharded(
    const std::vector<LabeledRegistry>& sources);

}  // namespace osprey::obs
