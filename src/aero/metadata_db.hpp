#pragma once

/// \file metadata_db.hpp
/// AERO's central metadata database. Stores data objects and their
/// versions (checksum, timestamp, version number — exactly the
/// versioning metadata the paper lists), flow registrations, and run
/// provenance. Payload bytes NEVER enter this class: "the data itself
/// never passes through the AERO server, only the metadata".

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/sim_time.hpp"
#include "util/uuid.hpp"
#include "util/value.hpp"

namespace osprey::aero {

using osprey::util::SimTime;

/// One immutable version of a data object.
struct DataVersion {
  int version = 0;             // 1-based, monotonically increasing
  std::string checksum;        // SHA-256 hex of the payload
  std::uint64_t size_bytes = 0;
  SimTime timestamp = 0;       // virtual time the version was registered
  std::string endpoint;        // storage endpoint holding the payload
  std::string collection;
  std::string path;
};

/// A data object: a UUID-identified series of versions.
struct DataObjectRecord {
  std::string uuid;
  std::string name;
  std::string producer_flow;  // flow that writes this object ("" = external)
  std::vector<DataVersion> versions;
};

enum class FlowKind { kIngestion, kAnalysis };

enum class RunStatus { kRunning, kSucceeded, kFailed };

/// Input/output binding of a run: which version of which object.
struct VersionRef {
  std::string uuid;
  int version = 0;
};

/// Provenance record of one flow execution.
struct RunRecord {
  std::uint64_t run_id = 0;
  std::string flow_name;
  FlowKind kind = FlowKind::kIngestion;
  std::string trigger;  // human-readable cause ("poll", "update of <uuid>")
  std::vector<VersionRef> inputs;
  std::vector<VersionRef> outputs;
  std::string compute_endpoint;
  RunStatus status = RunStatus::kRunning;
  SimTime started = 0;
  SimTime ended = -1;
};

/// The metadata store, with operation counters so the workflow benches
/// can report metadata-query/update traffic (the solid arrows of the
/// paper's Figure 1).
///
/// Durability discipline (DESIGN.md §4f): every mutation is expressed
/// as a serializable operation record. The public mutators build the
/// record, hand it to the write-ahead hook (aero::Wal appends + syncs
/// it) BEFORE any state changes, then route it through the single
/// private apply() — the only code allowed to touch objects_/runs_.
/// Recovery replays the same records through the same apply(), so a
/// recovered database is byte-identical to one that never crashed.
class MetadataDb {
 public:
  explicit MetadataDb(std::uint64_t uuid_seed = 0xAE70);

  /// Create a data object; returns its UUID.
  std::string register_object(const std::string& name,
                              const std::string& producer_flow);

  bool has_object(const std::string& uuid) const;
  const DataObjectRecord& object(const std::string& uuid) const;

  /// Append a version (version number assigned here); returns it.
  const DataVersion& add_version(const std::string& uuid,
                                 const std::string& checksum,
                                 std::uint64_t size_bytes, SimTime timestamp,
                                 const std::string& endpoint,
                                 const std::string& collection,
                                 const std::string& path);

  /// Latest version, or nullopt when the object has none yet.
  std::optional<DataVersion> latest_version(const std::string& uuid) const;
  int latest_version_number(const std::string& uuid) const;

  /// All object UUIDs, sorted.
  std::vector<std::string> object_uuids() const;

  /// Discovery: objects whose name starts with `name_prefix` (all
  /// objects for ""), with their latest version numbers. Sorted by name
  /// then uuid.
  struct ObjectSummary {
    std::string uuid;
    std::string name;
    std::string producer_flow;
    int latest_version = 0;
  };
  std::vector<ObjectSummary> find_objects(
      const std::string& name_prefix) const;

  // --- run provenance ---
  std::uint64_t start_run(const std::string& flow_name, FlowKind kind,
                          const std::string& trigger,
                          std::vector<VersionRef> inputs,
                          const std::string& compute_endpoint,
                          SimTime started);
  void finish_run(std::uint64_t run_id, RunStatus status,
                  std::vector<VersionRef> outputs, SimTime ended);
  const RunRecord& run(std::uint64_t run_id) const;
  const std::vector<RunRecord>& runs() const { return runs_; }

  // --- traffic counters ---
  std::uint64_t query_count() const { return queries_; }
  std::uint64_t update_count() const { return updates_; }

  /// Hook fired at the end of every add_version() with the object's uuid
  /// and the new version number. This is how the serving tier learns
  /// about version bumps without polling: AeroServer forwards it to its
  /// update listeners. Single listener; pass an empty function to
  /// detach.
  using VersionListener =
      std::function<void(const std::string& uuid, int version)>;
  void set_version_listener(VersionListener listener) {
    version_listener_ = std::move(listener);
  }

  /// GraphViz DOT rendering of the provenance graph
  /// (objects ← runs ← objects).
  std::string provenance_dot() const;

  /// Transitive upstream lineage of a data object: every (object, run)
  /// that contributed to any version of `uuid`, walking runs' inputs
  /// backwards. The result contains `uuid` itself.
  struct Lineage {
    std::vector<std::string> object_uuids;   // topologically unordered
    std::vector<std::uint64_t> run_ids;
  };
  Lineage upstream_lineage(const std::string& uuid) const;

  /// Transitive downstream impact: every object derived (directly or
  /// not) from `uuid`. Answers "what must be recomputed if this input
  /// was bad?".
  Lineage downstream_lineage(const std::string& uuid) const;

  /// Durable snapshot of the whole database (objects, versions, run
  /// provenance, uuid-generator state) as a JSON-like Value — what a
  /// production AERO server persists across restarts ("reproducible
  /// science" requires the metadata to outlive the process). Written as
  /// snapshot_format 2; format-1 snapshots (no uuid_state) still load.
  osprey::util::Value to_json() const;
  /// Restore a database from a to_json() snapshot.
  static MetadataDb from_json(const osprey::util::Value& json);
  /// In-place restore: replaces objects/runs/uuid state while keeping
  /// the version listener and WAL hook attached (how aero::Wal loads a
  /// checkpoint into a live server's db during recovery).
  void load_snapshot(const osprey::util::Value& json);

  // --- write-ahead logging -------------------------------------------
  /// Hook invoked with every mutation's operation record BEFORE the
  /// mutation is applied. aero::Wal installs itself here; an empty
  /// function detaches (mutations then apply directly, undurably).
  using WalHook = std::function<void(const osprey::util::Value& record)>;
  void set_wal_hook(WalHook hook) { wal_hook_ = std::move(hook); }

  /// Replay one WAL operation record (recovery path). Applies the same
  /// state transition the original mutation did — including advancing
  /// the uuid generator for register_object records — without firing
  /// the WAL hook, listeners, or traffic counters. Throws on records
  /// inconsistent with the current state (non-dense run ids, version
  /// gaps, uuid-sequence divergence).
  void apply_replay(const osprey::util::Value& record) { apply(record); }

  /// Current uuid-generator state (persisted in snapshots).
  std::uint64_t uuid_state() const { return uuids_.state(); }

 private:
  /// The single state-transition function: every mutation — live or
  /// replayed — goes through here, and ONLY here may the backing
  /// containers be touched (enforced by osprey_lint's wal-bypass rule).
  void apply(const osprey::util::Value& record);

  osprey::util::UuidFactory uuids_;
  std::map<std::string, DataObjectRecord> objects_;
  std::vector<RunRecord> runs_;
  mutable std::uint64_t queries_ = 0;
  std::uint64_t updates_ = 0;
  VersionListener version_listener_;
  WalHook wal_hook_;
};

}  // namespace osprey::aero
