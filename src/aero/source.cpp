#include "aero/source.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace osprey::aero {

ScriptedSource::ScriptedSource(
    std::string url, std::vector<std::pair<SimTime, std::string>> timeline)
    : url_(std::move(url)), timeline_(std::move(timeline)) {
  OSPREY_REQUIRE(std::is_sorted(timeline_.begin(), timeline_.end(),
                                [](const auto& a, const auto& b) {
                                  return a.first < b.first;
                                }),
                 "scripted timeline must be sorted by time");
}

std::optional<std::string> ScriptedSource::fetch(SimTime now) {
  ++fetches_;
  const std::string* latest = nullptr;
  for (const auto& [t, payload] : timeline_) {
    if (t > now) break;
    latest = &payload;
  }
  if (latest == nullptr) return std::nullopt;
  return *latest;
}

}  // namespace osprey::aero
