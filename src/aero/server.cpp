#include "aero/server.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace osprey::aero {

using osprey::util::Value;
using osprey::util::ValueObject;

namespace {

/// The retry policy a flow actually runs with: the spec's full policy
/// when enabled, otherwise one synthesized from the legacy
/// max_retries/retry_backoff knobs (exponential, multiplier 2, capped at
/// 8x the initial backoff, no jitter).
osprey::util::RetryPolicy effective_policy(const IngestionFlowSpec& spec) {
  if (spec.retry.enabled()) return spec.retry;
  osprey::util::RetryPolicy policy;
  policy.max_attempts = spec.max_retries;
  policy.initial_backoff = spec.retry_backoff;
  return policy;
}

osprey::util::RetryPolicy effective_policy(const AnalysisFlowSpec& spec) {
  if (spec.retry.enabled()) return spec.retry;
  osprey::util::RetryPolicy policy;
  policy.max_attempts = spec.max_retries;
  policy.initial_backoff = spec.retry_backoff;
  return policy;
}

/// Degradation reason recorded while an upstream source outage window
/// is active. Matched verbatim when the source answers again so only
/// outage-caused degradation is lifted by a successful fetch.
constexpr const char* kOutageReason = "upstream source outage";

/// Probe time after a breaker denies a trigger: one tick past its
/// reopen time. The breaker is open by construction here (allow() just
/// returned false with the breaker enabled), so reopen_at() is engaged;
/// fall back to the next tick if that invariant ever changes.
SimTime probe_time(const osprey::util::CircuitBreaker& breaker, SimTime now) {
  return breaker.reopen_at().value_or(now) + 1;
}

}  // namespace

AeroServer::AeroServer(fabric::EventLoop& loop, fabric::AuthService& auth,
                       fabric::TimerService& timers,
                       fabric::TransferService& transfers,
                       fabric::FlowsService& flows, std::string identity,
                       obs::MetricsRegistry* metrics, std::uint64_t uuid_seed)
    : loop_(loop),
      auth_(auth),
      timers_(timers),
      transfers_(transfers),
      flows_(flows),
      identity_(std::move(identity)),
      token_(auth.issue_full_token(identity_)),
      db_(uuid_seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  polls_ = &metrics->counter("aero_polls_total",
                             "upstream source polls performed");
  updates_detected_ = &metrics->counter(
      "aero_updates_detected_total", "polls whose payload checksum changed");
  ingestion_runs_ = &metrics->counter("aero_ingestion_runs_total",
                                      "ingestion flow runs started");
  analysis_triggers_ = &metrics->counter(
      "aero_analysis_triggers_total", "analysis trigger evaluations that fired");
  analysis_runs_ = &metrics->counter("aero_analysis_runs_total",
                                     "analysis flow runs started");
  failed_runs_ = &metrics->counter("aero_failed_runs_total",
                                   "ingestion or analysis runs that failed");
  retries_ = &metrics->counter("aero_retries_total",
                               "retry runs scheduled after a failure");
  fetch_errors_ = &metrics->counter("aero_fetch_errors_total",
                                    "upstream fetches that raised");
  ingestion_permanent_ = &metrics->counter(
      "aero_ingestion_permanent_failures_total",
      "ingestion triggers that exhausted their retry budget");
  analysis_permanent_ = &metrics->counter(
      "aero_analysis_permanent_failures_total",
      "analysis triggers that exhausted their retry budget");
  superseded_triggers_ = &metrics->counter(
      "aero_superseded_triggers_total",
      "triggers whose payload was replaced by fresher upstream data");
  deferred_triggers_ = &metrics->counter(
      "aero_deferred_triggers_total",
      "triggers deferred because a circuit breaker was open");
  stale_serves_ = &metrics->counter("aero_stale_serves_total",
                                    "serve_latest calls answered stale");
  // Every version bump — flow-published or registered directly on the
  // db — flows through to the serving-tier update listeners, so a cache
  // can never keep serving a superseded version as a hit.
  db_.set_version_listener(
      [this](const std::string& uuid, int) { notify_updated(uuid); });
}

RecoveryStats AeroServer::enable_durability(osprey::util::DurableFs& fs,
                                            WalOptions options) {
  OSPREY_REQUIRE(wal_ == nullptr, "durability is already enabled");
  OSPREY_REQUIRE(db_.update_count() == 0,
                 "enable_durability must precede flow registration");
  wal_ = std::make_unique<Wal>(fs, std::move(options), metrics_, tracer_,
                               [this] { return obs::sim_ns(loop_.now()); });
  RecoveryStats stats = wal_->recover(db_);
  // Runs in flight at the crash can never complete — their compute and
  // transfers died with the process. Adjudicate them failed (through
  // the WAL, so the adjudication itself is durable) and leave a
  // recovery incident; re-triggers then start from clean provenance.
  for (const RunRecord& run : db_.runs()) {
    if (run.status != RunStatus::kRunning) continue;
    std::uint64_t run_id = run.run_id;
    db_.finish_run(run_id, RunStatus::kFailed, {}, loop_.now());
    record_incident(fabric::IncidentCategory::kRecovery, "run-interrupted",
                    run.flow_name,
                    "run #" + std::to_string(run_id) +
                        " adjudicated failed by crash recovery");
  }
  // Re-announce every recovered object: any serving-tier cache that
  // re-attaches after the restart starts from invalidated entries, so a
  // pre-crash answer can never be served as fresh.
  for (const std::string& uuid : db_.object_uuids()) {
    notify_updated(uuid);
  }
  if (stats.checkpoint_loaded || stats.replayed > 0) {
    OSPREY_LOG_INFO("aero", "recovered metadata: checkpoint lsn "
                            << stats.checkpoint_lsn << ", " << stats.replayed
                            << " WAL record(s) replayed, " << stats.torn
                            << " torn, " << stats.corrupt << " corrupt");
  }
  return stats;
}

std::string AeroServer::intern_object(const std::string& name,
                                      const std::string& producer) {
  for (const MetadataDb::ObjectSummary& s : db_.find_objects(name)) {
    if (s.name == name && s.producer_flow == producer) return s.uuid;
  }
  return db_.register_object(name, producer);
}

IngestionHandles AeroServer::register_ingestion(IngestionFlowSpec spec) {
  OSPREY_REQUIRE(spec.source != nullptr, "ingestion needs a data source");
  OSPREY_REQUIRE(spec.compute != nullptr, "ingestion needs a compute endpoint");
  OSPREY_REQUIRE(spec.staging != nullptr && spec.storage != nullptr,
                 "ingestion needs staging and storage endpoints");
  OSPREY_REQUIRE(spec.compute->has_function(spec.function_id),
                 "transformation function is not registered on the endpoint");

  Ingestion ing;
  ing.raw_uuid = intern_object(spec.name + "/raw", spec.name);
  ing.output_uuid = intern_object(spec.name + "/transformed", spec.name);
  ing.retry = effective_policy(spec);
  ing.breaker = osprey::util::CircuitBreaker(spec.breaker);
  ing.retry_key = osprey::util::stable_key(spec.name.c_str());
  ing.spec = std::move(spec);

  std::size_t index = ingestions_.size();
  ingestions_.push_back(std::move(ing));

  Ingestion& stored = ingestions_[index];
  stored.timer = timers_.every(
      stored.spec.poll_period, stored.spec.first_poll,
      [this, index] { poll_ingestion(index); }, token_,
      "poll:" + stored.spec.name);

  OSPREY_LOG_INFO("aero", "registered ingestion flow '" << stored.spec.name
                          << "' polling " << stored.spec.source->url());
  return IngestionHandles{stored.raw_uuid, stored.output_uuid, stored.timer};
}

AeroServer::Ingestion* AeroServer::find_ingestion(const std::string& name) {
  for (Ingestion& ing : ingestions_) {
    if (ing.spec.name == name) return &ing;
  }
  return nullptr;
}

const AeroServer::Ingestion* AeroServer::find_ingestion(
    const std::string& name) const {
  for (const Ingestion& ing : ingestions_) {
    if (ing.spec.name == name) return &ing;
  }
  return nullptr;
}

bool AeroServer::pause_ingestion(const std::string& name) {
  Ingestion* ing = find_ingestion(name);
  if (ing == nullptr || ing->cancelled || ing->paused) return false;
  timers_.cancel(ing->timer);
  ing->paused = true;
  OSPREY_LOG_INFO("aero", "paused ingestion '" << name << "'");
  return true;
}

bool AeroServer::resume_ingestion(const std::string& name) {
  Ingestion* ing = find_ingestion(name);
  if (ing == nullptr || ing->cancelled || !ing->paused) return false;
  // Re-arm at the next period boundary after "now".
  std::size_t index = static_cast<std::size_t>(ing - ingestions_.data());
  ing->timer = timers_.every(
      ing->spec.poll_period, loop_.now() + ing->spec.poll_period,
      [this, index] { poll_ingestion(index); }, token_,
      "poll:" + ing->spec.name);
  ing->paused = false;
  OSPREY_LOG_INFO("aero", "resumed ingestion '" << name << "'");
  return true;
}

bool AeroServer::ingestion_paused(const std::string& name) const {
  const Ingestion* ing = find_ingestion(name);
  return ing != nullptr && ing->paused;
}

bool AeroServer::cancel_ingestion(const std::string& name) {
  Ingestion* ing = find_ingestion(name);
  if (ing == nullptr || ing->cancelled) return false;
  if (!ing->paused) timers_.cancel(ing->timer);
  ing->cancelled = true;
  ing->paused = false;
  OSPREY_LOG_INFO("aero", "cancelled ingestion '" << name << "'");
  return true;
}

std::vector<std::string> AeroServer::register_analysis(AnalysisFlowSpec spec) {
  OSPREY_REQUIRE(!spec.input_uuids.empty(), "analysis needs input UUIDs");
  OSPREY_REQUIRE(spec.compute != nullptr, "analysis needs a compute endpoint");
  OSPREY_REQUIRE(spec.staging != nullptr && spec.storage != nullptr,
                 "analysis needs staging and storage endpoints");
  OSPREY_REQUIRE(!spec.output_names.empty(), "analysis needs output names");
  OSPREY_REQUIRE(spec.compute->has_function(spec.function_id),
                 "analysis function is not registered on the endpoint");
  for (const std::string& uuid : spec.input_uuids) {
    OSPREY_REQUIRE(db_.has_object(uuid), "unknown input UUID: " + uuid);
  }

  Analysis analysis;
  for (const std::string& name : spec.output_names) {
    analysis.output_uuids.push_back(
        intern_object(spec.name + "/" + name, spec.name));
  }
  for (const std::string& uuid : spec.input_uuids) {
    analysis.consumed_version[uuid] = db_.latest_version_number(uuid);
  }
  analysis.retry = effective_policy(spec);
  analysis.breaker = osprey::util::CircuitBreaker(spec.breaker);
  analysis.retry_key = osprey::util::stable_key(spec.name.c_str());
  analysis.spec = std::move(spec);

  std::vector<std::string> outputs = analysis.output_uuids;
  analyses_.push_back(std::move(analysis));
  OSPREY_LOG_INFO("aero", "registered analysis flow '"
                          << analyses_.back().spec.name << "' with "
                          << analyses_.back().spec.input_uuids.size()
                          << " input(s)");
  return outputs;
}

void AeroServer::poll_ingestion(std::size_t index) {
  Ingestion& ing = ingestions_[index];
  polls_->inc();
  // Injected upstream outage: the source is unreachable for the whole
  // window, so every poll inside it is one failed fetch.
  if (plan_ != nullptr &&
      plan_->in_window(fabric::FaultKind::kSourceOutage, "aero",
                       ing.spec.name, loop_.now())) {
    fetch_errors_->inc();
    OSPREY_LOG_WARN("aero", "fetch failed for '" << ing.spec.name
                            << "': upstream outage (injected)");
    // An unreachable upstream means the last-good estimates may lag
    // reality: flag the flow's data products stale until the source
    // answers again, so the serving tier never labels them fresh.
    // Guarded so a multi-day outage degrades once, not once per poll,
    // and never overwrites a stronger reason (retry exhaustion).
    if (degraded_.find(ing.output_uuid) == degraded_.end()) {
      mark_degraded({ing.raw_uuid, ing.output_uuid}, ing.spec.name,
                    kOutageReason);
    }
    return;
  }
  // A flaky upstream must not take the whole server down; failed
  // fetches are counted and retried on the next poll.
  std::optional<std::string> payload;
  try {
    payload = ing.spec.source->fetch(loop_.now());
  } catch (const std::exception& e) {
    fetch_errors_->inc();
    OSPREY_LOG_WARN("aero", "fetch failed for '" << ing.spec.name
                            << "': " << e.what());
    return;
  }
  // The source answered: lift outage-caused degradation. Other reasons
  // (an exhausted retry budget) stand until a fresh version publishes.
  auto deg = degraded_.find(ing.output_uuid);
  if (deg != degraded_.end() && deg->second == kOutageReason) {
    clear_degraded({ing.raw_uuid, ing.output_uuid}, ing.spec.name);
  }
  if (!payload.has_value()) return;
  // Identical bytes hash to an identical checksum: skip the SHA-256 on
  // an unchanged poll. This is pure short-circuit — the checksum
  // comparison below is unchanged for payloads that differ.
  if (ing.last_payload.has_value() && *payload == *ing.last_payload) return;
  std::string checksum = osprey::crypto::Sha256::hash_hex(*payload);
  ing.last_payload = *payload;
  if (checksum == ing.last_checksum) return;  // no upstream change

  updates_detected_->inc();
  ing.last_checksum = checksum;
  if (tracer_ != nullptr) {
    tracer_->instant(obs::Category::kAero, "update:" + ing.spec.name,
                     obs::sim_ns(loop_.now()), obs::kNoSpan,
                     "checksum " + checksum.substr(0, 12));
  }
  OSPREY_LOG_INFO("aero", "update detected for '" << ing.spec.name << "' at "
                          << osprey::util::format_sim_time(loop_.now()));
  if (ing.running) {
    // A new upstream version arrived mid-run; remember the freshest one.
    if (ing.pending) {
      superseded_triggers_->inc();
      record_incident(fabric::IncidentCategory::kRecovery,
                      "trigger-superseded", ing.spec.name,
                      "queued payload replaced by fresher upstream data");
    }
    ing.pending = true;
    ing.pending_payload = std::move(*payload);
    return;
  }
  if (!ing.breaker.allow(loop_.now())) {
    // Circuit open: park the payload and probe when the breaker is
    // willing to admit traffic again.
    deferred_triggers_->inc();
    if (ing.pending) {
      superseded_triggers_->inc();
      record_incident(fabric::IncidentCategory::kRecovery,
                      "trigger-superseded", ing.spec.name,
                      "deferred payload replaced by fresher upstream data");
    }
    ing.pending = true;
    ing.pending_payload = std::move(*payload);
    SimTime probe = probe_time(ing.breaker, loop_.now());
    record_incident(fabric::IncidentCategory::kDegraded, "trigger-deferred",
                    ing.spec.name, "circuit open; probe at " +
                        osprey::util::format_sim_time(probe));
    schedule_ingestion_probe(index, probe);
    return;
  }
  ing.attempts = 0;  // fresh trigger
  ++ing.trigger_gen;
  run_ingestion_flow(index, std::move(*payload), "poll:" + ing.spec.source->url());
}

void AeroServer::run_ingestion_flow(std::size_t index, std::string payload,
                                    const std::string& trigger) {
  Ingestion& ing = ingestions_[index];
  ing.running = true;
  ing.current_payload = payload;  // kept in case the run must be retried
  ingestion_runs_->inc();
  if (tracer_ != nullptr) {
    // Top-level span for the whole ingest run; the wrapped flow and its
    // steps (and their transfers/compute tasks) nest underneath.
    ing.span = tracer_->begin_span(obs::Category::kAero,
                                   "ingest:" + ing.spec.name,
                                   obs::sim_ns(loop_.now()), obs::kNoSpan,
                                   trigger);
  }

  const IngestionFlowSpec& spec = ing.spec;
  std::string raw_path = spec.base_path + "/raw";
  std::string out_path = spec.base_path + "/transformed";

  std::uint64_t run_id =
      db_.start_run(spec.name, FlowKind::kIngestion, trigger, {},
                    spec.compute->name(), loop_.now());

  // Shared run state the steps hand forward.
  auto payload_ptr = std::make_shared<std::string>(std::move(payload));
  auto output_ptr = std::make_shared<std::string>();

  fabric::FlowDefinition flow;
  flow.name = spec.name;

  // Step 1: upload the raw payload. It lands in compute-local staging
  // (the "temporarily sent to a Globus Compute endpoint" hop) and is
  // transferred to the durable user collection.
  flow.steps.push_back(fabric::FlowStep{
      "upload-raw",
      [this, index, payload_ptr, raw_path](fabric::FlowRunContext&,
                                           fabric::StepDone done) {
        Ingestion& ing2 = ingestions_[index];
        const IngestionFlowSpec& s = ing2.spec;
        s.staging->put(s.staging_collection, raw_path, *payload_ptr, token_);
        transfers_.transfer(
            *s.staging, s.staging_collection, raw_path, *s.storage,
            s.collection, raw_path, token_,
            [this, index, raw_path, done](const fabric::TransferRecord& rec) {
              if (rec.status != fabric::TransferStatus::kSucceeded) {
                done(false, "raw upload failed: " + rec.error);
                return;
              }
              Ingestion& ing3 = ingestions_[index];
              const IngestionFlowSpec& s3 = ing3.spec;
              db_.add_version(ing3.raw_uuid, rec.checksum, rec.bytes,
                              loop_.now(), s3.storage->name(), s3.collection,
                              raw_path);
              done(true, "");
            });
      }});

  // Step 2: run the user's validation/transformation function on the
  // compute endpoint, with the staged data as input.
  flow.steps.push_back(fabric::FlowStep{
      "transform",
      [this, index, payload_ptr, output_ptr](fabric::FlowRunContext&,
                                             fabric::StepDone done) {
        Ingestion& ing2 = ingestions_[index];
        const IngestionFlowSpec& s = ing2.spec;
        ValueObject args;
        args["input"] = Value(*payload_ptr);
        args["url"] = Value(s.source->url());
        args["args"] = s.function_args;
        s.compute->execute(
            s.function_id, Value(std::move(args)), token_,
            [output_ptr, done](const Value& result,
                               const fabric::ComputeTaskRecord& rec) {
              if (rec.status != fabric::ComputeTaskStatus::kSucceeded) {
                done(false, "transformation failed: " + rec.error);
                return;
              }
              if (!result.contains("output")) {
                done(false, "transformation returned no 'output'");
                return;
              }
              *output_ptr = result.at("output").as_string();
              done(true, "");
            });
      }});

  // Step 3: upload the transformed file to the user collection.
  flow.steps.push_back(fabric::FlowStep{
      "stage-out",
      [this, index, output_ptr, out_path](fabric::FlowRunContext&,
                                          fabric::StepDone done) {
        Ingestion& ing2 = ingestions_[index];
        const IngestionFlowSpec& s = ing2.spec;
        s.staging->put(s.staging_collection, out_path, *output_ptr, token_);
        transfers_.transfer(
            *s.staging, s.staging_collection, out_path, *s.storage,
            s.collection, out_path, token_,
            [done](const fabric::TransferRecord& rec) {
              done(rec.status == fabric::TransferStatus::kSucceeded,
                   rec.error);
            });
      }});

  // Step 4: register versioning metadata for the transformed output;
  // this is what triggers dependent analysis flows.
  flow.steps.push_back(fabric::FlowStep{
      "register-metadata",
      [this, index, output_ptr, out_path](fabric::FlowRunContext&,
                                          fabric::StepDone done) {
        Ingestion& ing2 = ingestions_[index];
        const IngestionFlowSpec& s = ing2.spec;
        std::string checksum = osprey::crypto::Sha256::hash_hex(*output_ptr);
        db_.add_version(ing2.output_uuid, checksum, output_ptr->size(),
                        loop_.now(), s.storage->name(), s.collection,
                        out_path);
        done(true, "");
      }});

  // The flow span (and everything the steps submit) nests under the
  // ingest span.
  obs::CurrentSpanGuard ingest_guard(ing.span);
  flows_.run(flow, token_,
             [this, index, run_id](const fabric::FlowRunRecord& rec,
                                   const Value&) {
               Ingestion& ing2 = ingestions_[index];
               bool ok = rec.status == fabric::FlowRunStatus::kSucceeded;
               // Incidents recorded below correlate with this run's span.
               obs::CurrentSpanGuard run_guard(ing2.span);
               if (tracer_ != nullptr) {
                 std::string err;
                 for (const fabric::StepRecord& sr : rec.steps) {
                   if (!sr.ok && !sr.error.empty()) err = sr.error;
                 }
                 tracer_->end_span(ing2.span, obs::sim_ns(loop_.now()), ok,
                                   err);
                 ing2.span = obs::kNoSpan;
               }
               std::vector<VersionRef> outputs;
               if (ok) {
                 outputs.push_back(VersionRef{
                     ing2.raw_uuid, db_.latest_version_number(ing2.raw_uuid)});
                 outputs.push_back(
                     VersionRef{ing2.output_uuid,
                                db_.latest_version_number(ing2.output_uuid)});
               } else {
                 failed_runs_->inc();
               }
               db_.finish_run(run_id,
                              ok ? RunStatus::kSucceeded : RunStatus::kFailed,
                              outputs, loop_.now());
               ing2.running = false;
               note_run_outcome(ing2.breaker, ing2.spec.name, ok);
               std::string output_uuid = ing2.output_uuid;
               if (ok) {
                 clear_degraded({ing2.raw_uuid, ing2.output_uuid},
                                ing2.spec.name);
                 on_version_added(output_uuid,
                                  "update of " + ing2.spec.name);
               } else if (ing2.attempts < ing2.retry.max_attempts &&
                          !ing2.pending) {
                 // Retry the same payload after a (jittered) backoff.
                 ++ing2.attempts;
                 retries_->inc();
                 int attempt = ing2.attempts;
                 std::uint64_t gen = ing2.trigger_gen;
                 SimTime delay = ing2.retry.jittered(attempt, ing2.retry_key);
                 record_incident(
                     fabric::IncidentCategory::kRecovery, "retry-scheduled",
                     ing2.spec.name,
                     "attempt " + std::to_string(attempt) + " in " +
                         osprey::util::format_duration(delay));
                 loop_.schedule_after(delay, [this, index, attempt, gen] {
                   fire_ingestion_retry(index, attempt, gen);
                 });
                 return;
               } else if (!ok) {
                 if (ing2.pending) {
                   // The failed payload is obsolete: fresher upstream
                   // data is queued and takes over below.
                   superseded_triggers_->inc();
                   record_incident(
                       fabric::IncidentCategory::kRecovery,
                       "trigger-superseded", ing2.spec.name,
                       "failed payload replaced by fresher upstream data");
                 } else {
                   ingestion_permanent_->inc();
                   mark_degraded({ing2.output_uuid}, ing2.spec.name,
                                 "ingestion '" + ing2.spec.name +
                                     "' exhausted its retry budget");
                 }
               }
               // Re-run for any upstream update that arrived meanwhile.
               Ingestion& ing3 = ingestions_[index];
               if (ing3.pending) {
                 if (!ing3.breaker.allow(loop_.now())) {
                   deferred_triggers_->inc();
                   SimTime probe = probe_time(ing3.breaker, loop_.now());
                   record_incident(
                       fabric::IncidentCategory::kDegraded,
                       "trigger-deferred", ing3.spec.name,
                       "circuit open; probe at " +
                           osprey::util::format_sim_time(probe));
                   schedule_ingestion_probe(index, probe);
                   return;
                 }
                 ing3.pending = false;
                 ing3.attempts = 0;
                 ++ing3.trigger_gen;
                 std::string payload2 = std::move(ing3.pending_payload);
                 run_ingestion_flow(index, std::move(payload2),
                                    "poll(pending):" +
                                        ing3.spec.source->url());
               }
             });
}

void AeroServer::fire_ingestion_retry(std::size_t index, int attempt,
                                      std::uint64_t gen) {
  Ingestion& ing = ingestions_[index];
  if (ing.cancelled) return;
  if (gen != ing.trigger_gen || ing.running) {
    // A fresh trigger took over while this retry waited; its payload
    // will never publish.
    superseded_triggers_->inc();
    record_incident(fabric::IncidentCategory::kRecovery,
                    "trigger-superseded", ing.spec.name,
                    "retry " + std::to_string(attempt) +
                        " obsolete: newer trigger in flight");
    return;
  }
  if (!ing.breaker.allow(loop_.now())) {
    // Breaker still open: push the retry past its reopen time without
    // consuming another attempt.
    loop_.schedule_at(std::max(probe_time(ing.breaker, loop_.now()),
                               loop_.now() + 1),
                      [this, index, attempt, gen] {
                        fire_ingestion_retry(index, attempt, gen);
                      });
    return;
  }
  run_ingestion_flow(index, ing.current_payload,
                     "retry " + std::to_string(attempt) + ":" +
                         ing.spec.source->url());
}

void AeroServer::schedule_ingestion_probe(std::size_t index, SimTime at) {
  loop_.schedule_at(std::max(at, loop_.now() + 1), [this, index] {
    Ingestion& ing = ingestions_[index];
    if (ing.cancelled || ing.running || !ing.pending) return;
    osprey::util::BreakerState before = ing.breaker.state();
    if (!ing.breaker.allow(loop_.now())) {
      schedule_ingestion_probe(index, probe_time(ing.breaker, loop_.now()));
      return;
    }
    if (before == osprey::util::BreakerState::kOpen) {
      record_incident(fabric::IncidentCategory::kRecovery,
                      "circuit-half-open", ing.spec.name,
                      "admitting probe run");
    }
    ing.pending = false;
    ing.attempts = 0;
    ++ing.trigger_gen;
    std::string payload = std::move(ing.pending_payload);
    run_ingestion_flow(index, std::move(payload),
                       "probe:" + ing.spec.source->url());
  });
}

bool AeroServer::analysis_ready(const Analysis& analysis) const {
  if (analysis.spec.policy == TriggerPolicy::kAny) {
    for (const std::string& uuid : analysis.spec.input_uuids) {
      if (db_.latest_version_number(uuid) >
          analysis.consumed_version.at(uuid)) {
        return true;
      }
    }
    return false;
  }
  // ALL: every input must have a version newer than the last consumed.
  for (const std::string& uuid : analysis.spec.input_uuids) {
    if (db_.latest_version_number(uuid) <=
        analysis.consumed_version.at(uuid)) {
      return false;
    }
  }
  return true;
}

void AeroServer::on_version_added(const std::string& uuid,
                                  const std::string& cause) {
  for (std::size_t i = 0; i < analyses_.size(); ++i) {
    Analysis& analysis = analyses_[i];
    bool is_input = false;
    for (const std::string& input : analysis.spec.input_uuids) {
      if (input == uuid) {
        is_input = true;
        break;
      }
    }
    if (!is_input) continue;
    if (!analysis_ready(analysis)) continue;
    analysis_triggers_->inc();
    if (analysis.running) {
      analysis.pending = true;
      analysis.pending_cause = cause;
      continue;
    }
    if (!analysis.breaker.allow(loop_.now())) {
      deferred_triggers_->inc();
      analysis.pending = true;
      analysis.pending_cause = cause;
      SimTime probe = probe_time(analysis.breaker, loop_.now());
      record_incident(fabric::IncidentCategory::kDegraded, "trigger-deferred",
                      analysis.spec.name,
                      "circuit open; probe at " +
                          osprey::util::format_sim_time(probe));
      schedule_analysis_probe(i, probe);
      continue;
    }
    analysis.attempts = 0;  // fresh trigger
    ++analysis.trigger_gen;
    run_analysis_flow(i, cause);
  }
}

void AeroServer::run_analysis_flow(std::size_t index,
                                   const std::string& trigger) {
  Analysis& analysis = analyses_[index];
  analysis.running = true;
  analysis_runs_->inc();
  if (tracer_ != nullptr) {
    analysis.span = tracer_->begin_span(
        obs::Category::kAero, "analyze:" + analysis.spec.name,
        obs::sim_ns(loop_.now()), obs::kNoSpan, trigger);
  }

  const AnalysisFlowSpec& spec = analysis.spec;

  // Snapshot the input versions this run consumes.
  std::vector<VersionRef> inputs;
  for (const std::string& uuid : spec.input_uuids) {
    int v = db_.latest_version_number(uuid);
    inputs.push_back(VersionRef{uuid, v});
    analysis.consumed_version[uuid] = v;
  }

  std::uint64_t run_id = db_.start_run(spec.name, FlowKind::kAnalysis,
                                       trigger, inputs, spec.compute->name(),
                                       loop_.now());

  auto staged = std::make_shared<std::map<std::string, std::string>>();
  auto outputs = std::make_shared<std::map<std::string, std::string>>();

  fabric::FlowDefinition flow;
  flow.name = spec.name;

  // Step 1: stage every input from the durable collection to the
  // compute endpoint's temporary space.
  flow.steps.push_back(fabric::FlowStep{
      "stage-in",
      [this, index, staged](fabric::FlowRunContext&, fabric::StepDone done) {
        Analysis& a = analyses_[index];
        const AnalysisFlowSpec& s = a.spec;
        auto remaining =
            std::make_shared<std::size_t>(s.input_uuids.size());
        auto failed = std::make_shared<bool>(false);
        for (const std::string& uuid : s.input_uuids) {
          std::optional<DataVersion> ver = db_.latest_version(uuid);
          if (!ver.has_value()) {
            done(false, "input has no version: " + uuid);
            return;
          }
          std::string staging_path = "stage/" + uuid;
          transfers_.transfer(
              *s.storage, ver->collection, ver->path, *s.staging,
              s.staging_collection, staging_path, token_,
              [this, index, uuid, staged, staging_path, remaining, failed,
               done](const fabric::TransferRecord& rec) {
                if (*failed) return;
                if (rec.status != fabric::TransferStatus::kSucceeded) {
                  *failed = true;
                  done(false, "stage-in failed: " + rec.error);
                  return;
                }
                Analysis& a2 = analyses_[index];
                // The read can fail too (expired token, ACL race); that
                // must fail the step, not escape into the event loop.
                try {
                  const fabric::StoredObject& obj = a2.spec.staging->get(
                      a2.spec.staging_collection, staging_path, token_);
                  (*staged)[uuid] = obj.bytes;
                } catch (const osprey::util::Error& e) {
                  *failed = true;
                  done(false, std::string("stage-in read failed: ") +
                                  e.what());
                  return;
                }
                if (--(*remaining) == 0) done(true, "");
              });
        }
      }});

  // Step 2: run the user analysis function with the staged inputs.
  flow.steps.push_back(fabric::FlowStep{
      "execute",
      [this, index, staged, outputs](fabric::FlowRunContext&,
                                     fabric::StepDone done) {
        Analysis& a = analyses_[index];
        const AnalysisFlowSpec& s = a.spec;
        ValueObject input_obj;
        for (const auto& [uuid, bytes] : *staged) {
          input_obj[uuid] = Value(bytes);
        }
        ValueObject args;
        args["inputs"] = Value(std::move(input_obj));
        args["args"] = s.function_args;
        s.compute->execute(
            s.function_id, Value(std::move(args)), token_,
            [index, outputs, done, this](const Value& result,
                                         const fabric::ComputeTaskRecord& rec) {
              if (rec.status != fabric::ComputeTaskStatus::kSucceeded) {
                done(false, "analysis failed: " + rec.error);
                return;
              }
              if (!result.contains("outputs")) {
                done(false, "analysis returned no 'outputs'");
                return;
              }
              Analysis& a2 = analyses_[index];
              for (const std::string& name : a2.spec.output_names) {
                if (!result.at("outputs").contains(name)) {
                  done(false, "analysis missing output: " + name);
                  return;
                }
                (*outputs)[name] =
                    result.at("outputs").at(name).as_string();
              }
              done(true, "");
            });
      }});

  // Step 3: upload every output to the durable collection.
  flow.steps.push_back(fabric::FlowStep{
      "stage-out",
      [this, index, outputs](fabric::FlowRunContext&, fabric::StepDone done) {
        Analysis& a = analyses_[index];
        const AnalysisFlowSpec& s = a.spec;
        auto remaining = std::make_shared<std::size_t>(s.output_names.size());
        auto failed = std::make_shared<bool>(false);
        for (const std::string& name : s.output_names) {
          std::string staging_path = s.base_path + "/" + name;
          s.staging->put(s.staging_collection, staging_path,
                         outputs->at(name), token_);
          transfers_.transfer(
              *s.staging, s.staging_collection, staging_path, *s.storage,
              s.collection, staging_path, token_,
              [remaining, failed, done](const fabric::TransferRecord& rec) {
                if (*failed) return;
                if (rec.status != fabric::TransferStatus::kSucceeded) {
                  *failed = true;
                  done(false, "stage-out failed: " + rec.error);
                  return;
                }
                if (--(*remaining) == 0) done(true, "");
              });
        }
      }});

  // Step 4: register versioning metadata for every output.
  flow.steps.push_back(fabric::FlowStep{
      "register-metadata",
      [this, index, outputs](fabric::FlowRunContext&, fabric::StepDone done) {
        Analysis& a = analyses_[index];
        const AnalysisFlowSpec& s = a.spec;
        for (std::size_t k = 0; k < s.output_names.size(); ++k) {
          const std::string& name = s.output_names[k];
          const std::string& bytes = outputs->at(name);
          db_.add_version(a.output_uuids[k],
                          osprey::crypto::Sha256::hash_hex(bytes),
                          bytes.size(), loop_.now(), s.storage->name(),
                          s.collection, s.base_path + "/" + name);
        }
        done(true, "");
      }});

  obs::CurrentSpanGuard analyze_guard(analysis.span);
  flows_.run(
      flow, token_,
      [this, index, run_id](const fabric::FlowRunRecord& rec, const Value&) {
        Analysis& a = analyses_[index];
        bool ok = rec.status == fabric::FlowRunStatus::kSucceeded;
        // Incidents recorded below correlate with this run's span.
        obs::CurrentSpanGuard run_guard(a.span);
        if (tracer_ != nullptr) {
          std::string err;
          for (const fabric::StepRecord& sr : rec.steps) {
            if (!sr.ok && !sr.error.empty()) err = sr.error;
          }
          tracer_->end_span(a.span, obs::sim_ns(loop_.now()), ok, err);
          a.span = obs::kNoSpan;
        }
        std::vector<VersionRef> outs;
        if (ok) {
          for (const std::string& uuid : a.output_uuids) {
            outs.push_back(VersionRef{uuid, db_.latest_version_number(uuid)});
          }
        } else {
          failed_runs_->inc();
        }
        db_.finish_run(run_id, ok ? RunStatus::kSucceeded : RunStatus::kFailed,
                       outs, loop_.now());
        a.running = false;
        note_run_outcome(a.breaker, a.spec.name, ok);
        std::string flow_name = a.spec.name;
        if (ok) {
          clear_degraded(a.output_uuids, a.spec.name);
          // Announce each output version; may trigger downstream flows.
          std::vector<std::string> produced = a.output_uuids;
          for (const std::string& uuid : produced) {
            on_version_added(uuid, "update of " + flow_name);
          }
        } else if (a.attempts < a.retry.max_attempts && !a.pending) {
          ++a.attempts;
          retries_->inc();
          int attempt = a.attempts;
          std::uint64_t gen = a.trigger_gen;
          SimTime delay = a.retry.jittered(attempt, a.retry_key);
          record_incident(fabric::IncidentCategory::kRecovery,
                          "retry-scheduled", a.spec.name,
                          "attempt " + std::to_string(attempt) + " in " +
                              osprey::util::format_duration(delay));
          loop_.schedule_after(delay, [this, index, attempt, gen] {
            fire_analysis_retry(index, attempt, gen);
          });
          return;
        } else if (!ok && !a.pending) {
          analysis_permanent_->inc();
          mark_degraded(a.output_uuids, a.spec.name,
                        "analysis '" + a.spec.name +
                            "' exhausted its retry budget");
        }
        Analysis& a2 = analyses_[index];
        if (a2.pending && analysis_ready(a2)) {
          if (!a2.breaker.allow(loop_.now())) {
            deferred_triggers_->inc();
            SimTime probe = probe_time(a2.breaker, loop_.now());
            record_incident(fabric::IncidentCategory::kDegraded,
                            "trigger-deferred", a2.spec.name,
                            "circuit open; probe at " +
                                osprey::util::format_sim_time(probe));
            schedule_analysis_probe(index, probe);
            return;
          }
          a2.pending = false;
          a2.attempts = 0;
          ++a2.trigger_gen;
          std::string cause = std::move(a2.pending_cause);
          run_analysis_flow(index, cause + " (queued)");
        } else {
          a2.pending = false;
        }
      });
}

void AeroServer::fire_analysis_retry(std::size_t index, int attempt,
                                     std::uint64_t gen) {
  Analysis& a = analyses_[index];
  // A newer trigger superseded the run this retry was scheduled for;
  // analysis re-triggering is driven by input versions, so nothing is
  // lost by dropping it.
  if (gen != a.trigger_gen || a.running) return;
  if (!a.breaker.allow(loop_.now())) {
    loop_.schedule_at(std::max(probe_time(a.breaker, loop_.now()),
                               loop_.now() + 1),
                      [this, index, attempt, gen] {
                        fire_analysis_retry(index, attempt, gen);
                      });
    return;
  }
  run_analysis_flow(index,
                    "retry " + std::to_string(attempt) + ":" + a.spec.name);
}

void AeroServer::schedule_analysis_probe(std::size_t index, SimTime at) {
  loop_.schedule_at(std::max(at, loop_.now() + 1), [this, index] {
    Analysis& a = analyses_[index];
    if (a.running || !a.pending) return;
    osprey::util::BreakerState before = a.breaker.state();
    if (!a.breaker.allow(loop_.now())) {
      schedule_analysis_probe(index, probe_time(a.breaker, loop_.now()));
      return;
    }
    if (before == osprey::util::BreakerState::kOpen) {
      record_incident(fabric::IncidentCategory::kRecovery,
                      "circuit-half-open", a.spec.name,
                      "admitting probe run");
    }
    if (!analysis_ready(a)) {
      a.pending = false;
      return;
    }
    a.pending = false;
    a.attempts = 0;
    ++a.trigger_gen;
    std::string cause = std::move(a.pending_cause);
    run_analysis_flow(index, cause + " (probe)");
  });
}

void AeroServer::set_fault_plan(fabric::FaultPlan* plan) {
  plan_ = plan;
  if (incidents_ == nullptr && plan != nullptr) incidents_ = &plan->log();
}

AeroServer::ServedEstimate AeroServer::serve_latest(const std::string& uuid) {
  ServedEstimate est;
  est.version = db_.latest_version(uuid);
  auto it = degraded_.find(uuid);
  if (it != degraded_.end()) {
    est.stale = true;
    // Contract: reason is empty iff fresh. A degraded entry recorded
    // without a reason must still say *something*.
    est.reason = it->second.empty() ? "degraded" : it->second;
  } else if (!est.version.has_value()) {
    est.stale = true;
    est.reason = "never-published";
  }
  if (est.stale) {
    stale_serves_->inc();
    record_incident(fabric::IncidentCategory::kDegraded, "stale-serve", uuid,
                    est.reason);
  }
  return est;
}

void AeroServer::record_incident(fabric::IncidentCategory category,
                                 const std::string& kind,
                                 const std::string& site,
                                 const std::string& detail) {
  if (tracer_ != nullptr) {
    // The instant's parent is the in-flight run span (when recorded from
    // a run completion callback), correlating IncidentLog entries with
    // trace spans. IncidentLog itself is untouched: chaos replay tests
    // compare its rendered bytes.
    tracer_->instant(obs::Category::kAero, "incident:" + kind,
                     obs::sim_ns(loop_.now()), obs::kInheritParent,
                     site + ": " + detail);
  }
  if (incidents_ == nullptr) return;
  incidents_->record(loop_.now(), category, kind, "aero", site, detail);
}

void AeroServer::note_run_outcome(osprey::util::CircuitBreaker& breaker,
                                  const std::string& site, bool ok) {
  if (!breaker.config().enabled()) return;
  osprey::util::BreakerState before = breaker.state();
  if (ok) {
    breaker.on_success(loop_.now());
  } else {
    breaker.on_failure(loop_.now());
  }
  osprey::util::BreakerState after = breaker.state();
  if (after == before) return;
  if (after == osprey::util::BreakerState::kOpen) {
    record_incident(fabric::IncidentCategory::kDegraded, "circuit-opened",
                    site,
                    "after " + std::to_string(breaker.consecutive_failures()) +
                        " consecutive failure(s)");
  } else if (after == osprey::util::BreakerState::kClosed) {
    record_incident(fabric::IncidentCategory::kRecovery, "circuit-closed",
                    site, "probe(s) succeeded");
  }
}

void AeroServer::mark_degraded(const std::vector<std::string>& uuids,
                               const std::string& site,
                               const std::string& reason) {
  for (const std::string& uuid : uuids) degraded_[uuid] = reason;
  record_incident(fabric::IncidentCategory::kDegraded, "degraded", site,
                  reason + "; serving last-good estimates");
  // Degradation flips the staleness of the served answer, so caches
  // must revalidate even though no new version appeared.
  for (const std::string& uuid : uuids) notify_updated(uuid);
}

void AeroServer::clear_degraded(const std::vector<std::string>& uuids,
                                const std::string& site) {
  bool any = false;
  for (const std::string& uuid : uuids) {
    if (degraded_.erase(uuid) > 0) {
      any = true;
      notify_updated(uuid);
    }
  }
  if (any) {
    record_incident(fabric::IncidentCategory::kRecovery, "recovered", site,
                    "fresh estimate published");
  }
}

std::uint64_t AeroServer::add_update_listener(UpdateListener listener) {
  std::uint64_t id = next_listener_id_++;
  update_listeners_[id] = std::move(listener);
  return id;
}

void AeroServer::remove_update_listener(std::uint64_t id) {
  update_listeners_.erase(id);
}

void AeroServer::notify_updated(const std::string& uuid) {
  for (const auto& [id, listener] : update_listeners_) {
    if (listener) listener(uuid);
  }
}

}  // namespace osprey::aero
