#include "aero/wal.hpp"

#include <cstdio>
#include <cstring>

#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace osprey::aero {

namespace {

using osprey::util::Value;
using osprey::util::ValueObject;

constexpr std::size_t kHeaderBytes = 4 + 32;  // u32 length + raw SHA-256

std::string lsn_suffix(std::uint64_t lsn) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(lsn));
  return buf;
}

/// Numeric LSN from a "<dir>/<kind>-<lsn>" path; nullopt for foreign
/// files (e.g. a RealFs ".tmp" left by a crash mid-replace).
std::optional<std::uint64_t> lsn_from_path(const std::string& path) {
  std::size_t dash = path.rfind('-');
  if (dash == std::string::npos) return std::nullopt;
  std::string digits = path.substr(dash + 1);
  if (digits.empty() || digits.size() > 12) return std::nullopt;
  std::uint64_t lsn = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    lsn = lsn * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return lsn;
}

void inc(obs::Counter* c, std::uint64_t delta = 1) {
  if (c != nullptr) c->inc(delta);
}

}  // namespace

std::string encode_record(const std::string& payload) {
  OSPREY_REQUIRE(payload.size() <= 0xffffffffull, "WAL payload too large");
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  osprey::crypto::Sha256 hasher;
  hasher.update(payload);
  std::array<std::uint8_t, 32> digest = hasher.digest();
  out.append(reinterpret_cast<const char*>(digest.data()), digest.size());
  out += payload;
  return out;
}

DecodedRecord decode_record(const std::string& buffer, std::size_t offset) {
  DecodedRecord out;
  if (offset > buffer.size() || buffer.size() - offset < kHeaderBytes) {
    return out;  // kTorn
  }
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buffer[offset + i]))
           << (8 * i);
  }
  if (buffer.size() - offset - kHeaderBytes < len) {
    return out;  // kTorn (or a corrupted length field — indistinguishable)
  }
  osprey::crypto::Sha256 hasher;
  hasher.update(buffer.data() + offset + kHeaderBytes, len);
  std::array<std::uint8_t, 32> digest = hasher.digest();
  if (std::memcmp(digest.data(), buffer.data() + offset + 4, 32) != 0) {
    out.status = DecodeStatus::kCorrupt;
    return out;
  }
  out.status = DecodeStatus::kOk;
  out.payload = buffer.substr(offset + kHeaderBytes, len);
  out.consumed = kHeaderBytes + len;
  return out;
}

Wal::Wal(osprey::util::DurableFs& fs, WalOptions options,
         obs::MetricsRegistry* metrics, obs::TraceRecorder* tracer,
         std::function<std::uint64_t()> now_ns)
    : fs_(fs),
      options_(std::move(options)),
      tracer_(tracer),
      now_ns_(std::move(now_ns)) {
  if (metrics != nullptr) {
    appends_ = &metrics->counter("aero_wal_appends_total",
                                 "WAL records appended");
    fsyncs_ = &metrics->counter("aero_wal_fsyncs_total",
                                "durability barriers issued by the WAL");
    checkpoints_ = &metrics->counter("aero_wal_checkpoints_total",
                                     "checkpoints written");
    replayed_ = &metrics->counter("aero_wal_replayed_records_total",
                                  "WAL records replayed during recovery");
    torn_ = &metrics->counter("aero_wal_torn_records_total",
                              "torn WAL records discarded during recovery");
    corrupt_ = &metrics->counter(
        "aero_wal_corrupt_records_total",
        "checksum-rejected WAL records discarded during recovery");
    recoveries_ = &metrics->counter("aero_wal_recoveries_total",
                                    "recovery passes performed");
  }
}

Wal::~Wal() {
  if (db_ != nullptr) db_->set_wal_hook({});
}

std::string Wal::segment_path(std::uint64_t start_lsn) const {
  return options_.dir + "/wal-" + lsn_suffix(start_lsn);
}

std::string Wal::checkpoint_path(std::uint64_t lsn) const {
  return options_.dir + "/checkpoint-" + lsn_suffix(lsn);
}

RecoveryStats Wal::recover(MetadataDb& db) {
  RecoveryStats stats;
  inc(recoveries_);
  std::uint64_t t0 = now_ns_ ? now_ns_() : 0;

  // Newest valid checkpoint wins; older generations are the fallback
  // when its frame is damaged.
  std::vector<std::string> checkpoints = fs_.list(options_.dir + "/checkpoint-");
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    std::optional<std::string> bytes = fs_.read(*it);
    if (!bytes) continue;
    DecodedRecord frame = decode_record(*bytes, 0);
    if (frame.status != DecodeStatus::kOk) {
      ++stats.corrupt;
      inc(corrupt_);
      continue;
    }
    try {
      Value snapshot = Value::parse_json(frame.payload);
      std::uint64_t lsn = static_cast<std::uint64_t>(
          snapshot.at("checkpoint_lsn").as_int());
      db.load_snapshot(snapshot.at("db"));
      stats.checkpoint_loaded = true;
      stats.checkpoint_lsn = lsn;
      break;
    } catch (const osprey::util::Error&) {
      ++stats.corrupt;
      inc(corrupt_);
    }
  }

  // Replay segments past the checkpoint in LSN order (zero-padded names
  // sort numerically). Stop at the first gap or damaged record: records
  // beyond it cannot be trusted, so the longest valid prefix wins.
  std::uint64_t expect = stats.checkpoint_lsn + 1;
  std::string last_segment;
  bool damaged = false;
  std::vector<std::string> segments = fs_.list(options_.dir + "/wal-");
  for (const std::string& segment : segments) {
    std::optional<std::uint64_t> start = lsn_from_path(segment);
    if (!start || *start <= stats.checkpoint_lsn) continue;
    if (damaged || *start != expect) break;  // gap: stop at the prefix
    std::optional<std::string> bytes = fs_.read(segment);
    if (!bytes) break;
    last_segment = segment;
    std::size_t offset = 0;
    while (offset < bytes->size()) {
      DecodedRecord frame = decode_record(*bytes, offset);
      bool applied = false;
      if (frame.status == DecodeStatus::kOk) {
        try {
          Value record = Value::parse_json(frame.payload);
          std::uint64_t lsn =
              static_cast<std::uint64_t>(record.at("lsn").as_int());
          OSPREY_REQUIRE(lsn == expect, "WAL lsn discontinuity");
          db.apply_replay(record);
          applied = true;
        } catch (const osprey::util::Error&) {
          // Checksum-valid but inconsistent (should not happen without
          // foul play); treat like corruption and keep the prefix.
          frame.status = DecodeStatus::kCorrupt;
        }
      }
      if (!applied) {
        if (frame.status == DecodeStatus::kTorn) {
          ++stats.torn;
          inc(torn_);
        } else {
          ++stats.corrupt;
          inc(corrupt_);
        }
        damaged = true;
        // Truncate-by-rewrite: the valid prefix of this segment becomes
        // the whole segment, so the damage never resurfaces.
        fs_.write(segment, bytes->substr(0, offset));
        break;
      }
      ++expect;
      ++stats.replayed;
      inc(replayed_);
      offset += frame.consumed;
    }
  }
  if (damaged) {
    // Anything after the damage point is unreachable (its LSNs would
    // leave a gap) — drop it so future appends cannot collide.
    for (const std::string& segment : segments) {
      std::optional<std::uint64_t> start = lsn_from_path(segment);
      if (start && *start >= expect) fs_.remove(segment);
    }
    fs_.sync();
    inc(fsyncs_);
  }

  next_lsn_ = expect;
  appends_since_checkpoint_ = expect - 1 - stats.checkpoint_lsn;
  current_segment_ =
      last_segment.empty() ? segment_path(next_lsn_) : last_segment;
  stats.next_lsn = next_lsn_;

  db_ = &db;
  db.set_wal_hook([this](const Value& record) { on_record(record); });

  if (tracer_ != nullptr) {
    tracer_->instant(obs::Category::kAero, "wal:recover", t0, obs::kNoSpan,
                     "checkpoint_lsn=" + std::to_string(stats.checkpoint_lsn) +
                         " replayed=" + std::to_string(stats.replayed) +
                         " torn=" + std::to_string(stats.torn) +
                         " corrupt=" + std::to_string(stats.corrupt));
  }
  return stats;
}

void Wal::on_record(const osprey::util::Value& record) {
  const std::uint64_t lsn = next_lsn_;
  if (options_.checkpoint_every > 0 &&
      appends_since_checkpoint_ >= options_.checkpoint_every) {
    // Taking the checkpoint before this append (state covers 1..lsn-1)
    // is what makes "snapshot == applied records" an invariant.
    write_checkpoint(lsn - 1);
  }
  ValueObject framed = record.as_object();
  framed["lsn"] = Value(static_cast<std::int64_t>(lsn));
  fs_.append(current_segment_, encode_record(Value(std::move(framed)).to_json()));
  if (options_.sync_each_append) {
    fs_.sync();
    inc(fsyncs_);
  }
  ++next_lsn_;
  ++appends_since_checkpoint_;
  inc(appends_);
}

void Wal::checkpoint() {
  OSPREY_REQUIRE(db_ != nullptr, "Wal::checkpoint before recover()");
  write_checkpoint(next_lsn_ - 1);
}

void Wal::write_checkpoint(std::uint64_t lsn) {
  ValueObject obj;
  obj["checkpoint_lsn"] = Value(static_cast<std::int64_t>(lsn));
  obj["db"] = db_->to_json();
  fs_.write(checkpoint_path(lsn), encode_record(Value(std::move(obj)).to_json()));
  fs_.sync();
  inc(fsyncs_);
  inc(checkpoints_);
  // Rotate: records after this checkpoint start a fresh segment, so
  // every closed segment holds only records some checkpoint covers.
  current_segment_ = segment_path(lsn + 1);
  appends_since_checkpoint_ = 0;
  prune(lsn);
  if (tracer_ != nullptr) {
    tracer_->instant(obs::Category::kAero, "wal:checkpoint",
                     now_ns_ ? now_ns_() : 0, obs::kNoSpan,
                     "lsn=" + std::to_string(lsn));
  }
}

void Wal::prune(std::uint64_t latest_checkpoint_lsn) {
  // Keep the newest two checkpoint generations (the older one is the
  // fallback if the newer frame is ever damaged), then drop segments
  // fully covered by the oldest retained generation.
  std::vector<std::string> checkpoints = fs_.list(options_.dir + "/checkpoint-");
  while (checkpoints.size() > 2) {
    fs_.remove(checkpoints.front());
    checkpoints.erase(checkpoints.begin());
  }
  std::uint64_t oldest_kept = latest_checkpoint_lsn;
  if (!checkpoints.empty()) {
    std::optional<std::uint64_t> lsn = lsn_from_path(checkpoints.front());
    if (lsn) oldest_kept = *lsn;
  }
  std::vector<std::string> segments = fs_.list(options_.dir + "/wal-");
  for (const std::string& segment : segments) {
    std::optional<std::uint64_t> start = lsn_from_path(segment);
    if (start && *start <= oldest_kept && segment != current_segment_) {
      fs_.remove(segment);
    }
  }
}

}  // namespace osprey::aero
