#pragma once

/// \file wal.hpp
/// Write-ahead log + checkpoints for aero::MetadataDb (DESIGN.md §4f).
///
/// Layout under options.dir in a util::DurableFs:
///   wal-<lsn>          append-only segment whose first record has that
///                      LSN (12-digit zero-padded, so lexicographic
///                      order == numeric order)
///   checkpoint-<lsn>   atomic whole-DB snapshot covering records 1..lsn
///
/// Record framing (encode_record):
///   [u32 LE payload length][32-byte raw SHA-256 of payload][payload]
/// The payload is the MetadataDb operation record (a JSON object) plus
/// an "lsn" field. decode_record classifies damage: a buffer that ends
/// mid-frame is TORN (the tail a crash mid-append leaves); a frame
/// whose checksum does not match is CORRUPT. Recovery stops at the
/// first damaged record and keeps the longest valid prefix.
///
/// Protocol: Wal installs itself as the db's WAL hook, so every
/// mutation's record is framed, appended and (optionally) fsynced
/// BEFORE the state change applies. When a checkpoint falls due it is
/// taken at the START of the next append — at that moment the db state
/// reflects exactly the records already logged — then the segment
/// rotates so no segment ever holds records newer than a later
/// checkpoint. The last two checkpoint generations are retained.

#include <cstdint>
#include <functional>
#include <string>

#include "aero/metadata_db.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/durable_fs.hpp"

namespace osprey::aero {

struct WalOptions {
  std::string dir = "aero-wal";
  /// Appends between automatic checkpoints; 0 disables (explicit
  /// checkpoint() still works).
  std::uint64_t checkpoint_every = 0;
  /// Durability barrier after every append (the safe default; benches
  /// may batch).
  bool sync_each_append = true;
};

enum class DecodeStatus { kOk, kTorn, kCorrupt };

struct DecodedRecord {
  DecodeStatus status = DecodeStatus::kTorn;
  std::string payload;        // valid when status == kOk
  std::size_t consumed = 0;   // frame bytes consumed when status == kOk
};

/// Frame one payload: [u32 LE length][raw SHA-256][payload].
std::string encode_record(const std::string& payload);
/// Decode the frame starting at `offset`; never throws.
DecodedRecord decode_record(const std::string& buffer, std::size_t offset);

struct RecoveryStats {
  bool checkpoint_loaded = false;
  std::uint64_t checkpoint_lsn = 0;  // 0 = recovered from genesis
  std::uint64_t replayed = 0;        // WAL records applied after the checkpoint
  std::uint64_t torn = 0;            // records discarded as torn
  std::uint64_t corrupt = 0;         // records rejected by checksum/consistency
  std::uint64_t next_lsn = 1;        // LSN the next append will get
};

class Wal {
 public:
  /// `fs` must outlive the Wal. Metrics/tracer are optional (nullptr =
  /// no observability). `now_ns` supplies virtual time for trace
  /// events; unset records them at t=0.
  Wal(osprey::util::DurableFs& fs, WalOptions options,
      obs::MetricsRegistry* metrics = nullptr,
      obs::TraceRecorder* tracer = nullptr,
      std::function<std::uint64_t()> now_ns = {});
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Restore `db` from the newest valid checkpoint plus the WAL tail
  /// (longest valid prefix; torn/corrupt tails are truncated away),
  /// then install the write-ahead hook so subsequent mutations are
  /// logged. On an empty directory this is a fresh start. `db` must be
  /// freshly constructed (recovery replays uuid draws from genesis) and
  /// must outlive the Wal; any version listener attached to it stays
  /// armed. Never throws on damaged logs — damage is counted in the
  /// returned stats.
  RecoveryStats recover(MetadataDb& db);

  /// Snapshot the full db now (covering every record logged so far),
  /// rotate to a fresh segment, and prune old generations. Requires a
  /// prior recover().
  void checkpoint();

  std::uint64_t next_lsn() const { return next_lsn_; }
  const WalOptions& options() const { return options_; }

 private:
  void on_record(const osprey::util::Value& record);
  void write_checkpoint(std::uint64_t lsn);
  void prune(std::uint64_t keep_from_lsn);
  std::string segment_path(std::uint64_t start_lsn) const;
  std::string checkpoint_path(std::uint64_t lsn) const;

  osprey::util::DurableFs& fs_;
  WalOptions options_;
  MetadataDb* db_ = nullptr;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t appends_since_checkpoint_ = 0;
  std::string current_segment_;

  obs::TraceRecorder* tracer_ = nullptr;
  std::function<std::uint64_t()> now_ns_;
  obs::Counter* appends_ = nullptr;
  obs::Counter* fsyncs_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* replayed_ = nullptr;
  obs::Counter* torn_ = nullptr;
  obs::Counter* corrupt_ = nullptr;
  obs::Counter* recoveries_ = nullptr;
};

}  // namespace osprey::aero
