#pragma once

/// \file server.hpp
/// The AERO server: event-based research orchestration over the
/// simulated fabric. Reproduces the paper's §2.2 mechanics:
///
///  - Ingestion flows poll an upstream URL on a timer ("daily"); a
///    checksum change means new data. The raw payload is staged at the
///    compute endpoint, a user transformation function runs there, and
///    both raw and transformed payloads are uploaded to a user-specified
///    storage collection. Versioning metadata (checksum, timestamp,
///    version number) is recorded for input and output.
///  - Registration returns UUIDs identifying the output data; analysis
///    flows take those UUIDs as inputs and are triggered when inputs
///    update, under an ANY or ALL policy.
///  - AERO wraps every user function with stage-in → execute →
///    stage-out → metadata-update steps (run as a fabric FlowDefinition).
///  - The server only ever handles metadata; payloads move between
///    storage endpoints via the transfer service.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "aero/metadata_db.hpp"
#include "aero/source.hpp"
#include "aero/wal.hpp"
#include "fabric/compute.hpp"
#include "fabric/fault.hpp"
#include "fabric/flows.hpp"
#include "fabric/storage.hpp"
#include "fabric/timer.hpp"
#include "fabric/transfer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/retry.hpp"
#include "util/value.hpp"

namespace osprey::aero {

enum class TriggerPolicy { kAny, kAll };

/// Registration request for an ingestion flow (paper: polling frequency,
/// URL, function + args, compute endpoint, storage collection).
struct IngestionFlowSpec {
  std::string name;
  std::shared_ptr<DataSource> source;
  SimTime poll_period = osprey::util::kDay;
  SimTime first_poll = 0;

  fabric::ComputeEndpoint* compute = nullptr;
  std::string function_id;                 // validation/transformation fn
  osprey::util::Value function_args;       // extra args to that fn

  fabric::StorageEndpoint* staging = nullptr;  // compute-local temp space
  std::string staging_collection;
  fabric::StorageEndpoint* storage = nullptr;  // durable collection (Eagle)
  std::string collection;
  std::string base_path;  // raw -> <base>/raw, transformed -> <base>/transformed

  /// Automatic re-runs after a failed flow (transfer/compute faults).
  /// Legacy knobs: when `retry` below is disabled, an exponential
  /// policy is synthesized from these (initial = retry_backoff,
  /// multiplier 2, cap 8x).
  int max_retries = 0;
  SimTime retry_backoff = 5 * osprey::util::kMinute;
  /// Full retry policy (overrides the legacy knobs when enabled).
  osprey::util::RetryPolicy retry;
  /// Optional circuit breaker: after `failure_threshold` consecutive
  /// failed runs the flow stops being triggered until a half-open probe
  /// succeeds. Disabled by default.
  osprey::util::CircuitBreakerConfig breaker;
};

/// UUIDs returned by ingestion registration.
struct IngestionHandles {
  std::string raw_uuid;
  std::string output_uuid;
  fabric::TimerId timer = 0;
};

/// Registration request for an analysis flow: input data UUIDs instead
/// of a URL, plus the trigger policy.
struct AnalysisFlowSpec {
  std::string name;
  std::vector<std::string> input_uuids;
  TriggerPolicy policy = TriggerPolicy::kAll;

  fabric::ComputeEndpoint* compute = nullptr;
  std::string function_id;
  osprey::util::Value function_args;

  fabric::StorageEndpoint* staging = nullptr;
  std::string staging_collection;
  fabric::StorageEndpoint* storage = nullptr;
  std::string collection;
  std::string base_path;
  /// Names of the outputs the analysis function produces (keys of the
  /// "outputs" object in its result). One data object per name.
  std::vector<std::string> output_names;

  /// Automatic re-runs after a failed flow (transfer/compute faults).
  /// Same semantics as IngestionFlowSpec: legacy knobs plus optional
  /// full policy and breaker.
  int max_retries = 0;
  SimTime retry_backoff = 5 * osprey::util::kMinute;
  osprey::util::RetryPolicy retry;
  osprey::util::CircuitBreakerConfig breaker;
};

/// The orchestration server.
class AeroServer {
 public:
  /// The server authenticates to the fabric as `identity` (a full-scope
  /// token is issued at construction). Collections the flows touch must
  /// be readable/writable by this identity. The Figure-1 counters live
  /// in `metrics` (non-owning); when nullptr the server owns a private
  /// registry, so standalone construction keeps working. `uuid_seed`
  /// seeds the metadata db's uuid generator — sharded deployments give
  /// every partition's server a distinct, stable seed so object uuids
  /// never collide across partitions (and recovery, which replays uuid
  /// draws in lockstep, sees the same stream after a restart).
  AeroServer(fabric::EventLoop& loop, fabric::AuthService& auth,
             fabric::TimerService& timers, fabric::TransferService& transfers,
             fabric::FlowsService& flows, std::string identity = "aero",
             obs::MetricsRegistry* metrics = nullptr,
             std::uint64_t uuid_seed = 0xAE70);

  AeroServer(const AeroServer&) = delete;
  AeroServer& operator=(const AeroServer&) = delete;

  /// Durable metadata (DESIGN.md §4f): recover db() from the WAL +
  /// checkpoints under `fs`, adjudicate runs the crash interrupted
  /// (kRunning → kFailed plus a "run-interrupted" recovery incident),
  /// re-announce every recovered object to update listeners so rebuilt
  /// serving-tier caches can never treat a pre-crash answer as fresh,
  /// and write-ahead-log every subsequent mutation. Must be called
  /// before any flow registration; registration is idempotent across
  /// restarts (existing data objects are reused by name+producer). `fs`
  /// must outlive the server.
  RecoveryStats enable_durability(osprey::util::DurableFs& fs,
                                  WalOptions options = {});
  /// The owned WAL (nullptr until enable_durability).
  Wal* wal() { return wal_.get(); }

  /// Register an ingestion flow; arms its polling timer and returns the
  /// UUIDs of the raw and transformed data objects.
  IngestionHandles register_ingestion(IngestionFlowSpec spec);

  /// Register an analysis flow; returns one output UUID per output name.
  std::vector<std::string> register_analysis(AnalysisFlowSpec spec);

  /// Pause an ingestion flow's polling (by flow name). Paused flows keep
  /// their registration and data; resume re-arms the timer at the next
  /// period boundary. Returns false for unknown names.
  bool pause_ingestion(const std::string& name);
  bool resume_ingestion(const std::string& name);
  bool ingestion_paused(const std::string& name) const;

  /// Permanently cancel an ingestion flow's polling. Its data objects
  /// and provenance remain in the metadata DB.
  bool cancel_ingestion(const std::string& name);

  /// Attach a chaos FaultPlan (non-owning). The server consults it for
  /// upstream source outages; when no incident log was set explicitly,
  /// recovery/degradation actions are recorded into the plan's log.
  void set_fault_plan(fabric::FaultPlan* plan);
  /// Structured record of recovery and degradation actions (non-owning;
  /// nullptr detaches).
  void set_incident_log(fabric::IncidentLog* log) { incidents_ = log; }

  /// Attach a trace recorder (non-owning; nullptr detaches). Every
  /// ingestion/analysis run becomes an "ingest:"/"analyze:" span (the
  /// wrapped flow and its steps nest underneath), update detections and
  /// incidents become instant events correlated by parent span id.
  void set_tracer(obs::TraceRecorder* tracer) { tracer_ = tracer; }

  /// The registry holding the server's counters (owned fallback or the
  /// one passed at construction).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Graceful degradation: the last good version of a data object,
  /// flagged stale when its producing flow is currently failing (or it
  /// has never published). Stakeholders always get an answer plus an
  /// honest staleness signal — never an error.
  struct ServedEstimate {
    std::optional<DataVersion> version;  // last good, if any
    bool stale = false;
    std::string reason;  // why the estimate is stale (empty iff fresh)
  };
  ServedEstimate serve_latest(const std::string& uuid);

  /// Is this data object currently degraded (producer failing)?
  bool degraded(const std::string& uuid) const {
    return degraded_.count(uuid) > 0;
  }

  /// Serving-tier invalidation hook: fires whenever an object's served
  /// answer may have changed — a new DataVersion was registered (any
  /// path into the metadata db) or its degradation state flipped.
  /// serve::ResultCache registers here to invalidate entries. Returns a
  /// key for remove_update_listener; listeners must outlive the server
  /// or unregister first.
  using UpdateListener = std::function<void(const std::string& uuid)>;
  std::uint64_t add_update_listener(UpdateListener listener);
  void remove_update_listener(std::uint64_t id);

  MetadataDb& db() { return db_; }
  const MetadataDb& db() const { return db_; }

  const std::string& identity() const { return identity_; }
  const std::string& token() const { return token_; }

  // --- counters for the Figure-1 trace tables (backed by the
  // MetricsRegistry under aero_* metric names) ---
  std::uint64_t polls() const { return polls_->value(); }
  std::uint64_t updates_detected() const { return updates_detected_->value(); }
  std::uint64_t ingestion_runs() const { return ingestion_runs_->value(); }
  std::uint64_t analysis_triggers() const {
    return analysis_triggers_->value();
  }
  std::uint64_t analysis_runs() const { return analysis_runs_->value(); }
  std::uint64_t failed_runs() const { return failed_runs_->value(); }
  std::uint64_t retries() const { return retries_->value(); }
  std::uint64_t fetch_errors() const { return fetch_errors_->value(); }
  /// Triggers whose retry budget was exhausted (flow gave up).
  std::uint64_t permanent_failures() const {
    return ingestion_permanent_->value() + analysis_permanent_->value();
  }
  std::uint64_t ingestion_permanent_failures() const {
    return ingestion_permanent_->value();
  }
  std::uint64_t analysis_permanent_failures() const {
    return analysis_permanent_->value();
  }
  /// Ingestion triggers whose payload was replaced by fresher upstream
  /// data before it could publish.
  std::uint64_t superseded_triggers() const {
    return superseded_triggers_->value();
  }
  /// Triggers deferred because a circuit breaker was open.
  std::uint64_t deferred_triggers() const {
    return deferred_triggers_->value();
  }
  std::uint64_t stale_serves() const { return stale_serves_->value(); }

 private:
  struct Ingestion {
    IngestionFlowSpec spec;
    std::string raw_uuid;
    std::string output_uuid;
    std::string last_checksum;  // of the upstream payload last ingested
    /// Raw bytes of the last polled payload. Byte-identical bytes hash
    /// to an identical checksum, so the poll path compares these first
    /// and skips the SHA-256 entirely on the (overwhelmingly common)
    /// unchanged poll — the scale bottleneck at sub-daily cadences.
    std::optional<std::string> last_payload;
    bool running = false;
    bool pending = false;       // an update arrived while running
    std::string pending_payload;
    int attempts = 0;           // of the current trigger (for retries)
    std::string current_payload;  // kept for retry re-runs
    fabric::TimerId timer = 0;
    bool paused = false;
    bool cancelled = false;
    /// Effective retry policy (spec.retry or synthesized from the
    /// legacy max_retries/retry_backoff knobs).
    osprey::util::RetryPolicy retry;
    osprey::util::CircuitBreaker breaker;
    std::uint64_t retry_key = 0;   // jitter key (hash of the flow name)
    /// Bumped on every fresh trigger so a stale retry timer (scheduled
    /// for a previous trigger) can recognize it was superseded.
    std::uint64_t trigger_gen = 0;
    /// Span of the in-flight "ingest:<name>" run (kNoSpan when idle).
    obs::SpanId span = obs::kNoSpan;
  };

  struct Analysis {
    AnalysisFlowSpec spec;
    std::vector<std::string> output_uuids;
    /// For the ALL policy: the version of each input consumed last run.
    std::map<std::string, int> consumed_version;
    bool running = false;
    bool pending = false;
    std::string pending_cause;
    int attempts = 0;           // of the current trigger (for retries)
    osprey::util::RetryPolicy retry;
    osprey::util::CircuitBreaker breaker;
    std::uint64_t retry_key = 0;
    std::uint64_t trigger_gen = 0;
    /// Span of the in-flight "analyze:<name>" run (kNoSpan when idle).
    obs::SpanId span = obs::kNoSpan;
  };

  /// Existing object with this exact name+producer (recovered across a
  /// restart), or a freshly registered one.
  std::string intern_object(const std::string& name,
                            const std::string& producer);
  void poll_ingestion(std::size_t index);
  Ingestion* find_ingestion(const std::string& name);
  const Ingestion* find_ingestion(const std::string& name) const;
  void run_ingestion_flow(std::size_t index, std::string payload,
                          const std::string& trigger);
  void run_analysis_flow(std::size_t index, const std::string& trigger);
  /// Start the pending ingestion payload once its circuit breaker
  /// admits a half-open probe.
  void schedule_ingestion_probe(std::size_t index, SimTime at);
  void schedule_analysis_probe(std::size_t index, SimTime at);
  /// Fire a scheduled retry (re-checking breaker and supersession).
  void fire_ingestion_retry(std::size_t index, int attempt,
                            std::uint64_t gen);
  void fire_analysis_retry(std::size_t index, int attempt,
                           std::uint64_t gen);
  /// Record a recovery/degradation incident (no-op without a log).
  void record_incident(fabric::IncidentCategory category,
                       const std::string& kind, const std::string& site,
                       const std::string& detail);
  /// Breaker bookkeeping with circuit-transition incidents.
  void note_run_outcome(osprey::util::CircuitBreaker& breaker,
                        const std::string& site, bool ok);
  void mark_degraded(const std::vector<std::string>& uuids,
                     const std::string& site, const std::string& reason);
  void clear_degraded(const std::vector<std::string>& uuids,
                      const std::string& site);
  /// Invoke every registered update listener for `uuid`.
  void notify_updated(const std::string& uuid);
  /// Called after any data object gains a version; evaluates triggers.
  void on_version_added(const std::string& uuid, const std::string& cause);
  /// Policy evaluation for one analysis flow.
  bool analysis_ready(const Analysis& analysis) const;

  fabric::EventLoop& loop_;
  fabric::AuthService& auth_;
  fabric::TimerService& timers_;
  fabric::TransferService& transfers_;
  fabric::FlowsService& flows_;
  std::string identity_;
  std::string token_;
  MetadataDb db_;
  /// Declared after db_ so it is destroyed first (its destructor
  /// detaches the WAL hook from a still-live db).
  std::unique_ptr<Wal> wal_;

  std::vector<Ingestion> ingestions_;
  std::vector<Analysis> analyses_;

  /// Fallback registry when none is injected at construction.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* tracer_ = nullptr;

  // Figure-1 counters, bound once in the constructor. Non-owning; the
  // registry outlives them by construction.
  obs::Counter* polls_ = nullptr;
  obs::Counter* updates_detected_ = nullptr;
  obs::Counter* ingestion_runs_ = nullptr;
  obs::Counter* analysis_triggers_ = nullptr;
  obs::Counter* analysis_runs_ = nullptr;
  obs::Counter* failed_runs_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* fetch_errors_ = nullptr;
  obs::Counter* ingestion_permanent_ = nullptr;
  obs::Counter* analysis_permanent_ = nullptr;
  obs::Counter* superseded_triggers_ = nullptr;
  obs::Counter* deferred_triggers_ = nullptr;
  obs::Counter* stale_serves_ = nullptr;

  fabric::FaultPlan* plan_ = nullptr;
  fabric::IncidentLog* incidents_ = nullptr;
  /// uuid -> reason its producer is currently failing.
  std::map<std::string, std::string> degraded_;
  /// Serving-tier update listeners, keyed by registration id (ordered
  /// map: notification order is deterministic).
  std::map<std::uint64_t, UpdateListener> update_listeners_;
  std::uint64_t next_listener_id_ = 1;
};

}  // namespace osprey::aero
