#pragma once

/// \file server.hpp
/// The AERO server: event-based research orchestration over the
/// simulated fabric. Reproduces the paper's §2.2 mechanics:
///
///  - Ingestion flows poll an upstream URL on a timer ("daily"); a
///    checksum change means new data. The raw payload is staged at the
///    compute endpoint, a user transformation function runs there, and
///    both raw and transformed payloads are uploaded to a user-specified
///    storage collection. Versioning metadata (checksum, timestamp,
///    version number) is recorded for input and output.
///  - Registration returns UUIDs identifying the output data; analysis
///    flows take those UUIDs as inputs and are triggered when inputs
///    update, under an ANY or ALL policy.
///  - AERO wraps every user function with stage-in → execute →
///    stage-out → metadata-update steps (run as a fabric FlowDefinition).
///  - The server only ever handles metadata; payloads move between
///    storage endpoints via the transfer service.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aero/metadata_db.hpp"
#include "aero/source.hpp"
#include "fabric/compute.hpp"
#include "fabric/flows.hpp"
#include "fabric/storage.hpp"
#include "fabric/timer.hpp"
#include "fabric/transfer.hpp"
#include "util/value.hpp"

namespace osprey::aero {

enum class TriggerPolicy { kAny, kAll };

/// Registration request for an ingestion flow (paper: polling frequency,
/// URL, function + args, compute endpoint, storage collection).
struct IngestionFlowSpec {
  std::string name;
  std::shared_ptr<DataSource> source;
  SimTime poll_period = osprey::util::kDay;
  SimTime first_poll = 0;

  fabric::ComputeEndpoint* compute = nullptr;
  std::string function_id;                 // validation/transformation fn
  osprey::util::Value function_args;       // extra args to that fn

  fabric::StorageEndpoint* staging = nullptr;  // compute-local temp space
  std::string staging_collection;
  fabric::StorageEndpoint* storage = nullptr;  // durable collection (Eagle)
  std::string collection;
  std::string base_path;  // raw -> <base>/raw, transformed -> <base>/transformed

  /// Automatic re-runs after a failed flow (transfer/compute faults).
  int max_retries = 0;
  SimTime retry_backoff = 5 * osprey::util::kMinute;
};

/// UUIDs returned by ingestion registration.
struct IngestionHandles {
  std::string raw_uuid;
  std::string output_uuid;
  fabric::TimerId timer = 0;
};

/// Registration request for an analysis flow: input data UUIDs instead
/// of a URL, plus the trigger policy.
struct AnalysisFlowSpec {
  std::string name;
  std::vector<std::string> input_uuids;
  TriggerPolicy policy = TriggerPolicy::kAll;

  fabric::ComputeEndpoint* compute = nullptr;
  std::string function_id;
  osprey::util::Value function_args;

  fabric::StorageEndpoint* staging = nullptr;
  std::string staging_collection;
  fabric::StorageEndpoint* storage = nullptr;
  std::string collection;
  std::string base_path;
  /// Names of the outputs the analysis function produces (keys of the
  /// "outputs" object in its result). One data object per name.
  std::vector<std::string> output_names;

  /// Automatic re-runs after a failed flow (transfer/compute faults).
  int max_retries = 0;
  SimTime retry_backoff = 5 * osprey::util::kMinute;
};

/// The orchestration server.
class AeroServer {
 public:
  /// The server authenticates to the fabric as `identity` (a full-scope
  /// token is issued at construction). Collections the flows touch must
  /// be readable/writable by this identity.
  AeroServer(fabric::EventLoop& loop, fabric::AuthService& auth,
             fabric::TimerService& timers, fabric::TransferService& transfers,
             fabric::FlowsService& flows, std::string identity = "aero");

  AeroServer(const AeroServer&) = delete;
  AeroServer& operator=(const AeroServer&) = delete;

  /// Register an ingestion flow; arms its polling timer and returns the
  /// UUIDs of the raw and transformed data objects.
  IngestionHandles register_ingestion(IngestionFlowSpec spec);

  /// Register an analysis flow; returns one output UUID per output name.
  std::vector<std::string> register_analysis(AnalysisFlowSpec spec);

  /// Pause an ingestion flow's polling (by flow name). Paused flows keep
  /// their registration and data; resume re-arms the timer at the next
  /// period boundary. Returns false for unknown names.
  bool pause_ingestion(const std::string& name);
  bool resume_ingestion(const std::string& name);
  bool ingestion_paused(const std::string& name) const;

  /// Permanently cancel an ingestion flow's polling. Its data objects
  /// and provenance remain in the metadata DB.
  bool cancel_ingestion(const std::string& name);

  MetadataDb& db() { return db_; }
  const MetadataDb& db() const { return db_; }

  const std::string& identity() const { return identity_; }
  const std::string& token() const { return token_; }

  // --- counters for the Figure-1 trace tables ---
  std::uint64_t polls() const { return polls_; }
  std::uint64_t updates_detected() const { return updates_detected_; }
  std::uint64_t ingestion_runs() const { return ingestion_runs_; }
  std::uint64_t analysis_triggers() const { return analysis_triggers_; }
  std::uint64_t analysis_runs() const { return analysis_runs_; }
  std::uint64_t failed_runs() const { return failed_runs_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t fetch_errors() const { return fetch_errors_; }

 private:
  struct Ingestion {
    IngestionFlowSpec spec;
    std::string raw_uuid;
    std::string output_uuid;
    std::string last_checksum;  // of the upstream payload last ingested
    bool running = false;
    bool pending = false;       // an update arrived while running
    std::string pending_payload;
    int attempts = 0;           // of the current trigger (for retries)
    std::string current_payload;  // kept for retry re-runs
    fabric::TimerId timer = 0;
    bool paused = false;
    bool cancelled = false;
  };

  struct Analysis {
    AnalysisFlowSpec spec;
    std::vector<std::string> output_uuids;
    /// For the ALL policy: the version of each input consumed last run.
    std::map<std::string, int> consumed_version;
    bool running = false;
    bool pending = false;
    std::string pending_cause;
    int attempts = 0;           // of the current trigger (for retries)
  };

  void poll_ingestion(std::size_t index);
  Ingestion* find_ingestion(const std::string& name);
  const Ingestion* find_ingestion(const std::string& name) const;
  void run_ingestion_flow(std::size_t index, std::string payload,
                          const std::string& trigger);
  void run_analysis_flow(std::size_t index, const std::string& trigger);
  /// Called after any data object gains a version; evaluates triggers.
  void on_version_added(const std::string& uuid, const std::string& cause);
  /// Policy evaluation for one analysis flow.
  bool analysis_ready(const Analysis& analysis) const;

  fabric::EventLoop& loop_;
  fabric::AuthService& auth_;
  fabric::TimerService& timers_;
  fabric::TransferService& transfers_;
  fabric::FlowsService& flows_;
  std::string identity_;
  std::string token_;
  MetadataDb db_;

  std::vector<Ingestion> ingestions_;
  std::vector<Analysis> analyses_;

  std::uint64_t polls_ = 0;
  std::uint64_t updates_detected_ = 0;
  std::uint64_t ingestion_runs_ = 0;
  std::uint64_t analysis_triggers_ = 0;
  std::uint64_t analysis_runs_ = 0;
  std::uint64_t failed_runs_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t fetch_errors_ = 0;
};

}  // namespace osprey::aero
