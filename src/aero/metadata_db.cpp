#include "aero/metadata_db.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace osprey::aero {

namespace {

using osprey::util::Value;
using osprey::util::ValueArray;
using osprey::util::ValueObject;

Value version_to_json(const DataVersion& v) {
  ValueObject obj;
  obj["version"] = Value(v.version);
  obj["checksum"] = Value(v.checksum);
  obj["size_bytes"] = Value(static_cast<std::int64_t>(v.size_bytes));
  obj["timestamp"] = Value(v.timestamp);
  obj["endpoint"] = Value(v.endpoint);
  obj["collection"] = Value(v.collection);
  obj["path"] = Value(v.path);
  return Value(std::move(obj));
}

DataVersion version_from_json(const Value& v) {
  DataVersion out;
  out.version = static_cast<int>(v.at("version").as_int());
  out.checksum = v.at("checksum").as_string();
  out.size_bytes = static_cast<std::uint64_t>(v.at("size_bytes").as_int());
  out.timestamp = v.at("timestamp").as_int();
  out.endpoint = v.at("endpoint").as_string();
  out.collection = v.at("collection").as_string();
  out.path = v.at("path").as_string();
  return out;
}

Value refs_to_json(const std::vector<VersionRef>& refs) {
  ValueArray arr;
  for (const VersionRef& r : refs) {
    ValueObject obj;
    obj["uuid"] = Value(r.uuid);
    obj["version"] = Value(r.version);
    arr.emplace_back(std::move(obj));
  }
  return Value(std::move(arr));
}

std::vector<VersionRef> refs_from_json(const Value& v) {
  std::vector<VersionRef> out;
  for (const Value& e : v.as_array()) {
    out.push_back(VersionRef{e.at("uuid").as_string(),
                             static_cast<int>(e.at("version").as_int())});
  }
  return out;
}

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::kRunning: return "running";
    case RunStatus::kSucceeded: return "succeeded";
    case RunStatus::kFailed: return "failed";
  }
  return "?";
}

RunStatus run_status_from_name(const std::string& s) {
  if (s == "running") return RunStatus::kRunning;
  if (s == "succeeded") return RunStatus::kSucceeded;
  if (s == "failed") return RunStatus::kFailed;
  throw osprey::util::InvalidArgument("unknown run status: " + s);
}

const char* flow_kind_name(FlowKind k) {
  return k == FlowKind::kIngestion ? "ingestion" : "analysis";
}

FlowKind flow_kind_from_name(const std::string& s) {
  return s == "ingestion" ? FlowKind::kIngestion : FlowKind::kAnalysis;
}

}  // namespace

MetadataDb::MetadataDb(std::uint64_t uuid_seed) : uuids_(uuid_seed) {}

// ---------------------------------------------------------------------
// The apply path: the only place state mutates. Live mutators build an
// operation record, push it through the WAL hook (append-before-mutate)
// and then apply it; recovery replays persisted records through the
// same function, so both paths take identical state transitions.
// ---------------------------------------------------------------------

void MetadataDb::apply(const osprey::util::Value& record) {
  const std::string& op = record.at("op").as_string();
  if (op == "register_object") {
    // Drawing here (instead of trusting the record) keeps the generator
    // in lockstep on both paths and turns any WAL/state divergence into
    // a loud failure instead of silent uuid reuse.
    std::string uuid = uuids_.next();
    OSPREY_REQUIRE(uuid == record.at("uuid").as_string(),
                   "uuid sequence diverged from the WAL record");
    DataObjectRecord rec;
    rec.uuid = uuid;
    rec.name = record.at("name").as_string();
    rec.producer_flow = record.at("producer_flow").as_string();
    // osprey-lint: allow(wal-bypass) — the sanctioned apply() site
    OSPREY_REQUIRE(objects_.emplace(uuid, std::move(rec)).second,
                   "duplicate object uuid");
  } else if (op == "add_version") {
    auto it = objects_.find(record.at("uuid").as_string());
    OSPREY_REQUIRE(it != objects_.end(), "add_version for unknown object");
    DataVersion v = version_from_json(record);
    OSPREY_REQUIRE(v.version ==
                       static_cast<int>(it->second.versions.size()) + 1,
                   "version numbers must be dense");
    // osprey-lint: allow(wal-bypass) — the sanctioned apply() site
    it->second.versions.push_back(std::move(v));
  } else if (op == "start_run") {
    RunRecord rec;
    rec.run_id = static_cast<std::uint64_t>(record.at("run_id").as_int());
    OSPREY_REQUIRE(rec.run_id == runs_.size(), "run ids must be dense");
    rec.flow_name = record.at("flow_name").as_string();
    rec.kind = flow_kind_from_name(record.at("kind").as_string());
    rec.trigger = record.at("trigger").as_string();
    rec.inputs = refs_from_json(record.at("inputs"));
    rec.compute_endpoint = record.at("compute_endpoint").as_string();
    rec.started = record.at("started").as_int();
    // osprey-lint: allow(wal-bypass) — the sanctioned apply() site
    runs_.push_back(std::move(rec));
  } else if (op == "finish_run") {
    std::uint64_t run_id =
        static_cast<std::uint64_t>(record.at("run_id").as_int());
    OSPREY_REQUIRE(run_id < runs_.size(), "unknown run id");
    RunRecord& rec = runs_[run_id];
    rec.status = run_status_from_name(record.at("status").as_string());
    rec.outputs = refs_from_json(record.at("outputs"));
    rec.ended = record.at("ended").as_int();
  } else {
    throw osprey::util::InvalidArgument("unknown metadata op: " + op);
  }
}

std::string MetadataDb::register_object(const std::string& name,
                                        const std::string& producer_flow) {
  // Peek the uuid the generator will assign so the WAL record — written
  // before any state changes — already carries it.
  osprey::util::UuidFactory peek = uuids_;
  std::string uuid = peek.next();
  ValueObject record;
  record["op"] = Value("register_object");
  record["uuid"] = Value(uuid);
  record["name"] = Value(name);
  record["producer_flow"] = Value(producer_flow);
  Value rec(std::move(record));
  if (wal_hook_) wal_hook_(rec);
  apply(rec);
  ++updates_;
  return uuid;
}

bool MetadataDb::has_object(const std::string& uuid) const {
  ++queries_;
  return objects_.count(uuid) > 0;
}

const DataObjectRecord& MetadataDb::object(const std::string& uuid) const {
  ++queries_;
  auto it = objects_.find(uuid);
  if (it == objects_.end()) {
    throw osprey::util::NotFound("no such data object: " + uuid);
  }
  return it->second;
}

const DataVersion& MetadataDb::add_version(
    const std::string& uuid, const std::string& checksum,
    std::uint64_t size_bytes, SimTime timestamp, const std::string& endpoint,
    const std::string& collection, const std::string& path) {
  auto it = objects_.find(uuid);
  if (it == objects_.end()) {
    throw osprey::util::NotFound("no such data object: " + uuid);
  }
  DataVersion v;
  v.version = static_cast<int>(it->second.versions.size()) + 1;
  v.checksum = checksum;
  v.size_bytes = size_bytes;
  v.timestamp = timestamp;
  v.endpoint = endpoint;
  v.collection = collection;
  v.path = path;
  Value rec = version_to_json(v);
  rec.as_object()["op"] = Value("add_version");
  rec.as_object()["uuid"] = Value(uuid);
  if (wal_hook_) wal_hook_(rec);
  apply(rec);
  ++updates_;
  const DataVersion& added = it->second.versions.back();
  if (version_listener_) version_listener_(uuid, added.version);
  return added;
}

std::optional<DataVersion> MetadataDb::latest_version(
    const std::string& uuid) const {
  const DataObjectRecord& rec = object(uuid);
  if (rec.versions.empty()) return std::nullopt;
  return rec.versions.back();
}

int MetadataDb::latest_version_number(const std::string& uuid) const {
  const DataObjectRecord& rec = object(uuid);
  return rec.versions.empty() ? 0 : rec.versions.back().version;
}

std::vector<std::string> MetadataDb::object_uuids() const {
  ++queries_;
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [uuid, rec] : objects_) {
    (void)rec;
    out.push_back(uuid);
  }
  return out;
}

std::vector<MetadataDb::ObjectSummary> MetadataDb::find_objects(
    const std::string& name_prefix) const {
  ++queries_;
  std::vector<ObjectSummary> out;
  for (const auto& [uuid, rec] : objects_) {
    if (rec.name.compare(0, name_prefix.size(), name_prefix) != 0) continue;
    ObjectSummary s;
    s.uuid = uuid;
    s.name = rec.name;
    s.producer_flow = rec.producer_flow;
    s.latest_version =
        rec.versions.empty() ? 0 : rec.versions.back().version;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectSummary& a, const ObjectSummary& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.uuid < b.uuid;
            });
  return out;
}

std::uint64_t MetadataDb::start_run(const std::string& flow_name,
                                    FlowKind kind, const std::string& trigger,
                                    std::vector<VersionRef> inputs,
                                    const std::string& compute_endpoint,
                                    SimTime started) {
  std::uint64_t run_id = runs_.size();
  ValueObject record;
  record["op"] = Value("start_run");
  record["run_id"] = Value(static_cast<std::int64_t>(run_id));
  record["flow_name"] = Value(flow_name);
  record["kind"] = Value(flow_kind_name(kind));
  record["trigger"] = Value(trigger);
  record["inputs"] = refs_to_json(inputs);
  record["compute_endpoint"] = Value(compute_endpoint);
  record["started"] = Value(started);
  Value rec(std::move(record));
  if (wal_hook_) wal_hook_(rec);
  apply(rec);
  ++updates_;
  return run_id;
}

void MetadataDb::finish_run(std::uint64_t run_id, RunStatus status,
                            std::vector<VersionRef> outputs, SimTime ended) {
  OSPREY_REQUIRE(run_id < runs_.size(), "unknown run id");
  ValueObject record;
  record["op"] = Value("finish_run");
  record["run_id"] = Value(static_cast<std::int64_t>(run_id));
  record["status"] = Value(run_status_name(status));
  record["outputs"] = refs_to_json(outputs);
  record["ended"] = Value(ended);
  Value rec(std::move(record));
  if (wal_hook_) wal_hook_(rec);
  apply(rec);
  ++updates_;
}

const RunRecord& MetadataDb::run(std::uint64_t run_id) const {
  OSPREY_REQUIRE(run_id < runs_.size(), "unknown run id");
  ++queries_;
  return runs_[run_id];
}

namespace {

/// Generic BFS over the run graph. `forward` = false walks inputs
/// (upstream); true walks outputs (downstream).
MetadataDb::Lineage walk(const std::vector<RunRecord>& runs,
                         const std::string& start, bool forward) {
  MetadataDb::Lineage out;
  std::set<std::string> seen_objects{start};
  std::set<std::uint64_t> seen_runs;
  std::vector<std::string> frontier{start};
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    for (const RunRecord& run : runs) {
      const auto& from = forward ? run.inputs : run.outputs;
      const auto& to = forward ? run.outputs : run.inputs;
      bool touches = false;
      for (const VersionRef& ref : from) {
        if (ref.uuid == current) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      seen_runs.insert(run.run_id);
      for (const VersionRef& ref : to) {
        if (seen_objects.insert(ref.uuid).second) {
          frontier.push_back(ref.uuid);
        }
      }
    }
  }
  out.object_uuids.assign(seen_objects.begin(), seen_objects.end());
  out.run_ids.assign(seen_runs.begin(), seen_runs.end());
  return out;
}

}  // namespace

MetadataDb::Lineage MetadataDb::upstream_lineage(
    const std::string& uuid) const {
  ++queries_;
  if (objects_.count(uuid) == 0) {
    throw osprey::util::NotFound("no such data object: " + uuid);
  }
  return walk(runs_, uuid, /*forward=*/false);
}

MetadataDb::Lineage MetadataDb::downstream_lineage(
    const std::string& uuid) const {
  ++queries_;
  if (objects_.count(uuid) == 0) {
    throw osprey::util::NotFound("no such data object: " + uuid);
  }
  return walk(runs_, uuid, /*forward=*/true);
}

osprey::util::Value MetadataDb::to_json() const {
  ++queries_;
  ValueArray objects;
  for (const auto& [uuid, rec] : objects_) {
    ValueObject obj;
    obj["uuid"] = Value(uuid);
    obj["name"] = Value(rec.name);
    obj["producer_flow"] = Value(rec.producer_flow);
    ValueArray version_arr;
    for (const DataVersion& v : rec.versions) {
      version_arr.push_back(version_to_json(v));
    }
    obj["versions"] = Value(std::move(version_arr));
    objects.emplace_back(std::move(obj));
  }
  ValueArray runs;
  for (const RunRecord& run : runs_) {
    ValueObject obj;
    obj["run_id"] = Value(static_cast<std::int64_t>(run.run_id));
    obj["flow_name"] = Value(run.flow_name);
    obj["kind"] = Value(flow_kind_name(run.kind));
    obj["trigger"] = Value(run.trigger);
    obj["inputs"] = refs_to_json(run.inputs);
    obj["outputs"] = refs_to_json(run.outputs);
    obj["compute_endpoint"] = Value(run.compute_endpoint);
    obj["status"] = Value(run_status_name(run.status));
    obj["started"] = Value(run.started);
    obj["ended"] = Value(run.ended);
    runs.emplace_back(std::move(obj));
  }
  ValueObject root;
  root["snapshot_format"] = Value(std::int64_t{2});
  root["uuid_state"] = Value(static_cast<std::int64_t>(uuids_.state()));
  root["objects"] = Value(std::move(objects));
  root["runs"] = Value(std::move(runs));
  return Value(std::move(root));
}

void MetadataDb::load_snapshot(const osprey::util::Value& json) {
  std::int64_t format = json.get_or("snapshot_format", std::int64_t{0});
  OSPREY_REQUIRE(format == 1 || format == 2,
                 "unsupported metadata snapshot format");
  // osprey-lint: allow(wal-bypass) — snapshot restore resets state
  objects_.clear();
  runs_.clear();  // osprey-lint: allow(wal-bypass)
  for (const Value& obj : json.at("objects").as_array()) {
    DataObjectRecord rec;
    rec.uuid = obj.at("uuid").as_string();
    rec.name = obj.at("name").as_string();
    rec.producer_flow = obj.at("producer_flow").as_string();
    for (const Value& v : obj.at("versions").as_array()) {
      rec.versions.push_back(version_from_json(v));
    }
    // osprey-lint: allow(wal-bypass) — snapshot restore
    OSPREY_REQUIRE(objects_.emplace(rec.uuid, rec).second,
                   "duplicate object uuid in snapshot");
  }
  for (const Value& r : json.at("runs").as_array()) {
    RunRecord rec;
    rec.run_id = static_cast<std::uint64_t>(r.at("run_id").as_int());
    OSPREY_REQUIRE(rec.run_id == runs_.size(),
                   "run ids must be dense in a snapshot");
    rec.flow_name = r.at("flow_name").as_string();
    rec.kind = flow_kind_from_name(r.at("kind").as_string());
    rec.trigger = r.at("trigger").as_string();
    rec.inputs = refs_from_json(r.at("inputs"));
    rec.outputs = refs_from_json(r.at("outputs"));
    rec.compute_endpoint = r.at("compute_endpoint").as_string();
    rec.status = run_status_from_name(r.at("status").as_string());
    rec.started = r.at("started").as_int();
    rec.ended = r.at("ended").as_int();
    // osprey-lint: allow(wal-bypass) — snapshot restore
    runs_.push_back(std::move(rec));
  }
  // Format 1 predates uuid-state persistence; restoring its original
  // default seed reproduces the old (seed-reset) behaviour exactly.
  uuids_.set_state(static_cast<std::uint64_t>(
      json.get_or("uuid_state", std::int64_t{0xAE70})));
}

MetadataDb MetadataDb::from_json(const osprey::util::Value& json) {
  MetadataDb db;
  db.load_snapshot(json);
  return db;
}

std::string MetadataDb::provenance_dot() const {
  std::ostringstream out;
  out << "digraph provenance {\n  rankdir=LR;\n";
  for (const auto& [uuid, rec] : objects_) {
    out << "  \"" << uuid.substr(0, 8) << "\" [shape=ellipse,label=\""
        << rec.name << "\\nv" << rec.versions.size() << "\"];\n";
  }
  for (const RunRecord& run : runs_) {
    std::string rnode = "run" + std::to_string(run.run_id);
    out << "  \"" << rnode << "\" [shape=box,label=\"" << run.flow_name
        << "#" << run.run_id << "\"];\n";
    for (const VersionRef& in : run.inputs) {
      out << "  \"" << in.uuid.substr(0, 8) << "\" -> \"" << rnode
          << "\" [label=\"v" << in.version << "\"];\n";
    }
    for (const VersionRef& o : run.outputs) {
      out << "  \"" << rnode << "\" -> \"" << o.uuid.substr(0, 8)
          << "\" [label=\"v" << o.version << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace osprey::aero
