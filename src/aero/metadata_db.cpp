#include "aero/metadata_db.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/error.hpp"

namespace osprey::aero {

MetadataDb::MetadataDb(std::uint64_t uuid_seed) : uuids_(uuid_seed) {}

std::string MetadataDb::register_object(const std::string& name,
                                        const std::string& producer_flow) {
  std::string uuid = uuids_.next();
  DataObjectRecord rec;
  rec.uuid = uuid;
  rec.name = name;
  rec.producer_flow = producer_flow;
  objects_.emplace(uuid, std::move(rec));
  ++updates_;
  return uuid;
}

bool MetadataDb::has_object(const std::string& uuid) const {
  ++queries_;
  return objects_.count(uuid) > 0;
}

const DataObjectRecord& MetadataDb::object(const std::string& uuid) const {
  ++queries_;
  auto it = objects_.find(uuid);
  if (it == objects_.end()) {
    throw osprey::util::NotFound("no such data object: " + uuid);
  }
  return it->second;
}

const DataVersion& MetadataDb::add_version(
    const std::string& uuid, const std::string& checksum,
    std::uint64_t size_bytes, SimTime timestamp, const std::string& endpoint,
    const std::string& collection, const std::string& path) {
  auto it = objects_.find(uuid);
  if (it == objects_.end()) {
    throw osprey::util::NotFound("no such data object: " + uuid);
  }
  DataVersion v;
  v.version = static_cast<int>(it->second.versions.size()) + 1;
  v.checksum = checksum;
  v.size_bytes = size_bytes;
  v.timestamp = timestamp;
  v.endpoint = endpoint;
  v.collection = collection;
  v.path = path;
  it->second.versions.push_back(std::move(v));
  ++updates_;
  const DataVersion& added = it->second.versions.back();
  if (version_listener_) version_listener_(uuid, added.version);
  return added;
}

std::optional<DataVersion> MetadataDb::latest_version(
    const std::string& uuid) const {
  const DataObjectRecord& rec = object(uuid);
  if (rec.versions.empty()) return std::nullopt;
  return rec.versions.back();
}

int MetadataDb::latest_version_number(const std::string& uuid) const {
  const DataObjectRecord& rec = object(uuid);
  return rec.versions.empty() ? 0 : rec.versions.back().version;
}

std::vector<std::string> MetadataDb::object_uuids() const {
  ++queries_;
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const auto& [uuid, rec] : objects_) {
    (void)rec;
    out.push_back(uuid);
  }
  return out;
}

std::vector<MetadataDb::ObjectSummary> MetadataDb::find_objects(
    const std::string& name_prefix) const {
  ++queries_;
  std::vector<ObjectSummary> out;
  for (const auto& [uuid, rec] : objects_) {
    if (rec.name.compare(0, name_prefix.size(), name_prefix) != 0) continue;
    ObjectSummary s;
    s.uuid = uuid;
    s.name = rec.name;
    s.producer_flow = rec.producer_flow;
    s.latest_version =
        rec.versions.empty() ? 0 : rec.versions.back().version;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectSummary& a, const ObjectSummary& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.uuid < b.uuid;
            });
  return out;
}

std::uint64_t MetadataDb::start_run(const std::string& flow_name,
                                    FlowKind kind, const std::string& trigger,
                                    std::vector<VersionRef> inputs,
                                    const std::string& compute_endpoint,
                                    SimTime started) {
  RunRecord rec;
  rec.run_id = runs_.size();
  rec.flow_name = flow_name;
  rec.kind = kind;
  rec.trigger = trigger;
  rec.inputs = std::move(inputs);
  rec.compute_endpoint = compute_endpoint;
  rec.started = started;
  runs_.push_back(std::move(rec));
  ++updates_;
  return runs_.back().run_id;
}

void MetadataDb::finish_run(std::uint64_t run_id, RunStatus status,
                            std::vector<VersionRef> outputs, SimTime ended) {
  OSPREY_REQUIRE(run_id < runs_.size(), "unknown run id");
  RunRecord& rec = runs_[run_id];
  rec.status = status;
  rec.outputs = std::move(outputs);
  rec.ended = ended;
  ++updates_;
}

const RunRecord& MetadataDb::run(std::uint64_t run_id) const {
  OSPREY_REQUIRE(run_id < runs_.size(), "unknown run id");
  ++queries_;
  return runs_[run_id];
}

namespace {

/// Generic BFS over the run graph. `forward` = false walks inputs
/// (upstream); true walks outputs (downstream).
MetadataDb::Lineage walk(const std::vector<RunRecord>& runs,
                         const std::string& start, bool forward) {
  MetadataDb::Lineage out;
  std::set<std::string> seen_objects{start};
  std::set<std::uint64_t> seen_runs;
  std::vector<std::string> frontier{start};
  while (!frontier.empty()) {
    std::string current = frontier.back();
    frontier.pop_back();
    for (const RunRecord& run : runs) {
      const auto& from = forward ? run.inputs : run.outputs;
      const auto& to = forward ? run.outputs : run.inputs;
      bool touches = false;
      for (const VersionRef& ref : from) {
        if (ref.uuid == current) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      seen_runs.insert(run.run_id);
      for (const VersionRef& ref : to) {
        if (seen_objects.insert(ref.uuid).second) {
          frontier.push_back(ref.uuid);
        }
      }
    }
  }
  out.object_uuids.assign(seen_objects.begin(), seen_objects.end());
  out.run_ids.assign(seen_runs.begin(), seen_runs.end());
  return out;
}

}  // namespace

MetadataDb::Lineage MetadataDb::upstream_lineage(
    const std::string& uuid) const {
  ++queries_;
  if (objects_.count(uuid) == 0) {
    throw osprey::util::NotFound("no such data object: " + uuid);
  }
  return walk(runs_, uuid, /*forward=*/false);
}

MetadataDb::Lineage MetadataDb::downstream_lineage(
    const std::string& uuid) const {
  ++queries_;
  if (objects_.count(uuid) == 0) {
    throw osprey::util::NotFound("no such data object: " + uuid);
  }
  return walk(runs_, uuid, /*forward=*/true);
}

namespace {

using osprey::util::Value;
using osprey::util::ValueArray;
using osprey::util::ValueObject;

Value version_to_json(const DataVersion& v) {
  ValueObject obj;
  obj["version"] = Value(v.version);
  obj["checksum"] = Value(v.checksum);
  obj["size_bytes"] = Value(static_cast<std::int64_t>(v.size_bytes));
  obj["timestamp"] = Value(v.timestamp);
  obj["endpoint"] = Value(v.endpoint);
  obj["collection"] = Value(v.collection);
  obj["path"] = Value(v.path);
  return Value(std::move(obj));
}

DataVersion version_from_json(const Value& v) {
  DataVersion out;
  out.version = static_cast<int>(v.at("version").as_int());
  out.checksum = v.at("checksum").as_string();
  out.size_bytes = static_cast<std::uint64_t>(v.at("size_bytes").as_int());
  out.timestamp = v.at("timestamp").as_int();
  out.endpoint = v.at("endpoint").as_string();
  out.collection = v.at("collection").as_string();
  out.path = v.at("path").as_string();
  return out;
}

Value refs_to_json(const std::vector<VersionRef>& refs) {
  ValueArray arr;
  for (const VersionRef& r : refs) {
    ValueObject obj;
    obj["uuid"] = Value(r.uuid);
    obj["version"] = Value(r.version);
    arr.emplace_back(std::move(obj));
  }
  return Value(std::move(arr));
}

std::vector<VersionRef> refs_from_json(const Value& v) {
  std::vector<VersionRef> out;
  for (const Value& e : v.as_array()) {
    out.push_back(VersionRef{e.at("uuid").as_string(),
                             static_cast<int>(e.at("version").as_int())});
  }
  return out;
}

const char* run_status_name(RunStatus s) {
  switch (s) {
    case RunStatus::kRunning: return "running";
    case RunStatus::kSucceeded: return "succeeded";
    case RunStatus::kFailed: return "failed";
  }
  return "?";
}

RunStatus run_status_from_name(const std::string& s) {
  if (s == "running") return RunStatus::kRunning;
  if (s == "succeeded") return RunStatus::kSucceeded;
  if (s == "failed") return RunStatus::kFailed;
  throw osprey::util::InvalidArgument("unknown run status: " + s);
}

}  // namespace

osprey::util::Value MetadataDb::to_json() const {
  ++queries_;
  ValueArray objects;
  for (const auto& [uuid, rec] : objects_) {
    ValueObject obj;
    obj["uuid"] = Value(uuid);
    obj["name"] = Value(rec.name);
    obj["producer_flow"] = Value(rec.producer_flow);
    ValueArray versions;
    for (const DataVersion& v : rec.versions) {
      versions.push_back(version_to_json(v));
    }
    obj["versions"] = Value(std::move(versions));
    objects.emplace_back(std::move(obj));
  }
  ValueArray runs;
  for (const RunRecord& run : runs_) {
    ValueObject obj;
    obj["run_id"] = Value(static_cast<std::int64_t>(run.run_id));
    obj["flow_name"] = Value(run.flow_name);
    obj["kind"] = Value(run.kind == FlowKind::kIngestion ? "ingestion"
                                                         : "analysis");
    obj["trigger"] = Value(run.trigger);
    obj["inputs"] = refs_to_json(run.inputs);
    obj["outputs"] = refs_to_json(run.outputs);
    obj["compute_endpoint"] = Value(run.compute_endpoint);
    obj["status"] = Value(run_status_name(run.status));
    obj["started"] = Value(run.started);
    obj["ended"] = Value(run.ended);
    runs.emplace_back(std::move(obj));
  }
  ValueObject root;
  root["snapshot_format"] = Value(std::int64_t{1});
  root["objects"] = Value(std::move(objects));
  root["runs"] = Value(std::move(runs));
  return Value(std::move(root));
}

MetadataDb MetadataDb::from_json(const osprey::util::Value& json) {
  OSPREY_REQUIRE(json.get_or("snapshot_format", std::int64_t{0}) == 1,
                 "unsupported metadata snapshot format");
  MetadataDb db;
  for (const Value& obj : json.at("objects").as_array()) {
    DataObjectRecord rec;
    rec.uuid = obj.at("uuid").as_string();
    rec.name = obj.at("name").as_string();
    rec.producer_flow = obj.at("producer_flow").as_string();
    for (const Value& v : obj.at("versions").as_array()) {
      rec.versions.push_back(version_from_json(v));
    }
    OSPREY_REQUIRE(db.objects_.emplace(rec.uuid, rec).second,
                   "duplicate object uuid in snapshot");
  }
  for (const Value& r : json.at("runs").as_array()) {
    RunRecord rec;
    rec.run_id = static_cast<std::uint64_t>(r.at("run_id").as_int());
    OSPREY_REQUIRE(rec.run_id == db.runs_.size(),
                   "run ids must be dense in a snapshot");
    rec.flow_name = r.at("flow_name").as_string();
    rec.kind = r.at("kind").as_string() == "ingestion"
                   ? FlowKind::kIngestion
                   : FlowKind::kAnalysis;
    rec.trigger = r.at("trigger").as_string();
    rec.inputs = refs_from_json(r.at("inputs"));
    rec.outputs = refs_from_json(r.at("outputs"));
    rec.compute_endpoint = r.at("compute_endpoint").as_string();
    rec.status = run_status_from_name(r.at("status").as_string());
    rec.started = r.at("started").as_int();
    rec.ended = r.at("ended").as_int();
    db.runs_.push_back(std::move(rec));
  }
  return db;
}

std::string MetadataDb::provenance_dot() const {
  std::ostringstream out;
  out << "digraph provenance {\n  rankdir=LR;\n";
  for (const auto& [uuid, rec] : objects_) {
    out << "  \"" << uuid.substr(0, 8) << "\" [shape=ellipse,label=\""
        << rec.name << "\\nv" << rec.versions.size() << "\"];\n";
  }
  for (const RunRecord& run : runs_) {
    std::string rnode = "run" + std::to_string(run.run_id);
    out << "  \"" << rnode << "\" [shape=box,label=\"" << run.flow_name
        << "#" << run.run_id << "\"];\n";
    for (const VersionRef& in : run.inputs) {
      out << "  \"" << in.uuid.substr(0, 8) << "\" -> \"" << rnode
          << "\" [label=\"v" << in.version << "\"];\n";
    }
    for (const VersionRef& o : run.outputs) {
      out << "  \"" << rnode << "\" -> \"" << o.uuid.substr(0, 8)
          << "\" [label=\"v" << o.version << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace osprey::aero
