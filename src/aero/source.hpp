#pragma once

/// \file source.hpp
/// Upstream data sources for AERO ingestion flows. A DataSource stands
/// in for "a URL from which to retrieve the data" — here, the Illinois
/// Wastewater Surveillance System feed. Sources are polled; AERO
/// detects updates by checksum change.

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_time.hpp"

namespace osprey::aero {

using osprey::util::SimTime;

/// Abstract upstream feed.
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// The source's URL (identification/provenance only).
  virtual std::string url() const = 0;

  /// Current upstream content at virtual time `now`, or nullopt when the
  /// source has published nothing yet.
  virtual std::optional<std::string> fetch(SimTime now) = 0;
};

/// Test/demo source publishing pre-scripted payloads at fixed times.
class ScriptedSource final : public DataSource {
 public:
  ScriptedSource(std::string url,
                 std::vector<std::pair<SimTime, std::string>> timeline);

  std::string url() const override { return url_; }
  std::optional<std::string> fetch(SimTime now) override;

  std::size_t fetch_count() const { return fetches_; }

 private:
  std::string url_;
  std::vector<std::pair<SimTime, std::string>> timeline_;  // sorted by time
  std::size_t fetches_ = 0;
};

}  // namespace osprey::aero
