/// Ablation: the choice of quantity of interest. The paper fixes the QoI
/// to "the total number of hospitalizations at the end of the simulation
/// period"; this bench repeats the first-order GSA for three other
/// outcomes public-health stakeholders care about and shows how the
/// parameter ranking shifts — e.g. phd only matters for deaths, psh only
/// downstream of the hospital branch.

#include <cstdio>

#include "core/metarvm_gsa.hpp"
#include "gsa/sobol.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  std::printf("%s", util::banner(
      "Ablation — GSA quantity of interest (parameter ranking per outcome)")
      .c_str());

  auto model = std::make_shared<const epi::MetaRvm>(
      epi::MetaRvmConfig::stratified_demo(200'000, 90));
  auto ranges = core::table1_ranges();

  const std::vector<core::Qoi> qois = {
      core::Qoi::kTotalHospitalizations, core::Qoi::kTotalDeaths,
      core::Qoi::kPeakHospitalOccupancy, core::Qoi::kTotalInfections};

  std::vector<std::string> header{"parameter"};
  for (core::Qoi q : qois) header.push_back(core::qoi_name(q));
  util::TextTable table(header);

  std::vector<gsa::SobolIndices> per_qoi;
  for (core::Qoi q : qois) {
    gsa::ModelFn fn = [&, q](const num::Vector& x) {
      return core::evaluate_metarvm_qoi(*model, x, 2024, 0, q);
    };
    per_qoi.push_back(gsa::saltelli_indices(fn, ranges, 1024));
  }
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    std::vector<std::string> row{ranges[j].name};
    for (const auto& idx : per_qoi) {
      row.push_back(util::TextTable::num(
          std::max(idx.first_order[j], 0.0), 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("first-order Sobol indices (Saltelli n=1024, replicate 0):\n%s\n",
              table.render().c_str());

  std::printf(
      "Expected structure (sanity of the model wiring):\n"
      " - phd moves only the deaths QoI (deaths happen after admission);\n"
      " - psh matters for hospital outcomes but not for infections;\n"
      " - ts/pea drive everything that depends on epidemic size.\n");
  return 0;
}
