/// Micro-benchmarks (google-benchmark) of the substrates: throughput
/// numbers that bound how far the simulated platform scales — SHA-256
/// hashing, storage puts, event-loop dispatch, EMEWS task round-trips,
/// MetaRVM steps/s, GP fit/predict scaling, Saltelli throughput, and the
/// Goldstein MCMC iteration cost.

#include <benchmark/benchmark.h>

#include <cmath>

#include "crypto/sha256.hpp"
#include "emews/task_api.hpp"
#include "emews/worker_pool.hpp"
#include "epi/metarvm.hpp"
#include "epi/wastewater.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/storage.hpp"
#include "gp/gp.hpp"
#include "gsa/sobol.hpp"
#include "num/sampling.hpp"
#include "rt/goldstein.hpp"

using namespace osprey;

static void BM_Sha256(benchmark::State& state) {
  std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash_hex(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

static void BM_StoragePut(benchmark::State& state) {
  fabric::EventLoop loop;
  fabric::AuthService auth;
  fabric::StorageEndpoint ep("bench", loop, auth);
  std::string token = auth.issue_full_token("bench");
  ep.create_collection("c", token);
  std::string payload(4096, 'x');
  std::size_t i = 0;
  for (auto _ : state) {
    ep.put("c", "obj" + std::to_string(i++ % 1000), payload, token);
  }
}
BENCHMARK(BM_StoragePut);

static void BM_EventLoopDispatch(benchmark::State& state) {
  for (auto _ : state) {
    fabric::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(i, [] {});
    }
    loop.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopDispatch);

static void BM_TaskRoundTrip(benchmark::State& state) {
  emews::TaskDb db;
  emews::TaskQueue queue(db, "bench");
  emews::WorkerPool pool(
      db, "bench",
      [](const util::Value& v) { return v; },
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    emews::TaskFuture f = queue.submit(util::Value(1.0));
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaskRoundTrip)->Arg(1)->Arg(4);

static void BM_MetaRvmRun(benchmark::State& state) {
  epi::MetaRvm model(epi::MetaRvmConfig::single_group(
      state.range(0), state.range(0) / 2000 + 1, 90));
  epi::MetaRvmParams params;
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.hospitalization_qoi(params, 1, rep++));
  }
  state.SetItemsProcessed(state.iterations() * 90);  // days simulated
}
BENCHMARK(BM_MetaRvmRun)->Arg(10'000)->Arg(200'000)->Arg(2'000'000);

static void BM_WastewaterGenerate(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    epi::WastewaterGenerator gen(epi::chicago_plants()[0],
                                 epi::chicago_truths()[0],
                                 epi::WastewaterConfig{}, seed++);
    benchmark::DoNotOptimize(gen.samples().size());
  }
}
BENCHMARK(BM_WastewaterGenerate);

static void BM_GpFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  num::RngStream rng(1);
  num::Matrix x = num::latin_hypercube(n, 5, rng);
  num::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x(i, 0) + std::sin(3.0 * x(i, 1)) + 0.1 * rng.normal();
  }
  gp::GpConfig cfg;
  cfg.mle_restarts = 0;
  cfg.mle_max_iterations = 60;
  for (auto _ : state) {
    gp::GaussianProcess gp(cfg);
    gp.fit(x, y);
    benchmark::DoNotOptimize(gp.log_marginal_likelihood());
  }
}
BENCHMARK(BM_GpFit)->Arg(50)->Arg(100)->Arg(200);

static void BM_GpPredictMean(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  num::RngStream rng(1);
  num::Matrix x = num::latin_hypercube(n, 5, rng);
  num::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x(i, 0) + x(i, 1);
  gp::GpConfig cfg;
  cfg.mle_restarts = 0;
  cfg.mle_max_iterations = 40;
  gp::GaussianProcess gp(cfg);
  gp.fit(x, y);
  num::Matrix queries = num::latin_hypercube(1024, 5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.predict_mean(queries));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_GpPredictMean)->Arg(100)->Arg(200);

static void BM_SaltelliOnCheapModel(benchmark::State& state) {
  auto ranges = std::vector<num::ParamRange>{
      {"a", 0, 1}, {"b", 0, 1}, {"c", 0, 1}, {"d", 0, 1}, {"e", 0, 1}};
  gsa::ModelFn fn = [](const num::Vector& x) {
    return x[0] + 2.0 * x[1] * x[2] + x[3] - x[4];
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gsa::saltelli_indices(fn, ranges,
                              static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_SaltelliOnCheapModel)->Arg(256)->Arg(1024);

static void BM_GoldsteinMcmc(benchmark::State& state) {
  epi::Plant plant = epi::chicago_plants()[0];
  epi::WastewaterConfig ww;
  ww.days = 90;
  epi::WastewaterGenerator gen(plant, epi::chicago_truths()[0], ww, 3);
  rt::GoldsteinConfig cfg;
  cfg.iterations = static_cast<int>(state.range(0));
  cfg.burnin = cfg.iterations / 2;
  cfg.flow_liters_per_day = plant.avg_flow_mgd * 3.785e6;
  rt::GoldsteinEstimator estimator(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(gen.samples(), 90));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GoldsteinMcmc)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
