/// Micro-benchmarks (google-benchmark) of the substrates: throughput
/// numbers that bound how far the simulated platform scales — SHA-256
/// hashing, storage puts, event-loop dispatch, EMEWS task round-trips,
/// MetaRVM steps/s, GP fit/predict scaling, Saltelli throughput, and the
/// Goldstein MCMC iteration cost.

#include <benchmark/benchmark.h>

#include <cmath>

#include "crypto/sha256.hpp"
#include "emews/task_api.hpp"
#include "emews/worker_pool.hpp"
#include "epi/metarvm.hpp"
#include "epi/wastewater.hpp"
#include "fabric/event_loop.hpp"
#include "fabric/storage.hpp"
#include "gp/gp.hpp"
#include "gsa/sobol.hpp"
#include "num/sampling.hpp"
#include "rt/ensemble.hpp"
#include "rt/goldstein.hpp"
#include "util/thread_pool.hpp"

using namespace osprey;

static void BM_Sha256(benchmark::State& state) {
  std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash_hex(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

static void BM_StoragePut(benchmark::State& state) {
  fabric::EventLoop loop;
  fabric::AuthService auth;
  fabric::StorageEndpoint ep("bench", loop, auth);
  std::string token = auth.issue_full_token("bench");
  ep.create_collection("c", token);
  std::string payload(4096, 'x');
  std::size_t i = 0;
  for (auto _ : state) {
    ep.put("c", "obj" + std::to_string(i++ % 1000), payload, token);
  }
}
BENCHMARK(BM_StoragePut);

static void BM_EventLoopDispatch(benchmark::State& state) {
  for (auto _ : state) {
    fabric::EventLoop loop;
    for (int i = 0; i < 1000; ++i) {
      loop.schedule_at(i, [] {});
    }
    loop.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopDispatch);

static void BM_TaskRoundTrip(benchmark::State& state) {
  emews::TaskDb db;
  emews::TaskQueue queue(db, "bench");
  emews::WorkerPool pool(
      db, "bench",
      [](const util::Value& v) { return v; },
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    emews::TaskFuture f = queue.submit(util::Value(1.0));
    benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TaskRoundTrip)->Arg(1)->Arg(4);

static void BM_MetaRvmRun(benchmark::State& state) {
  epi::MetaRvm model(epi::MetaRvmConfig::single_group(
      state.range(0), state.range(0) / 2000 + 1, 90));
  epi::MetaRvmParams params;
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.hospitalization_qoi(params, 1, rep++));
  }
  state.SetItemsProcessed(state.iterations() * 90);  // days simulated
}
BENCHMARK(BM_MetaRvmRun)->Arg(10'000)->Arg(200'000)->Arg(2'000'000);

static void BM_WastewaterGenerate(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    epi::WastewaterGenerator gen(epi::chicago_plants()[0],
                                 epi::chicago_truths()[0],
                                 epi::WastewaterConfig{}, seed++);
    benchmark::DoNotOptimize(gen.samples().size());
  }
}
BENCHMARK(BM_WastewaterGenerate);

static void BM_GpFit(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  num::RngStream rng(1);
  num::Matrix x = num::latin_hypercube(n, 5, rng);
  num::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x(i, 0) + std::sin(3.0 * x(i, 1)) + 0.1 * rng.normal();
  }
  gp::GpConfig cfg;
  cfg.mle_restarts = 0;
  cfg.mle_max_iterations = 60;
  for (auto _ : state) {
    gp::GaussianProcess gp(cfg);
    gp.fit(x, y);
    benchmark::DoNotOptimize(gp.log_marginal_likelihood());
  }
}
BENCHMARK(BM_GpFit)->Arg(50)->Arg(100)->Arg(200);

namespace {

/// A GP conditioned on an n-point 5-D LHS with fixed hyperparameters —
/// the shared starting state of the add_point scaling cases.
osprey::gp::GaussianProcess prefit_gp(std::size_t n, bool incremental) {
  num::RngStream rng(1);
  num::Matrix x = num::latin_hypercube(n, 5, rng);
  num::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x(i, 0) + std::sin(3.0 * x(i, 1)) + 0.1 * rng.normal();
  }
  gp::GpConfig cfg;
  cfg.mle_restarts = 0;
  cfg.mle_max_iterations = 40;
  cfg.incremental = incremental;
  cfg.reopt_every = 0;  // isolate the conditioning cost per added point
  gp::GaussianProcess gp(cfg);
  gp.fit(x, y);
  return gp;
}

void run_gp_add_point(benchmark::State& state, bool incremental) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kAdds = 16;
  gp::GaussianProcess base = prefit_gp(n, incremental);
  num::RngStream rng(2);
  num::Matrix extra = num::latin_hypercube(kAdds, 5, rng);
  for (auto _ : state) {
    state.PauseTiming();
    gp::GaussianProcess gp = base;
    state.ResumeTiming();
    for (std::size_t i = 0; i < kAdds; ++i) {
      gp.add_point(extra.row(i), extra(i, 0));
    }
    benchmark::DoNotOptimize(gp.predict({0.5, 0.5, 0.5, 0.5, 0.5}).mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kAdds));
}

}  // namespace

/// The MUSIC acquisition hot path: one design point appended per step.
/// Incremental = rank-1 Cholesky extension (O(n^2)); FullRefit = the
/// seed behavior (rebuild + refactorize, O(n^3) per point).
static void BM_GpAddPointIncremental(benchmark::State& state) {
  run_gp_add_point(state, true);
}
BENCHMARK(BM_GpAddPointIncremental)->Arg(50)->Arg(100)->Arg(200);

static void BM_GpAddPointFullRefit(benchmark::State& state) {
  run_gp_add_point(state, false);
}
BENCHMARK(BM_GpAddPointFullRefit)->Arg(50)->Arg(100)->Arg(200);

static void BM_GpLeaveOneOut(benchmark::State& state) {
  gp::GaussianProcess gp =
      prefit_gp(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.leave_one_out().rmse);
  }
}
BENCHMARK(BM_GpLeaveOneOut)->Arg(100)->Arg(200);

/// Args: {n training points, parallel batch prediction on/off}.
static void BM_GpPredictMean(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  num::RngStream rng(1);
  num::Matrix x = num::latin_hypercube(n, 5, rng);
  num::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = x(i, 0) + x(i, 1);
  gp::GpConfig cfg;
  cfg.mle_restarts = 0;
  cfg.mle_max_iterations = 40;
  cfg.parallel = state.range(1) != 0;
  gp::GaussianProcess gp(cfg);
  gp.fit(x, y);
  num::Matrix queries = num::latin_hypercube(1024, 5, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.predict_mean(queries));
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_GpPredictMean)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({200, 0})
    ->Args({200, 1});

static void BM_SaltelliOnCheapModel(benchmark::State& state) {
  auto ranges = std::vector<num::ParamRange>{
      {"a", 0, 1}, {"b", 0, 1}, {"c", 0, 1}, {"d", 0, 1}, {"e", 0, 1}};
  gsa::ModelFn fn = [](const num::Vector& x) {
    return x[0] + 2.0 * x[1] * x[2] + x[3] - x[4];
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gsa::saltelli_indices(fn, ranges,
                              static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_SaltelliOnCheapModel)->Arg(256)->Arg(1024);

static void BM_GoldsteinMcmc(benchmark::State& state) {
  epi::Plant plant = epi::chicago_plants()[0];
  epi::WastewaterConfig ww;
  ww.days = 90;
  epi::WastewaterGenerator gen(plant, epi::chicago_truths()[0], ww, 3);
  rt::GoldsteinConfig cfg;
  cfg.iterations = static_cast<int>(state.range(0));
  cfg.burnin = cfg.iterations / 2;
  cfg.flow_liters_per_day = plant.avg_flow_mgd * 3.785e6;
  rt::GoldsteinEstimator estimator(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(gen.samples(), 90));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GoldsteinMcmc)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

/// The Figure-2 per-plant fan-out: 4 Goldstein chains, serially (arg 0)
/// vs fanned out on a 4-thread pool (arg 1). Posteriors are
/// bit-identical either way; only the wall clock changes.
static void BM_EnsembleEstimate4Plants(benchmark::State& state) {
  const int days = 90;
  auto plants = epi::chicago_plants();
  auto truths = epi::chicago_truths();
  epi::WastewaterConfig ww;
  ww.days = days;
  std::vector<rt::PlantData> inputs;
  for (std::size_t p = 0; p < plants.size(); ++p) {
    epi::WastewaterGenerator gen(plants[p], truths[p], ww, 100 + p);
    rt::PlantData pd;
    pd.name = plants[p].name;
    pd.population_weight = static_cast<double>(plants[p].population_served);
    pd.samples = gen.samples();
    pd.config.iterations = 1500;
    pd.config.burnin = 750;
    pd.config.flow_liters_per_day = plants[p].avg_flow_mgd * 3.785e6;
    pd.config.seed = 500 + p;
    inputs.push_back(std::move(pd));
  }
  const bool parallel = state.range(0) != 0;
  util::ThreadPool pool(parallel ? inputs.size() : 1);
  for (auto _ : state) {
    auto members =
        rt::estimate_members(inputs, days, parallel ? &pool : nullptr);
    benchmark::DoNotOptimize(members.front().posterior.draws(0, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs.size()));
}
BENCHMARK(BM_EnsembleEstimate4Plants)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK_MAIN();
