/// Ablation: PCE polynomial degree. The paper: "We chose a degree 3 PCE
/// as it performed the best among the PCE degrees we examined." This
/// bench repeats that model selection on the MetaRVM GSA problem:
/// degrees 1–5 fitted at a range of sample sizes, scored by max
/// first-order-index error against the Saltelli reference.
///
/// Expected shape: degree 1 biased (misses curvature), degree 3 best,
/// degrees 4–5 overfit at small n (more coefficients than samples).

#include <cmath>
#include <cstdio>

#include "core/metarvm_gsa.hpp"
#include "gsa/pce.hpp"
#include "gsa/sobol.hpp"
#include "num/legendre.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  std::printf("%s", util::banner(
      "Ablation — PCE degree selection (paper: 'degree 3 performed best')")
      .c_str());

  auto model = std::make_shared<const epi::MetaRvm>(
      epi::MetaRvmConfig::stratified_demo(200'000, 90));
  auto ranges = core::table1_ranges();
  gsa::ModelFn qoi = [&](const num::Vector& x) {
    return core::evaluate_metarvm_qoi(*model, x, 2024, 0);
  };

  std::printf("computing reference (Saltelli n=4096)...\n\n");
  gsa::SobolIndices reference = gsa::saltelli_indices(qoi, ranges, 4096);

  const std::vector<unsigned> degrees{1, 2, 3, 4, 5};
  const std::vector<std::size_t> sizes{50, 100, 150, 200, 300};

  // Header with the basis size per degree (5 parameters).
  util::TextTable terms({"degree", "basis terms C(5+p,p)"});
  for (unsigned p : degrees) {
    terms.add_row({std::to_string(p),
                   std::to_string(
                       num::total_degree_multi_indices(5, p).size())});
  }
  std::printf("%s\n", terms.render().c_str());

  std::vector<std::string> header{"n"};
  for (unsigned p : degrees) header.push_back("deg " + std::to_string(p));
  util::TextTable table(header);

  std::vector<double> err_at_200(degrees.size(), 0.0);
  for (std::size_t n : sizes) {
    std::vector<std::string> row{std::to_string(n)};
    for (std::size_t d = 0; d < degrees.size(); ++d) {
      // Average over 3 designs so one unlucky LHS doesn't decide.
      double acc = 0.0;
      for (std::uint64_t s = 0; s < 3; ++s) {
        gsa::SobolIndices idx = gsa::pce_gsa(
            qoi, ranges, n, 1000 + s, gsa::PceConfig{degrees[d], 1e-8});
        double err = 0.0;
        for (std::size_t j = 0; j < 5; ++j) {
          double v = std::clamp(idx.first_order[j], -1.0, 2.0);
          err = std::max(err, std::fabs(v - reference.first_order[j]));
        }
        acc += err;
      }
      double mean_err = acc / 3.0;
      if (n == 200) err_at_200[d] = mean_err;
      row.push_back(util::TextTable::num(mean_err, 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("mean max |S1 - reference| (3 LHS designs per cell):\n%s\n",
              table.render().c_str());

  std::size_t best = 0;
  for (std::size_t d = 1; d < degrees.size(); ++d) {
    if (err_at_200[d] < err_at_200[best]) best = d;
  }
  std::printf("best degree at n=200: %u (paper chose 3)\n", degrees[best]);
  return 0;
}
