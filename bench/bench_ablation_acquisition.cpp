/// Ablation: the acquisition function inside the active-learning GSA.
/// The paper's illustration uses EIGF and contrasts it with "more common
/// acquisition functions like EI (Expected Improvement) and UCB (upper
/// confidence bound) ... which focus on minimizing prediction error in
/// global surrogate prediction". This bench runs the same GSA loop with
/// each acquisition (plus pure-variance and random baselines) and scores
/// the first-order-index error against a large-N Saltelli reference as a
/// function of sample size.
///
/// Expected shape: EIGF / variance-style exploration converge fast and
/// smoothly; EI and UCB — built for *optimization*, not global fit —
/// oversample the optimum's neighborhood and converge slower for GSA.

#include <cmath>
#include <cstdio>

#include "core/metarvm_gsa.hpp"
#include "gsa/music.hpp"
#include "gsa/sobol.hpp"
#include "util/table.hpp"

using namespace osprey;

namespace {

double max_s1_error(const std::vector<double>& s1,
                    const std::vector<double>& reference) {
  double err = 0.0;
  for (std::size_t j = 0; j < s1.size(); ++j) {
    err = std::max(err, std::fabs(s1[j] - reference[j]));
  }
  return err;
}

}  // namespace

int main() {
  std::printf("%s", util::banner(
      "Ablation — acquisition functions for active-learning GSA").c_str());

  auto model = std::make_shared<const epi::MetaRvm>(
      epi::MetaRvmConfig::stratified_demo(200'000, 90));
  auto ranges = core::table1_ranges();
  gsa::ModelFn qoi = [&](const num::Vector& x) {
    return core::evaluate_metarvm_qoi(*model, x, 2024, 0);
  };

  std::printf("computing reference (Saltelli n=4096)...\n\n");
  gsa::SobolIndices reference = gsa::saltelli_indices(qoi, ranges, 4096);

  const std::vector<gsa::Acquisition> acquisitions = {
      gsa::Acquisition::kEigf, gsa::Acquisition::kVariance,
      gsa::Acquisition::kEi, gsa::Acquisition::kUcb,
      gsa::Acquisition::kRandom};

  // err(n) per acquisition, sampled every 25 added points.
  std::vector<std::vector<std::pair<std::size_t, double>>> curves;
  std::vector<std::size_t> stabilization;
  for (gsa::Acquisition acq : acquisitions) {
    gsa::MusicConfig cfg;
    cfg.ranges = ranges;
    cfg.n_init = 25;
    cfg.n_total = 150;
    cfg.n_candidates = 150;
    cfg.surrogate_mc_n = 512;
    cfg.reopt_every = 25;
    cfg.acquisition = acq;
    cfg.seed = 11;
    gsa::MusicResult result = gsa::run_music(cfg, qoi);
    std::vector<std::pair<std::size_t, double>> curve;
    for (const auto& step : result.trajectory) {
      if ((step.n - cfg.n_init) % 25 == 0 || step.n == cfg.n_total) {
        curve.emplace_back(step.n,
                           max_s1_error(step.s1, reference.first_order));
      }
    }
    curves.push_back(std::move(curve));
    stabilization.push_back(gsa::stabilization_n(result.trajectory, 0.05));
  }

  std::vector<std::string> header{"n"};
  for (gsa::Acquisition acq : acquisitions) {
    header.push_back(gsa::acquisition_name(acq));
  }
  util::TextTable table(header);
  for (std::size_t r = 0; r < curves[0].size(); ++r) {
    std::vector<std::string> row{std::to_string(curves[0][r].first)};
    for (std::size_t a = 0; a < acquisitions.size(); ++a) {
      row.push_back(util::TextTable::num(curves[a][r].second, 3));
    }
    table.add_row(std::move(row));
  }
  std::printf("max |S1 - reference| across the 5 parameters, by design "
              "size:\n%s\n", table.render().c_str());

  util::TextTable stab({"acquisition", "stabilized by (eps=0.05)",
                        "final error"});
  for (std::size_t a = 0; a < acquisitions.size(); ++a) {
    stab.add_row({gsa::acquisition_name(acquisitions[a]),
                  std::to_string(stabilization[a]),
                  util::TextTable::num(curves[a].back().second, 3)});
  }
  std::printf("%s\n", stab.render().c_str());
  return 0;
}
