/// Table 1 + Figure 3 reproduction: the MetaRVM GSA setup. Prints the
/// paper's Table 1 (the five uncertain parameters and their ranges),
/// the nominal values of the remaining parameters, a compartment-
/// trajectory summary at nominal settings (Figure 3's dynamics), and
/// one-at-a-time response sweeps of the QoI across each Table-1 range —
/// the sanity picture behind the GSA.

#include <cstdio>

#include "core/metarvm_gsa.hpp"
#include "epi/metarvm.hpp"
#include "num/stats.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  std::printf("%s", util::banner(
      "Table 1 — MetaRVM parameters and ranges for GSA").c_str());

  auto ranges = core::table1_ranges();
  auto descriptions = core::table1_descriptions();
  util::TextTable t1({"Parameter", "Description", "Range"});
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    t1.add_row({ranges[j].name, descriptions[j],
                "(" + util::TextTable::num(ranges[j].lo, 2) + ", " +
                    util::TextTable::num(ranges[j].hi, 2) + ")"});
  }
  std::printf("%s\n", t1.render().c_str());

  epi::MetaRvmParams nominal = epi::MetaRvmParams::nominal();
  util::TextTable nom({"fixed parameter", "nominal value"});
  nom.add_row({"ve (vaccine efficacy)", util::TextTable::num(nominal.ve, 2)});
  nom.add_row({"dv (immunity days)", util::TextTable::num(nominal.dv, 0)});
  nom.add_row({"de (latent days)", util::TextTable::num(nominal.de, 1)});
  nom.add_row({"da (asymptomatic days)", util::TextTable::num(nominal.da, 1)});
  nom.add_row({"dp (presymptomatic days)", util::TextTable::num(nominal.dp, 1)});
  nom.add_row({"ds (symptomatic days)", util::TextTable::num(nominal.ds, 1)});
  nom.add_row({"dh (hospital days)", util::TextTable::num(nominal.dh, 1)});
  nom.add_row({"dr (reinfection days; 0=off)",
               util::TextTable::num(nominal.dr, 0)});
  std::printf("Remaining parameters fixed at nominal values (§3.1.2):\n%s\n",
              nom.render().c_str());

  // --- Figure 3: compartment structure at nominal values -------------
  epi::MetaRvmConfig cfg = epi::MetaRvmConfig::stratified_demo(200'000, 90);
  epi::MetaRvm model(cfg);
  num::RngStream rng(2025);
  epi::MetaRvmTrajectory traj = model.run(nominal, rng);
  util::TextTable fig3({"day", "S", "V", "E", "Ia", "Ip", "Is", "H", "R", "D"});
  for (int day = 0; day <= 90; day += 15) {
    epi::Compartments total;
    for (const auto& g : traj.groups) {
      const epi::Compartments& c = g.daily[static_cast<std::size_t>(day)];
      total.s += c.s; total.v += c.v; total.e += c.e;
      total.ia += c.ia; total.ip += c.ip; total.is += c.is;
      total.h += c.h; total.r += c.r; total.d += c.d;
    }
    fig3.add_row({std::to_string(day), std::to_string(total.s),
                  std::to_string(total.v), std::to_string(total.e),
                  std::to_string(total.ia), std::to_string(total.ip),
                  std::to_string(total.is), std::to_string(total.h),
                  std::to_string(total.r), std::to_string(total.d)});
  }
  std::printf("Figure 3 dynamics (stratified population, nominal params):\n%s\n",
              fig3.render().c_str());

  // --- QoI response across each Table-1 range (one-at-a-time) --------
  std::printf("QoI (total hospitalizations at day %d) swept one parameter\n"
              "at a time across its Table-1 range (others nominal,\n"
              "5 replicates each):\n\n", cfg.days);
  num::Vector center(5);
  for (std::size_t j = 0; j < 5; ++j) {
    center[j] = 0.5 * (ranges[j].lo + ranges[j].hi);
  }
  util::TextTable sweep({"parameter", "at lo", "at mid", "at hi",
                         "hi/lo ratio"});
  for (std::size_t j = 0; j < 5; ++j) {
    auto qoi_at = [&](double value) {
      num::Vector x = center;
      x[j] = value;
      double acc = 0.0;
      for (std::uint64_t r = 0; r < 5; ++r) {
        acc += core::evaluate_metarvm_qoi(model, x, 77, r);
      }
      return acc / 5.0;
    };
    double lo = qoi_at(ranges[j].lo + 1e-9);
    double mid = qoi_at(center[j]);
    double hi = qoi_at(ranges[j].hi);
    sweep.add_row({ranges[j].name, util::TextTable::num(lo, 0),
                   util::TextTable::num(mid, 0), util::TextTable::num(hi, 0),
                   util::TextTable::num(hi / std::max(lo, 1.0), 2)});
  }
  std::printf("%s\n", sweep.render().c_str());

  // Replicate noise at the center point.
  std::vector<double> reps;
  for (std::uint64_t r = 0; r < 20; ++r) {
    reps.push_back(core::evaluate_metarvm_qoi(model, center, 77, r));
  }
  num::Summary s = num::summarize(reps);
  std::printf("Stochastic replicate noise at the range center: mean %.0f, "
              "sd %.0f (cv %.1f%%)\n",
              s.mean, s.sd, 100.0 * s.sd / s.mean);
  return 0;
}
