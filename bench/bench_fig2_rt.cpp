/// Figure 2 reproduction: automatically generated R(t) estimates
/// (median + 95% CI) for the four Chicago-area water reclamation plants
/// plus the population-weighted ensemble. Because the feeds are
/// synthetic, the bench additionally scores every estimate against the
/// known ground truth — and compares against the "standard method"
/// (Cori/EpiEstim) baseline in both accuracy and computational cost,
/// quantifying the paper's claim that the Goldstein procedure is
/// "significantly more computationally expensive".
///
/// A second scenario measures the ONLINE estimator: once a plant has a
/// fitted chain, how long until a fresh posterior after ONE new sample
/// arrives — warm-start estimate_update() vs a cold full refit — and
/// whether accuracy against the known truth survives the capped chain.
/// Results land in results/BENCH_fig2_rt.json, the first point of the
/// estimator perf trajectory. Set OSPREY_BENCH_SMOKE=1 for a reduced
/// CI-sized run (same shape, fewer iterations).

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "epi/wastewater.hpp"
#include "num/stats.hpp"
#include "rt/cori.hpp"
#include "rt/deconvolution.hpp"
#include "rt/ensemble.hpp"
#include "rt/goldstein.hpp"
#include "util/csv.hpp"
#include "util/file_io.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"
#include "util/value.hpp"

using namespace osprey;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  std::printf("%s", util::banner(
      "Figure 2 — R(t) for four plants + population-weighted ensemble").c_str());

  const bool smoke = std::getenv("OSPREY_BENCH_SMOKE") != nullptr;
  if (smoke) std::printf("(smoke mode: reduced iterations)\n");
  const int days = 120;
  auto plants = epi::chicago_plants();
  auto truths = epi::chicago_truths();
  epi::WastewaterConfig ww;
  ww.days = days;

  std::vector<rt::EnsembleMember> members;
  std::vector<std::vector<double>> plant_truths;
  std::vector<double> weights;
  util::TextTable score({"plant", "samples", "Goldstein RMSE",
                         "Goldstein cover", "Cori(cases) RMSE",
                         "Cori(ww naive) RMSE", "deconv+Cori RMSE",
                         "Goldstein ms", "Cori ms", "cost ratio"});

  std::vector<rt::RtSeries> series_per_plant;
  std::vector<double> goldstein_ms_per_plant;
  for (std::size_t p = 0; p < plants.size(); ++p) {
    epi::WastewaterGenerator gen(plants[p], truths[p], ww, 100 + p);
    std::vector<double> truth = gen.true_rt();
    truth.resize(days);

    rt::GoldsteinConfig gconf;
    gconf.iterations = smoke ? 600 : 4000;
    gconf.burnin = smoke ? 300 : 2000;
    gconf.thin = 5;
    gconf.flow_liters_per_day = plants[p].avg_flow_mgd * 3.785e6;
    gconf.seed = 500 + p;
    rt::GoldsteinEstimator estimator(gconf);

    double t0 = now_ms();
    rt::RtPosterior posterior = estimator.estimate(gen.samples(), days);
    double goldstein_ms = now_ms() - t0;
    goldstein_ms_per_plant.push_back(goldstein_ms);
    rt::RtSeries series = posterior.summarize();
    series_per_plant.push_back(series);

    t0 = now_ms();
    rt::CoriResult cori = rt::estimate_cori(gen.reported_cases());
    double cori_ms = now_ms() - t0;
    // The shortcut baseline: standard method applied directly to the
    // (interpolated) wastewater signal, ignoring shedding delays.
    rt::CoriResult naive =
        rt::estimate_cori_from_concentration(gen.samples(), days);
    // Middle tier: Richardson–Lucy deconvolution + Cori.
    rt::DeconvolutionResult deconv =
        rt::estimate_rt_deconvolution(gen.samples(), days);

    auto mid = [&](const std::vector<double>& v) {
      return std::vector<double>(v.begin() + 10, v.end() - 10);
    };
    score.add_row(
        {plants[p].name, std::to_string(gen.samples().size()),
         util::TextTable::num(num::rmse(mid(series.median), mid(truth)), 3),
         util::TextTable::num(series.coverage(truth), 2),
         util::TextTable::num(num::rmse(mid(cori.series.median), mid(truth)),
                              3),
         util::TextTable::num(
             num::rmse(mid(naive.series.median), mid(truth)), 3),
         util::TextTable::num(
             num::rmse(mid(deconv.rt.series.median), mid(truth)), 3),
         util::TextTable::num(goldstein_ms, 0),
         util::TextTable::num(cori_ms, 2),
         util::TextTable::num(goldstein_ms / std::max(cori_ms, 1e-3), 0) +
             "x"});

    rt::EnsembleMember member;
    member.name = plants[p].name;
    member.population_weight =
        static_cast<double>(plants[p].population_served);
    member.posterior = std::move(posterior);
    members.push_back(std::move(member));
    plant_truths.push_back(truth);
    weights.push_back(static_cast<double>(plants[p].population_served));
  }

  // --- per-plant panels (the four upper panels of Figure 2) ----------
  for (std::size_t p = 0; p < plants.size(); ++p) {
    util::TextTable panel({"day", "truth", "median", "lo95", "hi95"});
    for (int t = 5; t < days; t += 10) {
      std::size_t tt = static_cast<std::size_t>(t);
      panel.add_row({std::to_string(t),
                     util::TextTable::num(plant_truths[p][tt], 2),
                     util::TextTable::num(series_per_plant[p].median[tt], 2),
                     util::TextTable::num(series_per_plant[p].lo95[tt], 2),
                     util::TextTable::num(series_per_plant[p].hi95[tt], 2)});
    }
    std::printf("Panel: %s\n%s\n", plants[p].name.c_str(),
                panel.render().c_str());
  }

  // --- bottom panel: population-weighted ensemble --------------------
  rt::RtPosterior agg = rt::aggregate_population_weighted(members);
  rt::RtSeries agg_series = agg.summarize();
  std::vector<double> agg_truth =
      rt::weighted_series_average(plant_truths, weights);
  util::TextTable panel({"day", "truth", "median", "lo95", "hi95"});
  for (int t = 5; t < days; t += 10) {
    std::size_t tt = static_cast<std::size_t>(t);
    panel.add_row({std::to_string(t),
                   util::TextTable::num(agg_truth[tt], 2),
                   util::TextTable::num(agg_series.median[tt], 2),
                   util::TextTable::num(agg_series.lo95[tt], 2),
                   util::TextTable::num(agg_series.hi95[tt], 2)});
  }
  std::printf("Panel: population-weighted ensemble (bottom of Figure 2)\n%s\n",
              panel.render().c_str());

  std::printf("Estimator scores vs ground truth:\n%s\n",
              score.render().c_str());

  // --- the signal-to-noise claim --------------------------------------
  auto mid = [&](const std::vector<double>& v) {
    return std::vector<double>(v.begin() + 10, v.end() - 10);
  };
  double mean_plant_rmse = 0.0;
  for (std::size_t p = 0; p < plants.size(); ++p) {
    mean_plant_rmse +=
        num::rmse(mid(series_per_plant[p].median), mid(plant_truths[p]));
  }
  mean_plant_rmse /= static_cast<double>(plants.size());
  double ensemble_rmse = num::rmse(mid(agg_series.median), mid(agg_truth));
  std::printf(
      "Signal-to-noise (paper §2.1: pooling \"improves the R(t) signal to\n"
      "noise\"): mean single-plant RMSE %.3f vs ensemble RMSE %.3f "
      "(%.1fx better)\n",
      mean_plant_rmse, ensemble_rmse, mean_plant_rmse / ensemble_rmse);

  // --- CSV artifact for external plotting ------------------------------
  util::CsvTable csv({"day", "series", "truth", "median", "lo95", "hi95"});
  auto dump = [&](const std::string& name, const rt::RtSeries& s,
                  const std::vector<double>& truth) {
    for (std::size_t t = 0; t < s.days(); ++t) {
      csv.add_row({std::to_string(t), name,
                   util::format("%.4f", truth[t]),
                   util::format("%.4f", s.median[t]),
                   util::format("%.4f", s.lo95[t]),
                   util::format("%.4f", s.hi95[t])});
    }
  };
  for (std::size_t p = 0; p < plants.size(); ++p) {
    dump(plants[p].name, series_per_plant[p], plant_truths[p]);
  }
  dump("ensemble", agg_series, agg_truth);
  util::write_text_file("results/fig2_rt_series.csv", csv.to_string());
  std::printf("wrote results/fig2_rt_series.csv (%zu rows)\n",
              csv.num_rows());

  // --- online scenario: time-to-fresh-R(t) after one new sample --------
  std::printf("%s", util::banner(
      "Online refit — time-to-fresh R(t) after one new sample").c_str());
  epi::WastewaterGenerator gen0(plants[0], truths[0], ww, 100);
  rt::GoldsteinConfig oconf;
  oconf.iterations = smoke ? 600 : 4000;
  oconf.burnin = smoke ? 300 : 2000;
  oconf.thin = 5;
  oconf.update_iterations = smoke ? 120 : 600;
  oconf.update_burnin = smoke ? 40 : 200;
  oconf.flow_liters_per_day = plants[0].avg_flow_mgd * 3.785e6;
  oconf.seed = 500;
  rt::GoldsteinEstimator online_est(oconf);

  // History: everything published through day 104; then the next
  // sample on the Mon/Wed/Fri cadence arrives.
  const int history_horizon = 105;
  std::vector<epi::WwSample> history =
      gen0.samples_through(history_horizon - 1);
  int new_day = -1;
  for (const epi::WwSample& s : gen0.samples()) {
    if (s.day >= history_horizon) {
      new_day = s.day;
      break;
    }
  }
  if (new_day < 0) {
    std::printf("no sample after day %d; online scenario skipped\n",
                history_horizon);
    return 1;
  }
  const int online_days = new_day + 1;
  std::vector<epi::WwSample> with_new = gen0.samples_through(new_day);
  std::vector<double> online_truth = gen0.true_rt();
  online_truth.resize(static_cast<std::size_t>(online_days));

  rt::GoldsteinChainState state;
  online_est.estimate(history, history_horizon, oconf.seed, &state);

  double t0 = now_ms();
  rt::RtPosterior warm_post =
      online_est.estimate_update(with_new, online_days, oconf.seed + 1,
                                 state);
  double warm_ms = now_ms() - t0;

  t0 = now_ms();
  rt::RtPosterior cold_post =
      online_est.estimate(with_new, online_days, oconf.seed);
  double cold_ms = now_ms() - t0;

  rt::RtSeries warm_series = warm_post.summarize();
  rt::RtSeries cold_series = cold_post.summarize();
  double warm_rmse = num::rmse(mid(warm_series.median), mid(online_truth));
  double cold_rmse = num::rmse(mid(cold_series.median), mid(online_truth));
  double warm_cover = warm_series.coverage(online_truth);
  double cold_cover = cold_series.coverage(online_truth);
  double speedup = cold_ms / std::max(warm_ms, 1e-3);
  std::printf(
      "new sample at day %d (horizon %d): warm update %.1f ms vs cold "
      "refit %.1f ms (%.1fx)\n"
      "accuracy vs truth: warm RMSE %.3f cover %.2f | cold RMSE %.3f "
      "cover %.2f\n"
      "warm chain acceptance: burn-in %.2f, sampling %.2f (lineage "
      "update #%llu)\n",
      new_day, online_days, warm_ms, cold_ms, speedup, warm_rmse,
      warm_cover, cold_rmse, cold_cover,
      warm_post.acceptance_rate_burnin, warm_post.acceptance_rate_sampling,
      static_cast<unsigned long long>(state.updates));

  // --- JSON artifact: first point of the estimator perf trajectory ----
  util::ValueObject bench;
  bench["bench"] = util::Value("fig2_rt");
  bench["smoke"] = util::Value(smoke);
  bench["days"] = util::Value(static_cast<std::int64_t>(days));
  bench["iterations"] =
      util::Value(static_cast<std::int64_t>(smoke ? 600 : 4000));
  util::ValueArray per_plant;
  for (std::size_t p = 0; p < plants.size(); ++p) {
    util::ValueObject row;
    row["plant"] = util::Value(plants[p].name);
    row["goldstein_ms"] = util::Value(goldstein_ms_per_plant[p]);
    row["rmse"] = util::Value(
        num::rmse(mid(series_per_plant[p].median), mid(plant_truths[p])));
    row["coverage"] =
        util::Value(series_per_plant[p].coverage(plant_truths[p]));
    per_plant.push_back(util::Value(std::move(row)));
  }
  bench["plants"] = util::Value(std::move(per_plant));
  bench["ensemble_rmse"] = util::Value(ensemble_rmse);
  util::ValueObject online;
  online["history_horizon"] =
      util::Value(static_cast<std::int64_t>(history_horizon));
  online["new_sample_day"] = util::Value(static_cast<std::int64_t>(new_day));
  online["update_iterations"] = util::Value(
      static_cast<std::int64_t>(oconf.update_iterations));
  online["cold_full_ms"] = util::Value(cold_ms);
  online["warm_update_ms"] = util::Value(warm_ms);
  online["speedup"] = util::Value(speedup);
  online["cold_rmse"] = util::Value(cold_rmse);
  online["warm_rmse"] = util::Value(warm_rmse);
  online["cold_coverage"] = util::Value(cold_cover);
  online["warm_coverage"] = util::Value(warm_cover);
  online["warm_acceptance_burnin"] =
      util::Value(warm_post.acceptance_rate_burnin);
  online["warm_acceptance_sampling"] =
      util::Value(warm_post.acceptance_rate_sampling);
  bench["online"] = util::Value(std::move(online));
  util::write_text_file("results/BENCH_fig2_rt.json",
                        util::Value(std::move(bench)).to_json());
  std::printf("wrote results/BENCH_fig2_rt.json\n");
  return 0;
}
