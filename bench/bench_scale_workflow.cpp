/// Scale bench: how far does the "always-on" orchestration layer go?
/// The paper runs 4 feeds for weeks; production surveillance (the IWSS
/// covers dozens of plants) runs many feeds for years. Two sections:
///
///  1. single-loop baseline — N ingestion + N analysis flows + 1
///     ALL-policy aggregation on one EventLoop over a simulated year,
///     with full tracing attached (the PR-7 configuration, kept as the
///     reference point);
///  2. sharded — the same surveillance shape at 1500 feeds polling
///     HOURLY (national-scale deployments sample sub-daily) via
///     shard::ShardedFabric on 8 shards with tracing off, which is how
///     a deployment of that size would actually run. Per-partition
///     event queues stay tiny and unchanged polls skip the checksum
///     hash, so events/wall-second must sustain at least 5x the
///     single-loop baseline (checked against
///     results/BENCH_scale_workflow.json; cadence is recorded there).
///
/// OSPREY_BENCH_SMOKE=1 shrinks both sections for CI smoke runs; the
/// JSON records the mode so the gate knows not to compare smoke
/// numbers against full-run expectations.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "aero/server.hpp"
#include "core/usecase_shard.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shard/fabric.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace osprey;
using util::Value;
using util::ValueObject;
using util::kDay;
using util::kMinute;
using util::kSecond;

namespace {

Value transform(const Value& args) {
  ValueObject out;
  out["output"] = args.at("input");
  return Value(std::move(out));
}

Value analysis(const Value& args) {
  ValueObject outputs;
  outputs["out"] = Value("analyzed:" +
                         std::to_string(args.at("inputs").size()));
  ValueObject out;
  out["outputs"] = Value(std::move(outputs));
  return Value(std::move(out));
}

struct SectionResult {
  int feeds = 0;
  int days = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_wall_second() const {
    return static_cast<double>(events) / (wall_ms / 1000.0);
  }
};

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  const bool smoke = std::getenv("OSPREY_BENCH_SMOKE") != nullptr;
  const int base_feeds = smoke ? 5 : 20;
  const int base_days = smoke ? 56 : 365;
  const int sharded_feeds = smoke ? 24 : 1500;
  const int sharded_days = smoke ? 14 : 56;
  const std::size_t num_shards = 8;

  std::printf("%s", util::banner(
      "Scale — single-loop baseline vs 8-shard fabric").c_str());

  // --- section 1: single-loop baseline (tracing on) -------------------
  obs::TraceRecorder tracer;
  obs::MetricsRegistry metrics;
  fabric::EventLoop loop;
  fabric::AuthService auth;
  fabric::TimerService timers(loop, auth);
  fabric::TransferService transfers(loop, auth);
  fabric::FlowsService flows(loop, auth);
  aero::AeroServer server(loop, auth, timers, transfers, flows, "aero",
                          &metrics);
  fabric::StorageEndpoint eagle("eagle", loop, auth);
  fabric::StorageEndpoint scratch("scratch", loop, auth);
  fabric::BatchScheduler pbs(loop, 8);
  fabric::ComputeEndpoint login("login", loop, auth, 4);
  fabric::ComputeEndpoint compute("compute", loop, auth, pbs);
  timers.set_tracer(&tracer);
  transfers.set_tracer(&tracer);
  transfers.set_metrics(&metrics);
  flows.set_tracer(&tracer);
  server.set_tracer(&tracer);
  pbs.set_tracer(&tracer);
  pbs.set_metrics(&metrics);
  login.set_tracer(&tracer);
  login.set_metrics(&metrics);
  compute.set_tracer(&tracer);
  compute.set_metrics(&metrics);
  eagle.create_collection("data", server.token());
  scratch.create_collection("staging", server.token());
  std::string transform_fn =
      login.register_function("transform", transform, 30 * kSecond);
  std::string analysis_fn =
      compute.register_function("analysis", analysis, 10 * kMinute);
  std::string agg_fn =
      login.register_function("aggregate", analysis, kMinute);

  // Feeds publish weekly, staggered across weekdays.
  std::vector<std::string> analysis_out_uuids;
  for (int f = 0; f < base_feeds; ++f) {
    std::vector<std::pair<fabric::SimTime, std::string>> timeline;
    for (int week = 0; week * 7 < base_days; ++week) {
      timeline.emplace_back((week * 7 + f % 7) * kDay,
                            "feed" + std::to_string(f) + "-week" +
                                std::to_string(week));
    }
    aero::IngestionFlowSpec ing;
    ing.name = "ingest-" + std::to_string(f);
    ing.source = std::make_shared<aero::ScriptedSource>(
        "https://feeds/" + std::to_string(f), std::move(timeline));
    ing.poll_period = kDay;
    ing.compute = &login;
    ing.function_id = transform_fn;
    ing.staging = &scratch;
    ing.staging_collection = "staging";
    ing.storage = &eagle;
    ing.collection = "data";
    ing.base_path = "feed/" + std::to_string(f);
    auto handles = server.register_ingestion(std::move(ing));

    aero::AnalysisFlowSpec ana;
    ana.name = "analyze-" + std::to_string(f);
    ana.input_uuids = {handles.output_uuid};
    ana.policy = aero::TriggerPolicy::kAny;
    ana.compute = &compute;
    ana.function_id = analysis_fn;
    ana.staging = &scratch;
    ana.staging_collection = "staging";
    ana.storage = &eagle;
    ana.collection = "data";
    ana.base_path = "analysis/" + std::to_string(f);
    ana.output_names = {"out"};
    analysis_out_uuids.push_back(
        server.register_analysis(std::move(ana))[0]);
  }
  aero::AnalysisFlowSpec agg;
  agg.name = "aggregate-all";
  agg.input_uuids = analysis_out_uuids;
  agg.policy = aero::TriggerPolicy::kAll;
  agg.compute = &login;
  agg.function_id = agg_fn;
  agg.staging = &scratch;
  agg.staging_collection = "staging";
  agg.storage = &eagle;
  agg.collection = "data";
  agg.base_path = "aggregate";
  agg.output_names = {"out"};
  auto agg_uuid = server.register_analysis(std::move(agg))[0];

  SectionResult base;
  base.feeds = base_feeds;
  base.days = base_days;
  {
    auto t0 = std::chrono::steady_clock::now();
    loop.run_until(static_cast<fabric::SimTime>(base_days) * kDay);
    auto t1 = std::chrono::steady_clock::now();
    base.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    base.events = loop.events_processed();
  }

  util::TextTable table({"metric", "baseline"});
  table.add_row({"virtual days simulated", std::to_string(base_days)});
  table.add_row({"feeds", std::to_string(base_feeds)});
  table.add_row({"polls", std::to_string(server.polls())});
  table.add_row({"updates detected",
                 std::to_string(server.updates_detected())});
  table.add_row({"ingestion runs", std::to_string(server.ingestion_runs())});
  table.add_row({"analysis runs", std::to_string(server.analysis_runs())});
  table.add_row({"aggregations",
                 std::to_string(server.db().latest_version_number(agg_uuid))});
  table.add_row({"failed runs", std::to_string(server.failed_runs())});
  table.add_row({"event-loop events", std::to_string(base.events)});
  table.add_row({"metadata queries", std::to_string(server.db().query_count())});
  table.add_row({"transfers", std::to_string(transfers.completed_count())});
  table.add_row({"wall time", util::TextTable::num(base.wall_ms, 0) + " ms"});
  table.add_row({"events/wall-sec",
                 util::TextTable::num(base.events_per_wall_second(), 0)});
  std::printf("%s\n", table.render().c_str());

  // --- section 2: sharded fabric (1500 feeds, 8 shards) ----------------
  SectionResult sharded;
  sharded.feeds = sharded_feeds;
  sharded.days = sharded_days;
  std::uint64_t rounds = 0, aggregates = 0;
  std::size_t partitions = 0;
  {
    shard::ShardedFabricConfig config;
    config.num_shards = num_shards;
    config.tracing = false;  // production posture: counters, not spans
    shard::ShardedFabric fabric(config);
    fabric.register_campaign(core::make_surveillance_campaign(
        "scale", sharded_feeds, sharded_days, util::kHour));
    partitions = fabric.num_partitions();
    auto t0 = std::chrono::steady_clock::now();
    fabric.run_until(static_cast<fabric::SimTime>(sharded_days) * kDay);
    auto t1 = std::chrono::steady_clock::now();
    sharded.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    sharded.events = fabric.events_processed();
    rounds = fabric.coordinator().rounds_dispatched("scale");
    aggregates = fabric.coordinator().aggregates_published("scale");
  }
  double speedup =
      sharded.events_per_wall_second() / base.events_per_wall_second();

  util::TextTable stable({"metric", "sharded"});
  stable.add_row({"virtual days simulated", std::to_string(sharded_days)});
  stable.add_row({"feeds", std::to_string(sharded_feeds)});
  stable.add_row({"poll cadence", "hourly"});
  stable.add_row({"shards", std::to_string(num_shards)});
  stable.add_row({"partitions", std::to_string(partitions)});
  stable.add_row({"aggregation rounds", std::to_string(rounds)});
  stable.add_row({"aggregates published", std::to_string(aggregates)});
  stable.add_row({"event-loop events", std::to_string(sharded.events)});
  stable.add_row({"wall time",
                  util::TextTable::num(sharded.wall_ms, 0) + " ms"});
  stable.add_row({"events/wall-sec",
                  util::TextTable::num(sharded.events_per_wall_second(), 0)});
  stable.add_row({"speedup vs single loop",
                  util::TextTable::num(speedup, 2) + "x"});
  std::printf("%s\n", stable.render().c_str());

  std::printf("%d feeds of always-on surveillance sustain %.0f "
              "events/wall-sec on %zu shards (%.1fx the single-loop "
              "baseline).\n",
              sharded_feeds, sharded.events_per_wall_second(), num_shards,
              speedup);

  // --- observability: BENCH_*.json perf snapshot ---------------------
  std::vector<obs::SpanRecord> spans = tracer.snapshot();
  obs::CriticalPathReport report = obs::analyze(spans);
  std::size_t total_runs = static_cast<std::size_t>(server.ingestion_runs()) +
                           static_cast<std::size_t>(server.analysis_runs());
  ValueObject bench;
  bench["bench"] = Value("scale_workflow");
  bench["smoke"] = Value(smoke);
  bench["virtual_days"] = Value(base_days);
  bench["feeds"] = Value(base_feeds);
  bench["span_count"] = Value(spans.size());
  bench["makespan_ms"] = Value(static_cast<double>(report.makespan_ns) / 1e6);
  ValueObject category_ms;
  for (const auto& [cat, ns] : report.category_ns) {
    category_ms[cat] = Value(static_cast<double>(ns) / 1e6);
  }
  bench["category_ms"] = Value(std::move(category_ms));
  bench["flow_runs"] = Value(total_runs);
  bench["flow_runs_per_virtual_day"] = Value(
      static_cast<double>(total_runs) / base_days);
  bench["wall_ms"] = Value(base.wall_ms);
  bench["events_per_wall_second"] = Value(base.events_per_wall_second());
  ValueObject sh;
  sh["feeds"] = Value(sharded.feeds);
  sh["poll_period_hours"] = Value(1);
  sh["shards"] = Value(static_cast<std::uint64_t>(num_shards));
  sh["partitions"] = Value(partitions);
  sh["virtual_days"] = Value(sharded.days);
  sh["events"] = Value(sharded.events);
  sh["wall_ms"] = Value(sharded.wall_ms);
  sh["events_per_wall_second"] = Value(sharded.events_per_wall_second());
  sh["aggregation_rounds"] = Value(rounds);
  sh["aggregates_published"] = Value(aggregates);
  sh["speedup_vs_single_loop"] = Value(speedup);
  bench["sharded"] = Value(std::move(sh));
  bench["metrics"] = metrics.snapshot();
  util::write_text_file("results/BENCH_scale_workflow.json",
                        Value(std::move(bench)).to_json());
  std::printf("wrote results/BENCH_scale_workflow.json\n");
  return 0;
}
