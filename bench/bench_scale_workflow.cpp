/// Scale bench: how far does the "always-on" orchestration layer go?
/// The paper runs 4 feeds for weeks; production surveillance (the IWSS
/// covers dozens of plants) runs many feeds for years. This bench
/// drives N ingestion flows + N analysis flows + 1 ALL-policy
/// aggregation over a full simulated year with cheap analysis functions,
/// and reports orchestration throughput: virtual-time events, flow runs,
/// metadata traffic, transfers — and the real-time cost of simulating it.

#include <chrono>
#include <cstdio>

#include "aero/server.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace osprey;
using util::Value;
using util::ValueObject;
using util::kDay;
using util::kMinute;
using util::kSecond;

namespace {

constexpr int kFeeds = 20;
constexpr int kDays = 365;

Value transform(const Value& args) {
  ValueObject out;
  out["output"] = args.at("input");
  return Value(std::move(out));
}

Value analysis(const Value& args) {
  ValueObject outputs;
  outputs["out"] = Value("analyzed:" +
                         std::to_string(args.at("inputs").size()));
  ValueObject out;
  out["outputs"] = Value(std::move(outputs));
  return Value(std::move(out));
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("%s", util::banner(
      "Scale — 20 feeds x 365 days of always-on orchestration").c_str());

  obs::TraceRecorder tracer;
  obs::MetricsRegistry metrics;
  fabric::EventLoop loop;
  fabric::AuthService auth;
  fabric::TimerService timers(loop, auth);
  fabric::TransferService transfers(loop, auth);
  fabric::FlowsService flows(loop, auth);
  aero::AeroServer server(loop, auth, timers, transfers, flows, "aero",
                          &metrics);
  fabric::StorageEndpoint eagle("eagle", loop, auth);
  fabric::StorageEndpoint scratch("scratch", loop, auth);
  fabric::BatchScheduler pbs(loop, 8);
  fabric::ComputeEndpoint login("login", loop, auth, 4);
  fabric::ComputeEndpoint compute("compute", loop, auth, pbs);
  timers.set_tracer(&tracer);
  transfers.set_tracer(&tracer);
  transfers.set_metrics(&metrics);
  flows.set_tracer(&tracer);
  server.set_tracer(&tracer);
  pbs.set_tracer(&tracer);
  pbs.set_metrics(&metrics);
  login.set_tracer(&tracer);
  login.set_metrics(&metrics);
  compute.set_tracer(&tracer);
  compute.set_metrics(&metrics);
  eagle.create_collection("data", server.token());
  scratch.create_collection("staging", server.token());
  std::string transform_fn =
      login.register_function("transform", transform, 30 * kSecond);
  std::string analysis_fn =
      compute.register_function("analysis", analysis, 10 * kMinute);
  std::string agg_fn =
      login.register_function("aggregate", analysis, kMinute);

  // Feeds publish weekly, staggered across weekdays.
  std::vector<std::string> analysis_out_uuids;
  for (int f = 0; f < kFeeds; ++f) {
    std::vector<std::pair<fabric::SimTime, std::string>> timeline;
    for (int week = 0; week * 7 < kDays; ++week) {
      timeline.emplace_back((week * 7 + f % 7) * kDay,
                            "feed" + std::to_string(f) + "-week" +
                                std::to_string(week));
    }
    aero::IngestionFlowSpec ing;
    ing.name = "ingest-" + std::to_string(f);
    ing.source = std::make_shared<aero::ScriptedSource>(
        "https://feeds/" + std::to_string(f), std::move(timeline));
    ing.poll_period = kDay;
    ing.compute = &login;
    ing.function_id = transform_fn;
    ing.staging = &scratch;
    ing.staging_collection = "staging";
    ing.storage = &eagle;
    ing.collection = "data";
    ing.base_path = "feed/" + std::to_string(f);
    auto handles = server.register_ingestion(std::move(ing));

    aero::AnalysisFlowSpec ana;
    ana.name = "analyze-" + std::to_string(f);
    ana.input_uuids = {handles.output_uuid};
    ana.policy = aero::TriggerPolicy::kAny;
    ana.compute = &compute;
    ana.function_id = analysis_fn;
    ana.staging = &scratch;
    ana.staging_collection = "staging";
    ana.storage = &eagle;
    ana.collection = "data";
    ana.base_path = "analysis/" + std::to_string(f);
    ana.output_names = {"out"};
    analysis_out_uuids.push_back(
        server.register_analysis(std::move(ana))[0]);
  }
  aero::AnalysisFlowSpec agg;
  agg.name = "aggregate-all";
  agg.input_uuids = analysis_out_uuids;
  agg.policy = aero::TriggerPolicy::kAll;
  agg.compute = &login;
  agg.function_id = agg_fn;
  agg.staging = &scratch;
  agg.staging_collection = "staging";
  agg.storage = &eagle;
  agg.collection = "data";
  agg.base_path = "aggregate";
  agg.output_names = {"out"};
  auto agg_uuid = server.register_analysis(std::move(agg))[0];

  auto t0 = std::chrono::steady_clock::now();
  loop.run_until(static_cast<fabric::SimTime>(kDays) * kDay);
  auto t1 = std::chrono::steady_clock::now();
  double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  util::TextTable table({"metric", "value"});
  table.add_row({"virtual days simulated", std::to_string(kDays)});
  table.add_row({"feeds", std::to_string(kFeeds)});
  table.add_row({"polls", std::to_string(server.polls())});
  table.add_row({"updates detected",
                 std::to_string(server.updates_detected())});
  table.add_row({"ingestion runs", std::to_string(server.ingestion_runs())});
  table.add_row({"analysis runs", std::to_string(server.analysis_runs())});
  table.add_row({"aggregations",
                 std::to_string(server.db().latest_version_number(agg_uuid))});
  table.add_row({"failed runs", std::to_string(server.failed_runs())});
  table.add_row({"event-loop events",
                 std::to_string(loop.events_processed())});
  table.add_row({"metadata queries", std::to_string(server.db().query_count())});
  table.add_row({"metadata updates", std::to_string(server.db().update_count())});
  table.add_row({"transfers", std::to_string(transfers.completed_count())});
  table.add_row({"PBS jobs", std::to_string(pbs.jobs().size())});
  table.add_row({"storage objects", std::to_string(eagle.num_objects())});
  table.add_row({"wall time", util::TextTable::num(wall_ms, 0) + " ms"});
  table.add_row({"virtual:real speedup",
                 util::TextTable::num(static_cast<double>(kDays) * 86400.0 /
                                          (wall_ms / 1000.0),
                                      0) +
                     "x"});
  std::printf("%s\n", table.render().c_str());

  std::printf("A year of 20-feed always-on surveillance orchestration "
              "replays in %.1f s of real time —\nthe determinism/testing "
              "payoff of the discrete-event fabric (DESIGN.md).\n",
              wall_ms / 1000.0);

  // --- observability: BENCH_*.json perf snapshot ---------------------
  std::vector<obs::SpanRecord> spans = tracer.snapshot();
  obs::CriticalPathReport report = obs::analyze(spans);
  std::size_t total_runs = static_cast<std::size_t>(server.ingestion_runs()) +
                           static_cast<std::size_t>(server.analysis_runs());
  ValueObject bench;
  bench["bench"] = Value("scale_workflow");
  bench["virtual_days"] = Value(kDays);
  bench["feeds"] = Value(kFeeds);
  bench["span_count"] = Value(spans.size());
  bench["makespan_ms"] = Value(static_cast<double>(report.makespan_ns) / 1e6);
  ValueObject category_ms;
  for (const auto& [cat, ns] : report.category_ns) {
    category_ms[cat] = Value(static_cast<double>(ns) / 1e6);
  }
  bench["category_ms"] = Value(std::move(category_ms));
  bench["flow_runs"] = Value(total_runs);
  bench["flow_runs_per_virtual_day"] = Value(
      static_cast<double>(total_runs) / kDays);
  bench["wall_ms"] = Value(wall_ms);
  bench["events_per_wall_second"] = Value(
      static_cast<double>(loop.events_processed()) / (wall_ms / 1000.0));
  bench["metrics"] = metrics.snapshot();
  util::write_text_file("results/BENCH_scale_workflow.json",
                        Value(std::move(bench)).to_json());
  std::printf("wrote results/BENCH_scale_workflow.json\n");
  return 0;
}
