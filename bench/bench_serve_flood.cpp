/// Serving-tier flood bench: can the cache-fronted read path stand in
/// front of dashboard-scale traffic? ROADMAP item 1 asks for millions
/// of users reading the latest R(t); this bench populates a 24-plant
/// surveillance deployment (ingestion + per-plant QoI analyses), then
/// drives a seeded million-request Zipf trace through serve::FrontEnd —
/// a steady phase below capacity plus a tight burst that forces
/// admission control to shed — and reports requests/sec, cache hit
/// ratio, and p50/p99 latency into results/BENCH_serve_flood.json.
/// Everything is counter-based and seeded: the same binary replays the
/// same trace bit-identically.

#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "aero/server.hpp"
#include "obs/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/frontend.hpp"
#include "serve/zipf.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace osprey;
using util::Value;
using util::ValueObject;
using util::kDay;
using util::kMinute;
using util::kSecond;

namespace {

constexpr int kFeeds = 24;
constexpr int kWarmupDays = 30;          // populate versions before the flood
constexpr int kFloodDays = 14;           // polls keep bumping versions under load
constexpr std::uint64_t kRequests = 1'000'000;
constexpr std::uint64_t kBurstStart = 900'000;  // last 100k arrive as a burst
constexpr double kZipfExponent = 1.0;
constexpr std::uint64_t kSeed = 0x5EEDF00DULL;

Value transform(const Value& args) {
  ValueObject out;
  out["output"] = args.at("input");
  return Value(std::move(out));
}

Value qoi_analysis(const Value& args) {
  ValueObject outputs;
  outputs["rt"] = Value("rt:" + std::to_string(args.at("inputs").size()));
  outputs["cases"] = Value("cases:" +
                           std::to_string(args.at("inputs").size()));
  ValueObject out;
  out["outputs"] = Value(std::move(outputs));
  return Value(std::move(out));
}

/// Arrival time of request i: steady ~1.2s spacing for the first 900k
/// (below the hit-path capacity), then 10 requests/ms for the last 100k
/// — far past capacity, so the bounded queue must shed.
fabric::SimTime arrival_time(std::uint64_t i) {
  constexpr fabric::SimTime kFloodStart =
      static_cast<fabric::SimTime>(kWarmupDays) * kDay;
  if (i < kBurstStart) return kFloodStart + static_cast<fabric::SimTime>(i) * 1200;
  fabric::SimTime burst_begin =
      kFloodStart + static_cast<fabric::SimTime>(kBurstStart) * 1200;
  return burst_begin + static_cast<fabric::SimTime>((i - kBurstStart) / 10);
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("%s", util::banner(
      "Serve flood — 1M Zipf reads against the cache-fronted tier").c_str());

  obs::MetricsRegistry metrics;
  fabric::EventLoop loop;
  fabric::AuthService auth;
  fabric::TimerService timers(loop, auth);
  fabric::TransferService transfers(loop, auth);
  fabric::FlowsService flows(loop, auth);
  aero::AeroServer server(loop, auth, timers, transfers, flows, "aero",
                          &metrics);
  fabric::StorageEndpoint eagle("eagle", loop, auth);
  fabric::StorageEndpoint scratch("scratch", loop, auth);
  fabric::ComputeEndpoint login("login", loop, auth, 4);
  eagle.create_collection("data", server.token());
  scratch.create_collection("staging", server.token());
  std::string transform_fn =
      login.register_function("transform", transform, 30 * kSecond);
  std::string qoi_fn =
      login.register_function("qoi", qoi_analysis, kMinute);

  // 24 plants: each feed updates every ~3 days (staggered), and a
  // per-plant analysis derives two QoIs from the transformed data.
  std::vector<std::string> objects;
  for (int f = 0; f < kFeeds; ++f) {
    std::vector<std::pair<fabric::SimTime, std::string>> timeline;
    for (int day = f % 3; day < kWarmupDays + kFloodDays; day += 3) {
      timeline.emplace_back(static_cast<fabric::SimTime>(day) * kDay,
                            "plant" + std::to_string(f) + "-day" +
                                std::to_string(day));
    }
    aero::IngestionFlowSpec ing;
    ing.name = "plant-" + std::to_string(f);
    ing.source = std::make_shared<aero::ScriptedSource>(
        "https://plants/" + std::to_string(f), std::move(timeline));
    ing.poll_period = kDay;
    ing.compute = &login;
    ing.function_id = transform_fn;
    ing.staging = &scratch;
    ing.staging_collection = "staging";
    ing.storage = &eagle;
    ing.collection = "data";
    ing.base_path = "plant/" + std::to_string(f);
    auto handles = server.register_ingestion(std::move(ing));
    objects.push_back(handles.raw_uuid);
    objects.push_back(handles.output_uuid);

    aero::AnalysisFlowSpec qoi;
    qoi.name = "qoi-" + std::to_string(f);
    qoi.input_uuids = {handles.output_uuid};
    qoi.policy = aero::TriggerPolicy::kAny;
    qoi.compute = &login;
    qoi.function_id = qoi_fn;
    qoi.staging = &scratch;
    qoi.staging_collection = "staging";
    qoi.storage = &eagle;
    qoi.collection = "data";
    qoi.base_path = "qoi/" + std::to_string(f);
    qoi.output_names = {"rt", "cases"};
    for (std::string& uuid : server.register_analysis(std::move(qoi))) {
      objects.push_back(std::move(uuid));
    }
  }

  serve::ResultCache cache(server, metrics);
  serve::FrontEndConfig config;
  config.max_queue_depth = 256;
  serve::FrontEnd frontend(loop, auth, cache, metrics, config);
  std::string reader = auth.issue_token("dashboards", {fabric::scopes::kServe});

  serve::ZipfTrace zipf(objects.size(), kZipfExponent, kSeed);

  // Self-scheduling pump: one outstanding event submits request i and
  // re-arms for request i+1 — 1M requests without 1M queued closures.
  std::uint64_t next = 0;
  std::function<void()> pump = [&] {
    frontend.submit({objects[zipf.item(next)], reader, "dashboards"}, {});
    ++next;
    if (next < kRequests) loop.schedule_at(arrival_time(next), pump);
  };
  loop.schedule_at(arrival_time(0), pump);

  auto t0 = std::chrono::steady_clock::now();
  loop.run_until(static_cast<fabric::SimTime>(kWarmupDays + kFloodDays + 1) *
                 kDay);
  auto t1 = std::chrono::steady_clock::now();
  double wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  const std::uint64_t hits = cache.hits();
  const std::uint64_t misses = cache.misses();
  const std::uint64_t revalidates = cache.revalidates();
  const std::uint64_t lookups = hits + misses + revalidates;
  const double hit_ratio =
      lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  obs::Histogram& latency =
      metrics.histogram("serve_latency_ms", {1}, "");  // existing instance
  const double p50 = latency.quantile(0.50);
  const double p99 = latency.quantile(0.99);
  const double requests_per_sec =
      static_cast<double>(kRequests) / (wall_ms / 1000.0);

  util::TextTable table({"metric", "value"});
  table.add_row({"data objects", std::to_string(objects.size())});
  table.add_row({"requests", std::to_string(kRequests)});
  table.add_row({"served", std::to_string(frontend.served())});
  table.add_row({"shed", std::to_string(frontend.shed())});
  table.add_row({"cache hits", std::to_string(hits)});
  table.add_row({"cache misses", std::to_string(misses)});
  table.add_row({"cache revalidates", std::to_string(revalidates)});
  table.add_row({"invalidations", std::to_string(cache.invalidations())});
  table.add_row({"hit ratio", util::TextTable::num(hit_ratio * 100.0, 2) + "%"});
  table.add_row({"p50 latency", util::TextTable::num(p50, 1) + " ms"});
  table.add_row({"p99 latency", util::TextTable::num(p99, 1) + " ms"});
  table.add_row({"stale serves (origin)",
                 std::to_string(server.stale_serves())});
  table.add_row({"event-loop events", std::to_string(loop.events_processed())});
  table.add_row({"wall time", util::TextTable::num(wall_ms, 0) + " ms"});
  table.add_row({"requests/wall-sec",
                 util::TextTable::num(requests_per_sec, 0)});
  std::printf("%s\n", table.render().c_str());

  std::printf("%.0f requests/s through auth + admission + cache; hits skip "
              "the metadata db\nentirely, which is what makes the "
              "dashboard-scale north star reachable.\n", requests_per_sec);

  ValueObject bench;
  bench["bench"] = Value("serve_flood");
  bench["seed"] = Value(static_cast<std::uint64_t>(kSeed));
  bench["zipf_exponent"] = Value(kZipfExponent);
  bench["data_objects"] = Value(objects.size());
  bench["requests"] = Value(static_cast<std::uint64_t>(kRequests));
  bench["requests_per_sec"] = Value(requests_per_sec);
  bench["hit_ratio"] = Value(hit_ratio);
  bench["p50_ms"] = Value(p50);
  bench["p99_ms"] = Value(p99);
  bench["served"] = Value(frontend.served());
  bench["shed"] = Value(frontend.shed());
  bench["hits"] = Value(hits);
  bench["misses"] = Value(misses);
  bench["revalidates"] = Value(revalidates);
  bench["invalidations"] = Value(cache.invalidations());
  bench["wall_ms"] = Value(wall_ms);
  bench["metrics"] = metrics.snapshot();
  util::write_text_file("results/BENCH_serve_flood.json",
                        Value(std::move(bench)).to_json());
  std::printf("wrote results/BENCH_serve_flood.json\n");
  return 0;
}
