/// §3.2 ablation: the paper's claim that interleaving the MUSIC
/// instances keeps the compute resource fully utilized, whereas running
/// them sequentially leaves workers idle during each instance's
/// single-point refinement phase ("this would result in poor compute
/// utilization and longer runtimes").
///
/// Workload shape mirrors MUSIC: an initial batch of B evaluations, then
/// K one-at-a-time refinements; the model is a fixed-duration stand-in
/// so the measured difference is purely scheduling.

#include <chrono>
#include <cstdio>
#include <thread>

#include "emews/interleave.hpp"
#include "emews/task_api.hpp"
#include "emews/worker_pool.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace osprey;
using util::Value;
using util::ValueObject;

namespace {

constexpr std::size_t kInstances = 8;
constexpr std::size_t kBatch = 16;       // initial design size
constexpr std::size_t kRefinements = 20; // one-at-a-time iterations
constexpr std::size_t kWorkers = 4;
constexpr auto kModelDuration = std::chrono::milliseconds(4);

/// MUSIC-shaped cooperative instance (batch then singles).
class MusicShaped final : public emews::CoopAlgorithm {
 public:
  MusicShaped(std::string name, emews::TaskQueue queue)
      : name_(std::move(name)), queue_(std::move(queue)) {}

  std::string name() const override { return name_; }

  void start() override {
    for (std::size_t i = 0; i < kBatch; ++i) {
      pending_.push_back(queue_.submit(Value(ValueObject{})));
    }
  }

  emews::PollResult poll() override {
    if (pending_.empty()) return emews::PollResult::kFinished;
    std::size_t i = cursor_ % pending_.size();
    if (!pending_[i].is_done()) {
      ++cursor_;
      return emews::PollResult::kBlocked;
    }
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    if (pending_.empty()) {
      if (iterations_done_ < kRefinements) {
        ++iterations_done_;
        pending_.push_back(queue_.submit(Value(ValueObject{})));
      } else {
        return emews::PollResult::kFinished;
      }
    }
    return emews::PollResult::kProgress;
  }

 private:
  std::string name_;
  emews::TaskQueue queue_;
  std::vector<emews::TaskFuture> pending_;
  std::size_t cursor_ = 0;
  std::size_t iterations_done_ = 0;
};

Value sleepy_model(const Value&) {
  std::this_thread::sleep_for(kModelDuration);
  return Value(ValueObject{});
}

struct RunResult {
  double makespan_ms = 0.0;
  double utilization = 0.0;
  std::uint64_t tasks = 0;
};

template <typename Driver>
RunResult run_with() {
  emews::TaskDb db;
  emews::WorkerPool pool(db, "work", sleepy_model, kWorkers);
  Driver driver(db);
  std::vector<std::shared_ptr<MusicShaped>> instances;
  for (std::size_t i = 0; i < kInstances; ++i) {
    instances.push_back(std::make_shared<MusicShaped>(
        "inst" + std::to_string(i), emews::TaskQueue(db, "work")));
    driver.add(instances.back());
  }
  auto t0 = std::chrono::steady_clock::now();
  driver.run();
  auto t1 = std::chrono::steady_clock::now();
  RunResult result;
  result.makespan_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  pool.shutdown();
  // Utilization over the driver window: busy worker time / capacity.
  double busy_ms = 0.0;
  for (const auto& w : pool.worker_stats()) {
    busy_ms += static_cast<double>(w.busy_ns) / 1e6;
  }
  result.utilization =
      busy_ms / (result.makespan_ms * static_cast<double>(kWorkers));
  result.tasks = pool.tasks_evaluated();
  return result;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("%s", util::banner(
      "§3.2 — interleaved vs sequential ME instances (utilization)").c_str());
  std::printf("workload: %zu instances x (batch %zu + %zu refinements), "
              "%zu workers, %lld ms/model-run\n\n",
              kInstances, kBatch, kRefinements, kWorkers,
              static_cast<long long>(kModelDuration.count()));

  RunResult sequential = run_with<emews::SequentialDriver>();
  RunResult interleaved = run_with<emews::InterleavedDriver>();

  util::TextTable table({"driver", "tasks", "makespan (ms)",
                         "worker utilization"});
  table.add_row({"sequential", std::to_string(sequential.tasks),
                 util::TextTable::num(sequential.makespan_ms, 0),
                 util::TextTable::num(100.0 * sequential.utilization, 0) + "%"});
  table.add_row({"interleaved", std::to_string(interleaved.tasks),
                 util::TextTable::num(interleaved.makespan_ms, 0),
                 util::TextTable::num(100.0 * interleaved.utilization, 0) +
                     "%"});
  std::printf("%s\n", table.render().c_str());
  std::printf("speedup from interleaving: %.2fx (paper: interleaving "
              "\"result[s] in better utilization of the computational "
              "resources\")\n",
              sequential.makespan_ms / interleaved.makespan_ms);
  return 0;
}
