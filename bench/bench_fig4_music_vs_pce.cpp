/// Figure 4 reproduction: first-order Sobol index estimates for the five
/// MetaRVM parameters as a function of sample size — MUSIC (active
/// learning, one sample at a time) vs the degree-3 PCE baseline (one-shot
/// design per sample size), with the random seed fixed (replicate 0).
/// A large-N Saltelli run on the same replicate provides the reference
/// the curves should converge to.
///
/// The paper's reading: "MUSIC demonstrates relatively quick (by 200
/// samples) stabilization compared to PCE". We print both curves and the
/// stabilization sample size per method.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/metarvm_gsa.hpp"
#include "gsa/music.hpp"
#include "gsa/pce.hpp"
#include "gsa/sobol.hpp"
#include "num/stats.hpp"
#include "util/csv.hpp"
#include "util/file_io.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  std::printf("%s", util::banner(
      "Figure 4 — MUSIC vs PCE first-order Sobol convergence (fixed seed)")
      .c_str());

  const std::uint64_t kSeed = 2024;
  const std::uint64_t kReplicate = 0;  // fixed random seed, as in §3.3
  auto model = std::make_shared<const epi::MetaRvm>(
      epi::MetaRvmConfig::stratified_demo(200'000, 90));
  auto ranges = core::table1_ranges();
  gsa::ModelFn qoi = [&](const num::Vector& x) {
    return core::evaluate_metarvm_qoi(*model, x, kSeed, kReplicate);
  };

  // --- reference: large-N Saltelli directly on the model -------------
  std::printf("computing reference indices (Saltelli, n=4096 base)...\n");
  gsa::SobolIndices reference = gsa::saltelli_indices(qoi, ranges, 4096);
  util::TextTable ref({"parameter", "reference S1", "reference ST"});
  for (std::size_t j = 0; j < 5; ++j) {
    ref.add_row({ranges[j].name,
                 util::TextTable::num(reference.first_order[j], 3),
                 util::TextTable::num(reference.total_order[j], 3)});
  }
  std::printf("%s\n", ref.render().c_str());

  // --- MUSIC: one trajectory, indices recorded after every sample ----
  gsa::MusicConfig mcfg;
  mcfg.ranges = ranges;
  mcfg.n_init = 25;
  mcfg.n_total = 200;
  mcfg.n_candidates = 200;
  mcfg.surrogate_mc_n = 1024;
  mcfg.reopt_every = 25;
  mcfg.seed = 7;
  std::printf("running MUSIC to %zu samples...\n", mcfg.n_total);
  gsa::MusicResult music = gsa::run_music(mcfg, qoi);

  // --- PCE: one-shot fit per sample size ------------------------------
  std::printf("running degree-3 PCE at each sample size...\n\n");
  std::vector<gsa::MusicStep> pce_trajectory;
  for (std::size_t n = 25; n <= 200; n += 5) {
    gsa::SobolIndices idx = gsa::pce_gsa(qoi, ranges, n, /*seed=*/13);
    std::vector<double> s1 = idx.first_order;
    for (double& v : s1) v = std::clamp(v, 0.0, 1.0);
    pce_trajectory.push_back(gsa::MusicStep{n, s1, {}});
  }

  // --- the five panels -------------------------------------------------
  for (std::size_t j = 0; j < 5; ++j) {
    util::TextTable panel({"n", "MUSIC S1", "PCE S1", "reference"});
    for (std::size_t r = 0; r < music.trajectory.size(); r += 15) {
      const auto& m = music.trajectory[r];
      // Nearest PCE record at-or-below this n.
      const gsa::MusicStep* p = &pce_trajectory.front();
      for (const auto& cand : pce_trajectory) {
        if (cand.n <= m.n) p = &cand;
      }
      panel.add_row({std::to_string(m.n),
                     util::TextTable::num(m.s1[j], 3),
                     util::TextTable::num(p->s1[j], 3),
                     util::TextTable::num(reference.first_order[j], 3)});
    }
    const auto& last = music.trajectory.back();
    const auto& plast = pce_trajectory.back();
    panel.add_row({std::to_string(last.n),
                   util::TextTable::num(last.s1[j], 3),
                   util::TextTable::num(plast.s1[j], 3),
                   util::TextTable::num(reference.first_order[j], 3)});
    std::printf("Panel: %s\n%s\n", ranges[j].name.c_str(),
                panel.render().c_str());
  }

  // --- stabilization + accuracy summary -------------------------------
  const double kEps = 0.05;
  std::size_t music_stable = gsa::stabilization_n(music.trajectory, kEps);
  std::size_t pce_stable = gsa::stabilization_n(pce_trajectory, kEps);

  auto final_error = [&](const std::vector<double>& s1) {
    double err = 0.0;
    for (std::size_t j = 0; j < 5; ++j) {
      err = std::max(err, std::fabs(s1[j] - reference.first_order[j]));
    }
    return err;
  };
  util::TextTable summary({"method", "stabilized by (eps=0.05)",
                           "final max |S1 - ref|", "model evals at stability"});
  summary.add_row({"MUSIC", std::to_string(music_stable),
                   util::TextTable::num(final_error(music.final_s1), 3),
                   std::to_string(music_stable)});
  summary.add_row({"PCE (degree 3)", std::to_string(pce_stable),
                   util::TextTable::num(final_error(pce_trajectory.back().s1),
                                        3),
                   std::to_string(pce_stable)});
  std::printf("Convergence summary:\n%s\n", summary.render().c_str());
  std::printf("Paper's qualitative claim: MUSIC stabilizes by ~200 samples,\n"
              "faster than the one-shot PCE — reproduced iff MUSIC's\n"
              "stabilization n (%zu) <= PCE's (%zu).\n",
              music_stable, pce_stable);

  // --- CSV artifact for external plotting ------------------------------
  util::CsvTable csv({"method", "n", "parameter", "s1", "reference"});
  auto dump = [&](const std::string& method,
                  const std::vector<gsa::MusicStep>& trajectory) {
    for (const auto& step : trajectory) {
      for (std::size_t j = 0; j < 5; ++j) {
        csv.add_row({method, std::to_string(step.n), ranges[j].name,
                     util::format("%.5f", step.s1[j]),
                     util::format("%.5f", reference.first_order[j])});
      }
    }
  };
  dump("music", music.trajectory);
  dump("pce3", pce_trajectory);
  util::write_text_file("results/fig4_convergence.csv", csv.to_string());
  std::printf("wrote results/fig4_convergence.csv (%zu rows)\n",
              csv.num_rows());
  return 0;
}
