/// Figure 1 reproduction: the automated multi-source wastewater R(t)
/// workflow. Runs the full event-driven pipeline (4 ingestion flows ->
/// 4 R(t) analysis flows -> 1 ALL-triggered aggregation) over 120
/// virtual days and prints:
///   - the realized flow-trigger DAG (which flow fired on which update),
///   - per-task endpoint placement and virtual timing (the login-node vs
///     PBS-compute split of §2.2),
///   - metadata query/update traffic between flows and the AERO server
///     (the solid arrows of Figure 1),
///   - storage/transfer traffic (the "bring your own storage" badges).

#include <cstdio>
#include <map>

#include "core/usecase_ww.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/value.hpp"

using namespace osprey;

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("%s", util::banner(
      "Figure 1 — automated multi-source wastewater R(t) workflow").c_str());

  core::OspreyPlatform platform;
  core::WwUseCaseConfig config;
  config.horizon_days = 120;
  config.seed = 42;
  core::WastewaterUseCase usecase(platform, config);
  usecase.build();
  usecase.run_to_end();

  const auto& aero = platform.aero();
  const auto& db = aero.db();

  // --- flow-level summary: the DAG of Figure 1 -----------------------
  struct FlowAgg {
    int runs = 0;
    int failed = 0;
    aero::FlowKind kind = aero::FlowKind::kIngestion;
    std::string endpoint;
    util::SimTime total_duration = 0;
    std::string sample_trigger;
  };
  std::map<std::string, FlowAgg> by_flow;
  for (const auto& run : db.runs()) {
    FlowAgg& agg = by_flow[run.flow_name];
    agg.kind = run.kind;
    agg.endpoint = run.compute_endpoint;
    agg.runs++;
    if (run.status != aero::RunStatus::kSucceeded) agg.failed++;
    if (run.ended > run.started) agg.total_duration += run.ended - run.started;
    if (agg.sample_trigger.empty()) agg.sample_trigger = run.trigger;
  }
  util::TextTable flow_table({"flow", "kind", "compute endpoint", "runs",
                              "failed", "mean duration", "triggered by"});
  for (const auto& [name, agg] : by_flow) {
    flow_table.add_row(
        {name,
         agg.kind == aero::FlowKind::kIngestion ? "ingestion" : "analysis",
         agg.endpoint, std::to_string(agg.runs), std::to_string(agg.failed),
         util::format_duration(agg.total_duration /
                               std::max(agg.runs, 1)),
         agg.sample_trigger});
  }
  std::printf("Flows (4 ingestion -> 4 R(t) analysis -> 1 aggregation):\n%s\n",
              flow_table.render().c_str());

  // --- trigger cascade for one publication week ----------------------
  util::TextTable cascade({"run", "flow", "trigger", "start", "end"});
  int shown = 0;
  for (const auto& run : db.runs()) {
    // One full cascade: runs between day 56 and day 58.
    if (run.started < 56 * util::kDay || run.started > 58 * util::kDay) {
      continue;
    }
    cascade.add_row({std::to_string(run.run_id), run.flow_name, run.trigger,
                     util::format_sim_time(run.started),
                     util::format_sim_time(run.ended)});
    ++shown;
  }
  std::printf("Trigger cascade for one publication cycle (day 56):\n%s\n",
              cascade.render().c_str());
  (void)shown;

  // --- platform traffic ----------------------------------------------
  const auto& eagle =
      platform.storage_endpoint(core::WastewaterUseCase::kStorageName);
  const auto& scratch =
      platform.storage_endpoint(core::WastewaterUseCase::kStagingName);
  util::TextTable traffic({"metric", "count"});
  traffic.add_row({"source polls", std::to_string(aero.polls())});
  traffic.add_row({"upstream updates detected",
                   std::to_string(aero.updates_detected())});
  traffic.add_row({"ingestion flow runs", std::to_string(aero.ingestion_runs())});
  traffic.add_row({"analysis flow triggers",
                   std::to_string(aero.analysis_triggers())});
  traffic.add_row({"analysis flow runs", std::to_string(aero.analysis_runs())});
  traffic.add_row({"failed runs", std::to_string(aero.failed_runs())});
  traffic.add_row({"metadata queries (solid arrows)",
                   std::to_string(db.query_count())});
  traffic.add_row({"metadata updates (solid arrows)",
                   std::to_string(db.update_count())});
  traffic.add_row({"transfers completed",
                   std::to_string(platform.transfers().completed_count())});
  traffic.add_row({"eagle puts / gets",
                   std::to_string(eagle.puts()) + " / " +
                       std::to_string(eagle.gets())});
  traffic.add_row({"eagle bytes stored",
                   std::to_string(eagle.bytes_stored())});
  traffic.add_row({"scratch puts / gets",
                   std::to_string(scratch.puts()) + " / " +
                       std::to_string(scratch.gets())});
  std::printf("Platform traffic over %d virtual days:\n%s\n",
              config.horizon_days, traffic.render().c_str());

  // --- §2.2 placement claim ------------------------------------------
  std::printf(
      "Placement check (paper §2.2): transformation+aggregation ran on the\n"
      "shared login node ('bebop-login', <1 min each); the R(t) analysis ran\n"
      "as 1-node jobs on the PBS-scheduled endpoint ('bebop-compute').\n");
  const auto& pbs = platform.scheduler("bebop-pbs");
  util::SimTime max_wait = 0;
  for (const auto& job : pbs.jobs()) {
    if (job.queue_wait() > max_wait) max_wait = job.queue_wait();
  }
  std::printf("PBS jobs: %zu, max queue wait %s, machine utilization %.1f%%\n",
              pbs.jobs().size(), util::format_duration(max_wait).c_str(),
              100.0 * pbs.utilization());

  // --- observability: trace + critical path + metrics snapshot -------
  // The trace is loadable in https://ui.perfetto.dev (see README) and
  // feeds tools/osprey_trace; the BENCH_*.json snapshot seeds the perf
  // trajectory (makespan, per-category span time, flow throughput).
  std::vector<obs::SpanRecord> spans = platform.tracer().snapshot();
  util::write_text_file("results/trace_fig1.json",
                        obs::chrome_trace_json(spans));
  obs::CriticalPathReport report = obs::analyze(spans);
  std::printf("\n%s\n", obs::render_report(report).c_str());

  util::ValueObject bench;
  bench["bench"] = util::Value("fig1_workflow");
  bench["virtual_days"] = util::Value(config.horizon_days);
  bench["span_count"] = util::Value(spans.size());
  bench["makespan_ms"] = util::Value(
      static_cast<double>(report.makespan_ns) / 1e6);
  util::ValueObject category_ms;
  for (const auto& [cat, ns] : report.category_ns) {
    category_ms[cat] = util::Value(static_cast<double>(ns) / 1e6);
  }
  bench["category_ms"] = util::Value(std::move(category_ms));
  bench["flow_runs"] = util::Value(db.runs().size());
  bench["flow_runs_per_virtual_day"] = util::Value(
      static_cast<double>(db.runs().size()) / config.horizon_days);
  bench["critical_path"] = obs::report_json(report);
  bench["metrics"] = platform.metrics().snapshot();
  util::write_text_file("results/BENCH_fig1_workflow.json",
                        util::Value(std::move(bench)).to_json());
  std::printf("wrote results/trace_fig1.json and "
              "results/BENCH_fig1_workflow.json\n");
  return 0;
}
