/// Figure 1 reproduction: the automated multi-source wastewater R(t)
/// workflow. Runs the full event-driven pipeline (4 ingestion flows ->
/// 4 R(t) analysis flows -> 1 ALL-triggered aggregation) over 120
/// virtual days and prints:
///   - the realized flow-trigger DAG (which flow fired on which update),
///   - per-task endpoint placement and virtual timing (the login-node vs
///     PBS-compute split of §2.2),
///   - metadata query/update traffic between flows and the AERO server
///     (the solid arrows of Figure 1),
///   - storage/transfer traffic (the "bring your own storage" badges).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>

#include "aero/wal.hpp"
#include "core/usecase_ww.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "util/durable_fs.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/value.hpp"

using namespace osprey;

namespace {

// One timed 120-day workflow pass, optionally with the metadata WAL
// enabled over `fs` (DESIGN.md §4f). Wall-clock timing is legal here —
// bench/ is outside the simulated layers the wall-clock lint guards.
struct WalPassResult {
  double wall_ms = 0.0;
  std::string db_json;       // full metadata snapshot, for byte compares
  std::uint64_t appends = 0;  // WAL records written (0 when WAL off)
  std::uint64_t fsyncs = 0;   // durability barriers hit on fs
  double virtual_makespan_ms = 0.0;
};

WalPassResult run_workflow_pass(util::DurableFs* fs,
                                const aero::WalOptions& options) {
  core::OspreyPlatform platform;
  core::WwUseCaseConfig config;
  config.horizon_days = 120;
  config.seed = 42;
  core::WastewaterUseCase usecase(platform, config);
  if (fs != nullptr) {
    platform.aero().enable_durability(*fs, options);
  }
  auto t0 = std::chrono::steady_clock::now();
  usecase.build();
  usecase.run_to_end();
  auto t1 = std::chrono::steady_clock::now();
  WalPassResult out;
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.db_json = platform.aero().db().to_json().to_json();
  if (fs != nullptr) {
    out.appends = platform.aero().wal()->next_lsn() - 1;
    out.fsyncs = fs->sync_count();
  }
  obs::CriticalPathReport report = obs::analyze(platform.tracer().snapshot());
  out.virtual_makespan_ms = static_cast<double>(report.makespan_ns) / 1e6;
  return out;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("%s", util::banner(
      "Figure 1 — automated multi-source wastewater R(t) workflow").c_str());

  core::OspreyPlatform platform;
  core::WwUseCaseConfig config;
  config.horizon_days = 120;
  config.seed = 42;
  core::WastewaterUseCase usecase(platform, config);
  usecase.build();
  usecase.run_to_end();

  const auto& aero = platform.aero();
  const auto& db = aero.db();

  // --- flow-level summary: the DAG of Figure 1 -----------------------
  struct FlowAgg {
    int runs = 0;
    int failed = 0;
    aero::FlowKind kind = aero::FlowKind::kIngestion;
    std::string endpoint;
    util::SimTime total_duration = 0;
    std::string sample_trigger;
  };
  std::map<std::string, FlowAgg> by_flow;
  for (const auto& run : db.runs()) {
    FlowAgg& agg = by_flow[run.flow_name];
    agg.kind = run.kind;
    agg.endpoint = run.compute_endpoint;
    agg.runs++;
    if (run.status != aero::RunStatus::kSucceeded) agg.failed++;
    if (run.ended > run.started) agg.total_duration += run.ended - run.started;
    if (agg.sample_trigger.empty()) agg.sample_trigger = run.trigger;
  }
  util::TextTable flow_table({"flow", "kind", "compute endpoint", "runs",
                              "failed", "mean duration", "triggered by"});
  for (const auto& [name, agg] : by_flow) {
    flow_table.add_row(
        {name,
         agg.kind == aero::FlowKind::kIngestion ? "ingestion" : "analysis",
         agg.endpoint, std::to_string(agg.runs), std::to_string(agg.failed),
         util::format_duration(agg.total_duration /
                               std::max(agg.runs, 1)),
         agg.sample_trigger});
  }
  std::printf("Flows (4 ingestion -> 4 R(t) analysis -> 1 aggregation):\n%s\n",
              flow_table.render().c_str());

  // --- trigger cascade for one publication week ----------------------
  util::TextTable cascade({"run", "flow", "trigger", "start", "end"});
  int shown = 0;
  for (const auto& run : db.runs()) {
    // One full cascade: runs between day 56 and day 58.
    if (run.started < 56 * util::kDay || run.started > 58 * util::kDay) {
      continue;
    }
    cascade.add_row({std::to_string(run.run_id), run.flow_name, run.trigger,
                     util::format_sim_time(run.started),
                     util::format_sim_time(run.ended)});
    ++shown;
  }
  std::printf("Trigger cascade for one publication cycle (day 56):\n%s\n",
              cascade.render().c_str());
  (void)shown;

  // --- platform traffic ----------------------------------------------
  const auto& eagle =
      platform.storage_endpoint(core::WastewaterUseCase::kStorageName);
  const auto& scratch =
      platform.storage_endpoint(core::WastewaterUseCase::kStagingName);
  util::TextTable traffic({"metric", "count"});
  traffic.add_row({"source polls", std::to_string(aero.polls())});
  traffic.add_row({"upstream updates detected",
                   std::to_string(aero.updates_detected())});
  traffic.add_row({"ingestion flow runs", std::to_string(aero.ingestion_runs())});
  traffic.add_row({"analysis flow triggers",
                   std::to_string(aero.analysis_triggers())});
  traffic.add_row({"analysis flow runs", std::to_string(aero.analysis_runs())});
  traffic.add_row({"failed runs", std::to_string(aero.failed_runs())});
  traffic.add_row({"metadata queries (solid arrows)",
                   std::to_string(db.query_count())});
  traffic.add_row({"metadata updates (solid arrows)",
                   std::to_string(db.update_count())});
  traffic.add_row({"transfers completed",
                   std::to_string(platform.transfers().completed_count())});
  traffic.add_row({"eagle puts / gets",
                   std::to_string(eagle.puts()) + " / " +
                       std::to_string(eagle.gets())});
  traffic.add_row({"eagle bytes stored",
                   std::to_string(eagle.bytes_stored())});
  traffic.add_row({"scratch puts / gets",
                   std::to_string(scratch.puts()) + " / " +
                       std::to_string(scratch.gets())});
  std::printf("Platform traffic over %d virtual days:\n%s\n",
              config.horizon_days, traffic.render().c_str());

  // --- §2.2 placement claim ------------------------------------------
  std::printf(
      "Placement check (paper §2.2): transformation+aggregation ran on the\n"
      "shared login node ('bebop-login', <1 min each); the R(t) analysis ran\n"
      "as 1-node jobs on the PBS-scheduled endpoint ('bebop-compute').\n");
  const auto& pbs = platform.scheduler("bebop-pbs");
  util::SimTime max_wait = 0;
  for (const auto& job : pbs.jobs()) {
    if (job.queue_wait() > max_wait) max_wait = job.queue_wait();
  }
  std::printf("PBS jobs: %zu, max queue wait %s, machine utilization %.1f%%\n",
              pbs.jobs().size(), util::format_duration(max_wait).c_str(),
              100.0 * pbs.utilization());

  // --- observability: trace + critical path + metrics snapshot -------
  // The trace is loadable in https://ui.perfetto.dev (see README) and
  // feeds tools/osprey_trace; the BENCH_*.json snapshot seeds the perf
  // trajectory (makespan, per-category span time, flow throughput).
  std::vector<obs::SpanRecord> spans = platform.tracer().snapshot();
  util::write_text_file("results/trace_fig1.json",
                        obs::chrome_trace_json(spans));
  obs::CriticalPathReport report = obs::analyze(spans);
  std::printf("\n%s\n", obs::render_report(report).c_str());

  util::ValueObject bench;
  bench["bench"] = util::Value("fig1_workflow");
  bench["virtual_days"] = util::Value(config.horizon_days);
  bench["span_count"] = util::Value(spans.size());
  bench["makespan_ms"] = util::Value(
      static_cast<double>(report.makespan_ns) / 1e6);
  util::ValueObject category_ms;
  for (const auto& [cat, ns] : report.category_ns) {
    category_ms[cat] = util::Value(static_cast<double>(ns) / 1e6);
  }
  bench["category_ms"] = util::Value(std::move(category_ms));
  bench["flow_runs"] = util::Value(db.runs().size());
  bench["flow_runs_per_virtual_day"] = util::Value(
      static_cast<double>(db.runs().size()) / config.horizon_days);
  bench["critical_path"] = obs::report_json(report);
  bench["metrics"] = platform.metrics().snapshot();
  util::write_text_file("results/BENCH_fig1_workflow.json",
                        util::Value(std::move(bench)).to_json());
  std::printf("wrote results/trace_fig1.json and "
              "results/BENCH_fig1_workflow.json\n");

  // --- §4f durability overhead: WAL-on vs WAL-off --------------------
  // Re-run the identical workflow against a RealFs so the WAL cost
  // includes genuine file IO and fsync barriers, best-of-kReps per
  // variant (the run above doubles as warm-up). Each WAL pass starts
  // from an empty log directory so recovery is never in the timed path;
  // afterwards a cold recovery over the surviving files must rebuild a
  // byte-identical metadata snapshot (the §4f contract).
  constexpr int kReps = 3;
  const char* kWalRoot = "results/fig1-walfs";
  aero::WalOptions wal_options;
  wal_options.checkpoint_every = 256;

  aero::WalOptions baseline_options;  // unused when fs == nullptr
  WalPassResult base = run_workflow_pass(nullptr, baseline_options);
  for (int rep = 1; rep < kReps; ++rep) {
    WalPassResult r = run_workflow_pass(nullptr, baseline_options);
    if (r.wall_ms < base.wall_ms) base = r;
  }

  WalPassResult walled;
  for (int rep = 0; rep < kReps; ++rep) {
    std::filesystem::remove_all(kWalRoot);
    util::RealFs fs(kWalRoot);
    WalPassResult r = run_workflow_pass(&fs, wal_options);
    if (rep == 0 || r.wall_ms < walled.wall_ms) walled = r;
  }

  // Recover-and-compare self-check over the last pass's files.
  util::RealFs recovery_fs(kWalRoot);
  aero::MetadataDb recovered;
  aero::Wal recovery_wal(recovery_fs, wal_options);
  aero::RecoveryStats stats = recovery_wal.recover(recovered);
  const bool identical = recovered.to_json().to_json() == walled.db_json &&
                         walled.db_json == base.db_json;

  const double overhead_pct =
      base.wall_ms > 0.0
          ? 100.0 * (walled.wall_ms - base.wall_ms) / base.wall_ms
          : 0.0;
  std::printf(
      "\nWAL overhead (best of %d, %d virtual days):\n"
      "  WAL off: %8.1f ms wall\n"
      "  WAL on:  %8.1f ms wall  (%llu appends, %llu fsyncs, "
      "checkpoint every %zu)\n"
      "  overhead: %+.1f%% wall, virtual makespan unchanged (%.1f ms)\n"
      "  cold recovery: checkpoint lsn %llu + %llu replayed -> "
      "byte-identical: %s\n",
      kReps, 120, base.wall_ms, walled.wall_ms,
      static_cast<unsigned long long>(walled.appends),
      static_cast<unsigned long long>(walled.fsyncs),
      wal_options.checkpoint_every, overhead_pct,
      walled.virtual_makespan_ms,
      static_cast<unsigned long long>(stats.checkpoint_lsn),
      static_cast<unsigned long long>(stats.replayed),
      identical ? "yes" : "NO");

  util::ValueObject wal_bench;
  wal_bench["bench"] = util::Value("fig1_wal_overhead");
  wal_bench["virtual_days"] = util::Value(120);
  wal_bench["reps"] = util::Value(kReps);
  wal_bench["checkpoint_every"] = util::Value(
      static_cast<std::int64_t>(wal_options.checkpoint_every));
  wal_bench["baseline_wall_ms"] = util::Value(base.wall_ms);
  wal_bench["wal_wall_ms"] = util::Value(walled.wall_ms);
  wal_bench["overhead_pct"] = util::Value(overhead_pct);
  wal_bench["virtual_makespan_ms"] = util::Value(walled.virtual_makespan_ms);
  wal_bench["virtual_makespan_overhead_pct"] = util::Value(
      base.virtual_makespan_ms > 0.0
          ? 100.0 * (walled.virtual_makespan_ms - base.virtual_makespan_ms) /
                base.virtual_makespan_ms
          : 0.0);
  wal_bench["wal_appends"] = util::Value(
      static_cast<std::int64_t>(walled.appends));
  wal_bench["wal_fsyncs"] = util::Value(
      static_cast<std::int64_t>(walled.fsyncs));
  wal_bench["recovery_checkpoint_lsn"] = util::Value(
      static_cast<std::int64_t>(stats.checkpoint_lsn));
  wal_bench["recovery_replayed"] = util::Value(
      static_cast<std::int64_t>(stats.replayed));
  wal_bench["recovered_byte_identical"] = util::Value(identical);
  util::write_text_file("results/BENCH_wal.json",
                        util::Value(std::move(wal_bench)).to_json());
  std::printf("wrote results/BENCH_wal.json\n");
  return identical ? 0 : 1;
}
