/// Figure 5 reproduction: first-order Sobol indices estimated
/// independently across 10 stochastic replicates of MetaRVM, each line a
/// replicate's index trajectory over increasing sample size. The
/// replicates run exactly as in §3.2: 10 interleaved MUSIC instances on
/// an EMEWS worker pool, each carrying its replicate id so the model
/// uses that replicate's random stream.

#include <cstdio>

#include "core/usecase_gsa.hpp"
#include "num/stats.hpp"
#include "util/csv.hpp"
#include "util/file_io.hpp"
#include "util/log.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

using namespace osprey;

int main() {
  util::set_log_level(util::LogLevel::kError);
  std::printf("%s", util::banner(
      "Figure 5 — Sobol indices across 10 stochastic MetaRVM replicates")
      .c_str());

  core::OspreyPlatform platform;
  core::GsaUseCaseConfig config;
  config.n_replicates = 10;
  config.n_workers = 4;
  config.music.n_init = 25;
  config.music.n_total = 150;
  config.music.n_candidates = 150;
  config.music.surrogate_mc_n = 512;
  config.music.reopt_every = 25;
  config.model = epi::MetaRvmConfig::stratified_demo(200'000, 90);
  config.model_seed = 2024;

  std::printf("running 10 interleaved MUSIC instances to n=%zu each...\n\n",
              config.music.n_total);
  core::GsaUseCase usecase(platform, config);
  core::GsaUseCaseResult result = usecase.run();

  auto ranges = core::table1_ranges();
  // --- five panels: per-replicate trajectories -------------------------
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    std::vector<std::string> header{"n"};
    for (std::size_t r = 0; r < result.replicates.size(); ++r) {
      header.push_back("rep" + std::to_string(r));
    }
    util::TextTable panel(header);
    const auto& rows = result.replicates[0].trajectory;
    for (std::size_t row = 0; row < rows.size(); row += 25) {
      std::vector<std::string> line{std::to_string(rows[row].n)};
      for (const auto& rep : result.replicates) {
        line.push_back(util::TextTable::num(rep.trajectory[row].s1[j], 3));
      }
      panel.add_row(std::move(line));
    }
    std::vector<std::string> line{std::to_string(rows.back().n)};
    for (const auto& rep : result.replicates) {
      line.push_back(util::TextTable::num(rep.trajectory.back().s1[j], 3));
    }
    panel.add_row(std::move(line));
    std::printf("Panel: %s\n%s\n", ranges[j].name.c_str(),
                panel.render().c_str());
  }

  // --- cross-replicate spread (aleatoric vs epistemic picture) --------
  util::TextTable spread({"parameter", "mean final S1", "sd across reps",
                          "min", "max"});
  for (std::size_t j = 0; j < ranges.size(); ++j) {
    std::vector<double> vals;
    for (const auto& rep : result.replicates) {
      vals.push_back(rep.final_s1[j]);
    }
    num::Summary s = num::summarize(vals);
    spread.add_row({ranges[j].name, util::TextTable::num(s.mean, 3),
                    util::TextTable::num(s.sd, 3),
                    util::TextTable::num(s.min, 3),
                    util::TextTable::num(s.max, 3)});
  }
  std::printf("Cross-replicate variability of the final estimates:\n%s\n",
              spread.render().c_str());

  std::printf("workflow: %llu model evaluations, pool utilization %.0f%%, "
              "%llu cooperative polls\n",
              static_cast<unsigned long long>(result.tasks_evaluated),
              100.0 * result.pool_utilization,
              static_cast<unsigned long long>(result.driver_polls));

  // --- CSV artifact for external plotting ------------------------------
  util::CsvTable csv({"replicate", "n", "parameter", "s1"});
  for (std::size_t r = 0; r < result.replicates.size(); ++r) {
    for (const auto& step : result.replicates[r].trajectory) {
      for (std::size_t j = 0; j < ranges.size(); ++j) {
        csv.add_row({std::to_string(r), std::to_string(step.n),
                     ranges[j].name, util::format("%.5f", step.s1[j])});
      }
    }
  }
  util::write_text_file("results/fig5_replicates.csv", csv.to_string());
  std::printf("wrote results/fig5_replicates.csv (%zu rows)\n",
              csv.num_rows());
  return 0;
}
