/// §3.3's forward-looking claim, made concrete: "While this sampling
/// efficiency is less important with less computationally expensive
/// compartmental epidemiological models, the potential for faster
/// time-to-solution would greatly benefit more expensive agent-based
/// epidemiological models."
///
/// This bench runs the same Table-1 GSA on the agent-based MetaRVM
/// counterpart (1–2 orders of magnitude more compute per evaluation than
/// the chain-binomial model) and reports measured wall-clock per model
/// run, per-method evaluations-to-stabilization, and the implied
/// time-to-solution — where MUSIC's smaller sample budget becomes real
/// hours on real ABMs.

#include <chrono>
#include <cstdio>

#include "core/metarvm_gsa.hpp"
#include "epi/abm.hpp"
#include "gsa/music.hpp"
#include "gsa/pce.hpp"
#include "util/table.hpp"

using namespace osprey;

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  std::printf("%s", util::banner(
      "§3.3 — sample efficiency as time-to-solution on an agent-based model")
      .c_str());

  // The compartmental model (cheap) and its agent-based counterpart
  // (expensive), same parameters and QoI.
  auto meta = std::make_shared<const epi::MetaRvm>(
      epi::MetaRvmConfig::single_group(20'000, 20, 60));
  epi::AbmConfig abm_cfg;
  abm_cfg.n_agents = 20'000;
  abm_cfg.initial_infections = 20;
  abm_cfg.days = 60;
  auto abm = std::make_shared<const epi::AgentBasedModel>(abm_cfg);
  auto ranges = core::table1_ranges();

  // Measure per-evaluation cost of each model.
  auto time_model = [&](const std::function<double(const num::Vector&)>& fn) {
    num::Vector center(5);
    for (std::size_t j = 0; j < 5; ++j) {
      center[j] = 0.5 * (ranges[j].lo + ranges[j].hi);
    }
    double t0 = now_ms();
    const int reps = 10;
    double sink = 0.0;
    for (int r = 0; r < reps; ++r) sink += fn(center);
    (void)sink;
    return (now_ms() - t0) / reps;
  };
  std::uint64_t eval_count_abm = 0;
  gsa::ModelFn meta_fn = [&](const num::Vector& x) {
    return core::evaluate_metarvm_qoi(*meta, x, 7, 0);
  };
  gsa::ModelFn abm_fn = [&](const num::Vector& x) {
    ++eval_count_abm;
    epi::MetaRvmParams p = core::params_from_point(x);
    return abm->hospitalization_qoi(p, 7, 0);
  };
  double meta_ms = time_model(meta_fn);
  double abm_ms = time_model(abm_fn);
  std::printf("per-evaluation cost: compartmental %.2f ms, agent-based "
              "%.2f ms (%.0fx more expensive)\n\n",
              meta_ms, abm_ms, abm_ms / std::max(meta_ms, 1e-6));

  // GSA on the ABM: MUSIC trajectory vs PCE sweep.
  gsa::MusicConfig mcfg;
  mcfg.ranges = ranges;
  mcfg.n_init = 25;
  mcfg.n_total = 120;
  mcfg.n_candidates = 150;
  mcfg.surrogate_mc_n = 512;
  mcfg.reopt_every = 25;
  mcfg.seed = 7;
  double t0 = now_ms();
  gsa::MusicResult music = gsa::run_music(mcfg, abm_fn);
  double music_wall_ms = now_ms() - t0;

  std::vector<gsa::MusicStep> pce_trajectory;
  std::size_t pce_total_evals = 0;
  t0 = now_ms();
  for (std::size_t n = 25; n <= 120; n += 5) {
    gsa::SobolIndices idx = gsa::pce_gsa(abm_fn, ranges, n, 13);
    pce_total_evals += n;
    std::vector<double> s1 = idx.first_order;
    for (double& v : s1) v = std::clamp(v, 0.0, 1.0);
    pce_trajectory.push_back(gsa::MusicStep{n, s1, {}});
  }
  double pce_wall_ms = now_ms() - t0;

  const double kEps = 0.05;
  std::size_t music_stable = gsa::stabilization_n(music.trajectory, kEps);
  std::size_t pce_stable = gsa::stabilization_n(pce_trajectory, kEps);

  util::TextTable table({"method", "stabilized at n", "model evals used",
                         "measured wall (ms)",
                         "projected model time at stability"});
  auto projected = [&](std::size_t n) {
    return util::TextTable::num(static_cast<double>(n) * abm_ms, 0) + " ms";
  };
  table.add_row({"MUSIC", std::to_string(music_stable),
                 std::to_string(mcfg.n_total),
                 util::TextTable::num(music_wall_ms, 0),
                 projected(music_stable)});
  // PCE re-evaluates a fresh design per sample size; a one-shot user
  // would pay `pce_stable` evals IF they somehow knew the right n, and
  // the full sweep cost otherwise.
  table.add_row({"PCE (degree 3)", std::to_string(pce_stable),
                 std::to_string(pce_total_evals) + " (sweep)",
                 util::TextTable::num(pce_wall_ms, 0),
                 projected(pce_stable)});
  std::printf("%s\n", table.render().c_str());

  // Project to a production-scale ABM (e.g. the city-scale models of the
  // paper's ref [20]), where one replicate takes ~10 node-minutes.
  const double kProductionRunMinutes = 10.0;
  std::printf(
      "At a production ABM cost of ~%.0f node-minutes per run (city-scale\n"
      "models like the paper's ref [20]): MUSIC reaches stable indices in\n"
      "~%.1f node-hours (%zu runs); the PCE sweep that discovered its own\n"
      "stable n costs ~%.1f node-hours (%zu runs) — the time-to-solution\n"
      "difference the paper anticipates.\n",
      kProductionRunMinutes,
      static_cast<double>(music_stable) * kProductionRunMinutes / 60.0,
      music_stable,
      static_cast<double>(pce_total_evals) * kProductionRunMinutes / 60.0,
      pce_total_evals);
  return 0;
}
