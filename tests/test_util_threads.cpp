// Unit tests for the OSPREY_THREADS override parser and the injectable
// clock abstraction (util::Clock / util::SimClock).

#include <gtest/gtest.h>

#include "util/clock.hpp"
#include "util/thread_pool.hpp"

namespace ou = osprey::util;

TEST(ParseThreadCount, UnsetFallsBack) {
  EXPECT_EQ(ou::parse_thread_count(nullptr, 8), 8u);
  EXPECT_EQ(ou::parse_thread_count("", 8), 8u);
  EXPECT_EQ(ou::parse_thread_count("   ", 8), 8u);
}

TEST(ParseThreadCount, PositiveIntegersHonored) {
  EXPECT_EQ(ou::parse_thread_count("1", 8), 1u);
  EXPECT_EQ(ou::parse_thread_count("4", 8), 4u);
  EXPECT_EQ(ou::parse_thread_count(" 16 ", 8), 16u);
  EXPECT_EQ(ou::parse_thread_count("128", 1), 128u);
}

TEST(ParseThreadCount, ZeroClampsToOne) {
  EXPECT_EQ(ou::parse_thread_count("0", 8), 1u);
  EXPECT_EQ(ou::parse_thread_count(" 0 ", 8), 1u);
}

TEST(ParseThreadCount, NegativeClampsToOne) {
  EXPECT_EQ(ou::parse_thread_count("-1", 8), 1u);
  EXPECT_EQ(ou::parse_thread_count("-64", 8), 1u);
}

TEST(ParseThreadCount, NonNumericClampsToOne) {
  EXPECT_EQ(ou::parse_thread_count("abc", 8), 1u);
  EXPECT_EQ(ou::parse_thread_count("4x", 8), 1u);
  EXPECT_EQ(ou::parse_thread_count("x4", 8), 1u);
  EXPECT_EQ(ou::parse_thread_count("3.5", 8), 1u);
  EXPECT_EQ(ou::parse_thread_count("+", 8), 1u);
}

TEST(ParseThreadCount, OverflowClampsToOne) {
  EXPECT_EQ(ou::parse_thread_count("99999999999999999999999999", 8), 1u);
}

TEST(ThreadPool, ZeroThreadConstructionClampsToOne) {
  ou::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(Clock, RealClockIsMonotonic) {
  const ou::Clock& c = ou::real_clock();
  std::uint64_t a = c.now_ns();
  std::uint64_t b = c.now_ns();
  EXPECT_LE(a, b);
  EXPECT_GT(b, 0u);
}

TEST(Clock, SimClockIsManuallyDriven) {
  ou::SimClock c;
  EXPECT_EQ(c.now_ns(), 0u);
  c.set_ns(1'000);
  EXPECT_EQ(c.now_ns(), 1'000u);
  c.advance_ns(234);
  EXPECT_EQ(c.now_ns(), 1'234u);
  c.set_sim_time(osprey::util::kSecond);  // 1000 ms of virtual time
  EXPECT_EQ(c.now_ns(), 1'000'000'000u);
}

TEST(Clock, SimClockThroughInterface) {
  ou::SimClock sim;
  sim.set_ns(777);
  const ou::Clock* c = &sim;
  EXPECT_EQ(c->now_ns(), 777u);
}
