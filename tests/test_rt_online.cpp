/// Online/incremental Goldstein estimator tests: the bit-identity
/// contract of the LikelihoodWorkspace, the knots_to_daily partial
/// final-segment fix, and the warm-start estimate_update() path.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "epi/kernels.hpp"
#include "epi/wastewater.hpp"
#include "num/rng.hpp"
#include "num/stats.hpp"
#include "rt/goldstein.hpp"
#include "rt/likelihood_ws.hpp"
#include "util/error.hpp"

namespace oe = osprey::epi;
namespace ort = osprey::rt;
namespace on = osprey::num;

namespace {

ort::GoldsteinConfig fast_config(const oe::Plant& plant) {
  ort::GoldsteinConfig cfg;
  cfg.iterations = 1200;
  cfg.burnin = 600;
  cfg.thin = 3;
  cfg.update_iterations = 300;
  cfg.update_burnin = 100;
  cfg.flow_liters_per_day = plant.avg_flow_mgd * 3.785e6;
  cfg.seed = 99;
  return cfg;
}

std::vector<oe::WwSample> make_samples(int days, std::uint64_t seed = 100) {
  oe::Plant plant = oe::chicago_plants()[0];
  oe::RtTruthParams truth = oe::chicago_truths()[0];
  oe::WastewaterConfig ww;
  ww.days = days;
  oe::WastewaterGenerator gen(plant, truth, ww, seed);
  return gen.samples();
}

/// Straight-line replication of the pre-workspace neg_log_posterior:
/// fresh allocations, naive loops, the original accumulation order.
double reference_nlp(const ort::GoldsteinEstimator& est,
                     const std::vector<double>& theta,
                     const std::vector<oe::WwSample>& samples, int days) {
  const ort::GoldsteinConfig& cfg = est.config();
  const int k = est.num_knots(days);
  const double log_i0 = theta[static_cast<std::size_t>(k)];
  const double log_sigma = theta[static_cast<std::size_t>(k) + 1];
  if (log_i0 > 25.0 || log_sigma > 5.0 || log_sigma < -7.0) return 1e12;
  const double sigma = std::exp(log_sigma);

  double nlp = 0.0;
  double s0 = cfg.logr0_prior_sd;
  nlp += 0.5 * theta[0] * theta[0] / (s0 * s0);
  double srw = cfg.rw_prior_sd;
  for (int j = 1; j < k; ++j) {
    double d = theta[static_cast<std::size_t>(j)] -
               theta[static_cast<std::size_t>(j - 1)];
    nlp += 0.5 * d * d / (srw * srw);
  }
  double dli = log_i0 - std::log(100.0);
  nlp += 0.5 * dli * dli / (3.0 * 3.0);
  double shn = cfg.sigma_halfnormal_sd;
  nlp += 0.5 * sigma * sigma / (shn * shn) - log_sigma;

  std::vector<double> log_knots(theta.begin(),
                                theta.begin() + static_cast<std::ptrdiff_t>(k));
  std::vector<double> rt = est.knots_to_daily(log_knots, days);
  const std::vector<double>& w = est.generation_interval();
  const int burnin = static_cast<int>(w.size());
  std::vector<double> inc(static_cast<std::size_t>(burnin) + rt.size(),
                          std::exp(log_i0));
  for (std::size_t t = 0; t < rt.size(); ++t) {
    std::size_t idx = static_cast<std::size_t>(burnin) + t;
    inc[idx] = rt[t] * oe::renewal_pressure(inc, idx, w);
  }
  const std::vector<double>& shed = est.shedding_kernel();
  std::vector<double> mu(static_cast<std::size_t>(days), 0.0);
  for (int t = 0; t < days; ++t) {
    double load = 0.0;
    for (std::size_t s = 0; s < shed.size(); ++s) {
      int src = burnin + t - static_cast<int>(s);
      if (src < 0) break;
      load += shed[s] * inc[static_cast<std::size_t>(src)];
    }
    mu[static_cast<std::size_t>(t)] =
        cfg.shedding_scale * load / cfg.flow_liters_per_day;
  }
  for (const oe::WwSample& s : samples) {
    double m = mu[static_cast<std::size_t>(s.day)];
    if (!(m > 0.0) || !(s.concentration > 0.0)) return 1e12;
    double z = (std::log(s.concentration) - std::log(m)) / sigma;
    nlp += 0.5 * z * z + log_sigma;
  }
  return nlp;
}

}  // namespace

// --- satellite: knots_to_daily partial final segment -------------------

TEST(KnotsToDaily, PartialFinalSegmentReachesLastKnot) {
  ort::GoldsteinConfig cfg;  // spacing 7
  ort::GoldsteinEstimator est(cfg);
  // days=16: knots at 0, 7, 14 and a final one pinned to day 15, so the
  // last segment spans a single day.
  ASSERT_EQ(est.num_knots(16), 4);
  std::vector<double> lk = {0.1, -0.2, 0.3, 0.8};
  std::vector<double> rt = est.knots_to_daily(lk, 16);
  // Day 14 sits exactly on knot 2; day 15 must hit knot 3 exactly (the
  // pre-fix code divided by the full spacing and only got 1/7 of the
  // way toward it).
  EXPECT_EQ(rt[14], std::exp(0.3));
  EXPECT_EQ(rt[15], std::exp(0.8));
}

TEST(KnotsToDaily, PartialSegmentInterpolatesOverTrueLength) {
  ort::GoldsteinConfig cfg;
  ort::GoldsteinEstimator est(cfg);
  // days=10: knots at 0, 7, and the final knot pinned to day 9; the
  // last segment is 2 days long, so day 8 is its midpoint.
  ASSERT_EQ(est.num_knots(10), 3);
  std::vector<double> lk = {0.0, 0.4, 1.2};
  std::vector<double> rt = est.knots_to_daily(lk, 10);
  EXPECT_EQ(rt[7], std::exp(0.4));
  EXPECT_DOUBLE_EQ(rt[8], std::exp(0.5 * 0.4 + 0.5 * 1.2));
  EXPECT_EQ(rt[9], std::exp(1.2));
}

TEST(KnotsToDaily, ExactDivisionUnchanged) {
  ort::GoldsteinConfig cfg;
  ort::GoldsteinEstimator est(cfg);
  // days=15: knots at 0, 7, 14 — spacing divides days-1, so every
  // segment uses the full-spacing denominator (pre-fix arithmetic).
  ASSERT_EQ(est.num_knots(15), 3);
  std::vector<double> lk = {0.0, 0.7, -0.7};
  std::vector<double> rt = est.knots_to_daily(lk, 15);
  for (int t = 0; t < 15; ++t) {
    int k = t / 7;
    int k1 = std::min(k + 1, 2);
    double frac = static_cast<double>(t - k * 7) / 7.0;
    EXPECT_EQ(rt[static_cast<std::size_t>(t)],
              std::exp(lk[static_cast<std::size_t>(k)] * (1.0 - frac) +
                       lk[static_cast<std::size_t>(k1)] * frac))
        << "day " << t;
  }
}

// --- tentpole: incremental evaluation is exact algebra ------------------

TEST(LikelihoodWorkspace, ProposeBitIdenticalToFullEvaluation) {
  const int days = 60;
  oe::Plant plant = oe::chicago_plants()[0];
  ort::GoldsteinEstimator est(fast_config(plant));
  std::vector<oe::WwSample> samples = make_samples(days);

  ort::LikelihoodWorkspace ws = est.make_workspace(samples, days);
  const std::size_t dim = ws.dim();
  std::vector<double> theta(dim, 0.0);
  theta[dim - 2] = std::log(50.0);
  theta[dim - 1] = std::log(0.5);
  ws.commit_full(theta);

  // Seeded sweep of single-component perturbations, randomly accepted:
  // every candidate value must equal a from-scratch evaluation of the
  // same theta, bit for bit. EXPECT_EQ on doubles is exact equality.
  on::RngStream rng(4242);
  for (int round = 0; round < 40; ++round) {
    for (std::size_t j = 0; j < dim; ++j) {
      const double old = theta[j];
      theta[j] = old + 0.15 * rng.normal();
      const double incremental = ws.propose(theta, j);
      const double full = est.neg_log_posterior(theta, samples, days);
      const double ref = reference_nlp(est, theta, samples, days);
      EXPECT_EQ(incremental, full) << "round " << round << " component " << j;
      EXPECT_EQ(incremental, ref) << "round " << round << " component " << j;
      if (rng.uniform() < 0.5) {
        ws.accept();
      } else {
        theta[j] = old;
      }
    }
  }
}

TEST(LikelihoodWorkspace, DegenerateStatesFallBackExactly) {
  const int days = 40;
  oe::Plant plant = oe::chicago_plants()[0];
  ort::GoldsteinEstimator est(fast_config(plant));
  std::vector<oe::WwSample> samples = make_samples(days);

  ort::LikelihoodWorkspace ws = est.make_workspace(samples, days);
  const std::size_t dim = ws.dim();
  std::vector<double> theta(dim, 0.0);
  theta[dim - 2] = std::log(50.0);
  theta[dim - 1] = std::log(0.5);
  ws.commit_full(theta);

  // Drive log sigma past the guard: the proposal must return the 1e12
  // guard value, and ACCEPTING it must not poison later evaluations.
  const double old_sigma = theta[dim - 1];
  theta[dim - 1] = 6.0;
  EXPECT_EQ(ws.propose(theta, dim - 1), 1e12);
  ws.accept();
  EXPECT_TRUE(ws.committed_degenerate());

  // Recover: from the degenerate state every proposal is a full
  // evaluation and must still match the reference bitwise.
  theta[dim - 1] = old_sigma;
  const double back = ws.propose(theta, dim - 1);
  EXPECT_EQ(back, reference_nlp(est, theta, samples, days));
  ws.accept();
  EXPECT_FALSE(ws.committed_degenerate());

  // And the workspace is exact again on the incremental path.
  theta[2] += 0.2;
  EXPECT_EQ(ws.propose(theta, 2), reference_nlp(est, theta, samples, days));
}

TEST(Goldstein, FullRefitBitIdenticalToReferenceChain) {
  // Replicate the original (pre-workspace) estimator loop with naive
  // full evaluations and compare every posterior draw bit-for-bit.
  // days=57: spacing divides days-1, so this is also bit-identical to
  // the pre-fix knots_to_daily arithmetic.
  const int days = 57;
  oe::Plant plant = oe::chicago_plants()[0];
  ort::GoldsteinConfig cfg = fast_config(plant);
  cfg.iterations = 300;
  cfg.burnin = 150;
  cfg.thin = 4;
  ort::GoldsteinEstimator est(cfg);
  std::vector<oe::WwSample> samples = make_samples(days);

  ort::RtPosterior posterior = est.estimate(samples, days, cfg.seed);

  const int k = est.num_knots(days);
  const std::size_t dim = static_cast<std::size_t>(k) + 2;
  std::vector<double> conc;
  for (const auto& s : samples) conc.push_back(s.concentration);
  double mean_c = std::max(on::mean(conc), 1e-12);
  double i0_guess =
      std::max(mean_c * cfg.flow_liters_per_day / cfg.shedding_scale, 1.0);
  std::vector<double> theta(dim, 0.0);
  theta[static_cast<std::size_t>(k)] = std::log(i0_guess);
  theta[static_cast<std::size_t>(k) + 1] = std::log(0.5);

  on::RngStream rng(cfg.seed);
  double current = reference_nlp(est, theta, samples, days);
  std::vector<double> step(dim, 0.08);
  std::vector<std::size_t> accepts(dim, 0);
  std::vector<std::size_t> proposals(dim, 0);
  const int span = cfg.iterations - cfg.burnin;
  const int n_draws = (span + cfg.thin - 1) / cfg.thin;
  ASSERT_EQ(posterior.n_draws(), static_cast<std::size_t>(n_draws));
  ASSERT_EQ(posterior.days(), static_cast<std::size_t>(days));

  std::size_t stored = 0;
  for (int iter = 0; iter < cfg.iterations; ++iter) {
    for (std::size_t j = 0; j < dim; ++j) {
      double old = theta[j];
      theta[j] = old + step[j] * rng.normal();
      double cand = reference_nlp(est, theta, samples, days);
      ++proposals[j];
      if (std::log(rng.uniform() + 1e-300) < current - cand) {
        current = cand;
        ++accepts[j];
      } else {
        theta[j] = old;
      }
    }
    if (iter < cfg.burnin && (iter + 1) % 50 == 0) {
      for (std::size_t j = 0; j < dim; ++j) {
        double rate = static_cast<double>(accepts[j]) /
                      static_cast<double>(proposals[j]);
        step[j] *= std::exp(rate - 0.44);
        step[j] = std::clamp(step[j], 1e-4, 2.0);
        accepts[j] = 0;
        proposals[j] = 0;
      }
    }
    if (iter >= cfg.burnin && (iter - cfg.burnin) % cfg.thin == 0) {
      std::vector<double> log_knots(
          theta.begin(), theta.begin() + static_cast<std::ptrdiff_t>(k));
      std::vector<double> rt = est.knots_to_daily(log_knots, days);
      for (int t = 0; t < days; ++t) {
        EXPECT_EQ(posterior.draws(stored, static_cast<std::size_t>(t)),
                  rt[static_cast<std::size_t>(t)])
            << "draw " << stored << " day " << t;
      }
      ++stored;
    }
  }
  EXPECT_EQ(stored, static_cast<std::size_t>(n_draws));
}

// --- warm-start online refits -------------------------------------------

TEST(GoldsteinOnline, ChainStateCapturesAndExtends) {
  oe::Plant plant = oe::chicago_plants()[0];
  ort::GoldsteinConfig cfg = fast_config(plant);
  ort::GoldsteinEstimator est(cfg);

  std::vector<oe::WwSample> samples = make_samples(74);
  std::vector<oe::WwSample> early;
  for (const auto& s : samples) {
    if (s.day < 60) early.push_back(s);
  }

  ort::GoldsteinChainState state;
  EXPECT_FALSE(state.valid());
  est.estimate(early, 60, cfg.seed, &state);
  EXPECT_TRUE(state.valid());
  EXPECT_EQ(state.days, 60);
  EXPECT_EQ(state.updates, 0u);
  EXPECT_EQ(state.theta.size(),
            static_cast<std::size_t>(est.num_knots(60)) + 2);
  EXPECT_EQ(state.step.size(), state.theta.size());

  ort::RtPosterior update = est.estimate_update(samples, 74, 7, state);
  EXPECT_EQ(state.days, 74);
  EXPECT_EQ(state.updates, 1u);
  EXPECT_EQ(state.theta.size(),
            static_cast<std::size_t>(est.num_knots(74)) + 2);
  const int span = cfg.update_iterations - cfg.update_burnin;
  EXPECT_EQ(update.n_draws(),
            static_cast<std::size_t>((span + cfg.thin - 1) / cfg.thin));
  EXPECT_EQ(update.days(), 74u);

  // A second update on the same horizon keeps advancing the lineage.
  est.estimate_update(samples, 74, 8, state);
  EXPECT_EQ(state.updates, 2u);

  // The horizon may never shrink.
  EXPECT_THROW(est.estimate_update(early, 60, 9, state),
               osprey::util::InvalidArgument);
}

TEST(GoldsteinOnline, WarmUpdateAccuracyWithinToleranceOfCold) {
  // Figure-2-style scenario: fit through day 90, then one more
  // published sample arrives. The capped warm refit must stay close to
  // the cold full refit in truth-tracking accuracy.
  oe::Plant plant = oe::chicago_plants()[0];
  oe::RtTruthParams truth_params = oe::chicago_truths()[0];
  oe::WastewaterConfig ww;
  ww.days = 120;
  oe::WastewaterGenerator gen(plant, truth_params, ww, 100);

  ort::GoldsteinConfig cfg = fast_config(plant);
  ort::GoldsteinEstimator est(cfg);

  std::vector<oe::WwSample> history = gen.samples_through(90);
  int new_day = -1;
  for (const auto& s : gen.samples()) {
    if (s.day > 90) {
      new_day = s.day;
      break;
    }
  }
  ASSERT_GT(new_day, 90);
  const int days = new_day + 1;
  std::vector<oe::WwSample> with_new = gen.samples_through(new_day);

  ort::GoldsteinChainState state;
  est.estimate(history, 91, cfg.seed, &state);
  ort::RtPosterior warm = est.estimate_update(with_new, days, 1234, state);
  ort::RtPosterior cold = est.estimate(with_new, days, cfg.seed);

  std::vector<double> truth = gen.true_rt();
  truth.resize(static_cast<std::size_t>(days));
  auto mid = [](const std::vector<double>& v) {
    return std::vector<double>(v.begin() + 10, v.end() - 10);
  };
  ort::RtSeries warm_series = warm.summarize();
  ort::RtSeries cold_series = cold.summarize();
  const double warm_rmse = on::rmse(mid(warm_series.median), mid(truth));
  const double cold_rmse = on::rmse(mid(cold_series.median), mid(truth));
  EXPECT_LT(warm_rmse, cold_rmse + 0.05);
  EXPECT_LT(warm_rmse, 0.25);
  EXPECT_GT(warm_series.coverage(truth), 0.7);
}

TEST(Goldstein, PerPhaseAcceptanceRates) {
  oe::Plant plant = oe::chicago_plants()[0];
  ort::GoldsteinConfig cfg = fast_config(plant);
  ort::GoldsteinEstimator est(cfg);
  std::vector<oe::WwSample> samples = make_samples(60);
  ort::RtPosterior posterior = est.estimate(samples, 60);

  EXPECT_GT(posterior.acceptance_rate_burnin, 0.0);
  EXPECT_LT(posterior.acceptance_rate_burnin, 1.0);
  EXPECT_GT(posterior.acceptance_rate_sampling, 0.0);
  EXPECT_LT(posterior.acceptance_rate_sampling, 1.0);
  // The overall rate is a proposal-weighted mean of the two phases.
  const double lo = std::min(posterior.acceptance_rate_burnin,
                             posterior.acceptance_rate_sampling);
  const double hi = std::max(posterior.acceptance_rate_burnin,
                             posterior.acceptance_rate_sampling);
  EXPECT_GE(posterior.acceptance_rate, lo - 1e-12);
  EXPECT_LE(posterior.acceptance_rate, hi + 1e-12);
}
