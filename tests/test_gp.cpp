#include "gp/gp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "num/cholesky.hpp"
#include "num/sampling.hpp"
#include "num/stats.hpp"
#include "util/error.hpp"

namespace og = osprey::gp;
namespace on = osprey::num;

namespace {

double test_fn(const on::Vector& u) {
  // Smooth 2-D function on the unit square.
  return std::sin(3.0 * u[0]) + 0.5 * std::cos(5.0 * u[1]) + u[0] * u[1];
}

/// Fit a GP on an n-point LHS of test_fn.
og::GaussianProcess fit_test_gp(std::size_t n, std::uint64_t seed = 1) {
  on::RngStream rng(seed);
  on::Matrix x = on::latin_hypercube(n, 2, rng);
  on::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = test_fn(x.row(i));
  og::GaussianProcess gp;
  gp.fit(x, y);
  return gp;
}

}  // namespace

TEST(Kernel, SymmetricAndPsdShape) {
  og::ArdSqExpKernel k;
  k.lengthscales = {0.5, 0.2};
  k.variance = 2.0;
  on::Vector a{0.1, 0.2}, b{0.3, 0.9};
  EXPECT_DOUBLE_EQ(k(a, b), k(b, a));
  EXPECT_DOUBLE_EQ(k(a, a), 2.0);      // k(x,x) = variance
  EXPECT_LT(k(a, b), k(a, a));         // correlation decays
  EXPECT_GT(k(a, b), 0.0);
}

TEST(Kernel, AnisotropyMatters) {
  og::ArdSqExpKernel k;
  k.lengthscales = {10.0, 0.01};
  k.variance = 1.0;
  on::Vector base{0.5, 0.5};
  on::Vector moved_x1{0.9, 0.5};
  on::Vector moved_x2{0.5, 0.9};
  // Long lengthscale in dim 1: moving there barely matters; dim 2 kills
  // the correlation.
  EXPECT_GT(k(base, moved_x1), 0.99);
  EXPECT_LT(k(base, moved_x2), 1e-10);
}

TEST(Kernel, CovarianceMatrixMatchesPairwise) {
  og::ArdSqExpKernel k;
  k.lengthscales = {0.3, 0.3};
  k.variance = 1.5;
  on::RngStream rng(2);
  on::Matrix x = on::latin_hypercube(6, 2, rng);
  on::Matrix cov = k.covariance(x);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(cov(i, j), k(x.row(i), x.row(j)), 1e-12);
    }
  }
  on::Vector cross = k.cross(x, x.row(3));
  EXPECT_NEAR(cross[3], 1.5, 1e-12);
}

TEST(Gp, InterpolatesTrainingPoints) {
  og::GaussianProcess gp = fit_test_gp(30);
  // Re-predicting training points: tiny nugget -> near interpolation.
  on::RngStream rng(1);
  on::Matrix x = on::latin_hypercube(30, 2, rng);
  for (std::size_t i = 0; i < 30; i += 7) {
    og::GpPrediction pred = gp.predict(x.row(i));
    EXPECT_NEAR(pred.mean, test_fn(x.row(i)), 0.05);
  }
}

TEST(Gp, PredictsHeldOutPoints) {
  og::GaussianProcess gp = fit_test_gp(60);
  on::RngStream rng(99);
  std::vector<double> errors;
  for (int i = 0; i < 50; ++i) {
    on::Vector u{rng.uniform(), rng.uniform()};
    errors.push_back(std::fabs(gp.predict(u).mean - test_fn(u)));
  }
  EXPECT_LT(on::mean(errors), 0.05);
}

TEST(Gp, VarianceSmallAtDataLargeFarAway) {
  // Train only in the lower-left quadrant.
  on::RngStream rng(5);
  on::Matrix x(20, 2);
  on::Vector y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = 0.4 * rng.uniform();
    x(i, 1) = 0.4 * rng.uniform();
    y[i] = test_fn(x.row(i));
  }
  og::GaussianProcess gp;
  gp.fit(x, y);
  double var_near = gp.predict({0.2, 0.2}).variance;
  double var_far = gp.predict({0.95, 0.95}).variance;
  EXPECT_GT(var_far, 5.0 * var_near);
}

TEST(Gp, PredictMeanBatchMatchesSingle) {
  og::GaussianProcess gp = fit_test_gp(25);
  on::RngStream rng(7);
  on::Matrix q = on::latin_hypercube(10, 2, rng);
  on::Vector batch = gp.predict_mean(q);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(batch[i], gp.predict(q.row(i)).mean, 1e-9);
  }
}

TEST(Gp, AddPointImprovesLocalFit) {
  og::GaussianProcess gp = fit_test_gp(15);
  on::Vector target{0.77, 0.33};
  double before_var = gp.predict(target).variance;
  gp.add_point(target, test_fn(target));
  double after_var = gp.predict(target).variance;
  EXPECT_LT(after_var, before_var * 0.5);
  EXPECT_NEAR(gp.predict(target).mean, test_fn(target), 0.05);
  EXPECT_EQ(gp.n(), 16u);
}

TEST(Gp, IncrementalAddMatchesFullRefitOverThirtyPoints) {
  // The rank-1 Cholesky path must agree with the from-scratch
  // re-factorization to tight tolerance across a long run of sequential
  // additions (hyperparameters fixed on both sides).
  const std::size_t n0 = 20;
  const std::size_t n_add = 30;
  on::RngStream rng(42);
  on::Matrix x0 = on::latin_hypercube(n0, 2, rng);
  on::Vector y0(n0);
  for (std::size_t i = 0; i < n0; ++i) y0[i] = test_fn(x0.row(i));

  og::GpConfig cfg;
  cfg.reopt_every = 0;  // neither side re-optimizes mid-run
  og::GpConfig full_cfg = cfg;
  full_cfg.incremental = false;
  og::GaussianProcess inc(cfg);
  og::GaussianProcess full(full_cfg);
  inc.fit(x0, y0);
  full.fit(x0, y0);

  on::Matrix additions = on::latin_hypercube(n_add, 2, rng);
  on::Matrix queries = on::latin_hypercube(25, 2, rng);
  for (std::size_t i = 0; i < n_add; ++i) {
    on::Vector p = additions.row(i);
    double y = test_fn(p);
    inc.add_point(p, y);
    full.add_point(p, y);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      og::GpPrediction a = inc.predict(queries.row(q));
      og::GpPrediction b = full.predict(queries.row(q));
      EXPECT_NEAR(a.mean, b.mean, 1e-8) << "add " << i << " query " << q;
      EXPECT_NEAR(a.variance, b.variance, 1e-8)
          << "add " << i << " query " << q;
    }
  }
  EXPECT_EQ(inc.n(), n0 + n_add);
  EXPECT_NEAR(inc.log_marginal_likelihood(), full.log_marginal_likelihood(),
              1e-8);
}

TEST(Gp, AddPointPeriodicReoptimizeTracksHyperparameters) {
  // With reopt_every = 8, the 8th appended point must trigger a full
  // MLE refit; with the cadence disabled the hyperparameters stay put.
  on::RngStream rng(31);
  on::Matrix x0 = on::latin_hypercube(12, 2, rng);
  on::Vector y0(12);
  for (std::size_t i = 0; i < 12; ++i) y0[i] = test_fn(x0.row(i));
  og::GpConfig cfg;
  cfg.reopt_every = 8;
  og::GpConfig frozen_cfg = cfg;
  frozen_cfg.reopt_every = 0;
  og::GaussianProcess gp(cfg);
  og::GaussianProcess frozen(frozen_cfg);
  gp.fit(x0, y0);
  frozen.fit(x0, y0);
  on::Vector ls_before = gp.kernel().lengthscales;

  on::Matrix additions = on::latin_hypercube(8, 2, rng);
  for (std::size_t i = 0; i < 8; ++i) {
    gp.add_point(additions.row(i), test_fn(additions.row(i)));
    frozen.add_point(additions.row(i), test_fn(additions.row(i)));
  }
  EXPECT_EQ(frozen.kernel().lengthscales, ls_before);
  bool changed = false;
  for (std::size_t j = 0; j < ls_before.size(); ++j) {
    if (std::fabs(gp.kernel().lengthscales[j] - ls_before[j]) > 1e-12) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed) << "reopt_every cadence did not refit";
}

TEST(Gp, LeaveOneOutMatchesDenseInverseFormulation) {
  // The rewritten LOO (K^{-1} diagonal straight from the factor) must
  // reproduce the old solve(Matrix::identity(n)) formulation at n=150.
  const std::size_t n = 150;
  on::RngStream rng(7);
  on::Matrix x = on::latin_hypercube(n, 2, rng);
  on::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = test_fn(x.row(i)) + 0.05 * rng.normal();
  }
  og::GpConfig cfg;
  cfg.mle_restarts = 0;
  og::GaussianProcess gp(cfg);
  gp.fit(x, y);
  og::GaussianProcess::LooDiagnostics fast = gp.leave_one_out();

  // Reference: materialize K^{-1} the old way from the fitted
  // hyperparameters and recompute the closed-form residuals. condition()
  // adds nugget + jitter and cholesky_with_jitter layers one more base
  // jitter on its (successful) first attempt, so the factored diagonal
  // is nugget + 2 * jitter.
  on::Matrix k = gp.kernel().covariance(x);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) += gp.nugget() + 2.0 * cfg.jitter;
  }
  on::Cholesky chol(k);
  on::Matrix k_inv = chol.solve(on::Matrix::identity(n));
  double y_mean = on::mean(y);
  double y_sd = on::stddev(y);
  on::Vector y_std(n);
  for (std::size_t i = 0; i < n; ++i) y_std[i] = (y[i] - y_mean) / y_sd;
  on::Vector alpha = chol.solve(y_std);
  ASSERT_EQ(fast.residuals.size(), n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double resid = (alpha[i] / k_inv(i, i)) * y_sd;
    EXPECT_NEAR(fast.residuals[i], resid, 1e-8) << i;
    acc += resid * resid;
  }
  EXPECT_NEAR(fast.rmse, std::sqrt(acc / static_cast<double>(n)), 1e-8);
  EXPECT_GE(fast.coverage95, 0.85);  // sane diagnostics on a smooth fn
}

TEST(Gp, LogMarginalLikelihoodImprovesWithReoptimize) {
  on::RngStream rng(11);
  on::Matrix x = on::latin_hypercube(40, 2, rng);
  on::Vector y(40);
  for (std::size_t i = 0; i < 40; ++i) y[i] = test_fn(x.row(i));
  og::GaussianProcess gp;
  gp.update_data(x, y);  // default hyperparameters
  double before = gp.log_marginal_likelihood();
  gp.reoptimize();
  double after = gp.log_marginal_likelihood();
  EXPECT_GE(after, before - 1e-9);
}

TEST(Gp, NearestResponse) {
  on::Matrix x(3, 1);
  x(0, 0) = 0.1;
  x(1, 0) = 0.5;
  x(2, 0) = 0.9;
  on::Vector y{10.0, 20.0, 30.0};
  og::GaussianProcess gp;
  gp.update_data(x, y);
  EXPECT_DOUBLE_EQ(gp.nearest_response({0.45}), 20.0);
  EXPECT_DOUBLE_EQ(gp.nearest_response({0.95}), 30.0);
}

TEST(Gp, HandlesNoisyReplicatesViaNugget) {
  // y = f(x) + noise; the estimated nugget should absorb the noise, and
  // predictions should sit near the noiseless function.
  on::RngStream rng(13);
  const std::size_t n = 80;
  on::Matrix x = on::latin_hypercube(n, 2, rng);
  on::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = test_fn(x.row(i)) + 0.2 * rng.normal();
  }
  og::GaussianProcess gp;
  gp.fit(x, y);
  EXPECT_GT(gp.nugget(), 1e-4);  // noise absorbed
  std::vector<double> errors;
  for (int i = 0; i < 40; ++i) {
    on::Vector u{rng.uniform(), rng.uniform()};
    errors.push_back(std::fabs(gp.predict(u).mean - test_fn(u)));
  }
  EXPECT_LT(on::mean(errors), 0.15);
}

TEST(Gp, ConstantResponsesDoNotCrash) {
  on::Matrix x(5, 1);
  for (std::size_t i = 0; i < 5; ++i) x(i, 0) = 0.2 * static_cast<double>(i);
  on::Vector y(5, 3.0);
  og::GaussianProcess gp;
  gp.fit(x, y);
  EXPECT_NEAR(gp.predict({0.5}).mean, 3.0, 0.2);
}

TEST(Gp, PreconditionsEnforced) {
  og::GaussianProcess gp;
  EXPECT_THROW(gp.predict({0.5}), osprey::util::InvalidArgument);
  on::Matrix x(1, 1, 0.5);
  EXPECT_THROW(gp.fit(x, {1.0}), osprey::util::InvalidArgument);
  on::Matrix x2(3, 1, 0.5);
  EXPECT_THROW(gp.fit(x2, {1.0, 2.0}), osprey::util::InvalidArgument);
}
