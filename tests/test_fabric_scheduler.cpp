#include "fabric/scheduler.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace of = osprey::fabric;
using osprey::util::kHour;
using osprey::util::kMinute;

TEST(Scheduler, RunsJobImmediatelyWhenNodesFree) {
  of::EventLoop loop;
  of::BatchScheduler pbs(loop, 4);
  bool ran = false;
  of::JobId id = pbs.submit({"job", 2, kHour, [&] {
                               ran = true;
                               return 30 * kMinute;
                             }});
  loop.run_all();
  EXPECT_TRUE(ran);
  const of::JobRecord& rec = pbs.job(id);
  EXPECT_EQ(rec.state, of::JobState::kComplete);
  EXPECT_EQ(rec.queue_wait(), 0);
  EXPECT_EQ(rec.ended - rec.started, 30 * kMinute);
  EXPECT_EQ(pbs.free_nodes(), 4);
}

TEST(Scheduler, QueuesWhenMachineFull) {
  of::EventLoop loop;
  of::BatchScheduler pbs(loop, 1);
  of::JobId first = pbs.submit({"first", 1, kHour, [] { return kHour / 2; }});
  of::JobId second =
      pbs.submit({"second", 1, kHour, [] { return 10 * kMinute; }});
  loop.run_all();
  EXPECT_EQ(pbs.job(first).queue_wait(), 0);
  // Second starts only when the first releases its node.
  EXPECT_EQ(pbs.job(second).started, pbs.job(first).ended);
}

TEST(Scheduler, BackfillSkipsTooLargeJob) {
  of::EventLoop loop;
  of::BatchScheduler pbs(loop, 4);
  // Hold 3 nodes.
  pbs.submit({"wide", 3, kHour, [] { return kHour; }});
  // Next in FIFO wants 4 nodes (cannot fit now); a later 1-node job can
  // backfill the free node.
  of::JobId big = pbs.submit({"big", 4, kHour, [] { return kMinute; }});
  of::JobId small = pbs.submit({"small", 1, kHour, [] { return kMinute; }});
  loop.run_until(10 * kMinute);
  EXPECT_EQ(pbs.job(small).state, of::JobState::kComplete);
  EXPECT_EQ(pbs.job(big).state, of::JobState::kQueued);
  loop.run_all();
  EXPECT_EQ(pbs.job(big).state, of::JobState::kComplete);
}

TEST(Scheduler, WalltimeKill) {
  of::EventLoop loop;
  of::BatchScheduler pbs(loop, 1);
  of::JobId id =
      pbs.submit({"runaway", 1, 10 * kMinute, [] { return 5 * kHour; }});
  loop.run_all();
  const of::JobRecord& rec = pbs.job(id);
  EXPECT_EQ(rec.state, of::JobState::kTimeout);
  EXPECT_EQ(rec.ended - rec.started, 10 * kMinute);  // killed at walltime
}

TEST(Scheduler, CancelQueuedJob) {
  of::EventLoop loop;
  of::BatchScheduler pbs(loop, 1);
  pbs.submit({"holder", 1, kHour, [] { return kHour; }});
  of::JobId queued = pbs.submit({"victim", 1, kHour, [] { return kMinute; }});
  loop.run_until(osprey::util::kSecond);  // holder started, victim queued
  EXPECT_TRUE(pbs.cancel(queued));
  loop.run_all();
  EXPECT_EQ(pbs.job(queued).state, of::JobState::kCancelled);
  EXPECT_FALSE(pbs.cancel(queued));
}

TEST(Scheduler, RejectsOversizedAndInvalidJobs) {
  of::EventLoop loop;
  of::BatchScheduler pbs(loop, 2);
  EXPECT_THROW(pbs.submit({"too-big", 3, kHour, [] { return kMinute; }}),
               osprey::util::InvalidArgument);
  EXPECT_THROW(pbs.submit({"no-work", 1, kHour, nullptr}),
               osprey::util::InvalidArgument);
}

TEST(Scheduler, UtilizationReflectsLoad) {
  of::EventLoop loop;
  of::BatchScheduler pbs(loop, 2);
  // Two 1-node jobs of 1h run in parallel on a 2-node machine: 100%.
  pbs.submit({"a", 1, 2 * kHour, [] { return kHour; }});
  pbs.submit({"b", 1, 2 * kHour, [] { return kHour; }});
  loop.run_all();
  EXPECT_NEAR(pbs.utilization(), 1.0, 1e-9);
}

TEST(Scheduler, JobRunsAtVirtualStartTime) {
  of::EventLoop loop;
  of::BatchScheduler pbs(loop, 1);
  of::SimTime observed = -1;
  pbs.submit({"first", 1, kHour, [&loop] {
                (void)loop;
                return 20 * kMinute;
              }});
  pbs.submit({"second", 1, kHour, [&] {
                observed = loop.now();
                return kMinute;
              }});
  loop.run_all();
  EXPECT_EQ(observed, 20 * kMinute);  // body ran when the job started
}
