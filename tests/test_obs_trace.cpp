/// obs::TraceRecorder + exporters + critical path: span parenting via
/// CurrentSpanGuard, canonicalization (recording order must not leak
/// into the exported bytes), Chrome-trace round trips, the log-line
/// sink, and the golden determinism property the subsystem exists for:
/// two replays of the same chaos seed export byte-identical traces.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/usecase_ww.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"

namespace obs = osprey::obs;
namespace oc = osprey::core;
namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::kDay;
using ou::kHour;
using ou::kMinute;
using ou::SimTime;

TEST(TraceRecorder, SpansNestViaCurrentSpanGuard) {
  obs::TraceRecorder rec;
  obs::SpanId parent = rec.begin_span(obs::Category::kAero, "parent",
                                      obs::sim_ns(0), obs::kNoSpan);
  obs::SpanId child;
  {
    obs::CurrentSpanGuard guard(parent);
    EXPECT_EQ(obs::current_span(), parent);
    // kInheritParent resolves to the guard's span.
    child = rec.begin_span(obs::Category::kFlow, "child", obs::sim_ns(1));
  }
  EXPECT_EQ(obs::current_span(), obs::kNoSpan);
  rec.end_span(child, obs::sim_ns(2));
  rec.end_span(parent, obs::sim_ns(3));

  std::vector<obs::SpanRecord> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const obs::SpanRecord* c = nullptr;
  for (const auto& s : spans) {
    if (s.name == "child") c = &s;
  }
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->parent, parent);
}

TEST(TraceRecorder, EndSpanIsIdempotentAndIgnoresNoSpan) {
  obs::TraceRecorder rec;
  rec.end_span(obs::kNoSpan, obs::sim_ns(1));  // no-op
  obs::SpanId s = rec.begin_span(obs::Category::kCompute, "x", obs::sim_ns(0),
                                 obs::kNoSpan);
  rec.end_span(s, obs::sim_ns(5), false, "first error wins");
  rec.end_span(s, obs::sim_ns(9), true);  // ignored: already closed
  std::vector<obs::SpanRecord> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end_ns, obs::sim_ns(5));
  EXPECT_FALSE(spans[0].ok);
  EXPECT_EQ(rec.open_count(), 0u);
}

TEST(TraceRecorder, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder rec;
  rec.set_enabled(false);
  obs::SpanId s = rec.begin_span(obs::Category::kAero, "x", obs::sim_ns(0),
                                 obs::kNoSpan);
  EXPECT_EQ(s, obs::kNoSpan);
  rec.instant(obs::Category::kAero, "i", obs::sim_ns(0), obs::kNoSpan);
  EXPECT_EQ(rec.span_count(), 0u);
}

TEST(Export, RecordingOrderDoesNotChangeExportedBytes) {
  // The same logical trace recorded in two different orders (as thread
  // interleaving would produce) must export identically.
  obs::TraceRecorder a;
  obs::SpanId a1 = a.begin_span(obs::Category::kTransfer, "t1",
                                obs::sim_ns(0), obs::kNoSpan);
  obs::SpanId a2 = a.begin_span(obs::Category::kCompute, "c1",
                                obs::sim_ns(10), obs::kNoSpan);
  a.end_span(a1, obs::sim_ns(20));
  a.end_span(a2, obs::sim_ns(30));

  obs::TraceRecorder b;
  obs::SpanId b2 = b.begin_span(obs::Category::kCompute, "c1",
                                obs::sim_ns(10), obs::kNoSpan);
  obs::SpanId b1 = b.begin_span(obs::Category::kTransfer, "t1",
                                obs::sim_ns(0), obs::kNoSpan);
  b.end_span(b2, obs::sim_ns(30));
  b.end_span(b1, obs::sim_ns(20));

  EXPECT_EQ(obs::chrome_trace_json(a), obs::chrome_trace_json(b));
}

TEST(Export, ChromeTraceRoundTripIsByteIdentical) {
  obs::TraceRecorder rec;
  obs::SpanId p = rec.begin_span(obs::Category::kAero, "ingest:x",
                                 obs::sim_ns(0), obs::kNoSpan, "poll");
  obs::SpanId q = rec.begin_span(obs::Category::kFlow, "flow:x",
                                 obs::sim_ns(1), p);
  rec.end_span(q, obs::sim_ns(7), false, "step failed: boom");
  rec.end_span(p, obs::sim_ns(9));
  rec.instant(obs::Category::kAero, "incident:retry-scheduled",
              obs::sim_ns(9), p, "x: attempt 1");

  std::string json = obs::chrome_trace_json(rec);
  std::vector<obs::SpanRecord> parsed = obs::parse_chrome_trace(json);
  EXPECT_EQ(obs::chrome_trace_json(parsed), json);
  // Parent links survive the round trip.
  const obs::SpanRecord* flow = nullptr;
  const obs::SpanRecord* ingest = nullptr;
  for (const auto& s : parsed) {
    if (s.name == "flow:x") flow = &s;
    if (s.name == "ingest:x") ingest = &s;
  }
  ASSERT_NE(flow, nullptr);
  ASSERT_NE(ingest, nullptr);
  EXPECT_EQ(flow->parent, ingest->id);
  EXPECT_FALSE(flow->ok);
}

TEST(Export, LogSinkTurnsLogLinesIntoInstants) {
  obs::TraceRecorder rec;
  ou::SimClock clock;
  clock.set_ns(obs::sim_ns(42));
  ou::LogSink previous =
      ou::set_log_sink(obs::make_trace_log_sink(rec, clock));
  OSPREY_LOG_WARN("aero", "fetch failed for 'x'");
  ou::set_log_sink(std::move(previous));

  std::vector<obs::SpanRecord> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_TRUE(spans[0].instant);
  EXPECT_EQ(spans[0].name, "log:aero");
  EXPECT_EQ(spans[0].begin_ns, obs::sim_ns(42));
  EXPECT_NE(spans[0].detail.find("fetch failed"), std::string::npos);
}

TEST(CriticalPath, ChainBeatsParallelWork) {
  obs::TraceRecorder rec;
  // Chain: a [0,10] -> b [10,30]. Parallel blob: p [0,25] (shorter than
  // the 30ms chain end, so the chain bounds the makespan).
  obs::SpanId a = rec.begin_span(obs::Category::kTransfer, "a",
                                 obs::sim_ns(0), obs::kNoSpan);
  rec.end_span(a, obs::sim_ns(10));
  obs::SpanId b = rec.begin_span(obs::Category::kCompute, "b",
                                 obs::sim_ns(10), obs::kNoSpan);
  rec.end_span(b, obs::sim_ns(30));
  obs::SpanId p = rec.begin_span(obs::Category::kFlow, "p", obs::sim_ns(0),
                                 obs::kNoSpan);
  rec.end_span(p, obs::sim_ns(25));

  obs::CriticalPathReport report = obs::analyze(rec.snapshot());
  EXPECT_EQ(report.makespan_ns, obs::sim_ns(30));
  ASSERT_EQ(report.path.size(), 2u);
  EXPECT_EQ(report.path[0].name, "a");
  EXPECT_EQ(report.path[1].name, "b");
  EXPECT_EQ(report.path_ns, obs::sim_ns(30));
  EXPECT_EQ(report.category_ns.at("transfer"), obs::sim_ns(10));
  EXPECT_EQ(report.category_ns.at("compute"), obs::sim_ns(20));
  EXPECT_EQ(report.category_ns.at("flow"), obs::sim_ns(25));
  // The report renders without throwing and mentions the makespan.
  std::string text = obs::render_report(report);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

namespace {

/// Scaled-down wastewater workflow under a seeded chaos plan: the
/// cheapest run that still exercises transfers, compute, flows, retries
/// and incident instants.
struct TracedRun {
  std::unique_ptr<oc::OspreyPlatform> platform;
  std::unique_ptr<of::FaultPlan> plan;
  std::unique_ptr<oc::WastewaterUseCase> usecase;
};

TracedRun run_traced_workflow(std::uint64_t seed) {
  TracedRun run;
  run.platform = std::make_unique<oc::OspreyPlatform>();

  auto plan = std::make_unique<of::FaultPlan>(0xC8A05000ULL + seed);
  plan->set_active_window(28 * kDay, 36 * kDay);
  plan->set_rate(of::FaultKind::kTransferDrop, 0.05);
  plan->set_rate(of::FaultKind::kComputeKill, 0.05);
  plan->set_rate(of::FaultKind::kFlowStall, 0.03);
  run.plan = std::move(plan);
  run.platform->install_fault_plan(run.plan.get());

  oc::WwUseCaseConfig config;
  config.horizon_days = 38;
  config.goldstein.iterations = 200;
  config.goldstein.burnin = 100;
  config.goldstein.thin = 2;
  config.aggregate_draws = 30;
  config.retry.max_attempts = 4;
  config.retry.initial_backoff = 20 * kMinute;
  config.retry.multiplier = 2.0;
  config.retry.jitter = 0.2;
  config.retry.seed = 0x5EEDULL ^ seed;
  run.usecase =
      std::make_unique<oc::WastewaterUseCase>(*run.platform, config);
  run.usecase->build();
  run.usecase->run_to_end();
  return run;
}

}  // namespace

TEST(GoldenDeterminism, SameChaosSeedExportsIdenticalTraceBytes) {
  TracedRun first = run_traced_workflow(3);
  TracedRun second = run_traced_workflow(3);

  // The workflow actually traced something substantial.
  EXPECT_GT(first.platform->tracer().span_count(), 100u);

  std::string trace1 = obs::chrome_trace_json(first.platform->tracer());
  std::string trace2 = obs::chrome_trace_json(second.platform->tracer());
  EXPECT_EQ(trace1, trace2) << "chaos replay produced different trace bytes";

  // Metrics replay identically too.
  EXPECT_EQ(first.platform->metrics().snapshot().to_json(),
            second.platform->metrics().snapshot().to_json());
  EXPECT_EQ(obs::prometheus_text(first.platform->metrics()),
            obs::prometheus_text(second.platform->metrics()));
}

TEST(GoldenDeterminism, CriticalPathMakespanMatchesWorkflowTimeline) {
  TracedRun run = run_traced_workflow(1);

  obs::CriticalPathReport report =
      obs::analyze(run.platform->tracer().snapshot());

  // The trace extent must agree with the flow service's own records:
  // the earliest flow start and the latest flow end bound the workflow
  // (every other span nests inside some flow run or its trigger).
  const auto& records = run.platform->flows().records();
  ASSERT_FALSE(records.empty());
  SimTime min_started = records.front().started;
  SimTime max_ended = 0;
  for (const auto& rec : records) {
    min_started = std::min(min_started, rec.started);
    if (rec.ended >= 0) max_ended = std::max(max_ended, rec.ended);
  }
  EXPECT_EQ(report.trace_begin_ns, obs::sim_ns(min_started));
  EXPECT_EQ(report.trace_end_ns, obs::sim_ns(max_ended));
  EXPECT_EQ(report.makespan_ns,
            obs::sim_ns(max_ended) - obs::sim_ns(min_started));

  // Path sanity: non-empty, non-overlapping, within the makespan.
  ASSERT_FALSE(report.path.empty());
  for (std::size_t i = 1; i < report.path.size(); ++i) {
    EXPECT_LE(report.path[i - 1].end_ns, report.path[i].begin_ns);
  }
  EXPECT_LE(report.path_ns, report.makespan_ns);

  // The full export/analyze pipeline agrees with the in-memory one.
  std::vector<obs::SpanRecord> parsed = obs::parse_chrome_trace(
      obs::chrome_trace_json(run.platform->tracer()));
  obs::CriticalPathReport reparsed = obs::analyze(std::move(parsed));
  EXPECT_EQ(reparsed.makespan_ns, report.makespan_ns);
  EXPECT_EQ(reparsed.path_ns, report.path_ns);
  EXPECT_EQ(reparsed.span_count, report.span_count);
}
