/// Property tests for the shared recovery primitives (util/retry.hpp):
/// exponential backoff monotonicity up to the cap, jitter bounds and
/// determinism, and full state-machine coverage of the CircuitBreaker
/// driven by explicit SimTime values (the same virtual clock the
/// EventLoop advances).

#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <vector>

#include "fabric/event_loop.hpp"
#include "util/error.hpp"
#include "util/retry.hpp"

namespace ou = osprey::util;
using ou::BreakerState;
using ou::CircuitBreaker;
using ou::CircuitBreakerConfig;
using ou::RetryPolicy;
using ou::SimTime;
using ou::kHour;
using ou::kMinute;
using ou::kSecond;

// ---------------------------------------------------------------------------
// RetryPolicy: backoff schedule properties
// ---------------------------------------------------------------------------

TEST(RetryPolicy, BackoffIsMonotoneAndReachesTheCap) {
  // Property swept across several (initial, multiplier, cap) shapes:
  // backoff(attempt) never decreases and saturates exactly at cap().
  struct Shape {
    SimTime initial;
    double multiplier;
    SimTime max_backoff;  // 0 = default 8x cap
  };
  std::vector<Shape> shapes = {
      {5 * kMinute, 2.0, 0},
      {kSecond, 1.5, 90 * kSecond},
      {kMinute, 3.0, 2 * kHour},
      {10 * kMinute, 1.0, 0},  // constant backoff is a legal degenerate
      {1, 10.0, kHour},
  };
  for (const Shape& shape : shapes) {
    RetryPolicy policy;
    policy.max_attempts = 50;
    policy.initial_backoff = shape.initial;
    policy.multiplier = shape.multiplier;
    policy.max_backoff = shape.max_backoff;
    SimTime prev = 0;
    bool saturated = false;
    for (int attempt = 1; attempt <= 50; ++attempt) {
      SimTime b = policy.backoff(attempt);
      EXPECT_GE(b, 1) << "attempt " << attempt;
      EXPECT_GE(b, prev) << "backoff must be monotone, attempt " << attempt;
      EXPECT_LE(b, policy.cap()) << "attempt " << attempt;
      saturated = saturated || b == policy.cap();
      prev = b;
    }
    if (shape.multiplier > 1.0) {
      EXPECT_TRUE(saturated) << "50 doublings must hit the cap";
      EXPECT_EQ(prev, policy.cap());
    }
  }
}

TEST(RetryPolicy, FirstBackoffIsTheInitialAndCapDefaultsTo8x) {
  RetryPolicy policy;
  policy.initial_backoff = 10 * kMinute;
  EXPECT_EQ(policy.backoff(1), 10 * kMinute);
  EXPECT_EQ(policy.cap(), 80 * kMinute);
  policy.max_backoff = kHour;
  EXPECT_EQ(policy.cap(), kHour);
}

TEST(RetryPolicy, JitterStaysWithinBoundsForEveryAttemptAndKey) {
  RetryPolicy policy;
  policy.initial_backoff = 10 * kMinute;
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    policy.seed = seed * 0x9e3779b9ULL + 1;
    for (int attempt = 1; attempt <= 12; ++attempt) {
      SimTime base = policy.backoff(attempt);
      for (std::uint64_t key = 0; key < 16; ++key) {
        SimTime j = policy.jittered(attempt, key);
        // llround can move the bound by at most half a millisecond.
        EXPECT_GE(j, static_cast<SimTime>(base * (1.0 - policy.jitter)) - 1);
        EXPECT_LE(j, static_cast<SimTime>(base * (1.0 + policy.jitter)) + 1);
        EXPECT_GE(j, 1);
      }
    }
  }
}

TEST(RetryPolicy, JitterIsDeterministicPerSeedAndSpreadsAcrossKeys) {
  RetryPolicy policy;
  policy.initial_backoff = 10 * kMinute;
  policy.jitter = 0.5;
  policy.seed = 0xC0FFEE;
  // Replay: identical inputs, identical schedule.
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(policy.jittered(attempt, 42), policy.jittered(attempt, 42));
  }
  // Spread: distinct keys must not all collapse onto one value.
  bool any_different = false;
  for (std::uint64_t key = 1; key < 32; ++key) {
    if (policy.jittered(1, key) != policy.jittered(1, 0)) any_different = true;
  }
  EXPECT_TRUE(any_different);
  // Zero jitter is exactly the deterministic schedule.
  policy.jitter = 0.0;
  EXPECT_EQ(policy.jittered(3, 99), policy.backoff(3));
}

TEST(RetryPolicy, InvalidParametersAreRejected) {
  RetryPolicy policy;
  policy.initial_backoff = 0;
  EXPECT_THROW(policy.backoff(1), ou::InvalidArgument);
  policy.initial_backoff = kMinute;
  policy.multiplier = 0.5;
  EXPECT_THROW(policy.backoff(1), ou::InvalidArgument);
  policy.multiplier = 2.0;
  policy.jitter = 1.0;
  EXPECT_THROW(policy.jittered(1), ou::InvalidArgument);
  policy.jitter = -0.1;
  EXPECT_THROW(policy.jittered(1), ou::InvalidArgument);
}

TEST(RetryPolicy, NonPositiveAttemptsClampToTheInitialBackoff) {
  // Regression: backoff(0)/backoff(-1) used to throw from deep inside
  // the recovery path. A scheduler bookkeeping bug now degrades to the
  // initial backoff instead of killing the server.
  RetryPolicy policy;
  policy.initial_backoff = 10 * kMinute;
  policy.jitter = 0.25;
  EXPECT_EQ(policy.backoff(0), policy.backoff(1));
  EXPECT_EQ(policy.backoff(-7), policy.backoff(1));
  EXPECT_EQ(policy.jittered(0, 42), policy.jittered(1, 42));
  EXPECT_EQ(policy.jittered(-3, 42), policy.jittered(1, 42));
}

TEST(RetryPolicy, HugeAttemptCountsSaturateAtTheCapWithoutOverflow) {
  // Regression: initial * multiplier^(attempt-1) overflowed SimTime
  // before the cap clamp for large attempt counts. The schedule must
  // saturate exactly at cap() for arbitrarily large attempts.
  RetryPolicy policy;
  policy.initial_backoff = 5 * kMinute;
  policy.multiplier = 2.0;
  policy.max_backoff = kHour;
  for (int attempt : {60, 63, 64, 100, 1000, 1 << 30}) {
    EXPECT_EQ(policy.backoff(attempt), kHour) << "attempt " << attempt;
  }
  // Jitter on a saturated base must stay within SimTime too.
  policy.jitter = 0.5;
  for (int attempt : {100, 1 << 30}) {
    SimTime j = policy.jittered(attempt, 7);
    EXPECT_GE(j, static_cast<SimTime>(kHour * 0.5) - 1);
    EXPECT_LE(j, static_cast<SimTime>(kHour * 1.5) + 1);
  }
}

TEST(RetryPolicy, CapSaturatesNearTheSimTimeCeiling) {
  // Regression: the default 8x cap computed initial_backoff * 8 in
  // SimTime and wrapped negative for huge initial backoffs.
  constexpr SimTime kMax = std::numeric_limits<SimTime>::max();
  RetryPolicy policy;
  policy.initial_backoff = kMax / 2;
  EXPECT_EQ(policy.cap(), kMax);
  EXPECT_GT(policy.backoff(1), 0);
  EXPECT_LE(policy.backoff(1), kMax);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    SimTime b = policy.backoff(attempt);
    EXPECT_GT(b, 0) << "attempt " << attempt;
    EXPECT_LE(b, policy.cap());
  }
  EXPECT_EQ(policy.backoff(8), kMax);
  // An explicit cap at the ceiling round-trips unharmed as well.
  policy.max_backoff = kMax;
  EXPECT_EQ(policy.backoff(64), kMax);
}

TEST(RetryPolicy, StableKeyIsStable) {
  EXPECT_EQ(ou::stable_key("ingest-plant-a"), ou::stable_key("ingest-plant-a"));
  EXPECT_NE(ou::stable_key("ingest-plant-a"), ou::stable_key("ingest-plant-b"));
  EXPECT_NE(ou::stable_key(""), ou::stable_key("x"));
}

// ---------------------------------------------------------------------------
// CircuitBreaker: full state-machine coverage, driven by the EventLoop's
// virtual clock.
// ---------------------------------------------------------------------------

namespace {

CircuitBreakerConfig breaker_config(int threshold, SimTime open_timeout,
                                    int half_open_successes) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = threshold;
  cfg.open_timeout = open_timeout;
  cfg.half_open_successes = half_open_successes;
  return cfg;
}

}  // namespace

TEST(CircuitBreaker, DisabledBreakerAlwaysAllows) {
  CircuitBreaker breaker;  // threshold 0 = disabled
  for (SimTime t = 0; t < 10; ++t) {
    breaker.on_failure(t);
    EXPECT_TRUE(breaker.allow(t));
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  }
  EXPECT_EQ(breaker.times_opened(), 0u);
}

TEST(CircuitBreaker, ClosedTripsOpenAfterThresholdConsecutiveFailures) {
  CircuitBreaker breaker(breaker_config(3, 30 * kMinute, 1));
  osprey::fabric::EventLoop loop;
  breaker.on_failure(loop.now());
  breaker.on_failure(loop.now());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(loop.now()));
  breaker.on_failure(loop.now());  // third consecutive failure trips it
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow(loop.now()));
  EXPECT_EQ(breaker.times_opened(), 1u);
  EXPECT_EQ(breaker.reopen_at(), loop.now() + 30 * kMinute);
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveFailureCount) {
  CircuitBreaker breaker(breaker_config(3, 30 * kMinute, 1));
  for (int round = 0; round < 5; ++round) {
    breaker.on_failure(0);
    breaker.on_failure(0);
    breaker.on_success(0);  // never three in a row
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.times_opened(), 0u);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreaker, OpenAdmitsHalfOpenProbeExactlyAtTheTimeout) {
  CircuitBreaker breaker(breaker_config(1, kHour, 1));
  osprey::fabric::EventLoop loop;
  breaker.on_failure(loop.now());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  // Drive the virtual clock forward and poll allow() as the EventLoop
  // would: denied strictly before reopen_at, admitted at/after it.
  bool allowed_early = false;
  bool allowed_at_timeout = false;
  loop.schedule_at(kHour - 1, [&] { allowed_early = breaker.allow(loop.now()); });
  loop.schedule_at(kHour, [&] { allowed_at_timeout = breaker.allow(loop.now()); });
  loop.run_all();
  EXPECT_FALSE(allowed_early);
  EXPECT_TRUE(allowed_at_timeout);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, HalfOpenFailureReopensAndRestartsTheTimer) {
  CircuitBreaker breaker(breaker_config(1, kHour, 1));
  breaker.on_failure(0);
  EXPECT_TRUE(breaker.allow(kHour));  // -> half-open
  breaker.on_failure(kHour);          // failed probe
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  // The open timeout restarts from the probe failure, not the original trip.
  EXPECT_EQ(breaker.reopen_at(), kHour + kHour);
  EXPECT_FALSE(breaker.allow(kHour + kHour - 1));
  EXPECT_TRUE(breaker.allow(2 * kHour));
}

TEST(CircuitBreaker, HalfOpenClosesAfterEnoughProbeSuccesses) {
  CircuitBreaker breaker(breaker_config(1, kHour, 2));
  breaker.on_failure(0);
  EXPECT_TRUE(breaker.allow(kHour));  // -> half-open
  breaker.on_success(kHour);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen) << "needs 2 successes";
  breaker.on_success(kHour + kMinute);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(kHour + kMinute));
  // Back in closed, the failure counter starts fresh.
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(CircuitBreaker, ProbeSuccessCounterResetsOnEachHalfOpenEntry) {
  CircuitBreaker breaker(breaker_config(1, kHour, 2));
  breaker.on_failure(0);
  EXPECT_TRUE(breaker.allow(kHour));
  breaker.on_success(kHour);   // 1 of 2
  breaker.on_failure(kHour);   // probe fails -> open again
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.allow(2 * kHour + kHour));
  breaker.on_success(3 * kHour);
  // The earlier partial probe success must not carry over.
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.on_success(3 * kHour);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, ReopenAtIsEngagedOnlyWhileOpen) {
  // Regression: reopen_at() used to return opened_at_ + open_timeout
  // unconditionally — a bogus "reopens at 30min" for a breaker that
  // never tripped. It now answers only for the open state.
  CircuitBreaker breaker(breaker_config(1, kHour, 1));
  EXPECT_EQ(breaker.reopen_at(), std::nullopt) << "never opened";

  breaker.on_failure(5 * kMinute);
  ASSERT_TRUE(breaker.reopen_at().has_value());
  EXPECT_EQ(*breaker.reopen_at(), 5 * kMinute + kHour);

  EXPECT_TRUE(breaker.allow(5 * kMinute + kHour));  // -> half-open
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.reopen_at(), std::nullopt) << "half-open has no reopen";

  breaker.on_success(5 * kMinute + kHour);  // -> closed
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.reopen_at(), std::nullopt) << "closed has no reopen";

  // A disabled breaker never opens, so never has a reopen time.
  CircuitBreaker disabled;
  disabled.on_failure(0);
  EXPECT_EQ(disabled.reopen_at(), std::nullopt);
}

TEST(CircuitBreaker, StateNamesAndValidation) {
  EXPECT_STREQ(ou::breaker_state_name(BreakerState::kClosed), "closed");
  EXPECT_STREQ(ou::breaker_state_name(BreakerState::kOpen), "open");
  EXPECT_STREQ(ou::breaker_state_name(BreakerState::kHalfOpen), "half-open");
  EXPECT_THROW(CircuitBreaker(breaker_config(-1, kHour, 1)),
               ou::InvalidArgument);
  EXPECT_THROW(CircuitBreaker(breaker_config(1, 0, 1)), ou::InvalidArgument);
  EXPECT_THROW(CircuitBreaker(breaker_config(1, kHour, 0)),
               ou::InvalidArgument);
}

TEST(CircuitBreaker, FullLifecycleUnderTheEventLoop) {
  // closed -> open -> half-open -> open -> half-open -> closed, with
  // every transition driven by events on the virtual clock.
  CircuitBreaker breaker(breaker_config(2, 10 * kMinute, 1));
  osprey::fabric::EventLoop loop;
  std::vector<BreakerState> observed;
  auto observe = [&] { observed.push_back(breaker.state()); };

  loop.schedule_at(0, [&] { breaker.on_failure(loop.now()); observe(); });
  loop.schedule_at(kMinute, [&] { breaker.on_failure(loop.now()); observe(); });
  // Denied while open.
  loop.schedule_at(5 * kMinute, [&] {
    EXPECT_FALSE(breaker.allow(loop.now()));
    observe();
  });
  // Probe admitted, but fails -> re-open.
  loop.schedule_at(12 * kMinute, [&] {
    EXPECT_TRUE(breaker.allow(loop.now()));
    breaker.on_failure(loop.now());
    observe();
  });
  // Next probe succeeds -> closed.
  loop.schedule_at(23 * kMinute, [&] {
    EXPECT_TRUE(breaker.allow(loop.now()));
    breaker.on_success(loop.now());
    observe();
  });
  loop.run_all();

  std::vector<BreakerState> expected = {
      BreakerState::kClosed,  // 1 failure, below threshold
      BreakerState::kOpen,    // 2nd failure trips
      BreakerState::kOpen,    // still open at 5min
      BreakerState::kOpen,    // failed probe re-opens
      BreakerState::kClosed,  // successful probe closes
  };
  ASSERT_EQ(observed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(observed[i], expected[i]) << "transition " << i;
  }
  EXPECT_EQ(breaker.times_opened(), 2u);
}
