/// Data-quality curation in the ingestion transform (paper goal 2:
/// "ensuring data quality and provenance"): invalid readings and gross
/// outliers are dropped before the data reaches the analyses.

#include <gtest/gtest.h>

#include <cmath>

#include "core/usecase_ww.hpp"
#include "util/csv.hpp"

namespace oc = osprey::core;
namespace ou = osprey::util;
using ou::Value;
using ou::ValueObject;

namespace {

/// Build a use case just to get at its registered harnesses.
struct Harnesses {
  oc::OspreyPlatform platform;
  oc::WastewaterUseCase usecase;
  Harnesses() : usecase(platform, oc::WwUseCaseConfig{}) { usecase.build(); }
};

Value transform(Harnesses& h, const std::string& csv) {
  ValueObject args;
  args["input"] = Value(csv);
  args["url"] = Value("https://test");
  args["args"] = Value(nullptr);
  return h.usecase.harnesses().invoke("ww-transform", Value(args));
}

std::string make_csv(const std::vector<double>& concentrations) {
  ou::CsvTable t({"day", "plant", "concentration_gc_per_l"});
  for (std::size_t i = 0; i < concentrations.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", concentrations[i]);
    t.add_row({std::to_string(i), "TestPlant", buf});
  }
  return t.to_string();
}

}  // namespace

TEST(DataQuality, CleanDataPassesThrough) {
  Harnesses h;
  Value result = transform(h, make_csv({100, 120, 95, 110, 105, 98}));
  EXPECT_EQ(result.at("dropped").as_int(), 0);
  ou::CsvTable out = ou::CsvTable::parse(result.at("output").as_string());
  EXPECT_EQ(out.num_rows(), 6u);
  EXPECT_TRUE(out.has_column("log10_concentration"));
}

TEST(DataQuality, NonPositiveReadingsDropped) {
  Harnesses h;
  Value result = transform(h, make_csv({100, 0, 120, -5, 95}));
  EXPECT_EQ(result.at("dropped").as_int(), 2);
  ou::CsvTable out = ou::CsvTable::parse(result.at("output").as_string());
  EXPECT_EQ(out.num_rows(), 3u);
}

TEST(DataQuality, GrossOutliersDropped) {
  Harnesses h;
  // A lab error ten-million-fold above the rest.
  Value result =
      transform(h, make_csv({100, 120, 95, 110, 1.0e9, 105, 98, 102}));
  EXPECT_EQ(result.at("dropped").as_int(), 1);
  ou::CsvTable out = ou::CsvTable::parse(result.at("output").as_string());
  for (double v : out.column_doubles("concentration_gc_per_l")) {
    EXPECT_LT(v, 1000.0);
  }
}

TEST(DataQuality, EpidemicDynamicRangeIsNotFlaggedAsOutliers) {
  // A genuine wave spanning ~1.5 decades must survive intact.
  Harnesses h;
  std::vector<double> wave;
  for (int t = 0; t < 30; ++t) {
    wave.push_back(50.0 * std::pow(10.0, 1.5 * std::sin(M_PI * t / 30.0)));
  }
  Value result = transform(h, make_csv(wave));
  EXPECT_EQ(result.at("dropped").as_int(), 0);
}

TEST(DataQuality, AllInvalidYieldsEmptyTable) {
  Harnesses h;
  Value result = transform(h, make_csv({0, -1, 0}));
  EXPECT_EQ(result.at("dropped").as_int(), 3);
  ou::CsvTable out = ou::CsvTable::parse(result.at("output").as_string());
  EXPECT_EQ(out.num_rows(), 0u);
}
