#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "util/channel.hpp"
#include "util/thread_pool.hpp"

namespace ou = osprey::util;

TEST(Channel, FifoSingleThread) {
  ou::Channel<int> ch;
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_EQ(ch.pop().value(), 2);
}

TEST(Channel, TryPopEmpty) {
  ou::Channel<int> ch;
  EXPECT_FALSE(ch.try_pop().has_value());
  ch.push(5);
  EXPECT_EQ(ch.try_pop().value(), 5);
}

TEST(Channel, CloseDrainsThenEnds) {
  ou::Channel<int> ch;
  ch.push(1);
  ch.close();
  EXPECT_FALSE(ch.push(2));  // rejected after close
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, TryPopStatusDistinguishesEmptyFromClosed) {
  ou::Channel<int> ch;
  int out = 0;
  // Open and empty: momentary emptiness, pollers should retry.
  EXPECT_EQ(ch.try_pop_status(out), ou::ChannelStatus::kEmpty);
  ch.push(5);
  ch.close();
  // Closed but not drained: the buffered item still comes out.
  EXPECT_EQ(ch.try_pop_status(out), ou::ChannelStatus::kItem);
  EXPECT_EQ(out, 5);
  // Closed and drained: terminal — nothing will ever arrive.
  EXPECT_EQ(ch.try_pop_status(out), ou::ChannelStatus::kClosed);
  EXPECT_EQ(ch.try_pop_status(out), ou::ChannelStatus::kClosed);
}

TEST(Channel, TryPopStatusCloseThenDrainUnderContention) {
  // Producers fill, then the channel closes; polling consumers using
  // try_pop_status must between them drain every buffered item and each
  // exit only on kClosed — no item lost, no poller stuck on kEmpty.
  constexpr int kItems = 2000;
  constexpr int kConsumers = 4;
  ou::Channel<int> ch;
  std::atomic<long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v = 0;
      while (true) {
        switch (ch.try_pop_status(v)) {
          case ou::ChannelStatus::kItem:
            total += v;
            ++count;
            break;
          case ou::ChannelStatus::kEmpty:
            std::this_thread::yield();
            break;
          case ou::ChannelStatus::kClosed:
            return;
        }
      }
    });
  }
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ch.push(i);
    ch.close();
  });
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(count.load(), kItems);
  EXPECT_EQ(total.load(), static_cast<long>(kItems) * (kItems - 1) / 2);
  EXPECT_EQ(ch.size(), 0u);
}

TEST(Channel, CloseWakesBlockedConsumer) {
  ou::Channel<int> ch;
  std::thread consumer([&] { EXPECT_FALSE(ch.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  consumer.join();
}

TEST(Channel, ManyProducersManyConsumers) {
  ou::Channel<int> ch;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  std::atomic<long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = ch.pop()) {
        total += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  ch.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  int n = kPerProducer * kProducers;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), static_cast<long>(n) * (n - 1) / 2);
}

TEST(Channel, BoundedCapacityBlocksUntilDrained) {
  ou::Channel<int> ch(2);
  ch.push(1);
  ch.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ch.push(3);
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());  // blocked at capacity
  EXPECT_EQ(ch.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(ThreadPool, SubmitReturnsResults) {
  ou::ThreadPool pool(3);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ou::ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ou::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ou::ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, AtLeastOneThread) {
  ou::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // parallel_for called from inside a pool task: the calling task helps
  // run queued work (try_run_one) instead of blocking a worker forever.
  ou::ThreadPool pool(2);
  std::atomic<int> inner_hits{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_hits++; });
  });
  EXPECT_EQ(inner_hits.load(), 32);
}

TEST(ThreadPool, ParallelForUsableFromSubmittedTask) {
  ou::ThreadPool pool(1);  // single worker: the submitted task owns it
  auto f = pool.submit([&] {
    std::vector<std::atomic<int>> hits(64);
    pool.parallel_for(64, [&](std::size_t i) { hits[i]++; });
    int sum = 0;
    for (auto& h : hits) sum += h.load();
    return sum;
  });
  EXPECT_EQ(f.get(), 64);
}

TEST(ThreadPool, GlobalPoolIsSingletonAndRuns) {
  ou::ThreadPool& a = ou::global_pool();
  ou::ThreadPool& b = ou::global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
  std::atomic<int> hits{0};
  a.parallel_for(100, [&](std::size_t) { hits++; });
  EXPECT_EQ(hits.load(), 100);
}
