#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "util/channel.hpp"
#include "util/thread_pool.hpp"

namespace ou = osprey::util;

TEST(Channel, FifoSingleThread) {
  ou::Channel<int> ch;
  ch.push(1);
  ch.push(2);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_EQ(ch.pop().value(), 2);
}

TEST(Channel, TryPopEmpty) {
  ou::Channel<int> ch;
  EXPECT_FALSE(ch.try_pop().has_value());
  ch.push(5);
  EXPECT_EQ(ch.try_pop().value(), 5);
}

TEST(Channel, CloseDrainsThenEnds) {
  ou::Channel<int> ch;
  ch.push(1);
  ch.close();
  EXPECT_FALSE(ch.push(2));  // rejected after close
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, CloseWakesBlockedConsumer) {
  ou::Channel<int> ch;
  std::thread consumer([&] { EXPECT_FALSE(ch.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  consumer.join();
}

TEST(Channel, ManyProducersManyConsumers) {
  ou::Channel<int> ch;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  std::atomic<long> total{0};
  std::atomic<int> count{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = ch.pop()) {
        total += *v;
        ++count;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  ch.close();
  for (int c = 0; c < kConsumers; ++c) {
    threads[static_cast<std::size_t>(kProducers + c)].join();
  }
  int n = kPerProducer * kProducers;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(total.load(), static_cast<long>(n) * (n - 1) / 2);
}

TEST(Channel, BoundedCapacityBlocksUntilDrained) {
  ou::Channel<int> ch(2);
  ch.push(1);
  ch.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ch.push(3);
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());  // blocked at capacity
  EXPECT_EQ(ch.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(ThreadPool, SubmitReturnsResults) {
  ou::ThreadPool pool(3);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ou::ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ou::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ou::ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, AtLeastOneThread) {
  ou::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}
