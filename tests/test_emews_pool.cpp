#include "emews/worker_pool.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "emews/interleave.hpp"
#include "emews/pool_launcher.hpp"
#include "emews/task_api.hpp"

namespace oe = osprey::emews;
namespace of = osprey::fabric;
namespace ou = osprey::util;
using ou::Value;
using ou::ValueObject;

namespace {

Value square_model(const Value& payload) {
  double x = payload.at("x").as_double();
  ValueObject out;
  out["y"] = Value(x * x);
  return Value(std::move(out));
}

Value make_x(double x) {
  ValueObject payload;
  payload["x"] = Value(x);
  return Value(std::move(payload));
}

}  // namespace

TEST(WorkerPool, EvaluatesSubmittedTasks) {
  oe::TaskDb db;
  oe::TaskQueue queue(db, "sq");
  oe::WorkerPool pool(db, "sq", square_model, 2, "test-pool");
  std::vector<oe::TaskFuture> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(queue.submit(make_x(i)));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(futures[static_cast<std::size_t>(i)].get()
                         .at("y").as_double(),
                     static_cast<double>(i) * i);
  }
  pool.shutdown();
  EXPECT_EQ(pool.tasks_evaluated(), 20u);
}

TEST(WorkerPool, ShutdownDrainsQueueFirst) {
  oe::TaskDb db;
  oe::TaskQueue queue(db, "sq");
  std::vector<oe::TaskFuture> futures;
  for (int i = 0; i < 10; ++i) futures.push_back(queue.submit(make_x(i)));
  oe::WorkerPool pool(db, "sq", square_model, 1);
  pool.shutdown();  // poison has lower priority than the real work
  for (auto& f : futures) EXPECT_TRUE(f.is_done());
  EXPECT_EQ(pool.tasks_evaluated(), 10u);
}

TEST(WorkerPool, ModelExceptionFailsTask) {
  oe::TaskDb db;
  oe::TaskQueue queue(db, "sq");
  oe::WorkerPool pool(db, "sq",
                      [](const Value&) -> Value {
                        throw std::runtime_error("sim crashed");
                      },
                      1);
  oe::TaskFuture f = queue.submit(make_x(1.0));
  oe::TaskRecord rec = f.wait();
  EXPECT_EQ(rec.status, oe::TaskStatus::kFailed);
  EXPECT_NE(rec.error.find("sim crashed"), std::string::npos);
  pool.shutdown();
}

TEST(WorkerPool, WorkerStatsAccount) {
  oe::TaskDb db;
  oe::TaskQueue queue(db, "sq");
  oe::WorkerPool pool(db, "sq",
                      [](const Value& p) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(2));
                        return square_model(p);
                      },
                      2, "stats-pool");
  for (int i = 0; i < 8; ++i) queue.submit(make_x(i));
  pool.shutdown();
  auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& s : stats) {
    total += s.tasks_evaluated;
    EXPECT_NE(s.name.find("stats-pool/w"), std::string::npos);
  }
  EXPECT_EQ(total, 8u);
  EXPECT_GT(pool.utilization(), 0.0);
  EXPECT_LE(pool.utilization(), 1.0);
}

TEST(WorkerPool, DbCloseStopsWorkers) {
  oe::TaskDb db;
  oe::WorkerPool pool(db, "sq", square_model, 2);
  db.close();
  pool.shutdown();  // must not hang or throw
  EXPECT_EQ(pool.tasks_evaluated(), 0u);
}

TEST(LaunchedPool, StartsWhenSchedulerRunsJob) {
  of::EventLoop loop;
  oe::TaskDb db;
  oe::TaskQueue queue(db, "sq");
  of::BatchScheduler pbs(loop, 2);
  oe::PoolLaunchSpec spec;
  spec.name = "launched";
  spec.n_workers = 2;
  oe::LaunchedPool launched(pbs, db, "sq", square_model, spec);
  EXPECT_FALSE(launched.started());
  EXPECT_THROW(launched.pool(), ou::InvalidArgument);

  loop.run_until(ou::kMinute);  // scheduler starts the job
  ASSERT_TRUE(launched.started());

  oe::TaskFuture f = queue.submit(make_x(3.0));
  EXPECT_DOUBLE_EQ(f.get().at("y").as_double(), 9.0);
  launched.stop();
  EXPECT_EQ(launched.pool().tasks_evaluated(), 1u);
  EXPECT_EQ(pbs.job(launched.job_id()).state, of::JobState::kRunning);
}

TEST(LaunchedPool, QueueWaitDelaysStart) {
  of::EventLoop loop;
  oe::TaskDb db;
  of::BatchScheduler pbs(loop, 1);
  // Occupy the single node for 2 hours.
  pbs.submit({"blocker", 1, 4 * ou::kHour, [] { return 2 * ou::kHour; }});
  oe::PoolLaunchSpec spec;
  spec.n_workers = 1;
  oe::LaunchedPool launched(pbs, db, "sq", square_model, spec);
  loop.run_until(ou::kHour);
  EXPECT_FALSE(launched.started());  // still queued behind the blocker
  loop.run_until(3 * ou::kHour);
  EXPECT_TRUE(launched.started());
  launched.stop();
}
