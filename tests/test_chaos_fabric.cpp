/// Seed-swept chaos suite (ISSUE 4): the paper's wastewater R(t)
/// workflow run under a seeded FaultPlan that injects transfer
/// drops/stalls/corruption, compute kills, endpoint and source outages,
/// auth expiry and storage ACL races — while the AERO server recovers
/// with retries, circuit breakers and graceful degradation.
///
/// Invariants asserted for every seed:
///   - the pipeline quiesces: no flow run is left kRunning (never hangs);
///   - no update is silently dropped: every detected upstream update is
///     accounted for as a published version, a permanent failure, or a
///     superseded trigger;
///   - stakeholders always get an answer: serve_latest() returns either
///     a fresh estimate or a stale one with an explicit reason;
///   - every required fault class actually fired and was recorded in the
///     structured incident log.
///
/// Determinism: a fixed-seed run is bit-identical across invocations —
/// same incident log, same final R(t) bytes (asserted below).
///
/// Each seed is registered as its own ctest case (tests/CMakeLists.txt)
/// so a failing seed is identifiable straight from the CI log.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/usecase_ww.hpp"
#include "epi/wastewater.hpp"
#include "util/log.hpp"

namespace oa = osprey::aero;
namespace oc = osprey::core;
namespace of = osprey::fabric;
namespace ou = osprey::util;
using of::FaultKind;
using of::IncidentCategory;
using ou::kDay;
using ou::kHour;
using ou::kMinute;
using ou::kSecond;
using ou::SimTime;
using ou::Value;
using ou::ValueObject;

namespace {

/// Cheap-but-real workflow configuration: the full 4-plant pipeline at a
/// reduced horizon and MCMC budget, with retries and breakers enabled.
oc::WwUseCaseConfig chaos_config(std::uint64_t seed) {
  oc::WwUseCaseConfig config;
  config.horizon_days = 46;
  config.goldstein.iterations = 400;
  config.goldstein.burnin = 200;
  config.goldstein.thin = 2;
  config.aggregate_draws = 60;
  config.retry.max_attempts = 6;
  config.retry.initial_backoff = 20 * kMinute;
  config.retry.multiplier = 2.0;
  config.retry.jitter = 0.2;
  config.retry.seed = 0x5EEDULL ^ seed;
  config.breaker.failure_threshold = 4;
  config.breaker.open_timeout = 2 * kHour;
  config.breaker.half_open_successes = 1;
  return config;
}

/// The chaos plan for one sweep seed: probabilistic faults confined to
/// [day 28, day 44) (a quiet tail lets the pipeline converge or settle),
/// plus seed-varied scripted faults that guarantee every required fault
/// class fires in every seed.
of::FaultPlan make_plan(std::uint64_t seed) {
  of::FaultPlan plan(0xC8A05000ULL + seed);
  plan.set_active_window(28 * kDay, 44 * kDay);
  plan.set_rate(FaultKind::kTransferDrop, 0.04);
  plan.set_rate(FaultKind::kTransferStall, 0.04);
  plan.set_rate(FaultKind::kTransferCorrupt, 0.03);
  plan.set_rate(FaultKind::kComputeKill, 0.06);
  plan.set_rate(FaultKind::kAclRace, 0.03);
  plan.set_rate(FaultKind::kFlowStall, 0.03);
  // Auth expiry only on scopes whose validation happens inside the
  // orchestration layer's protected (step/transfer) contexts. Never
  // "flows" or "timers": those validations run outside any retry path.
  plan.set_rate(FaultKind::kAuthExpiry, of::scopes::kStorageRead, 0.02);
  plan.set_rate(FaultKind::kAuthExpiry, of::scopes::kStorageWrite, 0.02);
  plan.set_rate(FaultKind::kAuthExpiry, of::scopes::kTransfer, 0.02);
  plan.set_rate(FaultKind::kAuthExpiry, of::scopes::kCompute, 0.02);

  // Guaranteed coverage, seed-varied where possible:
  // the first raw upload to the durable store is corrupted in flight,
  plan.script_nth(FaultKind::kTransferCorrupt,
                  oc::WastewaterUseCase::kStorageName, 0);
  // the first R(t) analysis task is walltime-killed,
  plan.script_nth(FaultKind::kComputeKill, "bebop-compute", 0);
  // an early transfer-scope token validation expires,
  plan.script_nth(FaultKind::kAuthExpiry, of::scopes::kTransfer, 2);
  // the PBS machine is down across the first analysis submissions
  // (window length varies with the seed),
  plan.script_window(FaultKind::kEndpointOutage, "bebop-pbs",
                     28 * kDay + 6 * kHour,
                     28 * kDay + 8 * kHour + (seed % 4) * 2 * kHour);
  // and one plant's upstream feed goes dark for a seed-varied stretch.
  std::vector<osprey::epi::Plant> plants = osprey::epi::chicago_plants();
  const std::string flow = "ingest-" + plants[seed % plants.size()].name;
  plan.script_window(FaultKind::kSourceOutage, flow, 32 * kDay,
                     (33 + static_cast<SimTime>(seed % 3)) * kDay);
  return plan;
}

struct ChaosRun {
  std::unique_ptr<oc::OspreyPlatform> platform;
  std::unique_ptr<of::FaultPlan> plan;
  std::unique_ptr<oc::WastewaterUseCase> usecase;
};

ChaosRun run_chaos(std::uint64_t seed) {
  ChaosRun run;
  run.platform = std::make_unique<oc::OspreyPlatform>();
  run.plan = std::make_unique<of::FaultPlan>(make_plan(seed));
  run.platform->install_fault_plan(run.plan.get());
  // Per-operation timeout: a pathologically slow transfer becomes a
  // recoverable failure instead of an indefinitely late completion.
  run.platform->transfers().set_default_timeout(kHour);
  run.usecase = std::make_unique<oc::WastewaterUseCase>(*run.platform,
                                                        chaos_config(seed));
  run.usecase->build();
  run.usecase->run_to_end();
  // Quiet-tail drain: the active window closed on day 44, so remaining
  // retry chains, breaker probes and deferred triggers resolve here.
  run.platform->run_days(2);
  return run;
}

void assert_chaos_invariants(ChaosRun& run) {
  oa::AeroServer& server = run.platform->aero();
  const oa::MetadataDb& db = server.db();
  const of::FaultPlan& plan = *run.plan;

  // Quiescence: every flow run that started also finished.
  for (const auto& rec : db.runs()) {
    EXPECT_NE(rec.status, oa::RunStatus::kRunning)
        << "flow '" << rec.flow_name << "' (run " << rec.run_id
        << ") still running at quiescence";
  }

  // Accounting: no update silently dropped. Every detected upstream
  // update either published a version, exhausted its retry budget
  // (permanent failure), or was superseded by fresher data.
  std::uint64_t published = 0;
  for (const auto& handles : run.usecase->ingestions()) {
    published += static_cast<std::uint64_t>(
        db.latest_version_number(handles.output_uuid));
  }
  EXPECT_EQ(server.updates_detected(),
            published + server.ingestion_permanent_failures() +
                server.superseded_triggers())
      << "updates=" << server.updates_detected() << " published=" << published
      << " permanent=" << server.ingestion_permanent_failures()
      << " superseded=" << server.superseded_triggers();

  // Graceful degradation: a stakeholder asking for any data product gets
  // an estimate or an honest staleness signal — never nothing.
  auto check_served = [&](const std::string& uuid) {
    oa::AeroServer::ServedEstimate est = server.serve_latest(uuid);
    if (!est.version.has_value()) {
      EXPECT_TRUE(est.stale) << uuid;
      EXPECT_FALSE(est.reason.empty()) << uuid;
    }
  };
  for (const auto& outputs : run.usecase->analysis_outputs()) {
    for (const std::string& uuid : outputs) check_served(uuid);
  }
  for (const std::string& uuid : run.usecase->aggregate_outputs()) {
    check_served(uuid);
  }

  // Required fault classes all fired (scripted injections guarantee it).
  EXPECT_TRUE(plan.exercised(FaultKind::kTransferCorrupt));
  EXPECT_TRUE(plan.exercised(FaultKind::kComputeKill));
  EXPECT_TRUE(plan.exercised(FaultKind::kAuthExpiry));
  EXPECT_TRUE(plan.exercised(FaultKind::kEndpointOutage));
  EXPECT_TRUE(plan.exercised(FaultKind::kSourceOutage));

  // Every injected fault is in the structured incident log, and the
  // orchestration layer demonstrably reacted to the chaos.
  EXPECT_EQ(plan.log().count(IncidentCategory::kFault),
            plan.injected_total());
  EXPECT_GT(plan.log().count(IncidentCategory::kRecovery) +
                plan.log().count(IncidentCategory::kDegraded),
            0u);
  EXPECT_GE(server.retries() + server.deferred_triggers() +
                server.permanent_failures(),
            1u);
}

/// Bytes of the latest version of a data product, read back through the
/// storage endpoint as a stakeholder would ("" when never published).
std::string latest_bytes(const ChaosRun& run, const std::string& uuid) {
  auto version = run.platform->aero().db().latest_version(uuid);
  if (!version.has_value()) return "";
  const oc::OspreyPlatform& platform = *run.platform;
  return platform.storage_endpoint(version->endpoint)
      .get(version->collection, version->path, run.platform->aero().token())
      .bytes;
}

}  // namespace

class ChaosSeedTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { ou::set_log_level(ou::LogLevel::kOff); }
  void TearDown() override { ou::set_log_level(ou::LogLevel::kWarn); }
};

TEST_P(ChaosSeedTest, ConvergesOrDegradesGracefully) {
  ChaosRun run = run_chaos(static_cast<std::uint64_t>(GetParam()));
  assert_chaos_invariants(run);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeedTest, ::testing::Range(0, 16));

TEST(ChaosDeterminism, FixedSeedRunIsBitIdentical) {
  ou::set_log_level(ou::LogLevel::kOff);
  ChaosRun a = run_chaos(0);
  ChaosRun b = run_chaos(0);
  ou::set_log_level(ou::LogLevel::kWarn);

  // Same incident log, byte for byte.
  EXPECT_EQ(a.plan->log().to_string(), b.plan->log().to_string());
  EXPECT_EQ(a.plan->injected_total(), b.plan->injected_total());

  // Same trace counters.
  oa::AeroServer& sa = a.platform->aero();
  oa::AeroServer& sb = b.platform->aero();
  EXPECT_EQ(sa.polls(), sb.polls());
  EXPECT_EQ(sa.updates_detected(), sb.updates_detected());
  EXPECT_EQ(sa.ingestion_runs(), sb.ingestion_runs());
  EXPECT_EQ(sa.analysis_runs(), sb.analysis_runs());
  EXPECT_EQ(sa.failed_runs(), sb.failed_runs());
  EXPECT_EQ(sa.retries(), sb.retries());
  EXPECT_EQ(sa.permanent_failures(), sb.permanent_failures());
  EXPECT_EQ(sa.superseded_triggers(), sb.superseded_triggers());

  // Same final R(t): every published data product is byte-identical.
  for (std::size_t i = 0; i < a.usecase->analysis_outputs().size(); ++i) {
    const auto& uuids_a = a.usecase->analysis_outputs()[i];
    const auto& uuids_b = b.usecase->analysis_outputs()[i];
    ASSERT_EQ(uuids_a.size(), uuids_b.size());
    for (std::size_t k = 0; k < uuids_a.size(); ++k) {
      EXPECT_EQ(latest_bytes(a, uuids_a[k]), latest_bytes(b, uuids_b[k]))
          << "analysis " << i << " output " << k;
    }
  }
  ASSERT_EQ(a.usecase->aggregate_outputs().size(),
            b.usecase->aggregate_outputs().size());
  for (std::size_t k = 0; k < a.usecase->aggregate_outputs().size(); ++k) {
    EXPECT_EQ(latest_bytes(a, a.usecase->aggregate_outputs()[k]),
              latest_bytes(b, b.usecase->aggregate_outputs()[k]))
        << "aggregate output " << k;
  }
}

// ---------------------------------------------------------------------------
// Deterministic per-class fault behaviour (scripted, no sweep).
// ---------------------------------------------------------------------------

TEST(ChaosFaults, ComputeKillFailsTaskAndFreesTheNodeEarly) {
  of::EventLoop loop;
  of::AuthService auth;
  of::BatchScheduler pbs(loop, 1, "pbs");
  of::ComputeEndpoint compute("c", loop, auth, pbs);
  of::FaultPlan plan(5);
  plan.script_nth(FaultKind::kComputeKill, "c", 0);
  compute.set_fault_plan(&plan);
  std::string token = auth.issue_full_token("u");
  bool body_ran = false;
  std::string fn = compute.register_function(
      "job",
      [&body_ran](const Value&) {
        body_ran = true;
        return Value(1);
      },
      2 * kHour);

  ou::set_log_level(ou::LogLevel::kOff);
  bool killed = false;
  SimTime completed_at = -1;
  compute.execute(fn, Value(ValueObject{}), token,
                  [&](const Value& result, const of::ComputeTaskRecord& rec) {
                    killed = rec.status == of::ComputeTaskStatus::kFailed &&
                             rec.error.find("killed") != std::string::npos;
                    EXPECT_TRUE(result.is_null());
                    completed_at = rec.completed;
                  });
  loop.run_all();
  ou::set_log_level(ou::LogLevel::kWarn);

  EXPECT_TRUE(killed);
  EXPECT_FALSE(body_ran);  // outputs never materialize
  // The kill lands mid-run, before the full modeled cost.
  EXPECT_GT(completed_at, 0);
  EXPECT_LT(completed_at, 2 * kHour);
  EXPECT_TRUE(plan.exercised(FaultKind::kComputeKill));

  // The next task (not scripted) runs normally.
  Value second;
  compute.execute(fn, Value(ValueObject{}), token,
                  [&](const Value& r, const of::ComputeTaskRecord& rec) {
                    EXPECT_EQ(rec.status, of::ComputeTaskStatus::kSucceeded);
                    second = r;
                  });
  loop.run_all();
  EXPECT_EQ(second.as_int(), 1);
}

TEST(ChaosFaults, SchedulerOutageWindowDelaysJobStarts) {
  of::EventLoop loop;
  of::FaultPlan plan(6);
  plan.script_window(FaultKind::kEndpointOutage, "pbs", 0, kHour);
  of::BatchScheduler pbs(loop, 2, "pbs");
  pbs.set_fault_plan(&plan);

  of::JobSpec spec;
  spec.name = "j";
  spec.nodes = 1;
  spec.run = [] { return 10 * kMinute; };
  of::JobId id = pbs.submit(spec);
  loop.run_all();

  // The job sat queued for the whole outage and started when it lifted.
  EXPECT_EQ(pbs.job(id).started, kHour);
  EXPECT_EQ(pbs.job(id).state, of::JobState::kComplete);
  EXPECT_TRUE(plan.exercised(FaultKind::kEndpointOutage));
}

TEST(ChaosFaults, ComputeEndpointOutageFailsTasksFast) {
  of::EventLoop loop;
  of::AuthService auth;
  of::ComputeEndpoint login("login", loop, auth, 2);
  of::FaultPlan plan(7);
  plan.script_window(FaultKind::kEndpointOutage, "login", 0, kHour);
  login.set_fault_plan(&plan);
  std::string token = auth.issue_full_token("u");
  std::string fn = login.register_function(
      "f", [](const Value&) { return Value(1); }, kMinute);

  ou::set_log_level(ou::LogLevel::kOff);
  bool unreachable = false;
  login.execute(fn, Value(ValueObject{}), token,
                [&](const Value&, const of::ComputeTaskRecord& rec) {
                  unreachable =
                      rec.status == of::ComputeTaskStatus::kFailed &&
                      rec.error.find("unreachable") != std::string::npos;
                });
  loop.run_until(30 * kMinute);
  ou::set_log_level(ou::LogLevel::kWarn);
  EXPECT_TRUE(unreachable);

  // After the window the endpoint serves normally.
  bool ok = false;
  loop.run_until(kHour);
  login.execute(fn, Value(ValueObject{}), token,
                [&](const Value&, const of::ComputeTaskRecord& rec) {
                  ok = rec.status == of::ComputeTaskStatus::kSucceeded;
                });
  loop.run_all();
  EXPECT_TRUE(ok);
}

TEST(ChaosFaults, AuthExpiryIsTransient) {
  of::EventLoop loop;
  of::AuthService auth;
  of::FaultPlan plan(8);
  plan.script_nth(FaultKind::kAuthExpiry, of::scopes::kTransfer, 0);
  auth.set_fault_plan(&plan, &loop);
  std::string token = auth.issue_full_token("u");
  EXPECT_THROW(auth.validate(token, of::scopes::kTransfer), ou::AuthError);
  // The very next validation of the same (perfectly valid) token passes.
  EXPECT_NO_THROW(auth.validate(token, of::scopes::kTransfer));
  // Other scopes were never affected.
  EXPECT_NO_THROW(auth.validate(token, of::scopes::kStorageRead));
  EXPECT_TRUE(plan.exercised(FaultKind::kAuthExpiry));
}

TEST(ChaosFaults, AclRaceIsTransient) {
  of::EventLoop loop;
  of::AuthService auth;
  of::StorageEndpoint store("s", loop, auth);
  of::FaultPlan plan(9);
  plan.script_nth(FaultKind::kAclRace, "s", 0);
  store.set_fault_plan(&plan);
  std::string token = auth.issue_full_token("u");
  store.create_collection("c", token);
  EXPECT_THROW(store.put("c", "x", "data", token), ou::AuthError);
  EXPECT_NO_THROW(store.put("c", "x", "data", token));
  EXPECT_EQ(store.get("c", "x", token).bytes, "data");
  EXPECT_TRUE(plan.exercised(FaultKind::kAclRace));
}

TEST(ChaosFaults, FlowStallDelaysTheStepWithoutFailingTheRun) {
  of::EventLoop loop;
  of::AuthService auth;
  of::FlowsService flows(loop, auth);
  of::FaultPlan plan(10);
  plan.script_nth(FaultKind::kFlowStall, "f", 0);
  flows.set_fault_plan(&plan);
  std::string token = auth.issue_full_token("u");

  of::FlowDefinition flow;
  flow.name = "f";
  flow.steps.push_back(of::FlowStep{
      "step", [](of::FlowRunContext&, of::StepDone done) { done(true, ""); }});
  bool succeeded = false;
  SimTime ended = -1;
  flows.run(flow, token, [&](const of::FlowRunRecord& rec, const Value&) {
    succeeded = rec.status == of::FlowRunStatus::kSucceeded;
    ended = rec.ended;
  });
  loop.run_all();
  EXPECT_TRUE(succeeded);
  EXPECT_EQ(ended, plan.stall_delay);  // latency, not failure
  EXPECT_TRUE(plan.exercised(FaultKind::kFlowStall));
}
