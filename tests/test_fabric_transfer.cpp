#include "fabric/transfer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace of = osprey::fabric;
namespace ou = osprey::util;

class TransferTest : public ::testing::Test {
 protected:
  of::EventLoop loop;
  of::AuthService auth;
  of::StorageEndpoint src{"src", loop, auth};
  of::StorageEndpoint dst{"dst", loop, auth};
  of::TransferService transfers{loop, auth, 2 * ou::kSecond, 1.0e6};
  std::string token = auth.issue_full_token("mover");

  void SetUp() override {
    src.create_collection("c", token);
    dst.create_collection("c", token);
  }
};

TEST_F(TransferTest, CopiesBytesAndVerifiesChecksum) {
  src.put("c", "a.csv", "payload-bytes", token);
  bool done = false;
  transfers.transfer(src, "c", "a.csv", dst, "c", "b.csv", token,
                     [&](const of::TransferRecord& rec) {
                       done = true;
                       EXPECT_EQ(rec.status, of::TransferStatus::kSucceeded);
                       EXPECT_EQ(rec.bytes, 13u);
                     });
  EXPECT_FALSE(dst.exists("c", "b.csv"));  // async: not yet
  loop.run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(dst.get("c", "b.csv", token).bytes, "payload-bytes");
  EXPECT_EQ(dst.get("c", "b.csv", token).checksum,
            src.get("c", "a.csv", token).checksum);
}

TEST_F(TransferTest, DurationFollowsCostModel) {
  // 1 MB at 1 MB/s + 2 s latency = 3 s.
  std::string big(1'000'000, 'x');
  src.put("c", "big", big, token);
  of::TransferId id =
      transfers.transfer(src, "c", "big", dst, "c", "big", token);
  loop.run_all();
  const of::TransferRecord& rec = transfers.record(id);
  EXPECT_EQ(rec.completed - rec.submitted, 3 * ou::kSecond);
}

TEST_F(TransferTest, SnapshotsSourceAtSubmission) {
  src.put("c", "f", "version-1", token);
  transfers.transfer(src, "c", "f", dst, "c", "f", token);
  src.put("c", "f", "version-2-longer", token);  // overwrite mid-flight
  loop.run_all();
  EXPECT_EQ(dst.get("c", "f", token).bytes, "version-1");
}

TEST_F(TransferTest, MissingSourceFails) {
  bool done = false;
  of::TransferId id = transfers.transfer(src, "c", "missing", dst, "c", "x",
                                         token,
                                         [&](const of::TransferRecord& rec) {
                                           done = true;
                                           EXPECT_EQ(rec.status,
                                                     of::TransferStatus::kFailed);
                                           EXPECT_FALSE(rec.error.empty());
                                         });
  loop.run_all();
  EXPECT_TRUE(done);
  EXPECT_EQ(transfers.record(id).status, of::TransferStatus::kFailed);
  EXPECT_EQ(transfers.completed_count(), 0u);
}

TEST_F(TransferTest, RequiresTransferScope) {
  std::string weak = auth.issue_token("weak", {of::scopes::kStorageRead});
  EXPECT_THROW(
      transfers.transfer(src, "c", "a", dst, "c", "a", weak),
      ou::AuthError);
}

TEST_F(TransferTest, RecordsAccumulate) {
  src.put("c", "a", "1", token);
  src.put("c", "b", "2", token);
  transfers.transfer(src, "c", "a", dst, "c", "a", token);
  transfers.transfer(src, "c", "b", dst, "c", "b", token);
  loop.run_all();
  EXPECT_EQ(transfers.records().size(), 2u);
  EXPECT_EQ(transfers.completed_count(), 2u);
  EXPECT_THROW(transfers.record(99), ou::InvalidArgument);
}
