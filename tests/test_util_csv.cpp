#include "util/csv.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ou = osprey::util;

TEST(Csv, BuildAndSerialize) {
  ou::CsvTable t({"day", "value"});
  t.add_row({"0", "1.5"});
  t.add_row({"1", "2.5"});
  EXPECT_EQ(t.to_string(), "day,value\n0,1.5\n1,2.5\n");
}

TEST(Csv, ParseRoundTrip) {
  std::string text = "a,b,c\n1,2,3\n4,5,6\n";
  ou::CsvTable t = ou::CsvTable::parse(text);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.to_string(), text);
}

TEST(Csv, QuotedFieldsWithCommasAndNewlines) {
  ou::CsvTable t({"name", "note"});
  t.add_row({"O'Brien", "hello, world"});
  t.add_row({"X", "line1\nline2"});
  t.add_row({"Y", "has \"quotes\""});
  ou::CsvTable round = ou::CsvTable::parse(t.to_string());
  EXPECT_EQ(round.cell(0, "note"), "hello, world");
  EXPECT_EQ(round.cell(1, "note"), "line1\nline2");
  EXPECT_EQ(round.cell(2, "note"), "has \"quotes\"");
}

TEST(Csv, ColumnAccessors) {
  ou::CsvTable t = ou::CsvTable::parse("day,conc\n0,10.5\n2,20.25\n");
  std::vector<double> conc = t.column_doubles("conc");
  ASSERT_EQ(conc.size(), 2u);
  EXPECT_DOUBLE_EQ(conc[1], 20.25);
  EXPECT_EQ(t.column_strings("day"), (std::vector<std::string>{"0", "2"}));
  EXPECT_DOUBLE_EQ(t.cell_double(0, "conc"), 10.5);
}

TEST(Csv, MissingColumnThrows) {
  ou::CsvTable t = ou::CsvTable::parse("a\n1\n");
  EXPECT_THROW(t.column_index("b"), ou::NotFound);
  EXPECT_FALSE(t.has_column("b"));
  EXPECT_TRUE(t.has_column("a"));
}

TEST(Csv, RaggedRowThrows) {
  ou::CsvTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ou::InvalidArgument);
  EXPECT_THROW(ou::CsvTable::parse("a,b\n1\n"), ou::InvalidArgument);
}

TEST(Csv, NonNumericCellThrows) {
  ou::CsvTable t = ou::CsvTable::parse("a\nnot-a-number\n");
  EXPECT_THROW(t.cell_double(0, "a"), ou::InvalidArgument);
}

TEST(Csv, EmptyDocumentThrows) {
  EXPECT_THROW(ou::CsvTable::parse(""), ou::InvalidArgument);
}

TEST(Csv, CrLfLineEndings) {
  ou::CsvTable t = ou::CsvTable::parse("a,b\r\n1,2\r\n");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.cell(0, "b"), "2");
}

TEST(Csv, EmptyFieldsPreserved) {
  ou::CsvTable t = ou::CsvTable::parse("a,b,c\n1,,3\n");
  EXPECT_EQ(t.cell(0, "b"), "");
}
