#include <gtest/gtest.h>

#include <cmath>

#include "num/cholesky.hpp"
#include "num/rng.hpp"
#include "num/vecmat.hpp"
#include "util/error.hpp"

namespace on = osprey::num;

TEST(Matrix, ConstructionAndIndexing) {
  on::Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, RowAccess) {
  on::Matrix m(2, 2);
  m.set_row(0, {1.0, 2.0});
  m.set_row(1, {3.0, 4.0});
  EXPECT_EQ(m.row(1), (on::Vector{3.0, 4.0}));
  EXPECT_THROW(m.row(2), osprey::util::InvalidArgument);
  EXPECT_THROW(m.set_row(0, {1.0}), osprey::util::InvalidArgument);
}

TEST(Matrix, MatmulIdentity) {
  on::Matrix a(2, 2);
  a.set_row(0, {1.0, 2.0});
  a.set_row(1, {3.0, 4.0});
  on::Matrix prod = on::matmul(a, on::Matrix::identity(2));
  EXPECT_DOUBLE_EQ(prod(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(prod(1, 0), 3.0);
}

TEST(Matrix, MatmulKnownProduct) {
  on::Matrix a(2, 3);
  a.set_row(0, {1.0, 2.0, 3.0});
  a.set_row(1, {4.0, 5.0, 6.0});
  on::Matrix b(3, 2);
  b.set_row(0, {7.0, 8.0});
  b.set_row(1, {9.0, 10.0});
  b.set_row(2, {11.0, 12.0});
  on::Matrix c = on::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, DimensionMismatchThrows) {
  on::Matrix a(2, 3), b(2, 2);
  EXPECT_THROW(on::matmul(a, b), osprey::util::InvalidArgument);
  EXPECT_THROW(on::matvec(a, {1.0, 2.0}), osprey::util::InvalidArgument);
}

TEST(Matrix, TransposeRoundTrip) {
  on::Matrix a(2, 3);
  a.set_row(0, {1.0, 2.0, 3.0});
  a.set_row(1, {4.0, 5.0, 6.0});
  on::Matrix att = on::transpose(on::transpose(a));
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(att(i, j), a(i, j));
    }
  }
}

TEST(VectorOps, DotNormAxpy) {
  on::Vector a{1.0, 2.0, 2.0};
  on::Vector b{2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(on::dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(on::norm2(a), 3.0);
  EXPECT_EQ(on::axpy(a, 2.0, b), (on::Vector{5.0, 2.0, 4.0}));
}

namespace {

/// Random SPD matrix A = B B^T + n I.
on::Matrix random_spd(std::size_t n, on::RngStream& rng) {
  on::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  on::Matrix a = on::matmul(b, on::transpose(b));
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

}  // namespace

TEST(Cholesky, ReconstructsMatrix) {
  on::RngStream rng(1);
  on::Matrix a = random_spd(8, rng);
  on::Cholesky chol(a);
  on::Matrix l = chol.lower();
  on::Matrix llt = on::matmul(l, on::transpose(l));
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(llt(i, j), a(i, j), 1e-9);
    }
  }
}

TEST(Cholesky, SolveResidualSmall) {
  on::RngStream rng(2);
  for (std::size_t n : {2u, 5u, 20u, 60u}) {
    on::Matrix a = random_spd(n, rng);
    on::Vector x_true(n);
    for (double& v : x_true) v = rng.normal();
    on::Vector b = on::matvec(a, x_true);
    on::Cholesky chol(a);
    on::Vector x = chol.solve(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8) << "n=" << n;
    }
  }
}

TEST(Cholesky, LogDetMatchesKnown) {
  // diag(4, 9): |A| = 36, log = log(36).
  on::Matrix a(2, 2, 0.0);
  a(0, 0) = 4.0;
  a(1, 1) = 9.0;
  on::Cholesky chol(a);
  EXPECT_NEAR(chol.log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  on::Matrix a(2, 2, 0.0);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_THROW(on::Cholesky{a}, osprey::util::NumericalError);
}

TEST(Cholesky, JitterRecoversNearSingular) {
  // Rank-deficient: ones matrix.
  on::Matrix a(3, 3, 1.0);
  double used = -1.0;
  on::Cholesky chol = on::cholesky_with_jitter(a, 0.0, 12, &used);
  EXPECT_GT(used, 0.0);
  on::Vector x = chol.solve(on::Vector{1.0, 1.0, 1.0});
  EXPECT_EQ(x.size(), 3u);
}

TEST(Cholesky, MatrixSolve) {
  on::RngStream rng(3);
  on::Matrix a = random_spd(4, rng);
  on::Cholesky chol(a);
  on::Matrix x = chol.solve(on::Matrix::identity(4));  // X = A^{-1}
  on::Matrix should_be_identity = on::matmul(a, x);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(should_be_identity(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(RidgeSolve, RecoversExactCoefficientsWhenOverdetermined) {
  on::RngStream rng(4);
  const std::size_t n = 50, p = 3;
  on::Matrix x(n, p);
  on::Vector beta{2.0, -1.0, 0.5};
  on::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      x(i, j) = rng.normal();
      acc += x(i, j) * beta[j];
    }
    y[i] = acc;
  }
  on::Vector est = on::ridge_solve(x, y, 1e-10);
  for (std::size_t j = 0; j < p; ++j) {
    EXPECT_NEAR(est[j], beta[j], 1e-6);
  }
}

TEST(RidgeSolve, UnderdeterminedIsStabilized) {
  // n < p: pure least squares would be singular; ridge must not throw.
  on::RngStream rng(5);
  on::Matrix x(3, 6);
  on::Vector y(3);
  for (std::size_t i = 0; i < 3; ++i) {
    y[i] = rng.normal();
    for (std::size_t j = 0; j < 6; ++j) x(i, j) = rng.normal();
  }
  on::Vector b = on::ridge_solve(x, y, 1e-4);
  EXPECT_EQ(b.size(), 6u);
  for (double v : b) EXPECT_TRUE(std::isfinite(v));
}
