// TSan-targeted stress tests for emews::TaskDb: many workers claiming,
// completing, failing and requeuing tasks from a shared database
// concurrently with submitters and monitors. scripts/check.sh runs this
// binary under -fsanitize=thread; any lock-discipline regression in
// TaskDb shows up here as a data-race report.
//
// Also covers the determinism contract: with an injected util::SimClock
// every task timestamp is an exact, replayable virtual-time value.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "emews/task_db.hpp"
#include "emews/worker_pool.hpp"
#include "util/clock.hpp"
#include "util/value.hpp"

namespace oe = osprey::emews;
namespace ou = osprey::util;

namespace {

ou::Value payload_of(int i) {
  ou::ValueObject o;
  o["i"] = ou::Value(static_cast<double>(i));
  return ou::Value(std::move(o));
}

}  // namespace

TEST(TaskDbStress, ConcurrentClaimCompleteRequeue) {
  constexpr int kTasks = 400;
  constexpr int kWorkers = 8;

  oe::TaskDb db;
  // Half the tasks are pre-submitted, half arrive while workers run.
  for (int i = 0; i < kTasks / 2; ++i) {
    db.submit("stress", payload_of(i), i % 3);
  }

  std::atomic<int> requeues{0};
  std::atomic<int> fails{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&db, &requeues, &fails, w] {
      std::string name = "stress/w" + std::to_string(w);
      while (true) {
        std::optional<oe::TaskId> id = db.claim_for("stress", name, 5);
        if (!id.has_value()) {
          if (db.closed()) break;
          continue;
        }
        oe::TaskRecord rec = db.snapshot(*id);
        // Exercise every running-task transition: some tasks bounce
        // back to the queue twice before finishing, a few fail.
        if ((*id % 5 == 0) && rec.requeues < 2) {
          ASSERT_TRUE(db.requeue(*id));
          requeues.fetch_add(1, std::memory_order_relaxed);
        } else if (*id % 13 == 0) {
          db.fail(*id, "injected");
          fails.fetch_add(1, std::memory_order_relaxed);
        } else {
          db.complete(*id, rec.payload);
        }
      }
    });
  }

  // Late submitter races the workers.
  std::thread submitter([&db] {
    for (int i = kTasks / 2; i < kTasks; ++i) {
      db.submit("stress", payload_of(i), i % 3);
    }
  });
  // A monitor hammers the read-side API while everything runs.
  std::thread monitor([&db] {
    while (db.finished_count() < kTasks) {
      (void)db.queued_count("stress");
      (void)db.total_submitted();
      std::uint64_t seen = db.finished_count();
      db.wait_for_more_finished(seen);
    }
  });

  submitter.join();
  // Wait until every task has finished, then release the workers.
  while (db.finished_count() < kTasks) {
    db.wait_for_more_finished(db.finished_count());
  }
  db.close();
  monitor.join();
  for (auto& t : workers) t.join();

  EXPECT_EQ(db.total_submitted(), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(db.finished_count(), static_cast<std::uint64_t>(kTasks));
  EXPECT_GT(requeues.load(), 0);
  int complete = 0, failed = 0;
  for (oe::TaskId id = 0; id < kTasks; ++id) {
    oe::TaskRecord rec = db.snapshot(id);
    if (rec.status == oe::TaskStatus::kComplete) ++complete;
    if (rec.status == oe::TaskStatus::kFailed) ++failed;
    if (rec.requeues > 0) {
      EXPECT_LE(rec.requeues, 2u) << "task " << id;
    }
  }
  EXPECT_EQ(failed, fails.load());
  EXPECT_EQ(complete + failed, kTasks);
}

TEST(TaskDbStress, RequeueOnlyAppliesToRunningTasks) {
  oe::TaskDb db;
  oe::TaskId id = db.submit("q", payload_of(0));
  EXPECT_FALSE(db.requeue(id)) << "queued task must not requeue";
  ASSERT_TRUE(db.try_claim("q", "w").has_value());
  EXPECT_TRUE(db.requeue(id));
  EXPECT_EQ(db.snapshot(id).status, oe::TaskStatus::kQueued);
  EXPECT_EQ(db.snapshot(id).worker, "");
  EXPECT_EQ(db.queued_count("q"), 1u);
  // Claim again and finish; requeue after completion must refuse.
  ASSERT_TRUE(db.try_claim("q", "w2").has_value());
  db.complete(id, payload_of(0));
  EXPECT_FALSE(db.requeue(id));
  EXPECT_EQ(db.snapshot(id).requeues, 1u);
}

TEST(TaskDbStress, SimClockTimestampsAreDeterministic) {
  ou::SimClock clock;
  oe::TaskDb db(&clock);
  ASSERT_EQ(&db.clock(), &clock);

  clock.set_ns(1'000);
  oe::TaskId id = db.submit("sim", payload_of(1));
  clock.set_ns(2'500);
  ASSERT_TRUE(db.try_claim("sim", "w0").has_value());
  clock.set_ns(4'000);
  db.complete(id, payload_of(1));

  oe::TaskRecord rec = db.snapshot(id);
  EXPECT_EQ(rec.submitted_ns, 1'000u);
  EXPECT_EQ(rec.started_ns, 2'500u);
  EXPECT_EQ(rec.completed_ns, 4'000u);
}

TEST(TaskDbStress, WorkerPoolStampsThroughInjectedClock) {
  ou::SimClock clock;
  clock.set_ns(5'000);
  oe::TaskDb db(&clock);
  std::vector<oe::TaskId> ids;
  for (int i = 0; i < 16; ++i) ids.push_back(db.submit("m", payload_of(i)));
  {
    oe::WorkerPool pool(db, "m", [](const ou::Value& v) { return v; }, 4,
                        "simclock-pool");
    for (oe::TaskId id : ids) db.wait(id);
    pool.shutdown();
  }
  // Real threads did the work, but every stamp came from the SimClock,
  // which never moved: a replayable, machine-independent trace.
  for (oe::TaskId id : ids) {
    oe::TaskRecord rec = db.snapshot(id);
    EXPECT_EQ(rec.status, oe::TaskStatus::kComplete);
    EXPECT_EQ(rec.submitted_ns, 5'000u);
    EXPECT_EQ(rec.started_ns, 5'000u);
    EXPECT_EQ(rec.completed_ns, 5'000u);
  }
}
